#!/usr/bin/env python3
"""bmh_lint — project invariant linter for the bmh serving stack.

Checks contracts the generic analyzers (clang-tidy, -Wthread-safety) cannot
express, over the translation units named by a CMake compile database:

  ws-alloc        `_ws`-suffixed functions are the zero-alloc-warm serving
                  path: their bodies must not construct std::vector or
                  std::string or call `new` — scratch memory comes from
                  Workspace leases (ws.vec<T>(...), ws.obj<T>(...)).
  failpoint-site  every BMH_FAILPOINT / BMH_FAILPOINT_CORRUPT site string is
                  unique across the tree and listed in the README's
                  "Failure semantics" site table, so the README can never
                  drift from the compiled-in sites. (Dynamically built
                  metric names like `site + ".evaluations"` are not
                  literals and are outside this rule.)
  memory-order    every std::atomic access spelling an explicit memory_order
                  other than relaxed carries a justifying comment on the
                  same or immediately preceding line — acquire/release/
                  seq_cst are protocol statements and must say which
                  protocol.
  metric-name     obs instrument names (MetricDomain("..."), .counter("..."),
                  .gauge("..."), .histogram("..."), create_domain("..."),
                  record_phase("...")) are lowercase snake_case tokens, so
                  the exporters' rendered `bmh_<domain>_<metric>` names
                  always match the documented grammar.

Scope: repo mode lints `src/**` (the serving library — the code the
contracts govern); tests and benches deliberately do odd things and are
excluded. `--files` mode lints exactly the named files (used by the fixture
test in tests/lint/).

Suppression: a comment `bmh-lint: allow(<rule>) <justification>` on the
flagged line or the line above suppresses that rule there. The
justification is mandatory; an allow() without one is itself reported
(rule `bare-allow`).

Output: one `path:line: [rule] message` per finding on stdout, sorted;
exit status 1 when anything was found, 0 on a clean tree.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = ("ws-alloc", "failpoint-site", "memory-order", "metric-name")

ALLOW_RE = re.compile(r"bmh-lint:\s*allow\(([a-z-]+)\)\s*(\S?.*)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blank out comments and (unless keep_strings) string/char literals,
    preserving line structure (every newline survives) so line numbers in
    the stripped text match the original. Raw strings are handled well
    enough for this codebase (none)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(c + nxt if keep_strings else "  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; be forgiving
                state = "code"
                out.append("\n")
            else:
                out.append(c if keep_strings else " ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


class SourceFile:
    def __init__(self, path: Path, display: str):
        self.path = path
        self.display = display
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.lines = self.text.splitlines()
        self.stripped = strip_comments_and_strings(self.text)
        self.stripped_lines = self.stripped.splitlines()
        # Comments blanked, string literals kept: failpoint site names live
        # in literals, but doc-comment examples must not count as sites.
        self.code_with_strings = strip_comments_and_strings(
            self.text, keep_strings=True)

    def line(self, number: int) -> str:
        return self.lines[number - 1] if 0 < number <= len(self.lines) else ""

    def allow_on(self, number: int):
        """The allow() directive covering `number`, if any: checks the line
        itself and the line above. Returns (rule, justification) or None."""
        for candidate in (number, number - 1):
            m = ALLOW_RE.search(self.line(candidate))
            if m:
                return m.group(1), m.group(2).strip(), candidate
        return None


def suppressed(src: SourceFile, number: int, rule: str, findings: list) -> bool:
    hit = src.allow_on(number)
    if hit is None:
        return False
    allowed_rule, justification, where = hit
    if allowed_rule != rule:
        return False
    if not justification:
        findings.append(
            Finding(src.display, where, "bare-allow",
                    f"allow({rule}) needs a justification after the ')'"))
    return True


# ------------------------------------------------------------------ ws-alloc

WS_DEF_RE = re.compile(r"\b([A-Za-z_]\w*_ws)\s*\(")
VECTOR_RE = re.compile(r"\bstd\s*::\s*vector\s*<")
STRING_RE = re.compile(r"\bstd\s*::\s*string\b(?!_view)")


def matching(text: str, start: int, open_ch: str, close_ch: str) -> int:
    """Index just past the bracket matching text[start] (which must be
    open_ch); -1 when unbalanced."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def template_end(text: str, start: int) -> int:
    """Index just past the `>` matching the `<` at text[start]; bails (-1) on
    expressions that are clearly not template argument lists."""
    depth = 0
    for i in range(start, min(len(text), start + 2000)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c == ";":
            return -1
    return -1


def check_ws_alloc(src: SourceFile, findings: list) -> None:
    text = src.stripped
    for m in WS_DEF_RE.finditer(text):
        paren_open = text.index("(", m.end() - 1)
        paren_close = matching(text, paren_open, "(", ")")
        if paren_close < 0:
            continue
        # Definition = an opening brace after the signature (allowing
        # qualifiers like const/noexcept/override and a trailing return).
        tail = text[paren_close:paren_close + 200]
        tail_head = tail.lstrip()
        if not tail_head.startswith("{"):
            # `-` last so the class can't form an accidental range; covers
            # const/noexcept/override and `-> T` trailing returns.
            qualifiers = re.match(r"^[\s\w:&<>,*\[\]-]*\{", tail)
            if qualifiers is None:
                continue  # declaration or call, not a definition
        brace_open = text.index("{", paren_close)
        body_end = matching(text, brace_open, "{", "}")
        if body_end < 0:
            continue
        body = text[brace_open:body_end]
        base = brace_open

        for vm in VECTOR_RE.finditer(body):
            close = template_end(body, vm.end() - 1)
            if close < 0:
                continue
            after = body[close:close + 40].lstrip()
            if after.startswith(("&", "*", "::", ">", ",", ")")):
                continue  # reference/pointer/nested-type use, not a construction
            if re.match(r"^[A-Za-z_(\{]", after):
                ln = line_of(text, base + vm.start())
                if not suppressed(src, ln, "ws-alloc", findings):
                    findings.append(Finding(
                        src.display, ln, "ws-alloc",
                        f"std::vector constructed inside {m.group(1)}() — "
                        "use a Workspace lease (ws.vec<T>())"))
        for sm in STRING_RE.finditer(body):
            after = body[sm.end():sm.end() + 40].lstrip()
            if after.startswith(("&", "*", "::", ",", ")", ";", ">")):
                continue
            if re.match(r"^[A-Za-z_(\{]", after):
                ln = line_of(text, base + sm.start())
                if not suppressed(src, ln, "ws-alloc", findings):
                    findings.append(Finding(
                        src.display, ln, "ws-alloc",
                        f"std::string constructed inside {m.group(1)}() — "
                        "the warm path must not allocate"))
        for nm in re.finditer(r"\bnew\b", body):
            ln = line_of(text, base + nm.start())
            if not suppressed(src, ln, "ws-alloc", findings):
                findings.append(Finding(
                    src.display, ln, "ws-alloc",
                    f"`new` inside {m.group(1)}() — "
                    "the warm path must not allocate"))


# ------------------------------------------------------------ failpoint-site

FAILPOINT_RE = re.compile(r"\bBMH_FAILPOINT(?:_CORRUPT)?\s*\(\s*\"([^\"]+)\"")


def readme_failure_sites(readme: Path) -> set:
    """Backticked tokens inside the README's "Failure semantics" section."""
    try:
        text = readme.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return set()
    m = re.search(r"^##+\s+Failure semantics\s*$(.*?)(?=^##\s|\Z)", text,
                  re.MULTILINE | re.DOTALL)
    if m is None:
        return set()
    return set(re.findall(r"`([a-z0-9_.]+)`", m.group(1)))


def check_failpoints(sources: list, readme: Path, findings: list) -> None:
    listed = readme_failure_sites(readme) if readme else None
    seen = {}
    for src in sources:
        for m in FAILPOINT_RE.finditer(src.code_with_strings):
            site = m.group(1)
            ln = line_of(src.code_with_strings, m.start())
            if suppressed(src, ln, "failpoint-site", findings):
                continue
            if site in seen:
                findings.append(Finding(
                    src.display, ln, "failpoint-site",
                    f'duplicate failpoint site "{site}" '
                    f"(first at {seen[site]})"))
            else:
                seen[site] = f"{src.display}:{ln}"
            if listed is not None and site not in listed:
                findings.append(Finding(
                    src.display, ln, "failpoint-site",
                    f'failpoint site "{site}" is not listed in the README '
                    "failure-semantics site table"))


# -------------------------------------------------------------- memory-order

MEMORY_ORDER_RE = re.compile(
    r"\bmemory_order(?:_|::\s*)(acquire|release|acq_rel|seq_cst|consume)\b")


def has_comment(line: str) -> bool:
    # A bmh-lint directive is not a justification: allow(<rule>) runs through
    # suppressed() (which demands its own justification text), and an allow
    # for a *different* rule must not silence this one.
    if ALLOW_RE.search(line):
        return False
    stripped = strip_comments_and_strings(line)
    if "//" in line and "//" not in stripped:
        return True
    if "/*" in line and "/*" not in stripped:
        return True
    if "*/" in line and "*/" not in stripped:
        return True
    s = line.strip()
    return s.startswith(("*", "//", "/*"))  # inside a block comment


def check_memory_order(src: SourceFile, findings: list) -> None:
    flagged = set()
    for number, line in enumerate(src.stripped_lines, start=1):
        m = MEMORY_ORDER_RE.search(line)
        if m is None or number in flagged:
            continue
        if suppressed(src, number, "memory-order", findings):
            continue
        if has_comment(src.line(number)) or has_comment(src.line(number - 1)):
            continue
        flagged.add(number)
        findings.append(Finding(
            src.display, number, "memory-order",
            f"memory_order_{m.group(1)} without a justifying comment on "
            "this or the preceding line"))


# --------------------------------------------------------------- metric-name

METRIC_CALL_RE = re.compile(
    r"(?:\.\s*(?:counter|gauge|histogram)|\bcreate_domain|\brecord_phase|"
    r"\bMetricDomain\s+\w+|\bMetricDomain)\s*[({]\s*\"([^\"]*)\"")
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def check_metric_names(src: SourceFile, findings: list) -> None:
    for m in METRIC_CALL_RE.finditer(src.text):
        name = m.group(1)
        if METRIC_NAME_RE.match(name):
            continue
        ln = line_of(src.text, m.start())
        if suppressed(src, ln, "metric-name", findings):
            continue
        findings.append(Finding(
            src.display, ln, "metric-name",
            f'metric name "{name}" does not match the bmh_<domain>_<metric> '
            "grammar component [a-z][a-z0-9_]*"))


# -------------------------------------------------------------------- driver

def compile_db_sources(compile_db: Path, repo_root: Path) -> list:
    entries = json.loads(compile_db.read_text(encoding="utf-8"))
    src_dir = (repo_root / "src").resolve()
    picked = []
    seen = set()
    for entry in entries:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry["directory"]) / f
        f = f.resolve()
        if src_dir not in f.parents:
            continue
        if f in seen or not f.exists():
            continue
        seen.add(f)
        picked.append(f)
    # Headers never appear in the compile database; the contracts live in
    # them too (annotated members, inline hot paths), so walk src/ for them.
    for header in sorted(src_dir.rglob("*.hpp")):
        if header.resolve() not in seen:
            picked.append(header.resolve())
            seen.add(header.resolve())
    return sorted(picked)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compile-db", type=Path,
                        help="compile_commands.json to enumerate TUs from")
    parser.add_argument("--repo-root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--readme", type=Path,
                        help="README to check failpoint sites against "
                             "(default: <repo-root>/README.md in repo mode)")
    parser.add_argument("--files", nargs="*", type=Path,
                        help="lint exactly these files (fixture mode)")
    args = parser.parse_args(argv)

    repo_root = args.repo_root.resolve()
    if args.files:
        paths = [(p, str(p)) for p in args.files]
        readme = args.readme
    else:
        if args.compile_db is None:
            for candidate in ("build", "build-lint"):
                db = repo_root / candidate / "compile_commands.json"
                if db.exists():
                    args.compile_db = db
                    break
        if args.compile_db is None or not args.compile_db.exists():
            print("bmh_lint: no compile_commands.json found; configure with "
                  "cmake first or pass --compile-db", file=sys.stderr)
            return 2
        paths = [(p, str(p.relative_to(repo_root)) if repo_root in p.parents
                  else str(p))
                 for p in compile_db_sources(args.compile_db, repo_root)]
        readme = args.readme if args.readme else repo_root / "README.md"

    sources = []
    for path, display in paths:
        try:
            sources.append(SourceFile(Path(path), display))
        except OSError as e:
            print(f"bmh_lint: cannot read {path}: {e}", file=sys.stderr)
            return 2

    findings: list = []
    for src in sources:
        check_ws_alloc(src, findings)
        check_memory_order(src, findings)
        check_metric_names(src, findings)
    check_failpoints(sources, readme, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"bmh_lint: {len(findings)} finding(s) in "
              f"{len(sources)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
