#!/usr/bin/env bash
# Run the full static-analysis tier locally — the same steps the CI
# `static-analysis` job runs, degrading gracefully on machines without a
# clang toolchain (GCC-only boxes still get the project linter and the
# NOLINT policy check).
#
# Usage: tools/lint/run_all.sh [build-dir]
#   build-dir   existing CMake build dir with compile_commands.json
#               (default: build; configured on the fly if missing)
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/../.." && pwd)"
build_dir="${1:-$repo_root/build}"
failures=0

step() { printf '\n== %s ==\n' "$1"; }

# --- 0. compile database -----------------------------------------------------
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  step "configure (no compile_commands.json in $build_dir)"
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
fi

# --- 1. project invariant linter --------------------------------------------
step "bmh_lint.py"
if python3 "$repo_root/tools/lint/bmh_lint.py" \
    --compile-db "$build_dir/compile_commands.json" \
    --repo-root "$repo_root"; then
  echo "bmh_lint: OK"
else
  failures=$((failures + 1))
fi

# --- 2. NOLINT policy: every suppression names a check -----------------------
# A bare `// NOLINT` (no check list) silences everything on the line, which
# defeats the per-check policy in .clang-tidy. NOLINTBEGIN/END blocks are
# banned outright: scoped suppressions belong on the offending line.
step "NOLINT policy"
if grep -rnP --include='*.cpp' --include='*.hpp' \
    -e 'NOLINT(NEXTLINE)?(?![A-Z(])|NOLINTBEGIN|NOLINTEND' \
    "$repo_root/src" "$repo_root/tests" "$repo_root/bench" 2>/dev/null; then
  echo "bare or block NOLINT found (name the check: NOLINT(<check>))"
  failures=$((failures + 1))
else
  echo "NOLINT policy: OK"
fi

# --- 3. clang-tidy (skipped when not installed) ------------------------------
step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # run-clang-tidy parallelizes over the compile db; fall back to a plain
  # loop when the wrapper is missing.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$build_dir" "^$repo_root/src/.*" \
      || failures=$((failures + 1))
  else
    tidy_rc=0
    (cd "$repo_root" && find src -name '*.cpp' -print0 \
       | xargs -0 -n 8 -P "$(nproc)" clang-tidy -quiet -p "$build_dir") \
      || tidy_rc=$?
    [[ $tidy_rc -eq 0 ]] || failures=$((failures + 1))
  fi
else
  echo "clang-tidy not installed; skipped (CI runs it)"
fi

# --- 4. thread-safety analysis (needs clang++) -------------------------------
step "-Wthread-safety"
if command -v clang++ >/dev/null 2>&1; then
  tsa_dir="$build_dir/tsa"
  cmake -B "$tsa_dir" -S "$repo_root" \
    -DCMAKE_CXX_COMPILER=clang++ -DBMH_WERROR=ON \
    -DBMH_BUILD_TESTS=OFF -DBMH_BUILD_BENCHES=OFF -DBMH_BUILD_EXAMPLES=OFF \
    >/dev/null
  cmake --build "$tsa_dir" -j "$(nproc)" || failures=$((failures + 1))
else
  echo "clang++ not installed; skipped (CI runs it)"
fi

# -----------------------------------------------------------------------------
printf '\n'
if [[ $failures -gt 0 ]]; then
  echo "static analysis: $failures step(s) FAILED"
  exit 1
fi
echo "static analysis: all steps passed"
