/// \file bench_graph_cache.cpp
/// \brief Certifies the graph cache's claims and records them in
/// BENCH_graph_cache.json:
///
///   1. allocation-freedom — with the global allocation counter enabled, a
///      warm cache lookup (the per-job graph materialization of a
///      repeated-spec batch) performs zero heap allocations;
///   2. throughput — serving repeated-spec batches from the cache beats
///      rebuilding every job's graph from its spec (the PR 2 `engine_batch`
///      baseline in BENCH_workspace.json), closing the gap toward the
///      pipeline-hot-path ceiling;
///   3. cold process, warm store — after spilling to a GraphStore and
///      dropping the in-memory tier (the restart scenario), the batch is
///      re-served from mmap-loaded graphs: jobs/s recorded next to the
///      store hit counters, and the mapped load itself performs no
///      edge-array copies (its heap growth is a small constant, asserted
///      against the graph's actual edge bytes).
///
/// "Repeated-spec" is the shape of real batch traffic: parameter sweeps,
/// seed ensembles and quality suites re-run the same pinned instances, so
/// the batch uses a spec with `seed=` pinned (one instance, many jobs).
///
/// Knobs: BMH_GC_JOBS (default 1000), BMH_GC_WORKERS (default min(8, cores)),
/// BMH_GC_N (default 1024), BMH_GC_REPEATS (default 3).

#define BMH_COUNT_ALLOCS

#include "bench_common.hpp"

#include <filesystem>
#include <fstream>

namespace {

using namespace bmh;

/// One warm run_batch pass; returns jobs/second.
double timed_batch(const std::vector<JobSpec>& jobs, const BatchOptions& options) {
  Timer timer;
  const std::vector<JobResult> results = run_batch(jobs, options);
  const double seconds = timer.seconds();
  for (const JobResult& r : results)
    if (!r.ok) {
      std::cerr << "FAIL " << r.name << ": " << r.error << '\n';
      std::exit(1);
    }
  return static_cast<double>(jobs.size()) / seconds;
}

} // namespace

int main() {
  bench::banner("Graph cache — allocation-free repeated-spec batches");

  const int jobs = static_cast<int>(env_int("BMH_GC_JOBS", 1000));
  const int workers =
      static_cast<int>(env_int("BMH_GC_WORKERS", std::min(8, num_procs())));
  const auto n = static_cast<vid_t>(env_int("BMH_GC_N", 1024));
  const int repeats = static_cast<int>(env_int("BMH_GC_REPEATS", 3));

  // The repeated-spec batch: one pinned instance re-run `jobs` times with
  // varying pipeline seeds (per-job derived), exactly a seed-ensemble shape.
  const std::string spec = "gen:er:n=" + std::to_string(n) + ",deg=8,seed=5";
  std::vector<JobSpec> spec_jobs;
  {
    JobSpec job;
    job.input = parse_graph_spec(spec);
    job.pipeline.algorithm = "two_sided";
    job.pipeline.scaling = ScalingMethod::kSinkhornKnopp;
    job.pipeline.scaling_iterations = 5;
    job.pipeline.compute_quality = false;  // serving mode
    for (int i = 0; i < jobs; ++i) {
      job.name = "j" + std::to_string(i);
      spec_jobs.push_back(job);
    }
  }

  // ---- 1. Allocation proof: the warm per-job graph path is free. ----
  GraphCache probe_cache;
  const GraphSpec graph_spec = parse_graph_spec(spec);
  (void)probe_cache.get_or_build(graph_spec, derive_job_seed(3, 0));  // cold build
  const bench::AllocStats a0 = bench::alloc_stats();
  for (int i = 0; i < jobs; ++i)
    (void)probe_cache.get_or_build(graph_spec, derive_job_seed(3, static_cast<std::size_t>(i)));
  const bench::AllocStats a1 = bench::alloc_stats();
  const auto graph_allocs = a1.allocations - a0.allocations;
  const auto graph_live_growth = a1.live_bytes - a0.live_bytes;
  std::cout << "graph path: " << graph_allocs << " allocations / " << jobs
            << " warm cache-served jobs (net heap growth " << graph_live_growth
            << " bytes)\n";

  // ---- 2. Engine batch throughput: cache on vs off. ----
  BatchOptions base;
  base.workers = workers;
  base.threads_per_job = 1;
  base.seed = 3;

  GraphCache cache;  // external so warmth persists across repeats and the
                     // counters survive for the report
  BatchOptions cache_on = base;
  cache_on.graph_cache = &cache;
  BatchOptions cache_off = base;
  cache_off.graph_cache_mb = 0;

  (void)timed_batch(spec_jobs, cache_on);   // warm arenas + cache
  (void)timed_batch(spec_jobs, cache_off);  // warm arenas for the off mode

  double on_best = 0.0, off_best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double off = timed_batch(spec_jobs, cache_off);
    const double on = timed_batch(spec_jobs, cache_on);
    off_best = std::max(off_best, off);
    on_best = std::max(on_best, on);
    std::cout << "repeat " << r << ": cache-off " << off << " jobs/s, cache-on "
              << on << " jobs/s\n";
  }

  // Allocations per warm job, whole engine batch, cache on (what remains is
  // the retained JobResult record, no longer the graph).
  const bench::AllocStats b0 = bench::alloc_stats();
  const double measured_on = timed_batch(spec_jobs, cache_on);
  const bench::AllocStats b1 = bench::alloc_stats();
  on_best = std::max(on_best, measured_on);
  const double batch_allocs_per_job =
      static_cast<double>(b1.allocations - b0.allocations) / jobs;
  std::cout << "engine batch, cache on: " << batch_allocs_per_job
            << " allocations/job warm (result records only)\n";

  const GraphCache::Stats stats = cache.stats();
  std::cout << "cache: " << stats.hits << " hits, " << stats.misses << " misses, "
            << stats.evictions << " evictions, " << stats.entries
            << " graphs resident\n";

  // ---- 3. Cold process, warm store: spill, drop the memory tier, re-serve.
  const std::string store_dir = "bench_graph_store.tmp";
  std::filesystem::remove_all(store_dir);
  GraphCache::Options store_options;
  store_options.store_dir = store_dir;
  {
    // "First process": builds once, write-through spills to the store.
    GraphCache first(store_options);
    BatchOptions spilling = base;
    spilling.graph_cache = &first;
    (void)timed_batch(spec_jobs, spilling);
  }
  // "Restarted process": a fresh cache over the warm directory — the memory
  // tier is empty, so the first job mmap-loads from disk.
  GraphCache restarted(store_options);

  // The zero-copy claim, measured the same way as the other zero-* claims:
  // one mapped load's heap growth must be a small constant, not the graph's
  // edge bytes (which all stay in the mapping).
  const std::string instance_key = canonical_graph_key(graph_spec, derive_job_seed(3, 0));
  const std::size_t edge_bytes =
      serialized_graph_bytes(*probe_cache.get_or_build(graph_spec, derive_job_seed(3, 0)),
                             instance_key);
  const bench::AllocStats s0 = bench::alloc_stats();
  const auto mapped = restarted.get_or_build(graph_spec, derive_job_seed(3, 0));
  const bench::AllocStats s1 = bench::alloc_stats();
  const auto load_allocs = s1.allocations - s0.allocations;
  const auto load_heap_growth = s1.live_bytes - s0.live_bytes;
  const bool zero_copy_load =
      !mapped->owns_storage() && load_heap_growth < 4096 &&
      load_heap_growth * 16 < edge_bytes;
  std::cout << "store load: " << load_allocs << " allocations, " << load_heap_growth
            << " heap bytes retained for a " << edge_bytes
            << "-byte graph file (zero-copy mmap view: "
            << (zero_copy_load ? "yes" : "NO") << ")\n";

  BatchOptions warm_store = base;
  warm_store.graph_cache = &restarted;
  double warm_best = 0.0;
  (void)timed_batch(spec_jobs, warm_store);  // warm arenas
  for (int r = 0; r < repeats; ++r)
    warm_best = std::max(warm_best, timed_batch(spec_jobs, warm_store));
  const GraphCache::Stats store_stats = restarted.stats();
  std::cout << "cold-process/warm-store: " << warm_best
            << " jobs/s; store: " << store_stats.store_hits << " hits, "
            << store_stats.store_spills << " spills, " << store_stats.store_errors
            << " errors\n";
  std::filesystem::remove_all(store_dir);

  const double speedup = on_best / off_best;
  // PR 2's engine_batch measured 1364 jobs/s on the 1-core CI container with
  // this config (BENCH_workspace.json); the acceptance bar for this PR.
  const double pr2_baseline = 1364.0;
  std::cout << "\ncache-on " << on_best << " jobs/s vs cache-off " << off_best
            << " jobs/s (" << speedup << "x); PR 2 baseline " << pr2_baseline
            << " jobs/s\n";

  std::ofstream json("BENCH_graph_cache.json");
  json << "{\n"
       << "  \"bench\": \"graph_cache\",\n"
       << "  \"config\": {\"spec\": \"" << spec
       << "\", \"algorithm\": \"two_sided\", \"scaling_iterations\": 5, "
          "\"compute_quality\": false, \"jobs\": "
       << jobs << ", \"workers\": " << workers << ", \"threads_per_job\": 1},\n"
       << "  \"machine_cores\": " << num_procs() << ",\n"
       << "  \"graph_hot_path\": {\"graph_allocations_per_" << jobs
       << "_warm_jobs\": " << graph_allocs
       << ", \"net_heap_growth_bytes\": " << graph_live_growth << "},\n"
       << "  \"engine_batch\": {\"cache_on_jobs_per_second\": "
       << json_number(on_best)
       << ", \"cache_off_jobs_per_second\": " << json_number(off_best)
       << ", \"speedup\": " << json_number(speedup)
       << ", \"allocations_per_job_warm_cache_on\": "
       << json_number(batch_allocs_per_job)
       << ", \"note\": \"cache-off rebuilds each job's graph from its spec (the "
          "pre-cache engine behaviour); remaining cache-on allocations are the "
          "retained JobResult record\"},\n"
       << "  \"cache\": {\"hits\": " << stats.hits << ", \"misses\": " << stats.misses
       << ", \"evictions\": " << stats.evictions << ", \"entries\": " << stats.entries
       << ", \"bytes\": " << stats.bytes << "},\n"
       << "  \"cold_process_warm_store\": {\"jobs_per_second\": "
       << json_number(warm_best) << ", \"store_hits\": " << store_stats.store_hits
       << ", \"store_spills\": " << store_stats.store_spills
       << ", \"store_errors\": " << store_stats.store_errors
       << ", \"mapped_load_allocations\": " << load_allocs
       << ", \"mapped_load_heap_growth_bytes\": " << load_heap_growth
       << ", \"graph_file_bytes\": " << edge_bytes
       << ", \"note\": \"a fresh cache over a warm GraphStore directory (the "
          "process-restart scenario): the first job mmap-loads the serialized "
          "CSR+CSC instead of rebuilding, and the load's retained heap is a "
          "small constant — the edge arrays stay in the mapping\"},\n"
       << "  \"zero_graph_alloc_claim_holds\": " << (graph_allocs == 0 ? "true" : "false")
       << ",\n"
       << "  \"mapped_load_zero_copy_claim_holds\": " << (zero_copy_load ? "true" : "false")
       << ",\n"
       << "  \"pr2_engine_batch_baseline_jobs_per_second\": " << json_number(pr2_baseline)
       << ",\n"
       << "  \"beats_pr2_baseline\": " << (on_best > pr2_baseline ? "true" : "false")
       << ",\n"
       << "  \"hardware_note\": \"the PR 2 baseline was measured on the 1-core CI "
          "container; compare like with like (same machine, same knobs). The "
          "zero-graph-allocations property is hardware-independent; the cache's "
          "contention advantage (sharded locks vs per-job builder malloc) only "
          "manifests with multiple worker cores\"\n"
       << "}\n";
  std::cout << "wrote BENCH_graph_cache.json\n";
  return 0;
}
