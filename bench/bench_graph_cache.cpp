/// \file bench_graph_cache.cpp
/// \brief Certifies the graph cache's two claims and records them in
/// BENCH_graph_cache.json:
///
///   1. allocation-freedom — with the global allocation counter enabled, a
///      warm cache lookup (the per-job graph materialization of a
///      repeated-spec batch) performs zero heap allocations;
///   2. throughput — serving repeated-spec batches from the cache beats
///      rebuilding every job's graph from its spec (the PR 2 `engine_batch`
///      baseline in BENCH_workspace.json), closing the gap toward the
///      pipeline-hot-path ceiling.
///
/// "Repeated-spec" is the shape of real batch traffic: parameter sweeps,
/// seed ensembles and quality suites re-run the same pinned instances, so
/// the batch uses a spec with `seed=` pinned (one instance, many jobs).
///
/// Knobs: BMH_GC_JOBS (default 1000), BMH_GC_WORKERS (default min(8, cores)),
/// BMH_GC_N (default 1024), BMH_GC_REPEATS (default 3).

#define BMH_COUNT_ALLOCS

#include "bench_common.hpp"

#include <fstream>

namespace {

using namespace bmh;

/// One warm run_batch pass; returns jobs/second.
double timed_batch(const std::vector<JobSpec>& jobs, const BatchOptions& options) {
  Timer timer;
  const std::vector<JobResult> results = run_batch(jobs, options);
  const double seconds = timer.seconds();
  for (const JobResult& r : results)
    if (!r.ok) {
      std::cerr << "FAIL " << r.name << ": " << r.error << '\n';
      std::exit(1);
    }
  return static_cast<double>(jobs.size()) / seconds;
}

} // namespace

int main() {
  bench::banner("Graph cache — allocation-free repeated-spec batches");

  const int jobs = static_cast<int>(env_int("BMH_GC_JOBS", 1000));
  const int workers =
      static_cast<int>(env_int("BMH_GC_WORKERS", std::min(8, num_procs())));
  const auto n = static_cast<vid_t>(env_int("BMH_GC_N", 1024));
  const int repeats = static_cast<int>(env_int("BMH_GC_REPEATS", 3));

  // The repeated-spec batch: one pinned instance re-run `jobs` times with
  // varying pipeline seeds (per-job derived), exactly a seed-ensemble shape.
  const std::string spec = "gen:er:n=" + std::to_string(n) + ",deg=8,seed=5";
  std::vector<JobSpec> spec_jobs;
  {
    JobSpec job;
    job.input = parse_graph_spec(spec);
    job.pipeline.algorithm = "two_sided";
    job.pipeline.scaling = ScalingMethod::kSinkhornKnopp;
    job.pipeline.scaling_iterations = 5;
    job.pipeline.compute_quality = false;  // serving mode
    for (int i = 0; i < jobs; ++i) {
      job.name = "j" + std::to_string(i);
      spec_jobs.push_back(job);
    }
  }

  // ---- 1. Allocation proof: the warm per-job graph path is free. ----
  GraphCache probe_cache;
  const GraphSpec graph_spec = parse_graph_spec(spec);
  (void)probe_cache.get_or_build(graph_spec, derive_job_seed(3, 0));  // cold build
  const bench::AllocStats a0 = bench::alloc_stats();
  for (int i = 0; i < jobs; ++i)
    (void)probe_cache.get_or_build(graph_spec, derive_job_seed(3, static_cast<std::size_t>(i)));
  const bench::AllocStats a1 = bench::alloc_stats();
  const auto graph_allocs = a1.allocations - a0.allocations;
  const auto graph_live_growth = a1.live_bytes - a0.live_bytes;
  std::cout << "graph path: " << graph_allocs << " allocations / " << jobs
            << " warm cache-served jobs (net heap growth " << graph_live_growth
            << " bytes)\n";

  // ---- 2. Engine batch throughput: cache on vs off. ----
  BatchOptions base;
  base.workers = workers;
  base.threads_per_job = 1;
  base.seed = 3;

  GraphCache cache;  // external so warmth persists across repeats and the
                     // counters survive for the report
  BatchOptions cache_on = base;
  cache_on.graph_cache = &cache;
  BatchOptions cache_off = base;
  cache_off.graph_cache_mb = 0;

  (void)timed_batch(spec_jobs, cache_on);   // warm arenas + cache
  (void)timed_batch(spec_jobs, cache_off);  // warm arenas for the off mode

  double on_best = 0.0, off_best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double off = timed_batch(spec_jobs, cache_off);
    const double on = timed_batch(spec_jobs, cache_on);
    off_best = std::max(off_best, off);
    on_best = std::max(on_best, on);
    std::cout << "repeat " << r << ": cache-off " << off << " jobs/s, cache-on "
              << on << " jobs/s\n";
  }

  // Allocations per warm job, whole engine batch, cache on (what remains is
  // the retained JobResult record, no longer the graph).
  const bench::AllocStats b0 = bench::alloc_stats();
  const double measured_on = timed_batch(spec_jobs, cache_on);
  const bench::AllocStats b1 = bench::alloc_stats();
  on_best = std::max(on_best, measured_on);
  const double batch_allocs_per_job =
      static_cast<double>(b1.allocations - b0.allocations) / jobs;
  std::cout << "engine batch, cache on: " << batch_allocs_per_job
            << " allocations/job warm (result records only)\n";

  const GraphCache::Stats stats = cache.stats();
  std::cout << "cache: " << stats.hits << " hits, " << stats.misses << " misses, "
            << stats.evictions << " evictions, " << stats.entries
            << " graphs resident\n";

  const double speedup = on_best / off_best;
  // PR 2's engine_batch measured 1364 jobs/s on the 1-core CI container with
  // this config (BENCH_workspace.json); the acceptance bar for this PR.
  const double pr2_baseline = 1364.0;
  std::cout << "\ncache-on " << on_best << " jobs/s vs cache-off " << off_best
            << " jobs/s (" << speedup << "x); PR 2 baseline " << pr2_baseline
            << " jobs/s\n";

  std::ofstream json("BENCH_graph_cache.json");
  json << "{\n"
       << "  \"bench\": \"graph_cache\",\n"
       << "  \"config\": {\"spec\": \"" << spec
       << "\", \"algorithm\": \"two_sided\", \"scaling_iterations\": 5, "
          "\"compute_quality\": false, \"jobs\": "
       << jobs << ", \"workers\": " << workers << ", \"threads_per_job\": 1},\n"
       << "  \"machine_cores\": " << num_procs() << ",\n"
       << "  \"graph_hot_path\": {\"graph_allocations_per_" << jobs
       << "_warm_jobs\": " << graph_allocs
       << ", \"net_heap_growth_bytes\": " << graph_live_growth << "},\n"
       << "  \"engine_batch\": {\"cache_on_jobs_per_second\": "
       << json_number(on_best)
       << ", \"cache_off_jobs_per_second\": " << json_number(off_best)
       << ", \"speedup\": " << json_number(speedup)
       << ", \"allocations_per_job_warm_cache_on\": "
       << json_number(batch_allocs_per_job)
       << ", \"note\": \"cache-off rebuilds each job's graph from its spec (the "
          "pre-cache engine behaviour); remaining cache-on allocations are the "
          "retained JobResult record\"},\n"
       << "  \"cache\": {\"hits\": " << stats.hits << ", \"misses\": " << stats.misses
       << ", \"evictions\": " << stats.evictions << ", \"entries\": " << stats.entries
       << ", \"bytes\": " << stats.bytes << "},\n"
       << "  \"zero_graph_alloc_claim_holds\": " << (graph_allocs == 0 ? "true" : "false")
       << ",\n"
       << "  \"pr2_engine_batch_baseline_jobs_per_second\": " << json_number(pr2_baseline)
       << ",\n"
       << "  \"beats_pr2_baseline\": " << (on_best > pr2_baseline ? "true" : "false")
       << ",\n"
       << "  \"hardware_note\": \"the PR 2 baseline was measured on the 1-core CI "
          "container; compare like with like (same machine, same knobs). The "
          "zero-graph-allocations property is hardware-independent; the cache's "
          "contention advantage (sharded locks vs per-job builder malloc) only "
          "manifests with multiple worker cores\"\n"
       << "}\n";
  std::cout << "wrote BENCH_graph_cache.json\n";
  return 0;
}
