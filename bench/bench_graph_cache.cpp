/// \file bench_graph_cache.cpp
/// \brief Certifies the graph cache's claims and records them in
/// BENCH_graph_cache.json:
///
///   1. allocation-freedom — with the global allocation counter enabled, a
///      warm cache lookup (the per-job graph materialization of a
///      repeated-spec batch) performs zero heap allocations;
///   2. throughput — serving repeated-spec batches from the cache beats
///      rebuilding every job's graph from its spec (the PR 2 `engine_batch`
///      baseline in BENCH_workspace.json), closing the gap toward the
///      pipeline-hot-path ceiling;
///   3. warm engine, second batch — a long-lived bmh::Engine re-running a
///      batch it has seen serves every graph from its resident cache:
///      zero cold builds, recorded with the second batch's jobs/s;
///   4. cold process, warm store — after spilling to a GraphStore and
///      dropping the in-memory tier (the restart scenario), the batch is
///      re-served from mmap-loaded graphs: jobs/s recorded next to the
///      store hit counters, and the mapped load itself performs no
///      edge-array copies (its heap growth is a small constant, asserted
///      against the graph's actual edge bytes).
///
/// "Repeated-spec" is the shape of real batch traffic: parameter sweeps,
/// seed ensembles and quality suites re-run the same pinned instances, so
/// the batch uses a spec with `seed=` pinned (one instance, many jobs).
///
/// Knobs: BMH_GC_JOBS (default 1000), BMH_GC_WORKERS (default min(8, cores)),
/// BMH_GC_N (default 1024), BMH_GC_REPEATS (default 3).

#define BMH_COUNT_ALLOCS

#include "bench_common.hpp"

#include <filesystem>
#include <fstream>

namespace {

using namespace bmh;

/// One batch pass on a (typically warm) engine; returns jobs/second.
double timed_batch(const std::vector<JobSpec>& jobs, Engine& engine) {
  Timer timer;
  const std::vector<JobResult> results = engine.run_collect(jobs);
  const double seconds = timer.seconds();
  for (const JobResult& r : results)
    if (!r.ok) {
      std::cerr << "FAIL " << r.name << ": " << r.error << '\n';
      std::exit(1);
    }
  return static_cast<double>(jobs.size()) / seconds;
}

} // namespace

int main() {
  bench::banner("Graph cache — allocation-free repeated-spec batches");

  const int jobs = static_cast<int>(env_int("BMH_GC_JOBS", 1000));
  const int workers =
      static_cast<int>(env_int("BMH_GC_WORKERS", std::min(8, num_procs())));
  const auto n = static_cast<vid_t>(env_int("BMH_GC_N", 1024));
  const int repeats = static_cast<int>(env_int("BMH_GC_REPEATS", 3));

  // The repeated-spec batch: one pinned instance re-run `jobs` times with
  // varying pipeline seeds (per-job derived), exactly a seed-ensemble shape.
  const std::string spec = "gen:er:n=" + std::to_string(n) + ",deg=8,seed=5";
  std::vector<JobSpec> spec_jobs;
  {
    JobSpec job;
    job.input = parse_graph_spec(spec);
    job.pipeline.algorithm = "two_sided";
    job.pipeline.scaling = ScalingMethod::kSinkhornKnopp;
    job.pipeline.scaling_iterations = 5;
    job.pipeline.compute_quality = false;  // serving mode
    for (int i = 0; i < jobs; ++i) {
      job.name = "j" + std::to_string(i);
      spec_jobs.push_back(job);
    }
  }

  // ---- 1. Allocation proof: the warm per-job graph path is free. ----
  GraphCache probe_cache;
  const GraphSpec graph_spec = parse_graph_spec(spec);
  (void)probe_cache.get_or_build(graph_spec, derive_job_seed(3, 0));  // cold build
  const bench::AllocStats a0 = bench::alloc_stats();
  for (int i = 0; i < jobs; ++i)
    (void)probe_cache.get_or_build(graph_spec, derive_job_seed(3, static_cast<std::size_t>(i)));
  const bench::AllocStats a1 = bench::alloc_stats();
  const auto graph_allocs = a1.allocations - a0.allocations;
  const auto graph_live_growth = a1.live_bytes - a0.live_bytes;
  std::cout << "graph path: " << graph_allocs << " allocations / " << jobs
            << " warm cache-served jobs (net heap growth " << graph_live_growth
            << " bytes)\n";

  // ---- 2. Engine batch throughput: cache on vs off. ----
  // Long-lived engines, one per mode: pool, arenas and cache stay warm
  // across the repeats — the serving shape the façade exists for.
  EngineConfig base;
  base.threads = workers;
  base.threads_per_job = 1;
  base.seed = 3;

  Engine engine_on(base);
  EngineConfig off_config = base;
  off_config.graph_cache_mb = 0;
  Engine engine_off(off_config);

  (void)timed_batch(spec_jobs, engine_on);   // warm arenas + cache
  (void)timed_batch(spec_jobs, engine_off);  // warm arenas for the off mode

  double on_best = 0.0, off_best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double off = timed_batch(spec_jobs, engine_off);
    const double on = timed_batch(spec_jobs, engine_on);
    off_best = std::max(off_best, off);
    on_best = std::max(on_best, on);
    std::cout << "repeat " << r << ": cache-off " << off << " jobs/s, cache-on "
              << on << " jobs/s\n";
  }

  // Allocations per warm job, whole engine batch, cache on (what remains is
  // the retained JobResult record, no longer the graph).
  const bench::AllocStats b0 = bench::alloc_stats();
  const double measured_on = timed_batch(spec_jobs, engine_on);
  const bench::AllocStats b1 = bench::alloc_stats();
  on_best = std::max(on_best, measured_on);
  const double batch_allocs_per_job =
      static_cast<double>(b1.allocations - b0.allocations) / jobs;
  std::cout << "engine batch, cache on: " << batch_allocs_per_job
            << " allocations/job warm (result records only)\n";

  const GraphCache::Stats stats = engine_on.stats().cache;
  std::cout << "cache: " << stats.hits << " hits, " << stats.misses << " misses, "
            << stats.evictions << " evictions, " << stats.entries
            << " graphs resident\n";

  // Per-job latency distribution of the warm cache-on engine, merged across
  // its workers (every batch it served this session).
  const std::string latency = bench::latency_json(engine_on);
  if constexpr (obs::kEnabled) {
    const obs::HistogramData job_hist =
        engine_on.metrics().histogram_merged("worker", "job");
    std::cout << "cache-on job latency: p50 "
              << static_cast<double>(job_hist.p50_ns()) / 1e6 << " ms, p99 "
              << static_cast<double>(job_hist.p99_ns()) / 1e6 << " ms over "
              << job_hist.count << " jobs\n";
  }

  // ---- 3. Warm engine, second batch: the acceptance scenario — a fresh
  // engine pays the cold builds once, then re-runs the batch purely from
  // its resident cache.
  double warm_engine_best = 0.0;
  std::uint64_t warm_engine_cold_builds = 0;
  std::uint64_t first_batch_cold_builds = 0;
  {
    Engine warm_engine(base);
    (void)timed_batch(spec_jobs, warm_engine);  // first batch: cold builds
    first_batch_cold_builds = warm_engine.stats().cold_builds;
    for (int r = 0; r < repeats; ++r)
      warm_engine_best = std::max(warm_engine_best, timed_batch(spec_jobs, warm_engine));
    warm_engine_cold_builds =
        warm_engine.stats().cold_builds - first_batch_cold_builds;
  }
  std::cout << "warm engine second batch: " << warm_engine_best
            << " jobs/s, " << warm_engine_cold_builds
            << " cold graph builds (first batch paid "
            << first_batch_cold_builds << ")\n";

  // ---- 4. Cold process, warm store: spill, drop the memory tier, re-serve.
  const std::string store_dir = "bench_graph_store.tmp";
  std::filesystem::remove_all(store_dir);
  GraphCache::Options store_options;
  store_options.store_dir = store_dir;
  {
    // "First process": builds once, write-through spills to the store.
    EngineConfig spilling = base;
    spilling.graph_store_dir = store_dir;
    Engine first(spilling);
    (void)timed_batch(spec_jobs, first);
  }
  // "Restarted process": a fresh cache over the warm directory — the memory
  // tier is empty, so the first job mmap-loads from disk.
  GraphCache restarted(store_options);

  // The zero-copy claim, measured the same way as the other zero-* claims:
  // one mapped load's heap growth must be a small constant, not the graph's
  // edge bytes (which all stay in the mapping).
  const std::string instance_key = canonical_graph_key(graph_spec, derive_job_seed(3, 0));
  const std::size_t edge_bytes =
      serialized_graph_bytes(*probe_cache.get_or_build(graph_spec, derive_job_seed(3, 0)),
                             instance_key);
  const bench::AllocStats s0 = bench::alloc_stats();
  const auto mapped = restarted.get_or_build(graph_spec, derive_job_seed(3, 0));
  const bench::AllocStats s1 = bench::alloc_stats();
  const auto load_allocs = s1.allocations - s0.allocations;
  const auto load_heap_growth = s1.live_bytes - s0.live_bytes;
  const bool zero_copy_load =
      !mapped->owns_storage() && load_heap_growth < 4096 &&
      load_heap_growth * 16 < edge_bytes;
  std::cout << "store load: " << load_allocs << " allocations, " << load_heap_growth
            << " heap bytes retained for a " << edge_bytes
            << "-byte graph file (zero-copy mmap view: "
            << (zero_copy_load ? "yes" : "NO") << ")\n";

  EngineConfig warm_store = base;
  warm_store.graph_cache = &restarted;
  Engine warm_store_engine(warm_store);
  double warm_best = 0.0;
  (void)timed_batch(spec_jobs, warm_store_engine);  // warm arenas
  for (int r = 0; r < repeats; ++r)
    warm_best = std::max(warm_best, timed_batch(spec_jobs, warm_store_engine));
  const GraphCache::Stats store_stats = restarted.stats();
  std::cout << "cold-process/warm-store: " << warm_best
            << " jobs/s; store: " << store_stats.store_hits << " hits, "
            << store_stats.store_spills << " spills, " << store_stats.store_errors
            << " errors\n";
  std::filesystem::remove_all(store_dir);

  const double speedup = on_best / off_best;
  // PR 2's engine_batch measured 1364 jobs/s on the 1-core CI container with
  // this config (BENCH_workspace.json); the acceptance bar for this PR.
  const double pr2_baseline = 1364.0;
  std::cout << "\ncache-on " << on_best << " jobs/s vs cache-off " << off_best
            << " jobs/s (" << speedup << "x); PR 2 baseline " << pr2_baseline
            << " jobs/s\n";

  std::ofstream json("BENCH_graph_cache.json");
  json << "{\n"
       << "  \"bench\": \"graph_cache\",\n"
       << "  \"config\": {\"spec\": \"" << spec
       << "\", \"algorithm\": \"two_sided\", \"scaling_iterations\": 5, "
          "\"compute_quality\": false, \"jobs\": "
       << jobs << ", \"workers\": " << workers << ", \"threads_per_job\": 1},\n"
       << "  \"machine_cores\": " << num_procs() << ",\n"
       << "  \"graph_hot_path\": {\"graph_allocations_per_" << jobs
       << "_warm_jobs\": " << graph_allocs
       << ", \"net_heap_growth_bytes\": " << graph_live_growth << "},\n"
       << "  \"engine_batch\": {\"cache_on_jobs_per_second\": "
       << json_number(on_best)
       << ", \"cache_off_jobs_per_second\": " << json_number(off_best)
       << ", \"speedup\": " << json_number(speedup)
       << ", \"allocations_per_job_warm_cache_on\": "
       << json_number(batch_allocs_per_job)
       << ", \"note\": \"cache-off rebuilds each job's graph from its spec (the "
          "pre-cache engine behaviour); remaining cache-on allocations are the "
          "retained JobResult record\"},\n"
       << "  \"cache\": {\"hits\": " << stats.hits << ", \"misses\": " << stats.misses
       << ", \"evictions\": " << stats.evictions << ", \"entries\": " << stats.entries
       << ", \"bytes\": " << stats.bytes << "},\n"
       << "  \"warm_engine_second_batch\": {\"jobs_per_second\": "
       << json_number(warm_engine_best)
       << ", \"cold_graph_builds\": " << warm_engine_cold_builds
       << ", \"first_batch_cold_builds\": " << first_batch_cold_builds
       << ", \"note\": \"one long-lived bmh::Engine re-running the batch it "
          "just served: pool, arenas and cache stay warm, so the second batch "
          "performs zero cold graph builds\"},\n"
       << "  \"warm_engine_zero_cold_builds_claim_holds\": "
       << (warm_engine_cold_builds == 0 ? "true" : "false") << ",\n"
       << "  \"cold_process_warm_store\": {\"jobs_per_second\": "
       << json_number(warm_best) << ", \"store_hits\": " << store_stats.store_hits
       << ", \"store_spills\": " << store_stats.store_spills
       << ", \"store_errors\": " << store_stats.store_errors
       << ", \"mapped_load_allocations\": " << load_allocs
       << ", \"mapped_load_heap_growth_bytes\": " << load_heap_growth
       << ", \"graph_file_bytes\": " << edge_bytes
       << ", \"note\": \"a fresh cache over a warm GraphStore directory (the "
          "process-restart scenario): the first job mmap-loads the serialized "
          "CSR+CSC instead of rebuilding, and the load's retained heap is a "
          "small constant — the edge arrays stay in the mapping\"},\n"
       << "  \"zero_graph_alloc_claim_holds\": " << (graph_allocs == 0 ? "true" : "false")
       << ",\n"
       << "  \"mapped_load_zero_copy_claim_holds\": " << (zero_copy_load ? "true" : "false")
       << ",\n"
       << "  \"latency\": " << latency << ",\n"
       << "  \"pr2_engine_batch_baseline_jobs_per_second\": " << json_number(pr2_baseline)
       << ",\n"
       << "  \"beats_pr2_baseline\": " << (on_best > pr2_baseline ? "true" : "false")
       << ",\n"
       << "  \"hardware_note\": \"the PR 2 baseline was measured on the 1-core CI "
          "container; compare like with like (same machine, same knobs). The "
          "zero-graph-allocations property is hardware-independent; the cache's "
          "contention advantage (sharded locks vs per-job builder malloc) only "
          "manifests with multiple worker cores. Latency percentiles are "
          "log-bucket estimates from this machine — on the 1-core container the "
          "workers time-share the core, so p99 includes scheduler preemption; "
          "absolute values are not comparable across machines\"\n"
       << "}\n";
  std::cout << "wrote BENCH_graph_cache.json\n";
  return 0;
}
