/// \file bench_extension_undirected.cpp
/// \brief Extension study (paper §5): the one-out heuristic on general
/// undirected graphs — quality against planted optima, and the odd-cycle
/// deficit that distinguishes general graphs from the bipartite case.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace bmh;

UndirectedGraph planted(vid_t n, vid_t extra, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<vid_t, vid_t>> edges;
  for (vid_t u = 0; u + 1 < n; u += 2) edges.emplace_back(u, u + 1);
  for (vid_t u = 0; u < n; ++u)
    for (vid_t t = 0; t < extra; ++t) {
      auto v = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (v == u) v = (v + 1) % n;
      edges.emplace_back(u, v);
    }
  return UndirectedGraph::from_edges(n, edges);
}

} // namespace

int main() {
  bench::banner("Extension (§5) — one-out matching on general undirected graphs");

  const auto n = static_cast<vid_t>(2 * (scaled(100000, 2048) / 2));
  const int runs = bench::repeats(5);

  Table table({"extra/vertex", "greedy", "one-out it=0", "one-out it=1", "one-out it=5"});
  for (const vid_t extra : {1, 2, 4, 8}) {
    const UndirectedGraph g = planted(n, extra, 7);
    const double opt = static_cast<double>(n) / 2.0;

    vid_t greedy_worst = n;
    for (int r = 0; r < runs; ++r)
      greedy_worst = std::min(
          greedy_worst, undirected_greedy(g, static_cast<std::uint64_t>(r)).cardinality());
    table.row()
        .add(std::int64_t{extra})
        .add(static_cast<double>(greedy_worst) / opt, 3);

    for (const int iters : {0, 1, 5}) {
      vid_t worst = n;
      for (int r = 0; r < runs; ++r)
        worst = std::min(worst, undirected_one_out_match(g, iters, static_cast<std::uint64_t>(r))
                                    .cardinality());
      table.add(static_cast<double>(worst) / opt, 3);
    }
  }
  table.print(std::cout,
              "planted perfect matching, n=" + std::to_string(n) + ", min quality of " +
                  std::to_string(runs) + " runs (quality = |M| / (n/2))");

  // Odd-cycle deficit: choice subgraphs of general graphs contain odd
  // cycles that each cost one unmatched vertex relative to the bipartite
  // analysis; measure how small that deficit is.
  const UndirectedGraph g = planted(n, 4, 11);
  const SymmetricScaling s = scale_symmetric(g, 5);
  double avg_cycle_loss = 0.0;
  for (int r = 0; r < runs; ++r) {
    const std::vector<vid_t> choice = sample_choices(g, s.d, static_cast<std::uint64_t>(r));
    const UndirectedMatching m = one_out_karp_sipser(g.num_vertices(), choice);
    // Count vertices in odd cycles: unmatched vertices whose choice is also
    // unmatched cannot exist (phase 2 matches them), so the loss equals the
    // number of odd cycles, which equals (unmatched - tree-unmatched)...
    // simplest observable: report unmatched fraction.
    avg_cycle_loss +=
        1.0 - 2.0 * static_cast<double>(m.cardinality()) / static_cast<double>(n);
  }
  std::cout << "\nmean unmatched fraction of the one-out subgraph matching: "
            << format_double(avg_cycle_loss / runs, 4)
            << " (odd cycles cost one vertex each; the bipartite analysis has\n"
               " even cycles only — the gap to 2(1-rho) stays small)\n";
  return 0;
}
