/// \file bench_fig3.cpp
/// \brief Reproduces paper Figure 3: speedups of ScaleSK (3a) and
/// OneSidedMatch (3b) with a single scaling iteration, thread sweep over
/// the 12-instance suite.
///
/// Paper reference: with 16 threads ScaleSK reaches ~8-10.6x (best on
/// hugebubbles) and OneSidedMatch ~10-11.4x (best on europe_osm); the
/// worst speedups are on torso1/audikw_1, whose per-row nonzero variance
/// causes load imbalance.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Figure 3 — speedups of ScaleSK (a) and OneSidedMatch (b)");

  const double scale = bench::suite_scale();
  const int runs = bench::repeats(5);
  const std::vector<int> threads = bench::thread_sweep();

  std::vector<std::string> header = {"name"};
  for (const int t : threads) header.push_back("t=" + std::to_string(t));
  Table scale_table(header), onesided_table(header);

  for (const auto& name : suite_names()) {
    const SuiteInstance inst = make_suite_instance(name, scale, 42);
    const BipartiteGraph& g = inst.graph;

    scale_table.row().add(name);
    onesided_table.row().add(name);
    double t_scale_1 = 0.0, t_one_1 = 0.0;
    for (const int t : threads) {
      ThreadCountGuard guard(t);
      const double t_scale = bench::time_geomean(
          [&](int) { (void)scale_sinkhorn_knopp(g, {1, 0.0}); }, runs, 1);
      // OneSidedMatch timing includes ScaleSK, as in the paper.
      const double t_one = bench::time_geomean(
          [&](int r) { (void)one_sided_match(g, 1, static_cast<std::uint64_t>(r)); },
          runs, 1);
      if (t == 1) {
        t_scale_1 = t_scale;
        t_one_1 = t_one;
      }
      scale_table.add(t_scale_1 / t_scale, 2);
      onesided_table.add(t_one_1 / t_one, 2);
    }
  }

  scale_table.print(std::cout, "(3a) ScaleSK speedup, 1 iteration");
  std::cout << '\n';
  onesided_table.print(std::cout, "(3b) OneSidedMatch speedup (includes ScaleSK)");
  std::cout << "\npaper shape: near-linear scaling to 8 threads, ~8-11x at 16;\n"
               "worst speedups on the high-degree-variance instances\n"
               "(torso1_like, audikw_1_like).\n";
  return 0;
}
