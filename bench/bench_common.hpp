#pragma once
/// \file bench_common.hpp
/// \brief Shared plumbing for the table/figure reproduction harnesses,
/// including the optional global-allocator instrumentation that certifies
/// the Workspace hot paths are allocation-free.

#include <atomic>
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bmh.hpp"

namespace bmh::bench {

/// Number of repetitions per data point (paper: 10 for quality minima,
/// 20-with-5-warmups for timings). Override with BMH_REPEATS.
inline int repeats(int fallback) {
  return static_cast<int>(env_int("BMH_REPEATS", fallback));
}

/// Thread counts {1, 2, 4, ..., cap}; the paper sweeps 1..16 on a 16-core
/// box, we sweep powers of two up to BMH_MAX_THREADS (default: hardware).
inline std::vector<int> thread_sweep() {
  const int cap = static_cast<int>(env_int("BMH_MAX_THREADS", num_procs()));
  std::vector<int> sweep;
  for (int t = 1; t <= cap; t *= 2) sweep.push_back(t);
  if (sweep.back() != cap && cap > 1) sweep.push_back(cap);
  return sweep;
}

/// The suite scale for Table 3 / Figs 3-5. Suite base sizes are ~1/10 of
/// the paper's instances; BMH_SCALE further multiplies them.
inline double suite_scale() { return env_double("BMH_SCALE", 1.0); }

/// Median wall-clock seconds of `runs` executions of `fn` after `warmup`
/// extra executions (timings are geometric-mean aggregated as in §4.2).
template <typename Fn>
double time_geomean(Fn&& fn, int runs, int warmup) {
  RunStats stats;
  for (int r = 0; r < warmup + runs; ++r) {
    Timer t;
    fn(r);
    stats.add(t.seconds());
  }
  return stats.geomean(static_cast<std::size_t>(warmup));
}

/// JSON object (a `"latency": {...}` value for a BENCH_*.json record) with
/// the p50/p99 of the engine's per-worker latency histograms, merged across
/// workers — per-job wall time, queue wait, and graph acquisition. Percentiles
/// come from the obs layer's log-scale buckets (~12.5% worst-case width), so
/// they are estimates, not exact order statistics. `"enabled": false` (all
/// histograms empty) when the build compiles the latency layer out
/// (-DBMH_OBS_DISABLED=ON).
inline std::string latency_json(const Engine& engine) {
  const obs::Snapshot snap = engine.metrics();
  std::string out = "{\"enabled\": ";
  out += obs::kEnabled ? "true" : "false";
  for (const char* metric : {"job", "queue_wait", "graph_acquire"}) {
    const obs::HistogramData h = snap.histogram_merged("worker", metric);
    out += ", \"";
    out += metric;
    out += "\": {\"samples\": ";
    out += std::to_string(h.count);
    out += ", \"p50_ms\": ";
    out += json_number(static_cast<double>(h.p50_ns()) / 1e6);
    out += ", \"p99_ms\": ";
    out += json_number(static_cast<double>(h.p99_ns()) / 1e6);
    out += '}';
  }
  out += '}';
  return out;
}

/// Banner shared by all benches.
inline void banner(const std::string& what) {
  std::cout << "==============================================================\n"
            << what << "\n"
            << "machine: " << num_procs() << " cores; " << thread_sweep_description()
            << "; BMH_SCALE=" << bench_scale() << "\n"
            << "==============================================================\n\n";
}

} // namespace bmh::bench

// ------------------------------------------------------------------------
// Global allocation counter (the proof behind "zero allocations per job").
//
// Define BMH_COUNT_ALLOCS *before* including this header — in exactly one
// translation unit per binary — to replace the global operator new/delete
// with counting versions. Every allocation is over-allocated by a small
// header recording its size, so `alloc_stats().live_bytes` tracks the net
// outstanding heap exactly, across all threads, for every allocation in the
// program (the library, gtest, the standard library). When the macro is not
// defined the counters exist but stay at zero and
// `kAllocCountingEnabled == false`.
// ------------------------------------------------------------------------

namespace bmh::bench {

struct AllocStats {
  std::uint64_t allocations = 0;  ///< operator-new calls since process start
  std::uint64_t live_bytes = 0;   ///< bytes allocated and not yet freed
};

// ThreadSanitizer interposes the global allocator to build the
// happens-before edges it needs for memory reuse; a malloc-based operator
// new/delete replacement bypasses that interposition, so TSan misreads the
// size-header handoff between allocating and freeing threads as a race
// even though the pointer transfer itself is fully synchronized. Under
// TSan the replacement compiles out: alloc-count assertions go vacuous
// (before == after == 0) while every other assertion still runs.
#if defined(__SANITIZE_THREAD__)
#define BMH_BENCH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BMH_BENCH_TSAN 1
#endif
#endif

#if defined(BMH_COUNT_ALLOCS) && !defined(BMH_BENCH_TSAN)
inline constexpr bool kAllocCountingEnabled = true;
#else
inline constexpr bool kAllocCountingEnabled = false;
#endif

namespace alloc_detail {
inline std::atomic<std::uint64_t> g_allocations{0};
inline std::atomic<std::uint64_t> g_live_bytes{0};
} // namespace alloc_detail

/// Snapshot of the global counters (zeros when counting is disabled).
inline AllocStats alloc_stats() noexcept {
  return {alloc_detail::g_allocations.load(std::memory_order_relaxed),
          alloc_detail::g_live_bytes.load(std::memory_order_relaxed)};
}

#if defined(BMH_COUNT_ALLOCS) && !defined(BMH_BENCH_TSAN)
namespace alloc_detail {

struct Header {
  void* raw;
  std::size_t bytes;
};

inline void* counted_alloc(std::size_t n, std::size_t align) noexcept {
  const std::size_t head = sizeof(Header);
  const std::size_t pad = align > alignof(std::max_align_t)
                              ? align
                              : alignof(std::max_align_t);
  auto* raw = static_cast<unsigned char*>(std::malloc(n + head + 2 * pad));
  if (raw == nullptr) return nullptr;
  unsigned char* user = raw + head;
  user += (pad - reinterpret_cast<std::uintptr_t>(user) % pad) % pad;
  const Header header{raw, n};
  std::memcpy(user - head, &header, head);
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_add(n, std::memory_order_relaxed);
  return user;
}

inline void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  Header header;
  std::memcpy(&header, static_cast<unsigned char*>(p) - sizeof(Header), sizeof(Header));
  g_live_bytes.fetch_sub(header.bytes, std::memory_order_relaxed);
  std::free(header.raw);
}

} // namespace alloc_detail
#endif // BMH_COUNT_ALLOCS

} // namespace bmh::bench

#if defined(BMH_COUNT_ALLOCS) && !defined(BMH_BENCH_TSAN)

void* operator new(std::size_t n) {
  if (void* p = bmh::bench::alloc_detail::counted_alloc(n, alignof(std::max_align_t)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  if (void* p =
          bmh::bench::alloc_detail::counted_alloc(n, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return bmh::bench::alloc_detail::counted_alloc(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return bmh::bench::alloc_detail::counted_alloc(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t align, const std::nothrow_t&) noexcept {
  return bmh::bench::alloc_detail::counted_alloc(n, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return bmh::bench::alloc_detail::counted_alloc(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { bmh::bench::alloc_detail::counted_free(p); }
void operator delete[](void* p) noexcept { bmh::bench::alloc_detail::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  bmh::bench::alloc_detail::counted_free(p);
}

#endif // BMH_COUNT_ALLOCS
