#pragma once
/// \file bench_common.hpp
/// \brief Shared plumbing for the table/figure reproduction harnesses.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bmh.hpp"

namespace bmh::bench {

/// Number of repetitions per data point (paper: 10 for quality minima,
/// 20-with-5-warmups for timings). Override with BMH_REPEATS.
inline int repeats(int fallback) {
  return static_cast<int>(env_int("BMH_REPEATS", fallback));
}

/// Thread counts {1, 2, 4, ..., cap}; the paper sweeps 1..16 on a 16-core
/// box, we sweep powers of two up to BMH_MAX_THREADS (default: hardware).
inline std::vector<int> thread_sweep() {
  const int cap = static_cast<int>(env_int("BMH_MAX_THREADS", num_procs()));
  std::vector<int> sweep;
  for (int t = 1; t <= cap; t *= 2) sweep.push_back(t);
  if (sweep.back() != cap && cap > 1) sweep.push_back(cap);
  return sweep;
}

/// The suite scale for Table 3 / Figs 3-5. Suite base sizes are ~1/10 of
/// the paper's instances; BMH_SCALE further multiplies them.
inline double suite_scale() { return env_double("BMH_SCALE", 1.0); }

/// Median wall-clock seconds of `runs` executions of `fn` after `warmup`
/// extra executions (timings are geometric-mean aggregated as in §4.2).
template <typename Fn>
double time_geomean(Fn&& fn, int runs, int warmup) {
  RunStats stats;
  for (int r = 0; r < warmup + runs; ++r) {
    Timer t;
    fn(r);
    stats.add(t.seconds());
  }
  return stats.geomean(static_cast<std::size_t>(warmup));
}

/// Banner shared by all benches.
inline void banner(const std::string& what) {
  std::cout << "==============================================================\n"
            << what << "\n"
            << "machine: " << num_procs() << " cores; " << thread_sweep_description()
            << "; BMH_SCALE=" << bench_scale() << "\n"
            << "==============================================================\n\n";
}

} // namespace bmh::bench
