/// \file bench_table2.cpp
/// \brief Reproduces paper Table 2: the proposed heuristics on random
/// sprank-deficient matrices (Matlab sprand analogue), plus the rectangular
/// experiment of §4.1.3.
///
/// Paper setup: square n = 100,000 with d in {2,3,4,5} nonzeros/row on
/// average; iterations {0,1,5,10}; minimum quality over 10 runs, quality
/// relative to sprank. Rectangular: 100,000 x 120,000, 5 iterations
/// (paper: OneSided 0.753, TwoSided 0.930).

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Table 2 — random sprank-deficient matrices (sprand analogue)");

  const auto n = static_cast<vid_t>(scaled(100000, 4096));
  const int runs = bench::repeats(10);

  Table table({"d", "iters", "sprank", "OneSidedMatch", "TwoSidedMatch"});
  for (const int d : {2, 3, 4, 5}) {
    const BipartiteGraph g =
        make_erdos_renyi(n, n, static_cast<eid_t>(d) * n, 1000 + static_cast<std::uint64_t>(d));
    const vid_t rank = sprank(g);
    for (const int iters : {0, 1, 5, 10}) {
      const ScalingResult scaling =
          iters > 0 ? scale_sinkhorn_knopp(g, {iters, 0.0}) : identity_scaling(g);
      vid_t one_worst = n, two_worst = n;
      for (int r = 0; r < runs; ++r) {
        const auto seed = static_cast<std::uint64_t>(r);
        one_worst = std::min(one_worst,
                             one_sided_from_scaling(g, scaling, seed).cardinality());
        two_worst = std::min(two_worst,
                             two_sided_from_scaling(g, scaling, seed).cardinality());
      }
      table.row()
          .add(d)
          .add(iters)
          .add(std::int64_t{rank})
          .add(static_cast<double>(one_worst) / static_cast<double>(rank), 3)
          .add(static_cast<double>(two_worst) / static_cast<double>(rank), 3);
    }
  }
  table.print(std::cout, "n=" + std::to_string(n) + ", min quality over " +
                             std::to_string(runs) + " runs (quality = |M|/sprank)");

  std::cout << "\npaper shape: quality decreases with d at fixed iterations; 5\n"
               "iterations suffice to clear 0.632 / 0.866 for every d.\n\n";

  // ---- Rectangular case (§4.1.3) ----
  const auto m_rect = n;
  const auto n_rect = static_cast<vid_t>(static_cast<std::int64_t>(n) * 12 / 10);
  Table rect({"d", "sprank", "OneSidedMatch", "TwoSidedMatch"});
  for (const int d : {3, 5}) {
    const BipartiteGraph g = make_erdos_renyi(
        m_rect, n_rect, static_cast<eid_t>(d) * m_rect, 2000 + static_cast<std::uint64_t>(d));
    const vid_t rank = sprank(g);
    const ScalingResult scaling = scale_sinkhorn_knopp(g, {5, 0.0});
    vid_t one_worst = m_rect, two_worst = m_rect;
    for (int r = 0; r < runs; ++r) {
      const auto seed = static_cast<std::uint64_t>(r);
      one_worst =
          std::min(one_worst, one_sided_from_scaling(g, scaling, seed).cardinality());
      two_worst =
          std::min(two_worst, two_sided_from_scaling(g, scaling, seed).cardinality());
    }
    rect.row()
        .add(d)
        .add(std::int64_t{rank})
        .add(static_cast<double>(one_worst) / static_cast<double>(rank), 3)
        .add(static_cast<double>(two_worst) / static_cast<double>(rank), 3);
  }
  rect.print(std::cout, "rectangular " + std::to_string(m_rect) + " x " +
                            std::to_string(n_rect) +
                            ", 5 scaling iterations (paper: 0.753 / 0.930)");
  return 0;
}
