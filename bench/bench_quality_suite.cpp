/// \file bench_quality_suite.cpp
/// \brief Reproduces paper §4.1.1: the quality study over square, fully
/// indecomposable matrices.
///
/// The paper checked all 743 square fully indecomposable UFL matrices with
/// >= 1000 rows and found the 0.632 / 0.866 guarantees surpassed with 10
/// scaling iterations on all but 37 instances, which 10 further iterations
/// fixed. We substitute a generated population of fully indecomposable
/// matrices (planted-perfect + extra entries, cycles, meshes with wrap,
/// dense blocks, power-law) and report, per iteration budget, how many
/// instances fall below each guarantee.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("§4.1.1 — guarantee attainment over a fully indecomposable population");

  const auto base_n = static_cast<vid_t>(scaled(20000, 2048));
  const int runs = bench::repeats(3);

  // Build the population: several families x seeds. All are square with a
  // perfect matching; most are fully indecomposable by construction (extra
  // random entries on top of a planted permutation glue the SCCs together).
  struct Member {
    std::string family;
    BipartiteGraph g;
  };
  std::vector<Member> population;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    population.push_back({"planted+2", make_planted_perfect(base_n, 2, seed)});
    population.push_back({"planted+6", make_planted_perfect(base_n, 6, seed + 100)});
    population.push_back(
        {"powerlaw", make_power_law(base_n, 12.0, 1.7, seed + 200)});
    population.push_back({"regular3", make_row_regular(base_n / 4, 3, seed + 300)});
  }
  population.push_back({"cycle", make_cycle(base_n)});
  population.push_back({"full", make_full(std::min<vid_t>(base_n, 2048))});
  for (const vid_t k : {2, 8, 32})
    population.push_back({"adversarial", make_ks_adversarial(base_n / 4, k)});

  std::cout << "population: " << population.size() << " matrices, n ~ " << base_n
            << "\n\n";

  Table table({"iters", "one<0.632", "two<0.866", "min one", "min two"});
  for (const int iters : {0, 5, 10, 20}) {
    int one_below = 0, two_below = 0;
    double min_one = 1.0, min_two = 1.0;
    for (const auto& member : population) {
      const BipartiteGraph& g = member.g;
      const ScalingResult s =
          iters > 0 ? scale_sinkhorn_knopp(g, {iters, 0.0}) : identity_scaling(g);
      vid_t one_worst = g.num_rows(), two_worst = g.num_rows();
      for (int r = 0; r < runs; ++r) {
        // Both heuristics come from the engine registry; the scaling is
        // computed once above and shared across algorithms and repetitions.
        AlgorithmOptions options;
        options.seed = static_cast<std::uint64_t>(r);
        one_worst = std::min(one_worst,
                             make_algorithm("one_sided", options)->run(g, s).cardinality());
        two_worst = std::min(two_worst,
                             make_algorithm("two_sided", options)->run(g, s).cardinality());
      }
      // All population members have a perfect matching: sprank = n.
      const double q_one =
          static_cast<double>(one_worst) / static_cast<double>(g.num_rows());
      const double q_two =
          static_cast<double>(two_worst) / static_cast<double>(g.num_rows());
      if (q_one < kOneSidedGuarantee) ++one_below;
      if (q_two < kTwoSidedGuarantee) ++two_below;
      min_one = std::min(min_one, q_one);
      min_two = std::min(min_two, q_two);
    }
    table.row()
        .add(iters)
        .add(std::int64_t{one_below})
        .add(std::int64_t{two_below})
        .add(min_one, 3)
        .add(min_two, 3);
  }
  table.print(std::cout, "instances below guarantee vs scaling iterations");
  std::cout << "\npaper shape: at 10 iterations (nearly) no instance is below its\n"
               "guarantee; stragglers are fixed by 10 more iterations.\n";
  return 0;
}
