/// \file bench_micro.cpp
/// \brief google-benchmark microbenchmarks of the library's kernels:
/// scaling sweeps, choice sampling, KarpSipserMT phases, exact solvers,
/// graph assembly. These are the building blocks behind every table.

#include <benchmark/benchmark.h>

#include "bmh.hpp"

namespace {

using namespace bmh;

const BipartiteGraph& er_graph(vid_t n, eid_t deg) {
  static std::map<std::pair<vid_t, eid_t>, BipartiteGraph> cache;
  auto [it, inserted] = cache.try_emplace({n, deg});
  if (inserted) it->second = make_erdos_renyi(n, n, deg * n, 42);
  return it->second;
}

void BM_SinkhornKnoppIteration(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scale_sinkhorn_knopp(g, {1, 0.0}));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_SinkhornKnoppIteration)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_RuizIteration(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scale_ruiz(g, {1, 0.0}));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_RuizIteration)->Arg(1 << 17);

void BM_ChoiceSampling(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  const ScalingResult s = scale_sinkhorn_knopp(g, {2, 0.0});
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_row_choices(g, s.dc, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ChoiceSampling)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_OneSidedEndToEnd(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(one_sided_match(g, 1, ++seed));
  }
}
BENCHMARK(BM_OneSidedEndToEnd)->Arg(1 << 17)->Arg(1 << 20);

void BM_KarpSipserMT(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  const ScalingResult s = scale_sinkhorn_knopp(g, {1, 0.0});
  const TwoSidedChoices ch = sample_two_sided_choices(g, s, 7);
  const std::vector<vid_t> unified =
      unify_choices(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
  for (auto _ : state) {
    benchmark::DoNotOptimize(karp_sipser_mt(g.num_rows(), g.num_cols(), unified));
  }
  state.SetItemsProcessed(state.iterations() * (g.num_rows() + g.num_cols()));
}
BENCHMARK(BM_KarpSipserMT)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_TwoSidedEndToEnd(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(two_sided_match(g, 1, ++seed));
  }
}
BENCHMARK(BM_TwoSidedEndToEnd)->Arg(1 << 17)->Arg(1 << 20);

void BM_SequentialKarpSipser(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(karp_sipser(g, ++seed));
  }
}
BENCHMARK(BM_SequentialKarpSipser)->Arg(1 << 14)->Arg(1 << 17);

void BM_HopcroftKarp(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(g));
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(1 << 14)->Arg(1 << 17);

void BM_Mc21(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc21(g));
  }
}
BENCHMARK(BM_Mc21)->Arg(1 << 14)->Arg(1 << 17);

void BM_HopcroftKarpWarmStarted(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  const Matching warm = two_sided_match(g, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(g, &warm));
  }
}
BENCHMARK(BM_HopcroftKarpWarmStarted)->Arg(1 << 14)->Arg(1 << 17);

void BM_GraphAssembly(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_erdos_renyi(n, n, 8LL * n, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n);
}
BENCHMARK(BM_GraphAssembly)->Arg(1 << 14)->Arg(1 << 17);

void BM_CscConstruction(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.transposed());  // exercises build_csc
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CscConstruction)->Arg(1 << 17);

void BM_MatchingValidation(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  const BipartiteGraph& g = er_graph(n, 8);
  const Matching m = two_sided_match(g, 1, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_valid_matching(g, m));
  }
}
BENCHMARK(BM_MatchingValidation)->Arg(1 << 17);

} // namespace

BENCHMARK_MAIN();
