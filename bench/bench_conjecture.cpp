/// \file bench_conjecture.cpp
/// \brief Evidence for Conjecture 1 (paper §3.2): on the all-ones matrix,
/// the TwoSidedMatch subgraph is a random 1-out bipartite graph whose
/// maximum matching cardinality is 2(1-rho)n ~ 0.866n, where rho solves
/// rho·e^rho = 1 (Karonski-Pittel via Meir-Moon).
///
/// Two measurements:
///   (1) max matching of pure "1-out union 1-in" uniform choice graphs as
///       n grows — should converge to 0.8657;
///   (2) TwoSidedMatch on the all-ones matrix — KarpSipserMT should attain
///       exactly that maximum (it is exact on these subgraphs).

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Conjecture 1 — 1-out/1-in random subgraph matching ratio");

  const int runs = bench::repeats(5);
  std::cout << "target constant: 2(1-rho) = " << format_double(kTwoSidedGuarantee, 6)
            << " with rho e^rho = 1\n\n";

  Table table({"n", "mean |M|/n (choice graph)", "mean |M|/n (TwoSidedMatch)",
               "deviation from 0.86571"});
  for (const std::int64_t n_raw : {2000, 8000, 32000, 128000}) {
    const auto n = static_cast<vid_t>(scaled(n_raw, 512));

    double ratio_structural = 0.0;
    double ratio_heuristic = 0.0;
    for (int r = 0; r < runs; ++r) {
      const auto seed = static_cast<std::uint64_t>(r) * 7919 + 13;
      // (1) Uniform 1-out ∪ 1-in choice graph measured with the exact solver.
      std::vector<double> uniform_rows(static_cast<std::size_t>(n), 1.0);
      const BipartiteGraph full_like = make_one_out(n, seed);  // rows pick
      // columns pick uniformly too:
      std::vector<vid_t> rchoice(static_cast<std::size_t>(n));
      for (vid_t i = 0; i < n; ++i) rchoice[static_cast<std::size_t>(i)] =
          full_like.row_neighbors(i)[0];
      std::vector<vid_t> cchoice(static_cast<std::size_t>(n));
      Rng rng(seed ^ 0xabcdef);
      for (vid_t j = 0; j < n; ++j)
        cchoice[static_cast<std::size_t>(j)] =
            static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      const BipartiteGraph sub = materialize_choice_graph(n, n, rchoice, cchoice);
      ratio_structural +=
          static_cast<double>(sprank(sub)) / static_cast<double>(n);

      // (2) TwoSidedMatch itself on the same implicit model: run KSMT on
      // the unified choices (the all-ones matrix need not be materialized —
      // uniform choices over all columns ARE its scaled distribution).
      const std::vector<vid_t> unified = unify_choices(n, n, rchoice, cchoice);
      ratio_heuristic +=
          static_cast<double>(karp_sipser_mt(n, n, unified).cardinality()) /
          static_cast<double>(n);
    }
    ratio_structural /= runs;
    ratio_heuristic /= runs;
    table.row()
        .add(format_count(n))
        .add(ratio_structural, 5)
        .add(ratio_heuristic, 5)
        .add(ratio_heuristic - kTwoSidedGuarantee, 5);
  }
  table.print(std::cout, "convergence to the conjectured constant as n grows");
  std::cout << "\npaper shape: both columns agree (KarpSipserMT is exact on these\n"
               "graphs) and converge to 0.86571 as n grows.\n";
  return 0;
}
