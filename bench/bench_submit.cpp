/// \file bench_submit.cpp
/// \brief Measures the Engine's single-job submission path — the MPSC ring
/// that replaced the mutex/CV work queue (PR 9) — and records the results
/// in BENCH_submit.json:
///
///   1. raw queue mechanics — the ring vs an in-binary replica of the old
///      mutex + condition_variable + deque queue, producers pushing plain
///      descriptors at 1/2/4/8 threads against one draining consumer;
///   2. open-loop engine submit throughput at 1/2/4/8 producer threads,
///      with queue-wait p50/p99 from the engine's own histograms, compared
///      against the pre-PR mutex-path numbers recorded in the `baseline`
///      field (measured with this same open-loop harness on the commit
///      before the ring landed);
///   3. bounded-ring backpressure — with the default queue depth the
///      submit rate converges to the drain rate by construction (the old
///      queue was unbounded and would buffer without limit);
///   4. allocation-freedom — with the worker parked, a warm single-job
///      submit performs zero heap allocations (global counter proof).
///
/// Knobs: BMH_SUBMIT_JOBS (default 20000), BMH_SUBMIT_RAW_ITEMS (default
/// 200000).

#define BMH_COUNT_ALLOCS

#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <thread>

#include "util/mpsc_ring.hpp"

namespace {

using namespace bmh;

/// In-binary replica of the pre-PR submission queue's locking shape: one
/// mutex around a deque, a CV kick per push. (The real pre-PR path also
/// allocated a queue node per submit; this replica is the *flattering*
/// baseline — pure lock mechanics, no allocation.)
struct MutexQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::uint64_t> items;

  void push(std::uint64_t v) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      items.push_back(v);
    }
    cv.notify_one();
  }
  bool try_pop(std::uint64_t& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (items.empty()) return false;
    out = items.front();
    items.pop_front();
    return true;
  }
};

struct RawResult {
  double push_mops = 0.0;   ///< producer-side pushes per microsecond
  double drain_mops = 0.0;  ///< end-to-end items per microsecond
};

/// Producers push `total` tagged items, one consumer spins draining; the
/// queue template only needs push / try_pop.
template <typename Queue>
RawResult raw_throughput(Queue& queue, int producers, std::uint64_t total) {
  std::atomic<std::uint64_t> drained{0};
  std::thread consumer([&] {
    std::uint64_t item = 0;
    while (drained.load(std::memory_order_relaxed) < total) {
      if (queue.try_pop(item))
        drained.fetch_add(1, std::memory_order_relaxed);
      else
        std::this_thread::yield();
    }
  });
  const std::uint64_t per = total / static_cast<std::uint64_t>(producers);
  Timer timer;
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p)
    threads.emplace_back([&queue, per] {
      for (std::uint64_t i = 0; i < per; ++i) queue.push(std::uint64_t{i});
    });
  for (auto& t : threads) t.join();
  const double push_seconds = timer.seconds();
  consumer.join();
  const double drain_seconds = timer.seconds();
  const auto pushed = per * static_cast<std::uint64_t>(producers);
  return {static_cast<double>(pushed) / push_seconds / 1e6,
          static_cast<double>(pushed) / drain_seconds / 1e6};
}

struct SubmitResult {
  double submit_ns_per_op = 0.0;
  double submit_ops_per_s = 0.0;
  double end_to_end_jobs_per_s = 0.0;
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
};

/// Open-loop engine submit: `producers` threads blast `jobs` tiny cached
/// jobs through the callback submit. `depth` sized to the burst isolates
/// ingest cost (the queue never backpressures); the default depth measures
/// the bounded ring's converge-to-drain-rate behaviour instead.
SubmitResult engine_submit_throughput(int producers, int jobs,
                                      std::size_t depth) {
  EngineConfig config;
  config.threads = 1;
  config.seed = 1;
  config.submit_queue_depth = depth;
  Engine engine(config);
  const JobSpec job =
      parse_job_spec_line("input=gen:cycle:n=64 algo=greedy quality=0 seed=1");
  std::atomic<int> done{0};
  const auto count = [&done](JobResult&&) {
    done.fetch_add(1, std::memory_order_relaxed);
  };
  {  // warm the cache and the worker
    JobSpec warm = job;
    engine.submit(std::move(warm), count, 0);
    while (done.load(std::memory_order_acquire) == 0) std::this_thread::yield();
    done.store(0);
  }
  const int per = jobs / producers;
  Timer timer;
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p)
    threads.emplace_back([&engine, &job, &count, per] {
      for (int i = 0; i < per; ++i) {
        JobSpec copy = job;
        engine.submit(std::move(copy), count, 0);
      }
    });
  for (auto& t : threads) t.join();
  const double submit_seconds = timer.seconds();
  const int total = per * producers;
  while (done.load(std::memory_order_acquire) < total) std::this_thread::yield();
  const double total_seconds = timer.seconds();

  SubmitResult out;
  out.submit_ns_per_op = submit_seconds / total * 1e9;
  out.submit_ops_per_s = total / submit_seconds;
  out.end_to_end_jobs_per_s = total / total_seconds;
  const obs::HistogramData wait =
      engine.metrics().histogram_merged("worker", "queue_wait");
  out.queue_wait_p50_ms = static_cast<double>(wait.p50_ns()) / 1e6;
  out.queue_wait_p99_ms = static_cast<double>(wait.p99_ns()) / 1e6;
  return out;
}

/// Blocked-worker allocation proof: park the single worker inside a
/// delivery callback, then count heap allocations across warm try_submit
/// calls — must be zero.
std::uint64_t allocations_per_warm_submit_burst(int burst) {
  EngineConfig config;
  config.threads = 1;
  config.submit_queue_depth = static_cast<std::size_t>(burst);
  Engine engine(config);
  std::mutex mutex;
  std::condition_variable cv;
  bool parked = false;
  bool release = false;
  engine.submit(
      parse_job_spec_line("input=gen:cycle:n=64 algo=greedy quality=0 seed=1"),
      [&](JobResult&&) {
        std::unique_lock<std::mutex> lock(mutex);
        parked = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
      });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return parked; });
  }
  std::atomic<int> done{0};
  std::vector<JobSpec> jobs;
  std::vector<std::function<void(JobResult&&)>> callbacks;
  for (int i = 0; i < burst; ++i) {
    jobs.push_back(
        parse_job_spec_line("input=gen:cycle:n=64 algo=greedy quality=0 seed=1"));
    callbacks.emplace_back(
        [&done](JobResult&&) { done.fetch_add(1, std::memory_order_relaxed); });
  }
  const bench::AllocStats before = bench::alloc_stats();
  for (int i = 0; i < burst; ++i)
    (void)engine.try_submit(std::move(jobs[static_cast<std::size_t>(i)]),
                            std::move(callbacks[static_cast<std::size_t>(i)]));
  const bench::AllocStats after = bench::alloc_stats();
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
    cv.notify_all();
  }
  while (done.load(std::memory_order_acquire) < burst) std::this_thread::yield();
  return after.allocations - before.allocations;
}

/// Pre-PR mutex-path numbers, measured with this same open-loop harness on
/// the commit before the ring landed (unbounded queue: every submit took
/// the engine mutex and allocated its queue node). Recorded here because
/// the old path no longer exists to be built.
struct BaselinePoint {
  int producers;
  double submit_ns_per_op;
  double submit_ops_per_s;
};
constexpr BaselinePoint kMutexBaseline[] = {
    {1, 1209.0, 827438.0},
    {2, 983.0, 1017099.0},
    {4, 828.0, 1208147.0},
    {8, 1088.0, 918995.0},
};

} // namespace

int main() {
  const int jobs = static_cast<int>(env_int("BMH_SUBMIT_JOBS", 20000));
  const auto raw_items =
      static_cast<std::uint64_t>(env_int("BMH_SUBMIT_RAW_ITEMS", 200000));
  const int producer_counts[] = {1, 2, 4, 8};

  std::cout << "bench_submit: engine submission-path throughput ("
            << num_procs() << " cores)\n\n";

  std::string raw_json = "[";
  for (int p : producer_counts) {
    MpscRing<std::uint64_t> ring(65536);
    RawResult ring_result = raw_throughput(ring, p, raw_items);
    MutexQueue mutex_queue;
    RawResult mutex_result = raw_throughput(mutex_queue, p, raw_items);
    std::cout << "raw producers=" << p << ": ring "
              << ring_result.push_mops << " Mpush/s vs mutex "
              << mutex_result.push_mops << " Mpush/s ("
              << ring_result.push_mops / mutex_result.push_mops << "x)\n";
    if (raw_json.size() > 1) raw_json += ", ";
    raw_json += "{\"producers\": " + std::to_string(p);
    raw_json += ", \"ring_push_mops\": " + json_number(ring_result.push_mops);
    raw_json += ", \"ring_drain_mops\": " + json_number(ring_result.drain_mops);
    raw_json += ", \"mutex_push_mops\": " + json_number(mutex_result.push_mops);
    raw_json +=
        ", \"mutex_drain_mops\": " + json_number(mutex_result.drain_mops);
    raw_json += ", \"push_speedup\": " +
                json_number(ring_result.push_mops / mutex_result.push_mops) +
                "}";
  }
  raw_json += "]";

  std::string engine_json = "[";
  double best_speedup_at_4plus = 0.0;
  for (const BaselinePoint& base : kMutexBaseline) {
    // Depth sized to the burst isolates ingest cost, comparable to the
    // unbounded pre-PR queue which never pushed back on producers.
    const SubmitResult r = engine_submit_throughput(
        base.producers, jobs, std::bit_ceil(static_cast<std::size_t>(jobs) * 2));
    const double speedup = r.submit_ops_per_s / base.submit_ops_per_s;
    if (base.producers >= 4) best_speedup_at_4plus =
        std::max(best_speedup_at_4plus, speedup);
    std::cout << "engine producers=" << base.producers << ": "
              << r.submit_ns_per_op << " ns/submit (" << r.submit_ops_per_s
              << "/s, baseline " << base.submit_ops_per_s << "/s, " << speedup
              << "x), queue-wait p99 " << r.queue_wait_p99_ms << " ms\n";
    if (engine_json.size() > 1) engine_json += ", ";
    engine_json += "{\"producers\": " + std::to_string(base.producers);
    engine_json +=
        ", \"submit_ns_per_op\": " + json_number(r.submit_ns_per_op);
    engine_json +=
        ", \"submit_ops_per_s\": " + json_number(r.submit_ops_per_s);
    engine_json += ", \"end_to_end_jobs_per_s\": " +
                   json_number(r.end_to_end_jobs_per_s);
    engine_json +=
        ", \"queue_wait_p50_ms\": " + json_number(r.queue_wait_p50_ms);
    engine_json +=
        ", \"queue_wait_p99_ms\": " + json_number(r.queue_wait_p99_ms);
    engine_json += ", \"baseline\": {\"submit_ns_per_op\": " +
                   json_number(base.submit_ns_per_op) +
                   ", \"submit_ops_per_s\": " +
                   json_number(base.submit_ops_per_s) + "}";
    engine_json += ", \"speedup_vs_baseline\": " + json_number(speedup) + "}";
  }
  engine_json += "]";

  // Bounded-ring backpressure: at the default depth a sustained overload
  // converges to the drain rate — the submit throughput IS the serving
  // throughput, which is the point of a bounded queue.
  const SubmitResult bounded = engine_submit_throughput(4, jobs, 0);
  std::cout << "bounded (default depth) producers=4: "
            << bounded.submit_ops_per_s << " submits/s vs "
            << bounded.end_to_end_jobs_per_s << " jobs/s drained\n";

  const std::uint64_t burst_allocs = allocations_per_warm_submit_burst(256);
  std::cout << "allocations per 256 warm submits: " << burst_allocs << "\n";

  std::ofstream json("BENCH_submit.json");
  json << "{\n  \"bench\": \"submit\",\n";
  json << "  \"config\": {\"jobs\": " << jobs << ", \"raw_items\": " << raw_items
       << ", \"engine_threads\": 1, \"job\": \"gen:cycle:n=64 greedy quality=0\"},\n";
  json << "  \"machine_cores\": " << num_procs() << ",\n";
  json << "  \"raw_queue\": " << raw_json << ",\n";
  json << "  \"engine_submit\": " << engine_json << ",\n";
  json << "  \"bounded_backpressure\": {\"producers\": 4, \"submit_ops_per_s\": "
       << json_number(bounded.submit_ops_per_s)
       << ", \"end_to_end_jobs_per_s\": "
       << json_number(bounded.end_to_end_jobs_per_s)
       << ", \"note\": \"default queue depth: sustained overload converges to the drain rate — the bounded ring pushes back instead of buffering without limit like the pre-PR queue\"},\n";
  json << "  \"allocations_per_warm_submit\": "
       << (static_cast<double>(burst_allocs) / 256.0) << ",\n";
  json << "  \"zero_alloc_claim_holds\": "
       << (burst_allocs == 0 ? "true" : "false") << ",\n";
  json << "  \"speedup_target_met\": "
       << (best_speedup_at_4plus >= 2.0 ? "true" : "false") << ",\n";
  json << "  \"baseline_source\": \"mutex+CV engine queue at the commit before the ring landed, same open-loop harness, same container\",\n";
  json << "  \"hardware_note\": \"measured on a " << num_procs()
       << "-core container: producer threads time-share one core, so true "
          "multi-core submit contention cannot manifest and the "
          "producers>=2 rows measure lock/atomic mechanics under "
          "preemption, not parallel scaling. The per-submit cost "
          "improvement (ns/op vs baseline ns/op) is the "
          "hardware-independent signal; re-measure the scaling rows on a "
          "multi-core runner\"\n";
  json << "}\n";
  std::cout << "wrote BENCH_submit.json\n";
  return 0;
}
