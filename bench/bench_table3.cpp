/// \file bench_table3.cpp
/// \brief Reproduces paper Table 3: instance properties, scaling error
/// after {1,5,10} Sinkhorn-Knopp iterations, and *sequential* execution
/// times of ScaleSK (one iteration), OneSidedMatch, KarpSipserMT, and
/// TwoSidedMatch on the 12-instance suite.
///
/// The UFL matrices are replaced by structural stand-ins (see DESIGN.md §3)
/// at ~1/10 the paper's sizes by default; absolute times therefore differ
/// from the paper's Sandy Bridge numbers, but the orderings (road networks
/// dominate scaling cost; TwoSided ~ 2-3x OneSided; sprank/n < 1 exactly
/// for the road instances) are the reproduction target.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Table 3 — suite properties and sequential times");

  const double scale = bench::suite_scale();
  const int runs = bench::repeats(5);

  Table table({"name", "n", "edges", "avg deg", "sprank/n", "err it1", "err it5",
               "err it10", "ScaleSK s", "OneSided s", "KSipserMT s", "TwoSided s"});

  ThreadCountGuard sequential(1);  // Table 3 reports single-thread times

  for (const auto& name : suite_names()) {
    const SuiteInstance inst = make_suite_instance(name, scale, 42);
    const BipartiteGraph& g = inst.graph;

    const double rank_ratio =
        static_cast<double>(sprank(g)) / static_cast<double>(g.num_rows());
    const double err1 = scale_sinkhorn_knopp(g, {1, 0.0}).error;
    const double err5 = scale_sinkhorn_knopp(g, {5, 0.0}).error;
    const ScalingResult s10 = scale_sinkhorn_knopp(g, {10, 0.0});

    // Sequential timings, geometric mean with one warmup (paper drops the
    // first runs of 20; we use a lighter protocol scaled by BMH_REPEATS).
    const double t_scale =
        bench::time_geomean([&](int) { (void)scale_sinkhorn_knopp(g, {1, 0.0}); }, runs, 1);
    const ScalingResult s1 = scale_sinkhorn_knopp(g, {1, 0.0});
    const double t_one = bench::time_geomean(
        [&](int r) { (void)one_sided_from_scaling(g, s1, static_cast<std::uint64_t>(r)); },
        runs, 1);
    const TwoSidedChoices choices = sample_two_sided_choices(g, s1, 7);
    const std::vector<vid_t> unified =
        unify_choices(g.num_rows(), g.num_cols(), choices.rchoice, choices.cchoice);
    const double t_ksmt = bench::time_geomean(
        [&](int) { (void)karp_sipser_mt(g.num_rows(), g.num_cols(), unified); }, runs, 1);
    const double t_two = bench::time_geomean(
        [&](int r) { (void)two_sided_from_scaling(g, s1, static_cast<std::uint64_t>(r)); },
        runs, 1);

    table.row()
        .add(name)
        .add(format_count(g.num_rows()))
        .add(format_count(g.num_edges()))
        .add(average_degree(g), 1)
        .add(rank_ratio, 3)
        .add(err1, 2)
        .add(err5, 2)
        .add(s10.error, 2)
        .add(t_scale, 3)
        .add(t_one, 3)
        .add(t_ksmt, 3)
        .add(t_two, 3);
  }

  table.print(std::cout, "suite at scale " + format_double(scale, 2) +
                             " (paper sizes ~10x larger); single-thread times");
  std::cout << "\npaper shape: road instances have sprank/n in {0.95, 0.99} and the\n"
               "largest scaling errors; OneSided time ~ ScaleSK + sampling;\n"
               "TwoSided ~ ScaleSK + 2x sampling + KarpSipserMT.\n";
  return 0;
}
