/// \file bench_extension_kout.cpp
/// \brief Extension study: quality/cost trade-off of k-out subgraph
/// matching (k = 1 is TwoSidedMatch; Walkup's theorem says k = 2 already
/// suffices for perfect matchings on random inputs a.a.s.).

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Extension — k-out subgraph matching quality/cost");

  const auto n = static_cast<vid_t>(scaled(100000, 4096));
  const int runs = bench::repeats(5);

  for (const char* kind : {"planted", "deficient"}) {
    const bool planted = std::string(kind) == "planted";
    const BipartiteGraph g = planted
                                 ? make_planted_perfect(n, 4, 7)
                                 : make_erdos_renyi(n, n, 3LL * n, 7);
    const vid_t rank = sprank(g);
    const ScalingResult s = scale_sinkhorn_knopp(g, {5, 0.0});

    Table table({"k", "subgraph edges", "min quality", "time s"});
    for (const int k : {1, 2, 3, 4}) {
      vid_t worst = g.num_rows();
      const BipartiteGraph sub = k_out_subgraph(g, s, k, 3);
      const double t = bench::time_geomean(
          [&](int r) {
            const BipartiteGraph sg = k_out_subgraph(g, s, k, static_cast<std::uint64_t>(r));
            worst = std::min(worst, hopcroft_karp(sg).cardinality());
          },
          runs, 0);
      table.row()
          .add(k)
          .add(format_count(sub.num_edges()))
          .add(static_cast<double>(worst) / static_cast<double>(rank), 4)
          .add(t, 3);
    }
    table.print(std::cout, std::string(kind) + " instance, n=" + std::to_string(n) +
                               ", sprank=" + std::to_string(rank));
    std::cout << '\n';
  }
  std::cout << "expected shape: quality ~0.866 at k=1 (the paper's conjecture),\n"
               ">=0.99 at k=2 (Walkup), ~1.0 at k=3+, with cost growing in k.\n";
  return 0;
}
