/// \file bench_ablation_schedule.cpp
/// \brief Ablation: OpenMP scheduling policy for the per-row sampling loop
/// (the paper uses (dynamic,512) for most kernels and guided for
/// KarpSipserMT, and notes §4.2 that high per-row nonzero variance —
/// torso1, audikw_1 — hurts load balance and might want a different
/// policy).
///
/// A local copy of the OneSidedMatch sampling loop with schedule(runtime)
/// lets omp_set_schedule sweep static / dynamic / guided on a uniform
/// instance (mesh) and a skewed one (power-law): the gap between policies
/// should be much larger on the skewed instance.

#include <omp.h>

#include <atomic>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace bmh;

/// The OneSidedMatch row loop with schedule(runtime) so the policy can be
/// chosen via omp_set_schedule. Mirrors one_sided_from_scaling.
vid_t one_sided_runtime_schedule(const BipartiteGraph& g, const ScalingResult& s,
                                 std::uint64_t seed) {
  std::vector<vid_t> cmatch(static_cast<std::size_t>(g.num_cols()), kNil);
  const Rng root(seed);
#pragma omp parallel for schedule(runtime)
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    const auto nbrs = g.row_neighbors(i);
    if (nbrs.empty()) continue;
    Rng rng = root.fork(static_cast<std::uint64_t>(i));
    double total = 0.0;
    for (const vid_t v : nbrs) total += s.dc[static_cast<std::size_t>(v)];
    const double r = rng.next_double_open0() * total;
    double acc = 0.0;
    vid_t picked = nbrs.back();
    for (const vid_t v : nbrs) {
      acc += s.dc[static_cast<std::size_t>(v)];
      if (acc >= r) {
        picked = v;
        break;
      }
    }
    std::atomic_ref<vid_t>(cmatch[static_cast<std::size_t>(picked)])
        .store(i, std::memory_order_relaxed);
  }
  vid_t card = 0;
  for (const vid_t v : cmatch)
    if (v != kNil) ++card;
  return card;
}

} // namespace

int main() {
  using namespace bmh;
  bench::banner("Ablation — OpenMP schedule for the sampling loop");

  const int runs = bench::repeats(5);
  const int threads = bench::thread_sweep().back();
  ThreadCountGuard guard(threads);

  struct Policy {
    const char* name;
    omp_sched_t kind;
    int chunk;
  };
  const Policy policies[] = {
      {"static", omp_sched_static, 0},
      {"dynamic,512 (paper)", omp_sched_dynamic, 512},
      {"dynamic,64", omp_sched_dynamic, 64},
      {"guided", omp_sched_guided, 0},
  };

  for (const auto& name : {"venturiLevel3_like", "torso1_like"}) {
    const SuiteInstance inst = make_suite_instance(name, bench::suite_scale(), 42);
    const BipartiteGraph& g = inst.graph;
    const ScalingResult s = scale_sinkhorn_knopp(g, {1, 0.0});
    const DegreeStats deg = row_degree_stats(g);

    Table table({"policy", "time ms", "vs best"});
    std::vector<double> times;
    for (const auto& p : policies) {
      omp_set_schedule(p.kind, p.chunk);
      times.push_back(bench::time_geomean(
          [&](int r) {
            (void)one_sided_runtime_schedule(g, s, static_cast<std::uint64_t>(r));
          },
          runs, 1));
    }
    const double best = *std::min_element(times.begin(), times.end());
    for (std::size_t p = 0; p < std::size(policies); ++p)
      table.row()
          .add(policies[p].name)
          .add(times[p] * 1e3, 2)
          .add(times[p] / best, 2);
    table.print(std::cout, std::string(name) + "  (row-degree variance " +
                               format_double(deg.variance, 1) + ", " +
                               std::to_string(threads) + " threads)");
    std::cout << '\n';
  }
  std::cout << "expected shape: on the mesh-like (uniform) instance the policies\n"
               "are close; on the skewed instance static lags and\n"
               "dynamic/guided win — the paper's load-imbalance observation.\n";
  return 0;
}
