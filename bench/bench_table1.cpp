/// \file bench_table1.cpp
/// \brief Reproduces paper Table 1: quality of Karp-Sipser vs TwoSidedMatch
/// on the adversarial family of Fig. 2.
///
/// Paper setup: n = 3200, k in {2,4,8,16,32}; for TwoSidedMatch, 0/1/5/10
/// Sinkhorn-Knopp iterations with the scaling error reported; each cell is
/// the minimum quality over 10 runs.
///
/// Paper reference values (n=3200): KS drops from 0.782 (k=2) to 0.670
/// (k=32); TwoSidedMatch with 10 iterations stays at 0.99+ for all k.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Table 1 — KS vs TwoSidedMatch on the adversarial family (Fig. 2)");

  const auto n = static_cast<vid_t>(2 * (scaled(3200, 256) / 2));
  const int runs = bench::repeats(10);
  const std::vector<vid_t> ks = {2, 4, 8, 16, 32};
  const std::vector<int> iteration_counts = {0, 1, 5, 10};

  Table table({"k", "KarpSipser", "it=0 qual", "it=0 err", "it=1 qual", "it=1 err",
               "it=5 qual", "it=5 err", "it=10 qual", "it=10 err"});

  for (const vid_t k : ks) {
    const BipartiteGraph g = make_ks_adversarial(n, k);

    vid_t ks_worst = n;
    for (int r = 0; r < runs; ++r)
      ks_worst =
          std::min(ks_worst, karp_sipser(g, static_cast<std::uint64_t>(r)).cardinality());

    table.row().add(std::int64_t{k}).add(static_cast<double>(ks_worst) / n, 3);
    for (const int iters : iteration_counts) {
      const ScalingResult scaling =
          iters > 0 ? scale_sinkhorn_knopp(g, {iters, 0.0}) : identity_scaling(g);
      vid_t worst = n;
      for (int r = 0; r < runs; ++r)
        worst = std::min(
            worst, two_sided_from_scaling(g, scaling, static_cast<std::uint64_t>(r))
                       .cardinality());
      table.add(static_cast<double>(worst) / n, 3).add(scaling.error, 3);
    }
  }

  table.print(std::cout, "n=" + std::to_string(n) + ", min quality over " +
                             std::to_string(runs) + " runs (quality = |M|/n)");
  std::cout << "\npaper shape to verify: KS quality decreases with k; TwoSidedMatch\n"
               "with 5+ iterations is near 1.0 and beats KS for every k > 1.\n";
  return 0;
}
