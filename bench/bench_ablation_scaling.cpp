/// \file bench_ablation_scaling.cpp
/// \brief Ablation: Sinkhorn-Knopp vs Ruiz equilibration as the scaling
/// step (paper §2.2 reviews both and picks SK; Knight-Ruiz-Uçar report SK
/// converges faster on unsymmetric matrices).
///
/// Measures, per iteration budget: the scaling error of each method, the
/// resulting TwoSidedMatch quality, and the per-iteration cost.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Ablation — Sinkhorn-Knopp vs Ruiz as the scaling step");

  const auto n = static_cast<vid_t>(scaled(100000, 4096));
  const int runs = bench::repeats(5);

  struct Case {
    std::string name;
    BipartiteGraph g;
  };
  const std::vector<Case> cases = {
      {"erdos_renyi d=4 (unsymmetric)", make_erdos_renyi(n, n, 4LL * n, 3)},
      {"kkt-like (symmetric structure)", make_kkt_like(n * 3 / 4, n / 4, 5, 5)},
      {"adversarial k=32", make_ks_adversarial(static_cast<vid_t>(2 * (scaled(3200, 256) / 2)), 32)},
  };

  for (const auto& c : cases) {
    const vid_t rank = sprank(c.g);
    Table table({"iters", "SK err", "Ruiz err", "SK two-sided qual", "Ruiz two-sided qual"});
    for (const int iters : {1, 2, 5, 10, 20}) {
      const ScalingResult sk = scale_sinkhorn_knopp(c.g, {iters, 0.0});
      const ScalingResult rz = scale_ruiz(c.g, {iters, 0.0});
      vid_t worst_sk = c.g.num_rows(), worst_rz = c.g.num_rows();
      for (int r = 0; r < runs; ++r) {
        const auto seed = static_cast<std::uint64_t>(r);
        worst_sk =
            std::min(worst_sk, two_sided_from_scaling(c.g, sk, seed).cardinality());
        worst_rz =
            std::min(worst_rz, two_sided_from_scaling(c.g, rz, seed).cardinality());
      }
      table.row()
          .add(iters)
          .add(sk.error, 4)
          .add(rz.error, 4)
          .add(static_cast<double>(worst_sk) / static_cast<double>(rank), 3)
          .add(static_cast<double>(worst_rz) / static_cast<double>(rank), 3);
    }
    table.print(std::cout, c.name);

    const double t_sk = bench::time_geomean(
        [&](int) { (void)scale_sinkhorn_knopp(c.g, {5, 0.0}); }, runs, 1);
    const double t_rz =
        bench::time_geomean([&](int) { (void)scale_ruiz(c.g, {5, 0.0}); }, runs, 1);
    std::cout << "5-iteration cost: SK " << format_double(t_sk * 1e3, 2) << " ms, Ruiz "
              << format_double(t_rz * 1e3, 2) << " ms\n\n";
  }
  std::cout << "expected shape: SK error < Ruiz error at equal iterations on the\n"
               "unsymmetric instance (the basis for the paper's choice of SK);\n"
               "both feed the heuristic adequately once the error is small.\n";
  return 0;
}
