/// \file bench_workspace.cpp
/// \brief Certifies the Workspace subsystem's two claims and records them in
/// BENCH_workspace.json:
///
///   1. allocation-freedom — with the global allocation counter enabled, a
///      warm worker executing pipeline jobs performs zero heap allocations
///      per job (and a full bmh_engine-style batch only the per-job graph
///      build + result-record allocations);
///   2. throughput — reusing one arena per worker beats the pre-Workspace
///      per-call allocation behaviour on small-graph batches.
///
/// The throughput comparison is self-contained: "cold" constructs a fresh
/// Workspace + PipelineResult per job (exactly the allocation profile of
/// the seed code, where every kernel owned its scratch vectors), "warm"
/// reuses one of each per worker (what BatchRunner now does).
///
/// Knobs: BMH_WS_JOBS (default 1000), BMH_WS_WORKERS (default min(8, cores)),
/// BMH_WS_N (default 1024), BMH_WS_REPEATS (default 3).

#define BMH_COUNT_ALLOCS

#include "bench_common.hpp"

#include <atomic>
#include <fstream>
#include <thread>

namespace {

using namespace bmh;

struct ThroughputResult {
  double seconds = 0.0;
  double jobs_per_second = 0.0;
};

PipelineConfig serving_config() {
  PipelineConfig config;
  config.algorithm = "two_sided";
  config.scaling = ScalingMethod::kSinkhornKnopp;
  config.scaling_iterations = 5;
  config.options.seed = 7;
  config.options.threads = 1;     // one OpenMP lane per worker: jobs are the
                                  // parallelism, as in the batch runner
  config.compute_quality = false; // serving mode: no exact solve per request
  return config;
}

/// Runs `jobs` pipeline executions over `graphs` with `workers` threads.
/// cold = fresh Workspace + PipelineResult per job (pre-Workspace profile).
ThroughputResult run_mode(const std::vector<BipartiteGraph>& graphs, int jobs,
                          int workers, bool cold) {
  const PipelineConfig config = serving_config();
  std::atomic<int> next{0};
  Timer timer;
  auto worker = [&] {
    Workspace ws;
    PipelineResult out;
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      const BipartiteGraph& g = graphs[static_cast<std::size_t>(i) % graphs.size()];
      if (cold) {
        Workspace fresh_ws;
        PipelineResult fresh_out;
        run_pipeline_ws(g, config, fresh_ws, fresh_out);
      } else {
        run_pipeline_ws(g, config, ws, out);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  ThroughputResult r;
  r.seconds = timer.seconds();
  r.jobs_per_second = jobs / r.seconds;
  return r;
}

} // namespace

int main() {
  bench::banner("Workspace — zero-allocation batch serving");

  const int jobs = static_cast<int>(env_int("BMH_WS_JOBS", 1000));
  const int workers =
      static_cast<int>(env_int("BMH_WS_WORKERS", std::min(8, num_procs())));
  const auto n = static_cast<vid_t>(env_int("BMH_WS_N", 1024));
  const int repeats = static_cast<int>(env_int("BMH_WS_REPEATS", 3));

  // A pool of distinct same-shaped instances, built outside all timings.
  std::vector<BipartiteGraph> graphs;
  for (std::uint64_t s = 0; s < 16; ++s)
    graphs.push_back(make_erdos_renyi(n, n, 8LL * n, 1000 + s));

  // ---- 1a. Allocation proof, pipeline hot path (one warm worker). ----
  const PipelineConfig config = serving_config();
  Workspace ws;
  PipelineResult out;
  for (int pass = 0; pass < 2; ++pass)
    for (const BipartiteGraph& g : graphs) run_pipeline_ws(g, config, ws, out);
  const bench::AllocStats before = bench::alloc_stats();
  for (int i = 0; i < jobs; ++i)
    run_pipeline_ws(graphs[static_cast<std::size_t>(i) % graphs.size()], config, ws, out);
  const bench::AllocStats after = bench::alloc_stats();
  const auto pipeline_allocs = after.allocations - before.allocations;
  const auto pipeline_live_growth = after.live_bytes - before.live_bytes;
  std::cout << "pipeline hot path: " << pipeline_allocs << " allocations / "
            << jobs << " warm jobs (net heap growth " << pipeline_live_growth
            << " bytes)\n";

  // ---- 1b. Allocation accounting, full engine batch (graph build + result
  // records are inherent per-job output, not scratch). ----
  std::vector<JobSpec> spec_jobs;
  {
    JobSpec job;
    job.input = parse_graph_spec("gen:er:n=" + std::to_string(n) + ",deg=8");
    job.pipeline = serving_config();
    job.pipeline.options.threads = 0;  // batch options decide
    for (int i = 0; i < jobs; ++i) {
      job.name = "j" + std::to_string(i);
      spec_jobs.push_back(job);
    }
  }
  EngineConfig engine_config;
  engine_config.threads = workers;
  engine_config.threads_per_job = 1;
  engine_config.seed = 3;
  // Cache off: this bench certifies the *workspace* claims, so the per-job
  // graph build must stay in the measurement (bench_graph_cache measures the
  // cache-served path against this number). The engine persists across the
  // warm and measured passes — the serving shape: pool and arenas stay warm.
  engine_config.graph_cache_mb = 0;
  Engine engine(engine_config);
  (void)engine.run_collect(spec_jobs);  // warm pass
  const bench::AllocStats b0 = bench::alloc_stats();
  Timer batch_timer;
  const std::vector<JobResult> results = engine.run_collect(spec_jobs);
  const double batch_seconds = batch_timer.seconds();
  const bench::AllocStats b1 = bench::alloc_stats();
  std::size_t failed = 0;
  for (const JobResult& r : results)
    if (!r.ok) ++failed;
  const double batch_allocs_per_job =
      static_cast<double>(b1.allocations - b0.allocations) / jobs;
  std::cout << "engine batch: " << batch_allocs_per_job
            << " allocations/job warm (graph build + result record), "
            << jobs / batch_seconds << " jobs/s, " << failed << " failed\n";

  // Per-job latency distribution of the warm engine (both engine passes),
  // merged across its workers.
  const std::string latency = bench::latency_json(engine);
  if constexpr (obs::kEnabled) {
    const obs::HistogramData job_hist =
        engine.metrics().histogram_merged("worker", "job");
    std::cout << "engine batch job latency: p50 "
              << static_cast<double>(job_hist.p50_ns()) / 1e6 << " ms, p99 "
              << static_cast<double>(job_hist.p99_ns()) / 1e6 << " ms over "
              << job_hist.count << " jobs\n";
  }

  // ---- 2. Throughput: cold (per-call allocation) vs warm (arena reuse). --
  const auto sweep_throughput = [&](const std::vector<BipartiteGraph>& pool,
                                    int sweep_jobs, const char* label) {
    double cold_best = 0.0, warm_best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const ThroughputResult cold = run_mode(pool, sweep_jobs, workers, /*cold=*/true);
      const ThroughputResult warm = run_mode(pool, sweep_jobs, workers, /*cold=*/false);
      cold_best = std::max(cold_best, cold.jobs_per_second);
      warm_best = std::max(warm_best, warm.jobs_per_second);
      std::cout << label << " repeat " << r << ": cold " << cold.jobs_per_second
                << " jobs/s, warm " << warm.jobs_per_second << " jobs/s\n";
    }
    return std::pair<double, double>{cold_best, warm_best};
  };

  const auto [cold_best, warm_best] = sweep_throughput(graphs, jobs, "n=main");

  // Small-graph sweep: fixed per-job overheads (allocation among them) are
  // a larger share of tiny jobs, the regime the batch runner serves.
  std::vector<BipartiteGraph> small_graphs;
  for (std::uint64_t s = 0; s < 16; ++s)
    small_graphs.push_back(make_erdos_renyi(128, 128, 8LL * 128, 2000 + s));
  const auto [small_cold, small_warm] =
      sweep_throughput(small_graphs, jobs * 4, "n=128 ");

  const double speedup = warm_best / cold_best;
  const double small_speedup = small_warm / small_cold;
  std::cout << "\nspeedup (warm/cold): " << speedup << "x at n=" << n << ", "
            << small_speedup << "x at n=128  (target >= 1.3x)\n";

  std::ofstream json("BENCH_workspace.json");
  json << "{\n"
       << "  \"bench\": \"workspace\",\n"
       << "  \"config\": {\"algorithm\": \"two_sided\", \"scaling_iterations\": 5, "
          "\"compute_quality\": false, \"n\": "
       << n << ", \"deg\": 8, \"jobs\": " << jobs << ", \"workers\": " << workers
       << ", \"threads_per_job\": 1},\n"
       << "  \"machine_cores\": " << num_procs() << ",\n"
       << "  \"pipeline_hot_path\": {\"allocations_per_" << jobs
       << "_warm_jobs\": " << pipeline_allocs
       << ", \"net_heap_growth_bytes\": " << pipeline_live_growth << "},\n"
       << "  \"engine_batch\": {\"allocations_per_job_warm\": "
       << bmh::json_number(batch_allocs_per_job)
       << ", \"jobs_per_second\": " << bmh::json_number(jobs / batch_seconds)
       << ", \"note\": \"remaining per-job allocations are the generated graph and "
          "the retained JobResult record, not algorithm scratch\"},\n"
       << "  \"throughput\": {\"cold_jobs_per_second\": " << bmh::json_number(cold_best)
       << ", \"warm_jobs_per_second\": " << bmh::json_number(warm_best)
       << ", \"speedup\": " << bmh::json_number(speedup)
       << ", \"cold_is\": \"fresh Workspace + PipelineResult per job (pre-Workspace "
          "allocation profile)\"},\n"
       << "  \"throughput_small_graphs\": {\"n\": 128, \"cold_jobs_per_second\": "
       << bmh::json_number(small_cold)
       << ", \"warm_jobs_per_second\": " << bmh::json_number(small_warm)
       << ", \"speedup\": " << bmh::json_number(small_speedup) << "},\n"
       << "  \"latency\": " << latency << ",\n"
       << "  \"zero_alloc_claim_holds\": "
       << (pipeline_allocs == 0 ? "true" : "false") << ",\n"
       << "  \"speedup_target_met\": "
       << (std::max(speedup, small_speedup) >= 1.3 ? "true" : "false") << ",\n"
       << "  \"hardware_note\": \"warm-vs-cold gap depends on allocator pressure: on "
          "a single-core container glibc tcache recycles the cold mode's same-sized "
          "frees for ~free and cross-worker malloc contention cannot manifest, so "
          "the measured speedup under-represents multi-core serving; the "
          "zero-allocations-per-job property is hardware-independent. Latency "
          "percentiles are log-bucket estimates from this machine — on the "
          "1-core container workers time-share the core, so p99 includes "
          "scheduler preemption\"\n"
       << "}\n";
  std::cout << "wrote BENCH_workspace.json\n";
  return 0;
}
