/// \file bench_ablation_ksmt.cpp
/// \brief Ablation: why the specialized KarpSipserMT instead of (a) the
/// classic worklist Karp-Sipser or (b) a general exact solver, on the
/// TwoSidedMatch choice subgraphs (paper §3.2's design rationale).
///
/// Compares, on the same choice subgraphs: sequential KS (worklist),
/// Hopcroft-Karp, and KarpSipserMT at 1 thread and max threads. All three
/// must produce maximum matchings on these graphs (KS is exact on them);
/// the point of the specialization is the parallel speed.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Ablation — KarpSipserMT vs classic KS vs Hopcroft-Karp on choice subgraphs");

  const int runs = bench::repeats(5);
  const int max_t = bench::thread_sweep().back();

  Table table({"instance", "|V|", "KS seq s", "HK s", "KSMT t=1 s",
               ("KSMT t=" + std::to_string(max_t) + " s"), "all exact?"});

  for (const auto& name :
       {"cage15_like", "europe_osm_like", "torso1_like", "nlpkkt240_like"}) {
    const SuiteInstance inst = make_suite_instance(name, bench::suite_scale(), 42);
    const BipartiteGraph& g = inst.graph;

    const ScalingResult s1 = scale_sinkhorn_knopp(g, {1, 0.0});
    const TwoSidedChoices ch = sample_two_sided_choices(g, s1, 7);
    const std::vector<vid_t> unified =
        unify_choices(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
    const BipartiteGraph sub =
        materialize_choice_graph(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);

    double t_ks, t_hk, t_ksmt1, t_ksmtN;
    {
      ThreadCountGuard guard(1);
      t_ks = bench::time_geomean(
          [&](int r) { (void)karp_sipser(sub, static_cast<std::uint64_t>(r)); }, runs, 1);
      t_hk = bench::time_geomean([&](int) { (void)hopcroft_karp(sub); }, runs, 1);
      t_ksmt1 = bench::time_geomean(
          [&](int) { (void)karp_sipser_mt(g.num_rows(), g.num_cols(), unified); }, runs, 1);
    }
    {
      ThreadCountGuard guard(max_t);
      t_ksmtN = bench::time_geomean(
          [&](int) { (void)karp_sipser_mt(g.num_rows(), g.num_cols(), unified); }, runs, 1);
    }

    const vid_t exact = hopcroft_karp(sub).cardinality();
    const bool ks_exact = karp_sipser(sub, 1).cardinality() == exact;
    vid_t ksmt_card;
    {
      ThreadCountGuard guard(max_t);
      ksmt_card = karp_sipser_mt(g.num_rows(), g.num_cols(), unified).cardinality();
    }
    const bool all_exact = ks_exact && ksmt_card == exact;

    table.row()
        .add(name)
        .add(format_count(static_cast<std::int64_t>(g.num_rows()) + g.num_cols()))
        .add(t_ks, 4)
        .add(t_hk, 4)
        .add(t_ksmt1, 4)
        .add(t_ksmtN, 4)
        .add(all_exact ? "yes" : "NO — BUG");
  }
  table.print(std::cout, "same choice subgraph per instance; times in seconds");
  std::cout << "\nexpected shape: all methods find the same (maximum) cardinality —\n"
               "KS is exact on these graphs (Lemmas 1-3); KarpSipserMT at max\n"
               "threads is the fastest, which is the reason the specialization\n"
               "exists. The worklist KS cannot parallelize without losing quality.\n";
  return 0;
}
