/// \file bench_fig5.cpp
/// \brief Reproduces paper Figure 5: matching quality of OneSidedMatch (5a)
/// and TwoSidedMatch (5b) on the suite with 0, 1, and 5 scaling iterations.
///
/// Paper reference: the horizontal guarantee lines are 0.632 and 0.866;
/// with 5 iterations both heuristics clear their lines on (almost) every
/// instance — the paper notes nlpkkt240 needed 15 iterations for
/// TwoSidedMatch, so an extra iters=15 column is included; even with a
/// single iteration TwoSidedMatch exceeds 0.86 everywhere, while
/// OneSidedMatch never reaches 0.80.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Figure 5 — matching quality vs scaling iterations");

  const double scale = bench::suite_scale();
  const int runs = bench::repeats(5);
  const std::vector<int> iteration_counts = {0, 1, 5, 15};

  std::vector<std::string> header = {"name", "sprank/n"};
  for (const int it : iteration_counts) header.push_back("it=" + std::to_string(it));
  Table one_table(header), two_table(header);

  int one_below_line = 0, two_below_line = 0, cells = 0;

  for (const auto& name : suite_names()) {
    const SuiteInstance inst = make_suite_instance(name, scale, 42);
    const BipartiteGraph& g = inst.graph;
    const vid_t rank = sprank(g);
    const double ratio = static_cast<double>(rank) / static_cast<double>(g.num_rows());

    one_table.row().add(name).add(ratio, 3);
    two_table.row().add(name).add(ratio, 3);
    for (const int iters : iteration_counts) {
      const ScalingResult s =
          iters > 0 ? scale_sinkhorn_knopp(g, {iters, 0.0}) : identity_scaling(g);
      vid_t one_worst = g.num_rows(), two_worst = g.num_rows();
      for (int r = 0; r < runs; ++r) {
        const auto seed = static_cast<std::uint64_t>(r);
        one_worst =
            std::min(one_worst, one_sided_from_scaling(g, s, seed).cardinality());
        two_worst =
            std::min(two_worst, two_sided_from_scaling(g, s, seed).cardinality());
      }
      const double q_one = static_cast<double>(one_worst) / static_cast<double>(rank);
      const double q_two = static_cast<double>(two_worst) / static_cast<double>(rank);
      one_table.add(q_one, 3);
      two_table.add(q_two, 3);
      if (iters == 5) {
        ++cells;
        if (q_one < kOneSidedGuarantee) ++one_below_line;
        if (q_two < kTwoSidedGuarantee) ++two_below_line;
      }
    }
  }

  one_table.print(std::cout, "(5a) OneSidedMatch quality (guarantee line 0.632)");
  std::cout << '\n';
  two_table.print(std::cout, "(5b) TwoSidedMatch quality (conjecture line 0.866)");
  std::cout << "\nat 5 iterations: OneSidedMatch below 0.632 on " << one_below_line << "/"
            << cells << " instances; TwoSidedMatch below 0.866 on " << two_below_line
            << "/" << cells << " instances\n"
            << "(paper: 0 below at 5 iterations except nlpkkt240, which needs 15)\n";
  return 0;
}
