/// \file bench_jump_start.cpp
/// \brief Quantifies the paper's motivating claim (§1): cheap quality-
/// guaranteed heuristics are good jump-starts for exact matching codes.
///
/// Note: the cold MC21 row is the known pathological case — augmenting DFS
/// from scratch on sparse random graphs (this very slowness is the paper's
/// motivation for quality-guaranteed jump-starts), so the instance is kept
/// moderate by default.
///
/// For each exact solver (Hopcroft-Karp, MC21, push-relabel) and each
/// initialization (none, greedy, Karp-Sipser, OneSided, TwoSided), measure
/// init quality and the end-to-end time to the exact optimum.

#include <functional>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Jump-start study — heuristics as exact-solver initializers");

  const auto n = static_cast<vid_t>(scaled(200000, 8192));
  const int runs = bench::repeats(2);
  const BipartiteGraph g = make_erdos_renyi(n, n, 5LL * n, 3);
  const vid_t optimum = sprank(g);
  std::cout << "instance: ER n=" << n << ", " << format_count(g.num_edges())
            << " edges, sprank " << optimum << "\n\n";

  // Initializers are engine pipelines named by their registry algorithm
  // (empty name = cold start); the pipeline owns the scale+match sequencing
  // the seed code used to hand-wire here.
  struct Init {
    const char* label;
    const char* algorithm;
  };
  const std::vector<Init> inits = {
      {"cold", ""},
      {"greedy-vertex", "greedy"},
      {"karp-sipser", "karp_sipser"},
      {"one-sided(5)", "one_sided"},
      {"two-sided(5)", "two_sided"},
  };
  struct InitRun {
    Matching matching;
    double seconds = 0.0;
  };
  const auto make_init = [&](const Init& init, std::uint64_t seed) -> InitRun {
    if (init.algorithm[0] == '\0') return {Matching(g.num_rows(), g.num_cols()), 0.0};
    PipelineConfig config;
    config.algorithm = init.algorithm;
    config.options.seed = seed;
    config.scaling_iterations = 5;
    config.compute_quality = false;  // the bench reuses the shared sprank
    PipelineResult r = run_pipeline(g, config);
    // The init cost is scale+match only; the pipeline's validity scan is
    // measurement overhead, not part of what the paper's jump-start pays.
    double seconds = 0.0;
    for (const StageStats& s : r.stages)
      if (s.stage == "scale" || s.stage == "match") seconds += s.seconds;
    return {std::move(r.matching), seconds};
  };
  struct Solver {
    const char* name;
    std::function<Matching(const Matching&)> solve;
  };
  const std::vector<Solver> solvers = {
      {"hopcroft-karp", [&](const Matching& w) { return hopcroft_karp(g, &w); }},
      {"mc21", [&](const Matching& w) { return mc21(g, &w); }},
      {"push-relabel", [&](const Matching& w) { return push_relabel(g, &w); }},
  };

  Table table({"init", "init quality", "init s", "HK s", "MC21 s", "PR s"});
  for (const auto& init : inits) {
    const InitRun run = make_init(init, 1);
    const Matching& warm = run.matching;
    table.row()
        .add(init.label)
        .add(matching_quality(warm, optimum), 4)
        .add(run.seconds, 3);
    for (const auto& solver : solvers) {
      const double t = bench::time_geomean(
          [&](int) {
            const Matching exact = solver.solve(warm);
            if (exact.cardinality() != optimum) {
              std::cerr << "BUG: " << solver.name << " not optimal from " << init.label
                        << '\n';
              std::exit(1);
            }
          },
          runs, 0);
      table.add(t, 3);
    }
  }
  table.print(std::cout, "solve-to-optimal time per initialization (seconds)");
  std::cout << "\nexpected shape: better init quality shortens every solver's\n"
               "solve time; two-sided(5) leaves the least augmentation work.\n";
  return 0;
}
