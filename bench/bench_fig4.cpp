/// \file bench_fig4.cpp
/// \brief Reproduces paper Figure 4: speedups of KarpSipserMT (4a) and
/// TwoSidedMatch (4b) with a single scaling iteration over the suite.
///
/// Paper reference: KarpSipserMT averages 11.1x at 16 threads (max 12.6 on
/// channel); TwoSidedMatch averages 10.6x. Quality does not change with
/// the thread count (checked here as well).

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace bmh;
  bench::banner("Figure 4 — speedups of KarpSipserMT (a) and TwoSidedMatch (b)");

  const double scale = bench::suite_scale();
  const int runs = bench::repeats(5);
  const std::vector<int> threads = bench::thread_sweep();

  std::vector<std::string> header = {"name"};
  for (const int t : threads) header.push_back("t=" + std::to_string(t));
  Table ksmt_table(header), twosided_table(header);

  bool quality_stable = true;

  for (const auto& name : suite_names()) {
    const SuiteInstance inst = make_suite_instance(name, scale, 42);
    const BipartiteGraph& g = inst.graph;

    // Fixed scaled choices so every thread count runs the same KSMT input.
    const ScalingResult s1 = scale_sinkhorn_knopp(g, {1, 0.0});
    const TwoSidedChoices choices = sample_two_sided_choices(g, s1, 7);
    const std::vector<vid_t> unified =
        unify_choices(g.num_rows(), g.num_cols(), choices.rchoice, choices.cchoice);

    ksmt_table.row().add(name);
    twosided_table.row().add(name);
    double t_ksmt_1 = 0.0, t_two_1 = 0.0;
    vid_t reference_card = -1;
    for (const int t : threads) {
      ThreadCountGuard guard(t);
      const double t_ksmt = bench::time_geomean(
          [&](int) { (void)karp_sipser_mt(g.num_rows(), g.num_cols(), unified); },
          runs, 1);
      const double t_two = bench::time_geomean(
          [&](int r) { (void)two_sided_match(g, 1, static_cast<std::uint64_t>(r)); },
          runs, 1);
      const vid_t card =
          karp_sipser_mt(g.num_rows(), g.num_cols(), unified).cardinality();
      if (reference_card < 0) reference_card = card;
      if (card != reference_card) quality_stable = false;
      if (t == 1) {
        t_ksmt_1 = t_ksmt;
        t_two_1 = t_two;
      }
      ksmt_table.add(t_ksmt_1 / t_ksmt, 2);
      twosided_table.add(t_two_1 / t_two, 2);
    }
  }

  ksmt_table.print(std::cout, "(4a) KarpSipserMT speedup on fixed choice subgraphs");
  std::cout << '\n';
  twosided_table.print(std::cout, "(4b) TwoSidedMatch speedup (includes ScaleSK)");
  std::cout << "\nmatching cardinality invariant across thread counts: "
            << (quality_stable ? "yes (as the paper requires)" : "NO — BUG") << '\n';
  return quality_stable ? 0 : 1;
}
