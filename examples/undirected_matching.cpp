/// \file undirected_matching.cpp
/// \brief The paper's §5 future-work extension in action: one-out matching
/// heuristics on general (non-bipartite) undirected graphs.
///
/// Generates an undirected graph with a planted perfect matching (so the
/// optimum is known exactly even though general exact matching needs
/// blossoms), then compares greedy, the one-out heuristic without scaling,
/// and the one-out heuristic with symmetric scaling.
///
/// Usage: undirected_matching [--n 200000] [--extra 3] [--seed 1]

#include <iostream>

#include "bmh.hpp"

namespace {

/// n (even) vertices, perfect matching {2i, 2i+1} planted, plus
/// `extra_per_vertex` random edges per vertex. Optimum = n/2 exactly.
bmh::UndirectedGraph planted_undirected(bmh::vid_t n, bmh::vid_t extra_per_vertex,
                                        std::uint64_t seed) {
  bmh::Rng rng(seed);
  std::vector<std::pair<bmh::vid_t, bmh::vid_t>> edges;
  edges.reserve(static_cast<std::size_t>(n) / 2 +
                static_cast<std::size_t>(n) * static_cast<std::size_t>(extra_per_vertex));
  for (bmh::vid_t u = 0; u + 1 < n; u += 2) edges.emplace_back(u, u + 1);
  for (bmh::vid_t u = 0; u < n; ++u) {
    for (bmh::vid_t t = 0; t < extra_per_vertex; ++t) {
      auto v = static_cast<bmh::vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (v == u) v = (v + 1) % n;
      edges.emplace_back(u, v);
    }
  }
  return bmh::UndirectedGraph::from_edges(n, edges);
}

} // namespace

int main(int argc, char** argv) {
  const bmh::CliArgs args(argc, argv);
  const auto n =
      static_cast<bmh::vid_t>(2 * (args.get_int("n", 200000) / 2));  // force even
  const auto extra = static_cast<bmh::vid_t>(args.get_int("extra", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const bmh::UndirectedGraph g = planted_undirected(n, extra, seed);
  const double opt = static_cast<double>(n) / 2.0;
  std::cout << "undirected graph: " << n << " vertices, "
            << bmh::format_count(g.num_edges())
            << " edges, planted optimum = " << static_cast<std::int64_t>(opt) << "\n\n";

  bmh::Table table({"algorithm", "cardinality", "quality", "ms"});
  bmh::Timer timer;

  timer.reset();
  const bmh::UndirectedMatching greedy = bmh::undirected_greedy(g, seed);
  table.row()
      .add("greedy (1/2 guarantee)")
      .add(std::int64_t{greedy.cardinality()})
      .add(static_cast<double>(greedy.cardinality()) / opt, 4)
      .add(timer.milliseconds(), 1);

  for (const int iters : {0, 1, 5}) {
    timer.reset();
    const bmh::UndirectedMatching m = bmh::undirected_one_out_match(g, iters, seed);
    if (!bmh::is_valid_matching(g, m)) {
      std::cerr << "BUG: " << bmh::describe_violation(g, m) << '\n';
      return 1;
    }
    table.row()
        .add("one-out, " + std::to_string(iters) + " scaling iters")
        .add(std::int64_t{m.cardinality()})
        .add(static_cast<double>(m.cardinality()) / opt, 4)
        .add(timer.milliseconds(), 1);
  }

  table.print(std::cout, "general-graph matching (paper §5 extension)");
  std::cout << "\nthe bipartite conjecture constant 0.866 carries over empirically:\n"
               "scaling concentrates choice probability on matchable edges.\n";
  return 0;
}
