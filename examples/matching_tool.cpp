/// \file matching_tool.cpp
/// \brief Command-line matching tool over Matrix Market files or generated
/// instances — the "downstream user" entry point.
///
/// Usage:
///   matching_tool --mtx matrix.mtx [--algo two_sided] [--iters 5]
///                 [--seed 1] [--threads 8] [--exact] [--out match.txt]
///   matching_tool --gen er --n 100000 --degree 4 ...
///
/// Algorithms: one_sided, two_sided, karp_sipser, greedy_edge,
/// greedy_vertex, min_degree, hopcroft_karp, mc21.

#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>

#include "bmh.hpp"

namespace {

bmh::BipartiteGraph load_graph(const bmh::CliArgs& args) {
  if (args.has("mtx")) return bmh::read_matrix_market_file(args.get("mtx", ""));
  const std::string gen = args.get("gen", "er");
  const auto n = static_cast<bmh::vid_t>(args.get_int("n", 100000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (gen == "er") {
    const auto degree = static_cast<bmh::eid_t>(args.get_int("degree", 4));
    return bmh::make_erdos_renyi(n, n, degree * n, seed);
  }
  if (gen == "adversarial")
    return bmh::make_ks_adversarial(n, static_cast<bmh::vid_t>(args.get_int("k", 8)));
  if (gen == "mesh") {
    const auto side = static_cast<bmh::vid_t>(std::max<std::int64_t>(
        8, static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)))));
    return bmh::make_mesh(side, side);
  }
  if (gen == "suite") return bmh::make_suite_instance(args.get("name", "cage15_like"),
                                                      args.get_double("scale", 0.1)).graph;
  throw std::runtime_error("unknown generator '" + gen + "' (er|adversarial|mesh|suite)");
}

} // namespace

int main(int argc, char** argv) {
  try {
    const bmh::CliArgs args(argc, argv);
    if (args.has("help")) {
      std::cout << "matching_tool --mtx FILE | --gen er|adversarial|mesh|suite\n"
                   "  --algo one_sided|two_sided|karp_sipser|greedy_edge|greedy_vertex|\n"
                   "         min_degree|hopcroft_karp|mc21|push_relabel|k_out\n"
                   "         (default two_sided; k_out also takes --k)\n"
                   "  --iters N (scaling iterations, default 5)  --seed S  --threads T\n"
                   "  --exact (also compute sprank and report quality)\n"
                   "  --out FILE (write matched pairs)\n";
      return 0;
    }
    if (args.has("threads"))
      bmh::set_num_threads(static_cast<int>(args.get_int("threads", 1)));

    bmh::Timer load_timer;
    const bmh::BipartiteGraph graph = load_graph(args);
    std::cout << "graph: " << graph.num_rows() << " x " << graph.num_cols() << ", "
              << bmh::format_count(graph.num_edges()) << " edges  ["
              << load_timer.milliseconds() << " ms to load/generate]\n";

    const int iters = static_cast<int>(args.get_int("iters", 5));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const std::string algo = args.get("algo", "two_sided");

    using Runner = std::function<bmh::Matching()>;
    const std::map<std::string, Runner> runners = {
        {"one_sided", [&] { return bmh::one_sided_match(graph, iters, seed); }},
        {"two_sided", [&] { return bmh::two_sided_match(graph, iters, seed); }},
        {"karp_sipser", [&] { return bmh::karp_sipser(graph, seed); }},
        {"greedy_edge", [&] { return bmh::match_random_edges(graph, seed); }},
        {"greedy_vertex", [&] { return bmh::match_random_vertices(graph, seed); }},
        {"min_degree", [&] { return bmh::match_min_degree(graph); }},
        {"hopcroft_karp", [&] { return bmh::hopcroft_karp(graph); }},
        {"mc21", [&] { return bmh::mc21(graph); }},
        {"push_relabel", [&] { return bmh::push_relabel(graph); }},
        {"k_out", [&] { return bmh::k_out_match(graph, iters,
                                                static_cast<int>(args.get_int("k", 2)),
                                                seed); }},
    };
    const auto it = runners.find(algo);
    if (it == runners.end()) {
      std::cerr << "unknown --algo '" << algo << "'\n";
      return 2;
    }

    bmh::Timer run_timer;
    const bmh::Matching m = it->second();
    const double run_ms = run_timer.milliseconds();

    if (!bmh::is_valid_matching(graph, m)) {
      std::cerr << "BUG: " << bmh::describe_matching_violation(graph, m) << '\n';
      return 3;
    }
    std::cout << algo << ": cardinality " << m.cardinality() << "  [" << run_ms
              << " ms, " << bmh::max_threads() << " threads]\n";

    if (args.has("exact")) {
      const bmh::vid_t rank = bmh::sprank(graph);
      std::cout << "sprank " << rank << ", quality "
                << bmh::matching_quality(m, rank) << '\n';
    }

    if (args.has("out")) {
      const std::string path = args.get("out", "");
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot write '" + path + "'");
      for (bmh::vid_t i = 0; i < graph.num_rows(); ++i)
        if (m.row_matched(i))
          out << (i + 1) << ' ' << (m.row_match[static_cast<std::size_t>(i)] + 1) << '\n';
      std::cout << "wrote matched pairs to " << path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
