/// \file bmh_engine.cpp
/// \brief The batch matching engine CLI: reads a job spec, runs the jobs
/// concurrently, emits one JSON line per job.
///
/// Usage:
///   bmh_engine --spec jobs.txt [--out results.jsonl] [--workers 4]
///              [--threads-per-job 2] [--seed 1] [--graph-cache-mb 256]
///              [--graph-store DIR] [--stream] [--no-timings] [--quiet]
///   bmh_engine --demo            # built-in 10-job mixed batch
///   bmh_engine --list            # registered algorithm names
///
/// Spec format (one job per line, `#` comments; see src/engine/job.hpp):
///   name=j0 input=gen:er:n=8192,deg=5 algo=two_sided iters=5 augment=0
///   name=j1 input=mtx:path/to/matrix.mtx algo=one_sided iters=10
///   name=j2 input=suite:cage15_like:scale=0.1 algo=karp_sipser
///
/// Jobs denoting the same instance (same canonical spec + effective seed)
/// share one immutable graph through the sharded content-addressed cache;
/// the summary line reports its hit/miss/eviction counters. `--graph-store
/// DIR` adds the persistent tier: built graphs spill to DIR and later runs
/// (including freshly restarted processes) mmap-load them instead of
/// rebuilding — output stays byte-identical. `--stream` emits each record
/// as soon as its index is next in line and drops it, bounding memory for
/// very large batches.
///
/// With a fixed --seed the emitted records are byte-identical across reruns
/// and worker counts (cache and streaming included); pass --no-timings to
/// drop the wall-clock fields (the only nondeterministic ones) when
/// diffing runs.

#include <fstream>
#include <iostream>

#include "bmh.hpp"

int main(int argc, char** argv) {
  try {
    const bmh::CliArgs args(argc, argv);
    if (args.has("help") || argc == 1) {
      std::cout
          << "bmh_engine --spec FILE | --demo | --list\n"
             "  --out FILE            write JSON lines here (default stdout)\n"
             "  --workers N           concurrent jobs (default 1; 0 = all cores)\n"
             "  --threads-per-job N   OpenMP threads inside each job (default 1;\n"
             "                        0 = ambient)\n"
             "  --seed S              base seed for per-job RNG derivation (default 1)\n"
             "  --graph-cache-mb N    byte budget of the shared graph cache\n"
             "                        (default 256; 0 rebuilds every job's graph)\n"
             "  --graph-store DIR     persistent graph tier: spill built graphs\n"
             "                        to DIR, mmap-load them on later runs\n"
             "  --stream              emit each record in index order as it\n"
             "                        completes and drop it (bounded memory)\n"
             "  --no-timings          omit per-stage wall-clock fields\n"
             "  --quiet               no progress lines on stderr\n";
      return 0;
    }
    if (args.has("list")) {
      for (const std::string& name : bmh::registered_algorithm_names())
        std::cout << name << '\n';
      return 0;
    }

    std::vector<bmh::JobSpec> jobs;
    if (args.has("demo")) {
      jobs = bmh::demo_batch();
    } else if (args.has("spec")) {
      jobs = bmh::parse_job_spec_file(args.get("spec", ""));
    } else {
      std::cerr << "error: need --spec FILE, --demo or --list (see --help)\n";
      return 2;
    }
    if (jobs.empty()) {
      std::cerr << "error: job spec contains no jobs\n";
      return 2;
    }

    bmh::BatchOptions options;
    options.workers = static_cast<int>(args.get_int("workers", 1));
    options.threads_per_job = static_cast<int>(args.get_int("threads-per-job", 1));
    options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const auto cache_mb = args.get_int("graph-cache-mb", 256);
    if (cache_mb < 0) throw std::runtime_error("--graph-cache-mb must be >= 0");
    options.graph_cache_mb = static_cast<std::size_t>(cache_mb);

    const std::string store_dir = args.get("graph-store", "");
    if (!store_dir.empty() && options.graph_cache_mb == 0)
      throw std::runtime_error(
          "--graph-store needs the graph cache (--graph-cache-mb > 0)");

    // Own the cache here (rather than letting run_batch make one) so the
    // summary can report its counters.
    std::unique_ptr<bmh::GraphCache> cache;
    if (options.graph_cache_mb > 0) {
      bmh::GraphCache::Options cache_options;
      cache_options.max_bytes = options.graph_cache_mb << 20;
      cache_options.store_dir = store_dir;
      cache = std::make_unique<bmh::GraphCache>(cache_options);
      options.graph_cache = cache.get();
    }

    const bool quiet = args.has("quiet");
    const bool include_timings = !args.has("no-timings");
    const auto progress = [&](const bmh::JobResult& r) {
      if (quiet) return;
      if (r.ok)
        std::cerr << "done " << r.name << ": " << r.algorithm << " cardinality "
                  << r.result.cardinality << " in " << r.result.total_seconds
                  << " s\n";
      else
        std::cerr << "FAIL " << r.name << ": " << r.error << '\n';
    };

    std::ofstream file;
    std::ostream* out = &std::cout;
    if (args.has("out")) {
      const std::string path = args.get("out", "");
      file.open(path);
      if (!file) throw std::runtime_error("cannot write '" + path + "'");
      out = &file;
    }

    bmh::Timer timer;
    std::size_t failed = 0;
    if (args.has("stream")) {
      failed = bmh::run_batch_stream(jobs, options, [&](const bmh::JobResult& r) {
        *out << bmh::to_json_line(r, include_timings) << '\n';
        progress(r);
      });
    } else {
      const std::vector<bmh::JobResult> results =
          bmh::run_batch(jobs, options, progress);
      bmh::write_jsonl(*out, results, include_timings);
      for (const bmh::JobResult& r : results)
        if (!r.ok) ++failed;
    }
    if (args.has("out") && !quiet)
      std::cerr << "wrote " << jobs.size() << " records to " << args.get("out", "")
                << '\n';

    if (!quiet) {
      std::cerr << jobs.size() - failed << "/" << jobs.size() << " jobs ok, "
                << options.workers << " workers x " << options.threads_per_job
                << " threads, " << timer.seconds() << " s total\n";
      if (cache) {
        const bmh::GraphCache::Stats s = cache->stats();
        std::cerr << "graph cache: " << s.hits << " hits, " << s.misses
                  << " misses, " << s.evictions << " evictions, "
                  << s.race_discards << " race discards, " << s.entries
                  << " graphs resident (" << s.bytes / (1024.0 * 1024.0)
                  << " MiB of " << options.graph_cache_mb << ")\n";
        if (cache->store() != nullptr) {
          std::cerr << "graph store: " << s.store_hits << " hits, "
                    << s.store_misses << " misses, " << s.store_spills
                    << " spills, " << s.store_errors << " errors ("
                    << cache->store()->dir() << ")\n";
          if (s.store_errors > 0)
            std::cerr << "graph store last error: " << cache->store()->last_error()
                      << '\n';
        }
      }
    }
    return failed == 0 ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
