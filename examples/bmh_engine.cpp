/// \file bmh_engine.cpp
/// \brief The matching engine CLI: one long-lived bmh::Engine serving a
/// batch (--spec/--demo) or a stdin job stream (--serve), one JSON line per
/// job.
///
/// Usage:
///   bmh_engine --spec jobs.txt [--out results.jsonl] [--threads 4]
///              [--threads-per-job 2] [--seed 1] [--graph-cache-mb 256]
///              [--graph-store DIR] [--graph-store-budget-mb N]
///              [--store-fsync] [--stream] [--no-timings] [--quiet]
///              [--metrics-out FILE] [--metrics-interval-ms N]
///   bmh_engine --serve           # read job spec lines from stdin, emit
///                                # each result as soon as it completes
///   bmh_engine --demo            # built-in 10-job mixed batch
///   bmh_engine --list            # kinds, sources, algorithms, analyses
///
/// Spec format (one job per line, `#` comments; see src/engine/job.hpp):
///   name=j0 input=gen:er:n=8192,deg=5 algo=two_sided iters=5 augment=0
///   name=j1 input=mtx:path/to/matrix.mtx algo=one_sided iters=10
///   name=j2 input=suite:cage15_like:scale=0.1 algo=karp_sipser
///   name=j3 input=mm:path=matrix.mtx kind=undirected-match algo=one_out
///   name=j4 input=mm:path=matrix.mtx kind=analyze algo=dm
///
/// `kind=` selects the workload (default match, the legacy behavior):
/// undirected-match converts the bipartite input to an undirected graph and
/// runs the undirected registry (`--list` category `undirected`); analyze
/// runs a structural analysis (`--list` category `analysis`). `mm:path=`
/// sources are keyed by file *content*, so the cache and store recognize
/// the same matrix across paths, renames and process restarts.
///
/// Every mode shares one bmh::Engine: worker pool, per-worker scratch
/// arenas, the sharded graph cache and the optional persistent store are
/// constructed once and stay warm for the whole process. Jobs denoting the
/// same instance (same canonical spec + effective seed) share one immutable
/// graph; the summary reports the cache counters plus the engine's cold
/// graph builds. `--graph-store DIR` adds the persistent tier (spill on
/// build, mmap-load on later runs — byte-identical output);
/// `--graph-store-budget-mb` prunes the directory LRU-by-mtime when spills
/// push it over budget, and `--store-fsync` makes each spill durable
/// against unclean shutdown. `--threads 0` auto-detects one worker per
/// processor (the summary prints the resolved count).
///
/// Batch modes are emitted in job index order (`--stream` additionally
/// drops each record once written, bounding memory for very large
/// batches). `--serve` is the server shape: job spec lines arrive on
/// stdin, each result is written (and flushed) the moment it completes —
/// completion order, so with more than one worker thread, lines can leave
/// out of order; the `job` field carries the input line's position. A
/// malformed line emits an ok=false record (error_kind=parse) instead of
/// killing the server. SIGTERM or SIGINT drains instead of aborting: no
/// further lines are read, every in-flight job still completes and flushes
/// its record, the serve_metrics summary gains `"drained":true`, and the
/// exit status is the usual one (0 when every emitted record was ok).
///
/// With a fixed --seed the emitted records are byte-identical across
/// reruns and thread counts (cache, store, streaming and serve-with-one-
/// thread included); pass --no-timings to drop the wall-clock fields (the
/// only nondeterministic ones) when diffing runs.
///
/// Observability (see README "Observability"): `--metrics-out FILE` writes
/// the engine's final metrics snapshot to FILE — Prometheus text exposition
/// when FILE ends in `.prom`, JSON lines otherwise — and
/// `--metrics-interval-ms N` additionally rewrites it every N ms while jobs
/// run (atomic tmp+rename, so a scraper never reads a half-written file).
/// Metrics go to their own file and the summary to stderr precisely so the
/// record stream on stdout stays byte-identical with and without them. In
/// --serve mode the summary includes one machine-readable
/// {"record":"serve_metrics",...} line on stderr whose `jobs` field equals
/// the records emitted.

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>

#include "bmh.hpp"

namespace {

/// Set by SIGTERM/SIGINT while --serve runs: the read loop stops taking new
/// lines, in-flight jobs finish and flush, the summary still comes out —
/// a drain, not an abort. sig_atomic_t + a handler that only stores are the
/// whole async-signal-safe surface.
volatile std::sig_atomic_t g_drain_signal = 0;

extern "C" void handle_drain_signal(int sig) { g_drain_signal = sig; }

/// Installs the drain handler *without* SA_RESTART: a getline blocked on an
/// idle stdin must come back with EINTR (stream goes bad, loop exits) — the
/// default restarting disposition would keep the server stuck in read(2)
/// until the next request, which for a terminating service may never come.
void install_drain_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_drain_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Counters the serve loop shares with worker callbacks.
struct ServeState {
  std::mutex mutex;                  ///< guards everything below + the sink
  std::condition_variable drained;
  std::size_t in_flight = 0;
  std::size_t jobs = 0;
  std::size_t failed = 0;
};

std::int64_t wall_clock_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Renders the engine's current snapshot into `path` — Prometheus text for
/// a `.prom` extension, JSON lines otherwise — via tmp+rename so a
/// concurrent scraper never sees a torn file. Failures warn once on stderr
/// and are otherwise ignored: metrics must never take the serving loop down.
void write_metrics_file(const bmh::Engine& engine, const std::string& path) {
  static bool warned = false;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) {
      if (!warned) std::cerr << "warning: cannot write metrics to '" << path << "'\n";
      warned = true;
      return;
    }
    const bmh::obs::Snapshot snapshot = engine.metrics();
    if (ends_with(path, ".prom"))
      bmh::obs::export_prometheus(snapshot, file);
    else
      bmh::obs::export_json_lines(snapshot, file, wall_clock_ms());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) (void)std::remove(tmp.c_str());
}

/// Background rewriter for --metrics-interval-ms: scrape-style periodic
/// snapshots of a long-running serve/batch process.
class MetricsWriter {
public:
  MetricsWriter(const bmh::Engine& engine, std::string path, long interval_ms)
      : engine_(engine), path_(std::move(path)) {
    if (path_.empty() || interval_ms <= 0) return;
    thread_ = std::thread([this, interval_ms] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!stop_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                                [this] { return stop_; })) {
        lock.unlock();
        write_metrics_file(engine_, path_);
        lock.lock();
      }
    });
  }

  ~MetricsWriter() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
  }

private:
  const bmh::Engine& engine_;
  std::string path_;
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

} // namespace

int main(int argc, char** argv) {
  try {
    const bmh::CliArgs args(argc, argv);
    if (args.has("help") || argc == 1) {
      std::cout
          << "bmh_engine --spec FILE | --serve | --demo | --list\n"
             "  --out FILE            write JSON lines here (default stdout)\n"
             "  --threads N           engine worker threads (default 1;\n"
             "                        0 = one per processor). --workers is a\n"
             "                        deprecated alias\n"
             "  --threads-per-job N   OpenMP threads inside each job (default 1;\n"
             "                        0 = ambient)\n"
             "  --seed S              base seed for per-job RNG derivation (default 1)\n"
             "  --graph-cache-mb N    byte budget of the shared graph cache\n"
             "                        (default 256; 0 rebuilds every job's graph)\n"
             "  --graph-store DIR     persistent graph tier: spill built graphs\n"
             "                        to DIR, mmap-load them on later runs\n"
             "  --graph-store-budget-mb N\n"
             "                        prune DIR (least recently used first) when\n"
             "                        spills push it past N MiB (default 0 = off)\n"
             "  --store-fsync         fsync each spilled graph (durability)\n"
             "  --stream              batch: emit each record in index order as\n"
             "                        it completes and drop it (bounded memory)\n"
             "  --serve               read job spec lines from stdin, emit each\n"
             "                        result as it completes (flushed per line);\n"
             "                        SIGTERM/SIGINT drain in-flight jobs, then\n"
             "                        exit normally\n"
             "  --queue-depth N       submission ring capacity (rounded up to a\n"
             "                        power of two; default 0 = auto,\n"
             "                        max(1024, 4*threads)). --serve's in-flight\n"
             "                        window is derived from it\n"
             "  --no-timings          omit per-stage wall-clock fields\n"
             "  --metrics-out FILE    write the final metrics snapshot to FILE\n"
             "                        (Prometheus text if FILE ends in .prom,\n"
             "                        JSON lines otherwise)\n"
             "  --metrics-interval-ms N\n"
             "                        additionally rewrite FILE every N ms while\n"
             "                        running (atomic tmp+rename)\n"
             "  --quiet               no progress lines on stderr\n";
      return 0;
    }
    if (args.has("list")) {
      // One `category name` line each, categories in fixed order and names
      // sorted within — a stable, grep-friendly introspection surface.
      for (const std::string& name : bmh::job_kind_names())
        std::cout << "kind " << name << '\n';
      for (const std::string& scheme : bmh::registered_graph_source_schemes())
        std::cout << "source " << scheme << '\n';
      for (const std::string& name : bmh::registered_algorithm_names())
        std::cout << "algorithm " << name << '\n';
      for (const std::string& name : bmh::registered_undirected_algorithm_names())
        std::cout << "undirected " << name << '\n';
      for (const std::string& name : bmh::analysis_type_names())
        std::cout << "analysis " << name << '\n';
      return 0;
    }

    const bool serve = args.has("serve");
    std::vector<bmh::JobSpec> jobs;
    if (serve) {
      if (args.has("spec") || args.has("demo") || args.has("stream"))
        throw std::runtime_error("--serve reads stdin; it excludes --spec/--demo/--stream");
    } else if (args.has("demo")) {
      jobs = bmh::demo_batch();
    } else if (args.has("spec")) {
      jobs = bmh::parse_job_spec_file(args.get("spec", ""));
    } else {
      std::cerr << "error: need --spec FILE, --serve, --demo or --list (see --help)\n";
      return 2;
    }
    if (!serve && jobs.empty()) {
      std::cerr << "error: job spec contains no jobs\n";
      return 2;
    }

    bmh::EngineConfig config;
    config.threads = static_cast<int>(
        args.get_int("threads", args.get_int("workers", 1)));
    config.threads_per_job = static_cast<int>(args.get_int("threads-per-job", 1));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const auto cache_mb = args.get_int("graph-cache-mb", 256);
    if (cache_mb < 0) throw std::runtime_error("--graph-cache-mb must be >= 0");
    config.graph_cache_mb = static_cast<std::size_t>(cache_mb);
    config.graph_store_dir = args.get("graph-store", "");
    if (!config.graph_store_dir.empty() && config.graph_cache_mb == 0)
      throw std::runtime_error(
          "--graph-store needs the graph cache (--graph-cache-mb > 0)");
    const auto store_budget_mb = args.get_int("graph-store-budget-mb", 0);
    if (store_budget_mb < 0)
      throw std::runtime_error("--graph-store-budget-mb must be >= 0");
    config.store_budget_mb = static_cast<std::size_t>(store_budget_mb);
    config.store_fsync = args.has("store-fsync");
    const auto queue_depth = args.get_int("queue-depth", 0);
    if (queue_depth < 0) throw std::runtime_error("--queue-depth must be >= 0");
    config.submit_queue_depth = static_cast<std::size_t>(queue_depth);

    bmh::Engine engine(config);

    const std::string metrics_out = args.get("metrics-out", "");
    const auto metrics_interval_ms = args.get_int("metrics-interval-ms", 0);
    if (metrics_interval_ms < 0)
      throw std::runtime_error("--metrics-interval-ms must be >= 0");
    if (metrics_interval_ms > 0 && metrics_out.empty())
      throw std::runtime_error("--metrics-interval-ms needs --metrics-out FILE");
    MetricsWriter metrics_writer(engine, metrics_out,
                                 static_cast<long>(metrics_interval_ms));

    const bool quiet = args.has("quiet");
    const bool include_timings = !args.has("no-timings");
    const auto progress = [&](const bmh::JobResult& r) {
      if (quiet) return;
      if (r.ok)
        std::cerr << "done " << r.name << ": " << r.algorithm << " cardinality "
                  << r.result.cardinality << " in " << r.result.total_seconds
                  << " s\n";
      else
        std::cerr << "FAIL " << r.name << ": " << r.error << '\n';
    };

    std::ofstream file;
    std::ostream* out = &std::cout;
    if (args.has("out")) {
      const std::string path = args.get("out", "");
      file.open(path);
      if (!file) throw std::runtime_error("cannot write '" + path + "'");
      out = &file;
    }

    bmh::Timer timer;
    std::size_t failed = 0;
    std::size_t total = jobs.size();
    if (serve) {
      // The server loop: submit each stdin line as it is read, emit each
      // record the moment its job completes. A window of in-flight jobs
      // applies backpressure so a fast producer cannot queue an unbounded
      // batch; parse failures become ok=false records (a server must
      // outlive bad requests) and consume an index like any other line.
      // The window is the engine's own submission-ring capacity (--queue-
      // depth): staying within it means the blocking submit below never
      // stalls on a full ring — backpressure is applied here, where the
      // reader can stop consuming stdin, not inside the engine.
      ServeState state;
      const std::size_t window = engine.submit_capacity();
      // Callers render the JSON line *before* taking state.mutex — the
      // lock covers only the write/flush/counters, so workers do not
      // convoy on result formatting.
      const auto emit = [&](const bmh::JobResult& r, const std::string& line) {
        *out << line << '\n';
        out->flush();
        progress(r);
        ++state.jobs;
        if (!r.ok) ++state.failed;
      };
      install_drain_handlers();
      std::string line;
      std::size_t index = 0;
      for (std::size_t line_no = 1;
           g_drain_signal == 0 && std::getline(std::cin, line); ++line_no) {
        const std::size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#') continue;
        bmh::JobSpec job;
        try {
          job = bmh::parse_job_spec_line(line);
        } catch (const std::exception& e) {
          const bmh::JobResult r = bmh::parse_error_result(
              index++, "line" + std::to_string(line_no), line,
              "line " + std::to_string(line_no) + ": " + e.what());
          const std::string rendered = bmh::to_json_line(r, include_timings);
          // Drain in-flight jobs first so this record leaves in submission
          // order like any other (bad lines are the rare error path; the
          // momentary stall doesn't matter there).
          std::unique_lock<std::mutex> lock(state.mutex);
          state.drained.wait(lock, [&] { return state.in_flight == 0; });
          emit(r, rendered);
          continue;
        }
        if (job.name.empty()) job.name = "job" + std::to_string(index);
        {
          std::unique_lock<std::mutex> lock(state.mutex);
          state.drained.wait(lock, [&] { return state.in_flight < window; });
          ++state.in_flight;
        }
        engine.submit(
            std::move(job),
            [&](bmh::JobResult&& r) {
              const std::string rendered = bmh::to_json_line(r, include_timings);
              std::lock_guard<std::mutex> lock(state.mutex);
              emit(r, rendered);
              --state.in_flight;
              state.drained.notify_all();
            },
            index++);
      }
      if (g_drain_signal != 0 && !quiet)
        std::cerr << "bmh_engine: caught signal " << static_cast<int>(g_drain_signal)
                  << ", draining in-flight jobs\n";
      std::unique_lock<std::mutex> lock(state.mutex);
      state.drained.wait(lock, [&] { return state.in_flight == 0; });
      total = state.jobs;
      failed = state.failed;
      // One machine-readable summary of the serve session, on stderr (the
      // record stream on stdout must stay byte-identical to batch mode).
      // `jobs` equals the records emitted above — CI cross-checks it, and
      // `drained` marks a signal-initiated shutdown (field absent on a
      // normal EOF exit, keeping that output byte-stable).
      const bmh::obs::HistogramData job_latency =
          engine.metrics().histogram_merged("worker", "job");
      std::cerr << "{\"record\":\"serve_metrics\",\"jobs\":" << state.jobs
                << ",\"failed\":" << state.failed
                << (g_drain_signal != 0 ? ",\"drained\":true" : "")
                << ",\"job_count\":" << job_latency.count
                << ",\"p50_ms\":" << job_latency.p50_ns() / 1e6
                << ",\"p99_ms\":" << job_latency.p99_ns() / 1e6 << "}\n";
    } else if (args.has("stream")) {
      failed = engine.run(jobs, [&](const bmh::JobResult& r) {
        *out << bmh::to_json_line(r, include_timings) << '\n';
        progress(r);
      });
    } else {
      const std::vector<bmh::JobResult> results = engine.run_collect(jobs, progress);
      bmh::write_jsonl(*out, results, include_timings);
      for (const bmh::JobResult& r : results)
        if (!r.ok) ++failed;
    }
    if (args.has("out") && !quiet)
      std::cerr << "wrote " << total << " records to " << args.get("out", "")
                << '\n';

    if (!quiet) {
      const bmh::Engine::Stats stats = engine.stats();
      std::cerr << total - failed << "/" << total << " jobs ok, "
                << engine.threads() << " threads x " << config.threads_per_job
                << " threads/job, " << stats.cold_builds
                << " cold graph builds, " << timer.seconds() << " s total\n";
      if (engine.cache() != nullptr) {
        const bmh::GraphCache::Stats s = stats.cache;
        std::cerr << "graph cache: " << s.hits << " hits, " << s.misses
                  << " misses, " << s.evictions << " evictions, "
                  << s.race_discards << " race discards, " << s.entries
                  << " graphs resident (" << s.bytes / (1024.0 * 1024.0)
                  << " MiB of " << config.graph_cache_mb << ")\n";
        if (engine.store() != nullptr) {
          const bmh::GraphStore::Stats t = engine.store()->stats();
          std::cerr << "graph store: " << s.store_hits << " hits, "
                    << s.store_misses << " misses, " << s.store_spills
                    << " spills, " << t.pruned << " pruned, " << t.io_errors
                    << " io errors, " << t.content_errors << " content errors, "
                    << t.healed << " healed (" << engine.store()->dir() << ")\n";
          if (t.breaker_trips > 0 || engine.store()->breaker_open())
            std::cerr << "graph store breaker: " << t.breaker_trips << " trips, "
                      << t.breaker_skips << " skipped calls, "
                      << (engine.store()->breaker_open() ? "open" : "closed")
                      << " at exit\n";
          if (t.errors_total() > 0)
            std::cerr << "graph store last error: " << engine.store()->last_error()
                      << '\n';
        }
      }
      if (bmh::obs::kEnabled) {
        // Stage latency percentiles from the per-worker histograms, merged
        // across the pool (log-bucketed: ~12.5% worst-case bucket error).
        const bmh::obs::Snapshot snapshot = engine.metrics();
        const auto line = [&](const char* label, const char* metric) {
          const bmh::obs::HistogramData h =
              snapshot.histogram_merged("worker", metric);
          if (h.count == 0) return;
          std::cerr << "latency " << label << ": p50 " << h.p50_ns() / 1e6
                    << " ms, p99 " << h.p99_ns() / 1e6 << " ms ("
                    << h.count << " samples)\n";
        };
        line("job", "job");
        line("queue-wait", "queue_wait");
        line("graph-acquire", "graph_acquire");
        line("match", "stage_match");
      }
    }
    if (!metrics_out.empty()) write_metrics_file(engine, metrics_out);
    return failed == 0 ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
