/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the bmh public API.
///
/// Builds a random sparse matrix, scales it, runs both heuristics of the
/// paper, and compares their matching quality against the exact optimum.
///
/// Usage: quickstart [--n 100000] [--degree 4] [--iters 5] [--seed 1]

#include <cstdio>
#include <iostream>

#include "bmh.hpp"

int main(int argc, char** argv) {
  const bmh::CliArgs args(argc, argv);
  const auto n = static_cast<bmh::vid_t>(args.get_int("n", 100000));
  const auto degree = static_cast<bmh::eid_t>(args.get_int("degree", 4));
  const int iters = static_cast<int>(args.get_int("iters", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "bmh quickstart: Erdos-Renyi n=" << n << ", ~" << degree
            << " nonzeros/row, " << iters << " scaling iterations, "
            << bmh::max_threads() << " threads\n\n";

  // 1. Build (or load, see read_matrix_market_file) a bipartite graph.
  const bmh::BipartiteGraph graph = bmh::make_erdos_renyi(n, n, degree * n, seed);
  std::cout << "graph: " << graph.num_rows() << " x " << graph.num_cols() << ", "
            << bmh::format_count(graph.num_edges()) << " edges\n";

  // 2. Ground truth for quality reporting.
  bmh::Timer timer;
  const bmh::vid_t exact = bmh::sprank(graph);
  std::cout << "sprank (Hopcroft-Karp): " << exact << "  [" << timer.milliseconds()
            << " ms]\n\n";

  // 3. OneSidedMatch — synchronization-free, guarantee 0.632.
  timer.reset();
  const bmh::Matching one = bmh::one_sided_match(graph, iters, seed);
  const double t_one = timer.milliseconds();

  // 4. TwoSidedMatch — Karp-Sipser on the 1-out/1-in subgraph, ~0.866.
  timer.reset();
  const bmh::Matching two = bmh::two_sided_match(graph, iters, seed);
  const double t_two = timer.milliseconds();

  bmh::Table table({"heuristic", "cardinality", "quality", "guarantee", "ms"});
  table.row()
      .add("OneSidedMatch")
      .add(std::int64_t{one.cardinality()})
      .add(bmh::matching_quality(one, exact), 4)
      .add(bmh::kOneSidedGuarantee, 3)
      .add(t_one, 1);
  table.row()
      .add("TwoSidedMatch")
      .add(std::int64_t{two.cardinality()})
      .add(bmh::matching_quality(two, exact), 4)
      .add(bmh::kTwoSidedGuarantee, 3)
      .add(t_two, 1);
  table.print(std::cout, "results");

  const bool ok = bmh::is_valid_matching(graph, one) && bmh::is_valid_matching(graph, two);
  std::cout << "\nmatchings valid: " << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
