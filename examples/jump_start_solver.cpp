/// \file jump_start_solver.cpp
/// \brief The paper's motivating application: cheap heuristics as
/// jump-start routines for exact matching solvers.
///
/// State-of-the-art maximum matching codes (MC21/Hopcroft-Karp families)
/// start from a greedy initialization; the quality of that initialization
/// determines how many expensive augmentations remain. This example runs
/// the exact solver cold and warm-started from each heuristic, reporting
/// the initialization quality and the end-to-end time.
///
/// Usage: jump_start_solver [--n 500000] [--degree 5] [--seed 3]

#include <iostream>

#include "bmh.hpp"

namespace {

struct WarmStartRow {
  const char* name;
  bmh::Matching init;
  double init_ms;
};

} // namespace

int main(int argc, char** argv) {
  const bmh::CliArgs args(argc, argv);
  const auto n = static_cast<bmh::vid_t>(args.get_int("n", 500000));
  const auto degree = static_cast<bmh::eid_t>(args.get_int("degree", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  const bmh::BipartiteGraph graph = bmh::make_erdos_renyi(n, n, degree * n, seed);
  std::cout << "jump-start study on ER graph: n=" << n << ", "
            << bmh::format_count(graph.num_edges()) << " edges, "
            << bmh::max_threads() << " threads\n\n";

  bmh::Timer timer;
  std::vector<WarmStartRow> inits;
  inits.push_back({"cold (none)", bmh::Matching(n, n), 0.0});

  timer.reset();
  bmh::Matching greedy = bmh::match_random_vertices(graph, seed);
  inits.push_back({"random-vertex greedy", std::move(greedy), timer.milliseconds()});

  timer.reset();
  bmh::Matching ks = bmh::karp_sipser(graph, seed);
  inits.push_back({"Karp-Sipser (seq)", std::move(ks), timer.milliseconds()});

  timer.reset();
  bmh::Matching one = bmh::one_sided_match(graph, 5, seed);
  inits.push_back({"OneSidedMatch", std::move(one), timer.milliseconds()});

  timer.reset();
  bmh::Matching two = bmh::two_sided_match(graph, 5, seed);
  inits.push_back({"TwoSidedMatch", std::move(two), timer.milliseconds()});

  const bmh::vid_t optimum = bmh::sprank(graph);

  bmh::Table table({"initialization", "init quality", "init ms", "solve ms", "total ms"});
  for (const auto& row : inits) {
    timer.reset();
    const bmh::Matching exact = bmh::hopcroft_karp(graph, &row.init);
    const double solve_ms = timer.milliseconds();
    if (exact.cardinality() != optimum) {
      std::cerr << "BUG: warm-started solve is not optimal\n";
      return 1;
    }
    table.row()
        .add(row.name)
        .add(bmh::matching_quality(row.init, optimum), 4)
        .add(row.init_ms, 1)
        .add(solve_ms, 1)
        .add(row.init_ms + solve_ms, 1);
  }
  table.print(std::cout, "exact solve (Hopcroft-Karp) with different jump-starts");
  std::cout << "\nsprank = " << optimum << " (all warm starts reached it)\n";
  return 0;
}
