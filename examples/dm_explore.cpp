/// \file dm_explore.cpp
/// \brief Dulmage-Mendelsohn exploration (paper §3.3): decompose a matrix
/// without a perfect matching and watch Sinkhorn-Knopp suppress the
/// coupling entries that no maximum matching can use.
///
/// Usage: dm_explore [--mtx file.mtx] (default: a generated DM-structured
/// instance with planted H/S/V blocks)

#include <algorithm>
#include <iostream>

#include "bmh.hpp"

int main(int argc, char** argv) {
  const bmh::CliArgs args(argc, argv);

  bmh::BipartiteGraph graph;
  if (args.has("mtx")) {
    const std::string path = args.get("mtx", "");
    std::cout << "loading " << path << "\n";
    graph = bmh::read_matrix_market_file(path);
  } else {
    graph = bmh::make_dm_structured(/*h_rows=*/200, /*h_cols=*/300, /*s_n=*/400,
                                    /*v_rows=*/350, /*v_cols=*/250,
                                    /*coupling_per_row=*/3, /*seed=*/7);
    std::cout << "generated DM-structured instance (use --mtx to load a file)\n";
  }

  const bmh::DmDecomposition dm = bmh::dulmage_mendelsohn(graph);
  std::cout << "matrix: " << graph.num_rows() << " x " << graph.num_cols() << ", "
            << bmh::format_count(graph.num_edges()) << " entries, sprank " << dm.sprank
            << "\n\n";

  bmh::Table blocks({"part", "rows", "cols", "meaning"});
  blocks.row().add("H").add(std::int64_t{dm.h_rows}).add(std::int64_t{dm.h_cols})
      .add("underdetermined: row-perfect matching");
  blocks.row().add("S").add(std::int64_t{dm.s_size}).add(std::int64_t{dm.s_size})
      .add("square: perfect matching");
  blocks.row().add("V").add(std::int64_t{dm.v_rows}).add(std::int64_t{dm.v_cols})
      .add("overdetermined: column-perfect matching");
  blocks.print(std::cout, "coarse Dulmage-Mendelsohn decomposition");

  std::cout << "\nsprank check: h_rows + s + v_cols = "
            << dm.h_rows + dm.s_size + dm.v_cols << " = sprank\n";
  std::cout << "total support: " << (bmh::has_total_support(graph) ? "yes" : "no")
            << ", fully indecomposable: "
            << (bmh::is_fully_indecomposable(graph) ? "yes" : "no") << "\n\n";

  // Track the maximum scaled value of a coupling ("*") entry vs iterations.
  bmh::Table decay({"iterations", "max * entry", "scaling error"});
  for (const int iters : {1, 5, 10, 50, 100}) {
    const bmh::ScalingResult s = bmh::scale_sinkhorn_knopp(graph, {iters, 0.0});
    double max_star = 0.0;
    for (bmh::vid_t i = 0; i < graph.num_rows(); ++i)
      for (const bmh::vid_t j : graph.row_neighbors(i))
        if (dm.row_part[static_cast<std::size_t>(i)] !=
            dm.col_part[static_cast<std::size_t>(j)])
          max_star = std::max(max_star, s.entry(i, j));
    decay.row().add(iters).add(max_star, 6).add(s.error, 6);
  }
  decay.print(std::cout,
              "scaling suppresses entries outside all maximum matchings (§3.3)");

  // Consequence for the heuristics: quality on this deficient matrix.
  const bmh::Matching two = bmh::two_sided_match(graph, 10, 3);
  std::cout << "\nTwoSidedMatch on this deficient matrix: quality "
            << bmh::matching_quality(two, dm.sprank) << " (conjecture: "
            << bmh::kTwoSidedGuarantee << ")\n";
  return 0;
}
