/// \file adversarial_ks.cpp
/// \brief Reproduces the paper's Fig. 2 / Table 1 story as a narrative demo:
/// why plain Karp-Sipser fails on the adversarial family and how the
/// scaling step rescues TwoSidedMatch.
///
/// Usage: adversarial_ks [--n 3200] [--k 32] [--runs 10]

#include <algorithm>
#include <iostream>

#include "bmh.hpp"

int main(int argc, char** argv) {
  const bmh::CliArgs args(argc, argv);
  const auto n = static_cast<bmh::vid_t>(args.get_int("n", 3200));
  const auto k = static_cast<bmh::vid_t>(args.get_int("k", 32));
  const int runs = static_cast<int>(args.get_int("runs", 10));

  std::cout << "adversarial family (paper Fig. 2): n=" << n << ", k=" << k << "\n"
            << "R1xC1 is full but useless: only the cross diagonals form the\n"
            << "perfect matching. KS picks uniform random edges and lands in\n"
            << "the full block; scaling drives those probabilities to zero.\n\n";

  const bmh::BipartiteGraph graph = bmh::make_ks_adversarial(n, k);

  // Plain Karp-Sipser: worst of `runs`.
  bmh::vid_t ks_worst = n;
  for (int r = 0; r < runs; ++r)
    ks_worst = std::min(ks_worst,
                        bmh::karp_sipser(graph, static_cast<std::uint64_t>(r)).cardinality());

  bmh::Table table({"algorithm", "scaling iters", "scaling err", "min quality"});
  table.row()
      .add("KarpSipser")
      .add("-")
      .add("-")
      .add(static_cast<double>(ks_worst) / n, 3);

  for (const int iters : {0, 1, 5, 10}) {
    const bmh::ScalingResult scaling =
        iters > 0 ? bmh::scale_sinkhorn_knopp(graph, {iters, 0.0})
                  : bmh::identity_scaling(graph);
    bmh::vid_t worst = n;
    for (int r = 0; r < runs; ++r)
      worst = std::min(
          worst,
          bmh::two_sided_from_scaling(graph, scaling, static_cast<std::uint64_t>(r))
              .cardinality());
    table.row()
        .add("TwoSidedMatch")
        .add(iters)
        .add(scaling.error, 3)
        .add(static_cast<double>(worst) / n, 3);
  }
  table.print(std::cout, "minimum quality over " + std::to_string(runs) + " runs");

  std::cout << "\nthe probability mass a scaled row in R1 puts on the full block:\n";
  const bmh::ScalingResult s10 = bmh::scale_sinkhorn_knopp(graph, {10, 0.0});
  const bmh::vid_t probe = 0;  // a non-full row of R1
  double block_mass = 0.0, total = 0.0;
  for (const bmh::vid_t j : graph.row_neighbors(probe)) {
    const double e = s10.entry(probe, j);
    total += e;
    if (j < n / 2) block_mass += e;
  }
  std::cout << "  row 0: " << 100.0 * block_mass / total
            << "% of its probability on R1xC1 after 10 iterations\n";
  return 0;
}
