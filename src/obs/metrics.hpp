#pragma once
/// \file metrics.hpp
/// \brief Lock-free metrics for the serving stack: counters, gauges and
/// fixed-bucket log-scale latency histograms, grouped into per-owner
/// MetricDomains and aggregated on snapshot.
///
/// Before this subsystem the engine's telemetry was a patchwork: the graph
/// cache folded per-shard counters under its shard locks, the graph store
/// kept a mutex-guarded Stats struct that the cache copied field by field,
/// and `Engine::stats()` assembled its view from all of them at different
/// instants. This file is the one layer underneath: every subsystem owns a
/// `MetricDomain` holding its instruments, the engine's `obs::Registry`
/// knows them all, and one `snapshot()` walk produces a consistent,
/// machine-exportable view (export.hpp renders it as Prometheus text
/// exposition or JSON lines).
///
/// Design rules:
///  * **Hot path = atomics only.** Instruments are found-or-created by name
///    once, at setup (that path allocates and takes a mutex); recording is
///    a relaxed atomic add on a pre-resolved pointer — no locks, no
///    allocation, safe from any thread.
///  * **Histograms are fixed log-scale buckets.** Values are nanoseconds;
///    buckets split each power of two into 8 linear sub-buckets from 128 ns
///    to ~69 s (234 buckets, ~12.5% worst-case relative width), so p50/p90/
///    p99 estimates from `HistogramData::quantile_ns` are within one
///    sub-bucket of the truth. No dynamic resizing, ever.
///  * **Per-domain consistency via a seqlock.** A single-writer domain (an
///    engine worker) brackets each job's metric updates in a
///    `PublishGuard`; `snapshot()` retries while the sequence is odd or
///    moved, so a snapshot never observes half a job (jobs_run incremented
///    but its latency not yet recorded). Multi-writer domains (the graph
///    cache's shards, the store) skip the guard: their counters are
///    individually atomic and monotone, and the snapshot is a point-in-time
///    read of each. The cross-worker model is therefore: atomic per worker
///    domain, monotone-but-skewed (by at most the in-flight jobs) across
///    domains.
///  * **`BMH_OBS_DISABLED` compiles the latency layer out.** Histogram
///    recording becomes an empty inline body and trace spans vanish
///    (`kEnabled == false`); counters and gauges stay live — they back the
///    correctness-bearing `Stats` views and cost no more than the
///    hand-rolled atomics they replaced. Registration, snapshots and
///    exporters keep working (histograms report zeros), so callers and
///    tests need no #ifdefs — gate histogram assertions on `obs::kEnabled`.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace bmh::obs {

#if defined(BMH_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// ---------------------------------------------------------------- buckets --

/// Histogram geometry, shared by the live instrument and its snapshots:
/// bucket 0 is the underflow (< 2^kMinShift ns), the last bucket the
/// overflow (>= 2^kMaxShift ns), and between them every power of two is
/// split into kSub linear sub-buckets.
inline constexpr int kHistMinShift = 7;   ///< 128 ns
inline constexpr int kHistMaxShift = 36;  ///< ~68.7 s
inline constexpr int kHistSubShift = 3;
inline constexpr int kHistSub = 1 << kHistSubShift;  ///< 8 sub-buckets/octave
inline constexpr int kHistBuckets = 2 + (kHistMaxShift - kHistMinShift) * kHistSub;

/// The bucket `ns` lands in.
[[nodiscard]] constexpr int histogram_bucket_index(std::uint64_t ns) noexcept {
  if (ns < (std::uint64_t{1} << kHistMinShift)) return 0;
  const int octave = 63 - std::countl_zero(ns);
  if (octave >= kHistMaxShift) return kHistBuckets - 1;
  const int sub = static_cast<int>((ns - (std::uint64_t{1} << octave)) >>
                                   (octave - kHistSubShift));
  return 1 + (octave - kHistMinShift) * kHistSub + sub;
}

/// Exclusive upper bound of a bucket in nanoseconds (+inf for the overflow
/// bucket).
[[nodiscard]] constexpr double histogram_bucket_upper_ns(int index) noexcept {
  if (index <= 0) return static_cast<double>(std::uint64_t{1} << kHistMinShift);
  if (index >= kHistBuckets - 1) return std::numeric_limits<double>::infinity();
  const int k = index - 1;
  const int octave = kHistMinShift + k / kHistSub;
  const int sub = k % kHistSub;
  return static_cast<double>(
      (std::uint64_t{1} << octave) +
      (static_cast<std::uint64_t>(sub) + 1) * (std::uint64_t{1} << (octave - kHistSubShift)));
}

/// Inclusive lower bound of a bucket in nanoseconds (0 for the underflow
/// bucket).
[[nodiscard]] constexpr double histogram_bucket_lower_ns(int index) noexcept {
  return index <= 0 ? 0.0 : histogram_bucket_upper_ns(index - 1);
}

// ------------------------------------------------------------- instruments --

/// Monotone event count. Increments are relaxed atomics: safe from any
/// thread, allocation-free, ordered only by the owning domain's seqlock.
///
/// Counters (and gauges) stay live under BMH_OBS_DISABLED: they back the
/// correctness-bearing `Stats` views (Engine/GraphCache/GraphStore) that
/// predate this subsystem, and each costs exactly the relaxed atomic the
/// hand-rolled counters they replaced cost. The flag compiles out the
/// *latency* layer — histograms and trace spans — which is the part with
/// measurable hot-path weight.
class Counter {
public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (resident bytes, entries, window occupancy).
class Gauge {
public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Read-side copy of a histogram: plain integers, mergeable, with quantile
/// estimation. This is what snapshots and exporters carry.
struct HistogramData {
  std::array<std::uint64_t, static_cast<std::size_t>(kHistBuckets)> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  void merge(const HistogramData& other) noexcept {
    for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
    count += other.count;
    sum_ns += other.sum_ns;
  }

  /// Estimated q-quantile in nanoseconds (linear interpolation inside the
  /// containing bucket; the overflow bucket clamps to its lower bound).
  /// 0 when the histogram is empty.
  [[nodiscard]] double quantile_ns(double q) const noexcept;

  [[nodiscard]] double p50_ns() const noexcept { return quantile_ns(0.50); }
  [[nodiscard]] double p90_ns() const noexcept { return quantile_ns(0.90); }
  [[nodiscard]] double p99_ns() const noexcept { return quantile_ns(0.99); }
  [[nodiscard]] double mean_ns() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
};

/// Fixed-bucket log-scale latency histogram (values in nanoseconds).
/// Recording is three relaxed atomic adds — lock-free, allocation-free.
class Histogram {
public:
  void record(std::uint64_t ns) noexcept {
    if constexpr (kEnabled) {
      buckets_[static_cast<std::size_t>(histogram_bucket_index(ns))].fetch_add(
          1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    } else {
      (void)ns;
    }
  }

  /// Convenience for stage timings kept in seconds.
  void record_seconds(double seconds) noexcept {
    if constexpr (kEnabled) {
      if (seconds < 0) seconds = 0;
      record(static_cast<std::uint64_t>(seconds * 1e9));
    } else {
      (void)seconds;
    }
  }

  [[nodiscard]] HistogramData data() const noexcept {
    HistogramData out;
    for (std::size_t b = 0; b < out.buckets.size(); ++b)
      out.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    out.count = count_.load(std::memory_order_relaxed);
    out.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return out;
  }

private:
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(kHistBuckets)>
      buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

// --------------------------------------------------------------- snapshots --

/// Point-in-time copy of one domain's instruments, by name.
struct DomainSnapshot {
  std::string name;
  int instance = -1;  ///< -1: singleton domain (cache, store); >= 0: worker id
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  [[nodiscard]] std::uint64_t counter_or(std::string_view metric,
                                         std::uint64_t fallback = 0) const noexcept;
  [[nodiscard]] std::int64_t gauge_or(std::string_view metric,
                                      std::int64_t fallback = 0) const noexcept;
  /// nullptr when the domain has no histogram of that name.
  [[nodiscard]] const HistogramData* histogram(std::string_view metric) const noexcept;

  /// Sums `other` into this (counters and histogram buckets add, gauges
  /// add — aggregated gauges are totals across instances).
  void merge(const DomainSnapshot& other);
};

/// A consistent view over a set of domains (see the header comment for the
/// consistency model).
struct Snapshot {
  std::vector<DomainSnapshot> domains;

  /// Merges same-named domains (the per-worker "worker" instances become
  /// one), preserving first-seen order; `instance` becomes -1.
  [[nodiscard]] Snapshot aggregated() const;

  /// First domain of that name, or nullptr.
  [[nodiscard]] const DomainSnapshot* domain(std::string_view name) const noexcept;

  /// Sum of `metric` over every domain named `domain_name`.
  [[nodiscard]] std::uint64_t counter_total(std::string_view domain_name,
                                            std::string_view metric) const noexcept;

  /// Bucket-wise merge of `metric` over every domain named `domain_name`
  /// (empty HistogramData when absent).
  [[nodiscard]] HistogramData histogram_merged(std::string_view domain_name,
                                               std::string_view metric) const;
};

// ------------------------------------------------------------------ domain --

/// A named bag of instruments with one owner semantic:
///  * single-writer domains bracket updates in a PublishGuard, making
///    `snapshot()` atomic with respect to those update bursts;
///  * multi-writer domains never touch the guard — every instrument is
///    individually atomic and `snapshot()` is one relaxed pass.
///
/// Instrument creation (`counter`/`gauge`/`histogram`) is find-or-create by
/// name under a mutex — do it at setup and keep the returned references
/// (they are stable for the domain's lifetime); never on a hot path.
class MetricDomain {
public:
  explicit MetricDomain(std::string name, int instance = -1)
      : name_(std::move(name)), instance_(instance) {}
  MetricDomain(const MetricDomain&) = delete;
  MetricDomain& operator=(const MetricDomain&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int instance() const noexcept { return instance_; }

  [[nodiscard]] Counter& counter(std::string_view metric);
  [[nodiscard]] Gauge& gauge(std::string_view metric);
  [[nodiscard]] Histogram& histogram(std::string_view metric);

  /// Seqlock write bracket for single-writer domains. Keep the critical
  /// section to the update burst itself (a dozen atomic adds): concurrent
  /// snapshots spin while it is open.
  void publish_begin() noexcept {
    if constexpr (kEnabled) {
      seq_.fetch_add(1, std::memory_order_relaxed);
      // release fence: snapshot readers must not see burst writes with an
      // even (pre-increment) seq — pairs with their acquire load.
      std::atomic_thread_fence(std::memory_order_release);
    }
  }
  void publish_end() noexcept {
    if constexpr (kEnabled) {
      // release fence orders the burst's writes before the closing
      // increment; readers re-checking seq acquire-pair with it.
      std::atomic_thread_fence(std::memory_order_release);
      seq_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Reads every instrument; retries while a PublishGuard is open or closed
  /// mid-read, so the result never contains half an update burst. Bounded
  /// retries (a torn read after ~64k attempts is accepted rather than
  /// livelocking — unreachable in practice since bursts are microseconds).
  [[nodiscard]] DomainSnapshot snapshot() const;

private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> value;
  };

  template <typename T>
  T& find_or_create(std::vector<Named<T>>& list, std::string_view metric)
      BMH_REQUIRES(create_mutex_);

  std::string name_;
  int instance_ = -1;
  /// Seqlock sequence word — deliberately NOT a BMH_GUARDED_BY member: the
  /// protocol is lock-free by design. The single writer brackets its update
  /// burst with publish_begin/publish_end (odd seq = burst open, release
  /// fences order the instrument writes); snapshot() re-reads seq around its
  /// copy and retries on change. The create_mutex_ below guards only the
  /// instrument *lists*; the atomic instrument values and this word are
  /// synchronized by the seqlock alone.
  std::atomic<std::uint64_t> seq_{0};
  mutable Mutex create_mutex_;  ///< guards the lists, never the values
  std::vector<Named<Counter>> counters_ BMH_GUARDED_BY(create_mutex_);
  std::vector<Named<Gauge>> gauges_ BMH_GUARDED_BY(create_mutex_);
  std::vector<Named<Histogram>> histograms_ BMH_GUARDED_BY(create_mutex_);
};

/// RAII PublishGuard: brackets one update burst of a single-writer domain.
class PublishGuard {
public:
  explicit PublishGuard(MetricDomain& domain) noexcept : domain_(domain) {
    domain_.publish_begin();
  }
  ~PublishGuard() { domain_.publish_end(); }
  PublishGuard(const PublishGuard&) = delete;
  PublishGuard& operator=(const PublishGuard&) = delete;

private:
  MetricDomain& domain_;
};

// ---------------------------------------------------------------- registry --

/// The set of domains one snapshot covers. Owns the domains it creates
/// (per-worker domains) and can additionally attach externally-owned ones
/// (the cache's and store's — they outlive the registry by contract).
class Registry {
public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Creates and owns a new domain. The reference is stable for the
  /// registry's lifetime.
  MetricDomain& create_domain(std::string name, int instance = -1);

  /// Attaches a caller-owned domain (must outlive the registry).
  void attach(MetricDomain* domain);

  /// Snapshots every domain, owned and attached, each with its own
  /// per-domain consistency (see MetricDomain::snapshot).
  [[nodiscard]] Snapshot snapshot() const;

private:
  mutable Mutex mutex_;  ///< guards the lists (setup-time only)
  std::vector<std::unique_ptr<MetricDomain>> owned_ BMH_GUARDED_BY(mutex_);
  std::vector<MetricDomain*> attached_ BMH_GUARDED_BY(mutex_);
};

} // namespace bmh::obs
