#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace bmh::obs {

namespace {

/// Non-local initialization on purpose: the first now_ns() call must not
/// pay a function-local static guard on the hot path (and must not
/// allocate, for the zero-allocation certifications).
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

} // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_process_start)
          .count());
}

TraceJournal::TraceJournal(std::size_t capacity) {
  std::size_t rounded = 1;
  while (rounded < capacity) rounded <<= 1;
  rounded = std::max<std::size_t>(rounded, 2);
  slots_ = std::vector<Slot>(rounded);
  mask_ = rounded - 1;
}

void TraceJournal::record(const char* name, std::uint64_t start_ns,
                          std::uint64_t dur_ns, std::uint32_t depth) noexcept {
#if !defined(BMH_OBS_DISABLED)
  const std::uint64_t claim = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[claim & mask_];
  // Invalidate first so a concurrent reader never mixes this event's fields
  // with the previous occupant's; the new id is published last (release)
  // once every field is in place.
  slot.id.store(0, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.depth.store(depth, std::memory_order_relaxed);
  // release publishes the field writes above; readers acquire-load id.
  slot.id.store(claim + 1, std::memory_order_release);
#else
  (void)name; (void)start_ns; (void)dur_ns; (void)depth;
#endif
}

std::vector<TraceEvent> TraceJournal::events() const {
  std::vector<TraceEvent> out;
  // acquire pairs with record()'s release id store: any event at or below
  // this head has fully published fields (or a visibly-changed id).
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t window = std::min<std::uint64_t>(head, slots_.size());
  out.reserve(static_cast<std::size_t>(window));
  for (std::uint64_t id = head - window + 1; id <= head && head > 0; ++id) {
    const Slot& slot = slots_[(id - 1) & mask_];
    if (slot.id.load(std::memory_order_acquire) != id) continue;  // overwritten
    TraceEvent event;
    event.name = slot.name.load(std::memory_order_relaxed);
    event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    event.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    event.depth = slot.depth.load(std::memory_order_relaxed);
    event.id = id;
    // Re-check the generation: a writer wrapping past this slot mid-read
    // would have invalidated (or re-published) it under a different id.
    if (slot.id.load(std::memory_order_acquire) != id) continue;
    out.push_back(event);
  }
  return out;
}

#if !defined(BMH_OBS_DISABLED)

namespace {
thread_local TraceJournal* t_journal = nullptr;
thread_local std::uint32_t t_depth = 0;
} // namespace

void bind_thread_journal(TraceJournal* journal) noexcept { t_journal = journal; }

TraceJournal* thread_journal() noexcept { return t_journal; }

void record_phase(const char* name, std::uint64_t start_ns,
                  std::uint64_t dur_ns) noexcept {
  if (t_journal != nullptr) t_journal->record(name, start_ns, dur_ns, t_depth + 1);
}

ScopedSpan::ScopedSpan(const char* name) noexcept
    : journal_(t_journal), name_(name) {
  if (journal_ != nullptr) {
    depth_ = ++t_depth;
    start_ns_ = now_ns();
  }
}

ScopedSpan::~ScopedSpan() {
  if (journal_ != nullptr) {
    journal_->record(name_, start_ns_, now_ns() - start_ns_, depth_);
    --t_depth;
  }
}

#endif  // !BMH_OBS_DISABLED

} // namespace bmh::obs
