#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

namespace bmh::obs {

// ------------------------------------------------------------ HistogramData --

double HistogramData::quantile_ns(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= target) {
      const double lower = histogram_bucket_lower_ns(b);
      const double upper = histogram_bucket_upper_ns(b);
      // The overflow bucket has no width to interpolate over; report its
      // lower bound (a deliberate underestimate — it only matters for jobs
      // beyond the ~69 s ceiling).
      if (std::isinf(upper)) return lower;
      const double fraction =
          std::clamp((target - before) / static_cast<double>(in_bucket), 0.0, 1.0);
      return lower + (upper - lower) * fraction;
    }
  }
  return histogram_bucket_lower_ns(kHistBuckets - 1);  // unreachable
}

// ----------------------------------------------------------- DomainSnapshot --

std::uint64_t DomainSnapshot::counter_or(std::string_view metric,
                                         std::uint64_t fallback) const noexcept {
  for (const auto& [name, value] : counters)
    if (name == metric) return value;
  return fallback;
}

std::int64_t DomainSnapshot::gauge_or(std::string_view metric,
                                      std::int64_t fallback) const noexcept {
  for (const auto& [name, value] : gauges)
    if (name == metric) return value;
  return fallback;
}

const HistogramData* DomainSnapshot::histogram(std::string_view metric) const noexcept {
  for (const auto& [name, data] : histograms)
    if (name == metric) return &data;
  return nullptr;
}

void DomainSnapshot::merge(const DomainSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    bool found = false;
    for (auto& [mine, total] : counters)
      if (mine == name) { total += value; found = true; break; }
    if (!found) counters.emplace_back(name, value);
  }
  for (const auto& [name, value] : other.gauges) {
    bool found = false;
    for (auto& [mine, total] : gauges)
      if (mine == name) { total += value; found = true; break; }
    if (!found) gauges.emplace_back(name, value);
  }
  for (const auto& [name, data] : other.histograms) {
    bool found = false;
    for (auto& [mine, total] : histograms)
      if (mine == name) { total.merge(data); found = true; break; }
    if (!found) histograms.emplace_back(name, data);
  }
}

// ----------------------------------------------------------------- Snapshot --

Snapshot Snapshot::aggregated() const {
  Snapshot out;
  for (const DomainSnapshot& d : domains) {
    DomainSnapshot* into = nullptr;
    for (DomainSnapshot& candidate : out.domains)
      if (candidate.name == d.name) { into = &candidate; break; }
    if (into == nullptr) {
      out.domains.push_back(d);
      out.domains.back().instance = -1;
    } else {
      into->merge(d);
    }
  }
  return out;
}

const DomainSnapshot* Snapshot::domain(std::string_view name) const noexcept {
  for (const DomainSnapshot& d : domains)
    if (d.name == name) return &d;
  return nullptr;
}

std::uint64_t Snapshot::counter_total(std::string_view domain_name,
                                      std::string_view metric) const noexcept {
  std::uint64_t total = 0;
  for (const DomainSnapshot& d : domains)
    if (d.name == domain_name) total += d.counter_or(metric);
  return total;
}

HistogramData Snapshot::histogram_merged(std::string_view domain_name,
                                         std::string_view metric) const {
  HistogramData total;
  for (const DomainSnapshot& d : domains)
    if (d.name == domain_name)
      if (const HistogramData* h = d.histogram(metric)) total.merge(*h);
  return total;
}

// ------------------------------------------------------------- MetricDomain --

// Callers hold create_mutex_ (BMH_REQUIRES): the guarded list must not be
// passed by reference before the lock is taken, or -Wthread-safety-reference
// flags the call site.
template <typename T>
T& MetricDomain::find_or_create(std::vector<Named<T>>& list, std::string_view metric) {
  for (Named<T>& named : list)
    if (named.name == metric) return *named.value;
  list.push_back(Named<T>{std::string(metric), std::make_unique<T>()});
  return *list.back().value;
}

Counter& MetricDomain::counter(std::string_view metric) {
  LockGuard lock(create_mutex_);
  return find_or_create(counters_, metric);
}

Gauge& MetricDomain::gauge(std::string_view metric) {
  LockGuard lock(create_mutex_);
  return find_or_create(gauges_, metric);
}

Histogram& MetricDomain::histogram(std::string_view metric) {
  LockGuard lock(create_mutex_);
  return find_or_create(histograms_, metric);
}

DomainSnapshot MetricDomain::snapshot() const {
  DomainSnapshot out;
  out.name = name_;
  out.instance = instance_;
  // The create mutex pins the instrument *lists*; values are read via the
  // seqlock below (the mutex is never taken by recording paths).
  LockGuard lock(create_mutex_);
  out.counters.resize(counters_.size());
  out.gauges.resize(gauges_.size());
  out.histograms.resize(histograms_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i)
    out.counters[i].first = counters_[i].name;
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    out.gauges[i].first = gauges_[i].name;
  for (std::size_t i = 0; i < histograms_.size(); ++i)
    out.histograms[i].first = histograms_[i].name;

  for (int attempt = 0; attempt < (1 << 16); ++attempt) {
    // Seqlock read: acquire pairs with PublishGuard's release increment.
    const std::uint64_t before = seq_.load(std::memory_order_acquire);
    if (before & 1) {
      // A publish burst is open. A bare retry here can livelock: if the
      // writer was descheduled mid-burst, seq stays odd for its whole
      // timeslice while the spin burns all attempts in microseconds and
      // falls out with a zero-filled snapshot. Yield so the writer can
      // finish the burst; snapshots are rare, the extra syscall is free.
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < counters_.size(); ++i)
      out.counters[i].second = counters_[i].value->value();
    for (std::size_t i = 0; i < gauges_.size(); ++i)
      out.gauges[i].second = gauges_[i].value->value();
    for (std::size_t i = 0; i < histograms_.size(); ++i)
      out.histograms[i].second = histograms_[i].value->data();
    // acquire fence orders the value reads above before the seq re-check.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == before) break;
    std::this_thread::yield();  // raced with a burst; let the writer drain
  }
  return out;
}

// ----------------------------------------------------------------- Registry --

MetricDomain& Registry::create_domain(std::string name, int instance) {
  LockGuard lock(mutex_);
  owned_.push_back(std::make_unique<MetricDomain>(std::move(name), instance));
  return *owned_.back();
}

void Registry::attach(MetricDomain* domain) {
  if (domain == nullptr) return;
  LockGuard lock(mutex_);
  attached_.push_back(domain);
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  LockGuard lock(mutex_);
  out.domains.reserve(owned_.size() + attached_.size());
  for (const auto& domain : owned_) out.domains.push_back(domain->snapshot());
  for (MetricDomain* domain : attached_) out.domains.push_back(domain->snapshot());
  return out;
}

} // namespace bmh::obs
