#pragma once
/// \file trace.hpp
/// \brief Lightweight trace spans over bounded per-worker ring-buffer
/// journals.
///
/// A span is one timed phase of a job — `BMH_SPAN("match")` at the top of a
/// scope records {name, start, duration, nesting depth} into the journal
/// bound to the current thread when the scope exits. The engine binds one
/// `TraceJournal` per worker thread, so the pipeline stages
/// (scale/match/augment/analyze), graph acquisition, cache probes and store
/// I/O all journal themselves with zero configuration; code running outside
/// a bound thread (library users calling kernels directly) pays one
/// thread-local load and records nothing.
///
/// Guarantees on the recording path:
///  * no allocation — the ring is sized at construction and events are
///    written in place;
///  * no locks — one atomic fetch_add claims the slot (journals are
///    single-writer by convention, but the claim is safe regardless);
///  * bounded memory — the ring wraps, overwriting the oldest events; the
///    journal counts every event ever recorded so readers can tell how many
///    wrapped away.
///
/// Readers (`events()`) run concurrently with writers: each slot carries a
/// generation tag written last (release) and checked before/after the field
/// reads, so a slot being overwritten mid-read is skipped instead of
/// returned torn.
///
/// Span names must be string literals (or otherwise outlive the journal):
/// events store the pointer, not a copy — that is what keeps recording
/// allocation-free.
///
/// Under `BMH_OBS_DISABLED` the macro expands to nothing and every method
/// compiles to an empty inline body.

#include <atomic>
#include <cstdint>
#include <vector>

namespace bmh::obs {

/// Monotonic nanosecond clock for spans and latency histograms, measured
/// from process start (small, diffable values).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// One completed span, as read back from a journal.
struct TraceEvent {
  const char* name = nullptr;  ///< the literal passed to BMH_SPAN
  std::uint64_t start_ns = 0;  ///< now_ns() at scope entry
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;     ///< nesting level (1 = outermost span)
  std::uint64_t id = 0;        ///< 1-based recording order, gapless per journal
};

/// Bounded ring buffer of completed spans; one per worker thread.
class TraceJournal {
public:
  /// Capacity is rounded up to a power of two (default 4096 events).
  explicit TraceJournal(std::size_t capacity = 4096);
  TraceJournal(const TraceJournal&) = delete;
  TraceJournal& operator=(const TraceJournal&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Total events ever recorded (those beyond capacity() have wrapped away).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    // acquire pairs with record()'s release publish of the counted event.
    return head_.load(std::memory_order_acquire);
  }

  /// Appends one event. Lock-free, allocation-free; `name` must outlive the
  /// journal (use string literals).
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint32_t depth) noexcept;

  /// The resident events, oldest first. Slots being overwritten while this
  /// runs are skipped, never returned torn.
  [[nodiscard]] std::vector<TraceEvent> events() const;

private:
  struct Slot {
    std::atomic<std::uint64_t> id{0};  ///< 0 = empty; generation tag, written last
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint32_t> depth{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

#if !defined(BMH_OBS_DISABLED)

/// Binds `journal` as the calling thread's span sink (nullptr unbinds).
void bind_thread_journal(TraceJournal* journal) noexcept;

/// The calling thread's bound journal, or nullptr.
[[nodiscard]] TraceJournal* thread_journal() noexcept;

/// Records a phase measured externally (queue wait, which has no scope on
/// the recording thread) into the bound journal at the current depth + 1.
void record_phase(const char* name, std::uint64_t start_ns,
                  std::uint64_t dur_ns) noexcept;

/// RAII span: times its enclosing scope and journals it on exit. Prefer the
/// BMH_SPAN macro.
class ScopedSpan {
public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
  TraceJournal* journal_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

#else  // BMH_OBS_DISABLED: every entry point collapses to an inline no-op.

inline void bind_thread_journal(TraceJournal*) noexcept {}
[[nodiscard]] inline TraceJournal* thread_journal() noexcept { return nullptr; }
inline void record_phase(const char*, std::uint64_t, std::uint64_t) noexcept {}

class ScopedSpan {
public:
  explicit ScopedSpan(const char*) noexcept {}
};

#endif  // BMH_OBS_DISABLED

#define BMH_OBS_CONCAT_INNER(a, b) a##b
#define BMH_OBS_CONCAT(a, b) BMH_OBS_CONCAT_INNER(a, b)

/// Journals the enclosing scope as a span named `name` (a string literal).
#define BMH_SPAN(name) \
  ::bmh::obs::ScopedSpan BMH_OBS_CONCAT(bmh_obs_span_, __LINE__)(name)

} // namespace bmh::obs
