#pragma once
/// \file export.hpp
/// \brief Machine-readable renderings of a metrics Snapshot: Prometheus
/// text exposition format and JSON lines.
///
/// Both exporters aggregate per-worker domains first (the "worker" domain's
/// instances merge into one) and render deterministically: metric order
/// follows registration order, doubles use shortest-round-trip formatting,
/// so identical snapshots serialize to identical bytes — the property the
/// golden-output tests pin down.
///
/// Naming scheme (see README "Observability"):
///   bmh_<domain>_<metric>[_total|_seconds]
/// Counters get the Prometheus `_total` suffix; histograms record
/// nanoseconds internally but export seconds with the `_seconds` suffix, as
/// Prometheus convention requires. Names are sanitized to
/// [a-zA-Z0-9_] before emission.
///
/// Histogram buckets are cumulative (`le` = upper bound in seconds); empty
/// buckets are skipped to keep the exposition small — sparse bucket sets
/// are valid Prometheus — and the `+Inf` bucket, `_sum` and `_count` are
/// always present.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bmh::obs {

/// Prometheus text exposition (version 0.0.4) of the aggregated snapshot.
[[nodiscard]] std::string prometheus_text(const Snapshot& snapshot);
void export_prometheus(const Snapshot& snapshot, std::ostream& out);

/// One JSON object per line, one line per metric of the aggregated
/// snapshot. `ts_ms` stamps every line (pass 0 for deterministic output —
/// the golden tests do).
[[nodiscard]] std::string json_lines_text(const Snapshot& snapshot,
                                          std::int64_t ts_ms = 0);
void export_json_lines(const Snapshot& snapshot, std::ostream& out,
                       std::int64_t ts_ms = 0);

/// One JSON object per trace event ({"record":"span",...}) — the journal
/// companion to the metric lines.
[[nodiscard]] std::string trace_json_lines(const std::vector<TraceEvent>& events);

} // namespace bmh::obs
