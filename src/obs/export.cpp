#include "obs/export.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace bmh::obs {

namespace {

/// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; we map anything
/// else to '_' (domain/metric names here are already snake_case, this is a
/// guard against future punctuation).
std::string sanitize(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9'))
    out.insert(out.begin(), '_');
  return out;
}

/// Shortest round-trip decimal rendering, so identical snapshots serialize
/// to identical bytes (ostream default formatting is locale- and
/// precision-dependent; std::to_chars is neither).
std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  std::array<char, 64> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return ec == std::errc() ? std::string(buf.data(), ptr) : std::string("0");
}

std::string metric_name(const DomainSnapshot& domain, std::string_view metric,
                        std::string_view suffix) {
  std::string out = "bmh_";
  out += sanitize(domain.name);
  out += '_';
  out += sanitize(metric);
  out += suffix;
  return out;
}

constexpr double kNsPerSecond = 1e9;

void prometheus_histogram(std::string& out, const std::string& name,
                          const HistogramData& data) {
  out += "# TYPE " + name + " histogram\n";
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    const std::uint64_t in_bucket = data.buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;  // sparse exposition: skip empty buckets
    cumulative += in_bucket;
    const double upper = histogram_bucket_upper_ns(b);
    if (std::isinf(upper)) continue;  // overflow folds into +Inf below
    out += name + "_bucket{le=\"" + format_double(upper / kNsPerSecond) +
           "\"} " + std::to_string(cumulative) + "\n";
  }
  out += name + "_bucket{le=\"+Inf\"} " + std::to_string(data.count) + "\n";
  out += name + "_sum " +
         format_double(static_cast<double>(data.sum_ns) / kNsPerSecond) + "\n";
  out += name + "_count " + std::to_string(data.count) + "\n";
}

void json_escape_into(std::string& out, std::string_view raw) {
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void json_line_prefix(std::string& out, std::int64_t ts_ms,
                      const DomainSnapshot& domain, std::string_view metric,
                      std::string_view type) {
  out += "{\"ts_ms\":" + std::to_string(ts_ms) + ",\"domain\":\"";
  json_escape_into(out, domain.name);
  out += "\",\"metric\":\"";
  json_escape_into(out, metric);
  out += "\",\"type\":\"";
  out += type;
  out += '"';
}

} // namespace

std::string prometheus_text(const Snapshot& snapshot) {
  const Snapshot agg = snapshot.aggregated();
  std::string out;
  for (const DomainSnapshot& domain : agg.domains) {
    for (const auto& [metric, value] : domain.counters) {
      const std::string name = metric_name(domain, metric, "_total");
      out += "# TYPE " + name + " counter\n";
      out += name + " " + std::to_string(value) + "\n";
    }
    for (const auto& [metric, value] : domain.gauges) {
      const std::string name = metric_name(domain, metric, "");
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + std::to_string(value) + "\n";
    }
    for (const auto& [metric, data] : domain.histograms) {
      prometheus_histogram(out, metric_name(domain, metric, "_seconds"), data);
    }
  }
  return out;
}

void export_prometheus(const Snapshot& snapshot, std::ostream& out) {
  out << prometheus_text(snapshot);
}

std::string json_lines_text(const Snapshot& snapshot, std::int64_t ts_ms) {
  const Snapshot agg = snapshot.aggregated();
  std::string out;
  for (const DomainSnapshot& domain : agg.domains) {
    for (const auto& [metric, value] : domain.counters) {
      json_line_prefix(out, ts_ms, domain, metric, "counter");
      out += ",\"value\":" + std::to_string(value) + "}\n";
    }
    for (const auto& [metric, value] : domain.gauges) {
      json_line_prefix(out, ts_ms, domain, metric, "gauge");
      out += ",\"value\":" + std::to_string(value) + "}\n";
    }
    for (const auto& [metric, data] : domain.histograms) {
      json_line_prefix(out, ts_ms, domain, metric, "histogram");
      out += ",\"count\":" + std::to_string(data.count);
      out += ",\"sum_seconds\":" +
             format_double(static_cast<double>(data.sum_ns) / kNsPerSecond);
      out += ",\"mean_seconds\":" + format_double(data.mean_ns() / kNsPerSecond);
      out += ",\"p50_seconds\":" + format_double(data.p50_ns() / kNsPerSecond);
      out += ",\"p90_seconds\":" + format_double(data.p90_ns() / kNsPerSecond);
      out += ",\"p99_seconds\":" + format_double(data.p99_ns() / kNsPerSecond);
      out += "}\n";
    }
  }
  return out;
}

void export_json_lines(const Snapshot& snapshot, std::ostream& out,
                       std::int64_t ts_ms) {
  out << json_lines_text(snapshot, ts_ms);
}

std::string trace_json_lines(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& event : events) {
    out += "{\"record\":\"span\",\"name\":\"";
    json_escape_into(out, event.name != nullptr ? event.name : "");
    out += "\",\"id\":" + std::to_string(event.id);
    out += ",\"depth\":" + std::to_string(event.depth);
    out += ",\"start_ns\":" + std::to_string(event.start_ns);
    out += ",\"dur_ns\":" + std::to_string(event.dur_ns);
    out += "}\n";
  }
  return out;
}

} // namespace bmh::obs
