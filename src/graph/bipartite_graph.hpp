#pragma once
/// \file bipartite_graph.hpp
/// \brief Compressed bipartite graph / sparse (0,1)-matrix structure.
///
/// The paper treats a bipartite graph G = (V_R ∪ V_C, E) and its adjacency
/// matrix A interchangeably; so do we. `BipartiteGraph` stores both the
/// row-major view (CSR: for each row vertex, its column neighbours) and the
/// column-major view (CSC: for each column vertex, its row neighbours),
/// because the algorithms sweep both sides:
///   * Sinkhorn–Knopp normalizes columns then rows (Alg. 1),
///   * TwoSidedMatch samples one choice per row *and* per column (Alg. 3).
///
/// The structure is immutable after construction; all algorithms treat it as
/// read-only shared state, which is what makes the OpenMP parallelism in
/// this library race-free by construction.
///
/// Storage is pluggable: the four CSR/CSC arrays are `std::span` views over
/// either heap vectors owned by the graph (every constructed or assigned
/// graph — the historical behaviour, byte for byte) or an external read-only
/// region the graph merely keeps alive (a memory-mapped store file, see
/// graph/serialize.hpp). The storage choice is invisible to the algorithm
/// layer: every accessor below returns the same span types either way, and
/// `memory_bytes()` accounts whichever backing is active. Mutating
/// operations (`assign_csr`) convert an externally backed graph to owned
/// storage first, so the immutable mapped bytes are never written.

#include <cstddef>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "util/types.hpp"

namespace bmh {

class BipartiteGraph {
public:
  /// Read-only external backing for a graph whose arrays live outside the
  /// object. `keepalive` owns the bytes (e.g. a MappedFile); the four spans
  /// must stay valid for as long as it does. `resident_bytes` is what
  /// `memory_bytes()` reports — for a mapped store file, the file size the
  /// mapping can page in (what a cache should account).
  struct ExternalStorage {
    std::span<const eid_t> row_ptr;
    std::span<const vid_t> col_idx;
    std::span<const eid_t> col_ptr;
    std::span<const vid_t> row_idx;
    std::shared_ptr<const void> keepalive;
    std::size_t resident_bytes = 0;
  };

  BipartiteGraph();

  /// Constructs from ready-made CSR arrays; the CSC view is derived.
  /// `row_ptr` has `num_rows+1` entries; `col_idx` holds column ids in
  /// [0, num_cols). Column ids within a row need not be sorted; duplicates
  /// must have been removed by the caller (GraphBuilder does both).
  BipartiteGraph(vid_t num_rows, vid_t num_cols,
                 std::vector<eid_t> row_ptr, std::vector<vid_t> col_idx);

  /// Constructs a graph viewing external CSR *and* CSC arrays (both are
  /// given: the point of external backing is loading without rebuilding).
  /// Both orientations are fully validated — sizes, monotone offsets, id
  /// ranges, and the CSC being the exact transpose of the CSR in canonical
  /// layout (row ids per column sorted ascending, as this library always
  /// emits) — so a corrupt or forged region is rejected
  /// (std::invalid_argument) rather than served. Validation reads the
  /// arrays but never copies them.
  BipartiteGraph(vid_t num_rows, vid_t num_cols, ExternalStorage storage);

  // Spans view the storage variant, so copies/moves rebind them rather than
  // letting the defaults alias the source object's vectors.
  BipartiteGraph(const BipartiteGraph& other);
  BipartiteGraph(BipartiteGraph&& other) noexcept;
  BipartiteGraph& operator=(const BipartiteGraph& other);
  BipartiteGraph& operator=(BipartiteGraph&& other) noexcept;
  ~BipartiteGraph() = default;

  /// In-place re-initialization from CSR arrays, reusing the capacity of all
  /// four internal vectors — the pooled-construction path: a graph object
  /// kept in a Workspace can be rebuilt every call without heap traffic once
  /// its buffers have grown to the working-set size (GraphBuilder::build_into
  /// drives this). Input requirements match the constructor; the spans are
  /// validated *before* any member is touched, so on throw the graph is
  /// unchanged. The derived CSC view is identical to the constructor's. An
  /// externally backed graph switches to (fresh) owned storage.
  void assign_csr(vid_t num_rows, vid_t num_cols,
                  std::span<const eid_t> row_ptr, std::span<const vid_t> col_idx);

  [[nodiscard]] vid_t num_rows() const noexcept { return num_rows_; }
  [[nodiscard]] vid_t num_cols() const noexcept { return num_cols_; }
  [[nodiscard]] eid_t num_edges() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }
  [[nodiscard]] bool square() const noexcept { return num_rows_ == num_cols_; }

  /// Column neighbours of row vertex `i` (the nonzero columns of row i).
  [[nodiscard]] std::span<const vid_t> row_neighbors(vid_t i) const noexcept {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }

  /// Row neighbours of column vertex `j` (the nonzero rows of column j).
  [[nodiscard]] std::span<const vid_t> col_neighbors(vid_t j) const noexcept {
    return {row_idx_.data() + col_ptr_[j],
            static_cast<std::size_t>(col_ptr_[j + 1] - col_ptr_[j])};
  }

  [[nodiscard]] eid_t row_degree(vid_t i) const noexcept {
    return row_ptr_[i + 1] - row_ptr_[i];
  }
  [[nodiscard]] eid_t col_degree(vid_t j) const noexcept {
    return col_ptr_[j + 1] - col_ptr_[j];
  }

  /// Raw arrays, exposed for kernels that index edges directly.
  [[nodiscard]] std::span<const eid_t> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const vid_t> col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const eid_t> col_ptr() const noexcept { return col_ptr_; }
  [[nodiscard]] std::span<const vid_t> row_idx() const noexcept { return row_idx_; }

  /// Resident bytes backing the four CSR/CSC arrays: heap capacity for owned
  /// storage (the historical accounting), the external region's
  /// resident_bytes (file size) for mapped storage. Either way, the cost a
  /// cache accounts for keeping this graph around.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// True when the arrays live in heap vectors owned by this object; false
  /// for an external (e.g. memory-mapped) backing.
  [[nodiscard]] bool owns_storage() const noexcept {
    return std::holds_alternative<OwnedStorage>(storage_);
  }

  /// True iff edge (i, j) exists. O(deg) scan; intended for tests/examples.
  [[nodiscard]] bool has_edge(vid_t i, vid_t j) const noexcept;

  /// The transpose graph: rows become columns and vice versa.
  [[nodiscard]] BipartiteGraph transposed() const;

  /// Structural equality (same dims and same sorted adjacency).
  [[nodiscard]] bool structurally_equal(const BipartiteGraph& other) const;

private:
  // No default member initializers: NSDMIs of a nested class are parsed only
  // once the enclosing class is complete, which would leave the storage
  // variant believing OwnedStorage is not default-constructible. The empty
  // graph's canonical {0} row_ptr/col_ptr come from reset_empty() instead.
  struct OwnedStorage {
    std::vector<eid_t> row_ptr;
    std::vector<vid_t> col_idx;
    std::vector<eid_t> col_ptr;
    std::vector<vid_t> row_idx;
  };

  static void validate_csr(vid_t num_rows, vid_t num_cols,
                           std::span<const eid_t> row_ptr,
                           std::span<const vid_t> col_idx);
  static void validate_external(vid_t num_rows, vid_t num_cols,
                                const ExternalStorage& storage);
  void rebind_views() noexcept;
  void reset_empty();
  void build_csc();
  /// Takes the dimensions as parameters (rather than members) so assign_csr
  /// can defer committing num_rows_/num_cols_ until every allocation is done.
  void build_csc_serial(vid_t num_rows, vid_t num_cols);

  vid_t num_rows_ = 0;
  vid_t num_cols_ = 0;
  std::variant<OwnedStorage, ExternalStorage> storage_;
  std::span<const eid_t> row_ptr_;
  std::span<const vid_t> col_idx_;
  std::span<const eid_t> col_ptr_;
  std::span<const vid_t> row_idx_;
};

} // namespace bmh
