#pragma once
/// \file bipartite_graph.hpp
/// \brief Compressed bipartite graph / sparse (0,1)-matrix structure.
///
/// The paper treats a bipartite graph G = (V_R ∪ V_C, E) and its adjacency
/// matrix A interchangeably; so do we. `BipartiteGraph` stores both the
/// row-major view (CSR: for each row vertex, its column neighbours) and the
/// column-major view (CSC: for each column vertex, its row neighbours),
/// because the algorithms sweep both sides:
///   * Sinkhorn–Knopp normalizes columns then rows (Alg. 1),
///   * TwoSidedMatch samples one choice per row *and* per column (Alg. 3).
///
/// The structure is immutable after construction; all algorithms treat it as
/// read-only shared state, which is what makes the OpenMP parallelism in
/// this library race-free by construction.

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace bmh {

class BipartiteGraph {
public:
  BipartiteGraph() = default;

  /// Constructs from ready-made CSR arrays; the CSC view is derived.
  /// `row_ptr` has `num_rows+1` entries; `col_idx` holds column ids in
  /// [0, num_cols). Column ids within a row need not be sorted; duplicates
  /// must have been removed by the caller (GraphBuilder does both).
  BipartiteGraph(vid_t num_rows, vid_t num_cols,
                 std::vector<eid_t> row_ptr, std::vector<vid_t> col_idx);

  /// In-place re-initialization from CSR arrays, reusing the capacity of all
  /// four internal vectors — the pooled-construction path: a graph object
  /// kept in a Workspace can be rebuilt every call without heap traffic once
  /// its buffers have grown to the working-set size (GraphBuilder::build_into
  /// drives this). Input requirements match the constructor; the spans are
  /// validated *before* any member is touched, so on throw the graph is
  /// unchanged. The derived CSC view is identical to the constructor's.
  void assign_csr(vid_t num_rows, vid_t num_cols,
                  std::span<const eid_t> row_ptr, std::span<const vid_t> col_idx);

  [[nodiscard]] vid_t num_rows() const noexcept { return num_rows_; }
  [[nodiscard]] vid_t num_cols() const noexcept { return num_cols_; }
  [[nodiscard]] eid_t num_edges() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }
  [[nodiscard]] bool square() const noexcept { return num_rows_ == num_cols_; }

  /// Column neighbours of row vertex `i` (the nonzero columns of row i).
  [[nodiscard]] std::span<const vid_t> row_neighbors(vid_t i) const noexcept {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }

  /// Row neighbours of column vertex `j` (the nonzero rows of column j).
  [[nodiscard]] std::span<const vid_t> col_neighbors(vid_t j) const noexcept {
    return {row_idx_.data() + col_ptr_[j],
            static_cast<std::size_t>(col_ptr_[j + 1] - col_ptr_[j])};
  }

  [[nodiscard]] eid_t row_degree(vid_t i) const noexcept {
    return row_ptr_[i + 1] - row_ptr_[i];
  }
  [[nodiscard]] eid_t col_degree(vid_t j) const noexcept {
    return col_ptr_[j + 1] - col_ptr_[j];
  }

  /// Raw arrays, exposed for kernels that index edges directly.
  [[nodiscard]] std::span<const eid_t> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const vid_t> col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const eid_t> col_ptr() const noexcept { return col_ptr_; }
  [[nodiscard]] std::span<const vid_t> row_idx() const noexcept { return row_idx_; }

  /// Heap bytes backing the four CSR/CSC arrays (by capacity: the resident
  /// cost a cache accounts for this graph).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return (row_ptr_.capacity() + col_ptr_.capacity()) * sizeof(eid_t) +
           (col_idx_.capacity() + row_idx_.capacity()) * sizeof(vid_t);
  }

  /// True iff edge (i, j) exists. O(deg) scan; intended for tests/examples.
  [[nodiscard]] bool has_edge(vid_t i, vid_t j) const noexcept;

  /// The transpose graph: rows become columns and vice versa.
  [[nodiscard]] BipartiteGraph transposed() const;

  /// Structural equality (same dims and same sorted adjacency).
  [[nodiscard]] bool structurally_equal(const BipartiteGraph& other) const;

private:
  static void validate_csr(vid_t num_rows, vid_t num_cols,
                           std::span<const eid_t> row_ptr,
                           std::span<const vid_t> col_idx);
  void build_csc();
  void build_csc_serial();

  vid_t num_rows_ = 0;
  vid_t num_cols_ = 0;
  std::vector<eid_t> row_ptr_{0};
  std::vector<vid_t> col_idx_;
  std::vector<eid_t> col_ptr_{0};
  std::vector<vid_t> row_idx_;
};

} // namespace bmh
