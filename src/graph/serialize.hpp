#pragma once
/// \file serialize.hpp
/// \brief Versioned, checksummed binary graph files + zero-copy mmap loads.
///
/// The persistent tier of the graph cache (engine/graph_store.hpp) needs a
/// CSR on disk that a restarted process can serve without rebuilding. The
/// format therefore stores *both* orientations — CSR and CSC, exactly the
/// four arrays a BipartiteGraph views — with every array 8-byte aligned, so
/// `load_graph_mapped` can hand `std::span`s straight into the mapped file:
/// no edge-array copies, no CSC reconstruction, first-touch paging by the
/// kernel.
///
/// Layout (little-endian, native integer widths — the header records
/// sizeof(vid_t)/sizeof(eid_t) and the loader refuses mismatches, so a file
/// is portable exactly between builds with the same ABI):
///
///   GraphFileHeader                  (64 bytes, see below)
///   key bytes                        (key_bytes, the canonical graph key)
///   padding to 8                     (zeros)
///   row_ptr  [num_rows+1] x eid_t
///   col_idx  [num_edges]  x vid_t    + padding to 8
///   col_ptr  [num_cols+1] x eid_t
///   row_idx  [num_edges]  x vid_t    + padding to 8
///
/// `payload_crc32` covers every byte after the header; the header itself is
/// cross-checked structurally (magic, version, widths, and the file size
/// derived from the counts must all agree). The loader rejects — naming the
/// offending path — rather than ever serving a truncated, corrupted or
/// dimensionally inconsistent file; on top of that the BipartiteGraph
/// external-storage constructor re-validates both orientations, so even a
/// CRC-valid forgery cannot produce an out-of-contract graph.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "graph/bipartite_graph.hpp"

namespace bmh {

/// Thrown by load_graph_mapped when the file *content* is bad — truncation,
/// bad magic, version/width mismatch, CRC failure, invalid arrays. Distinct
/// from the plain std::runtime_error a transient I/O failure raises (open/
/// stat/mmap errors), so callers like GraphStore can safely delete a
/// provably-bad file without destroying valid ones under fd pressure.
struct GraphFileError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
/// Chainable: pass the previous return value as `seed` to continue a
/// running checksum. Exposed so tests and external tools can validate or
/// (deliberately) forge graph files.
[[nodiscard]] std::uint32_t crc32_ieee(const void* data, std::size_t size,
                                       std::uint32_t seed = 0) noexcept;

inline constexpr char kGraphFileMagic[8] = {'B', 'M', 'H', 'G', 'R', 'P', 'H', '1'};
inline constexpr std::uint32_t kGraphFileVersion = 1;

/// The on-disk header. Fixed 64 bytes; all fields validated on load.
struct GraphFileHeader {
  char magic[8];               ///< kGraphFileMagic
  std::uint32_t version;       ///< kGraphFileVersion
  std::uint32_t header_bytes;  ///< sizeof(GraphFileHeader)
  std::uint32_t sizeof_vid;    ///< sizeof(vid_t) of the writing build
  std::uint32_t sizeof_eid;    ///< sizeof(eid_t) of the writing build
  std::int64_t num_rows;
  std::int64_t num_cols;
  std::int64_t num_edges;
  std::uint64_t file_bytes;    ///< total file size, header included
  std::uint32_t key_bytes;     ///< canonical key text length (0 = keyless)
  std::uint32_t payload_crc32; ///< CRC-32 of bytes [header_bytes, file_bytes)
};
static_assert(sizeof(GraphFileHeader) == 64, "on-disk header must stay 64 bytes");

/// The exact file size save_graph(graph, ..., key) will produce.
[[nodiscard]] std::size_t serialized_graph_bytes(const BipartiteGraph& graph,
                                                 std::string_view key) noexcept;

/// Writes `graph` (CSR + CSC) to `path` atomically: the bytes go to a
/// process-unique temporary in the same directory, then rename into place,
/// so readers never observe a half-written file and concurrent writers of
/// the same path both leave a complete one. `key` is embedded verbatim (the
/// store's collision guard). With `sync`, the temporary's bytes and the
/// directory entry are fsync'd around the rename, so a returned call
/// survives an unclean shutdown (power loss included) — without it the
/// rename is atomic against crashes of this process but the data may still
/// sit in page cache. Throws std::runtime_error naming the path on any I/O
/// failure.
void save_graph(const BipartiteGraph& graph, const std::string& path,
                std::string_view key = {}, bool sync = false);

/// Maps `path` and returns a BipartiteGraph viewing the mapped arrays —
/// zero copies; the mapping is kept alive by the graph (and its copies).
/// `memory_bytes()` of the result is the file size. If `key_out` is given,
/// it receives the embedded key. Every rejection names the path: a
/// GraphFileError for bad content (short/truncated file, bad magic, version
/// or integer-width mismatch, size inconsistency, CRC mismatch, arrays that
/// fail BipartiteGraph validation), a plain std::runtime_error when the
/// file cannot be opened or mapped at all.
[[nodiscard]] BipartiteGraph load_graph_mapped(const std::string& path,
                                               std::string* key_out = nullptr);

} // namespace bmh
