#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace bmh {

namespace {

/// Random permutation of {0, ..., n-1} (Fisher–Yates).
std::vector<vid_t> random_permutation(vid_t n, Rng& rng) {
  std::vector<vid_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  for (vid_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(j)]);
  }
  return p;
}

void require_positive(vid_t n, const char* what) {
  if (n <= 0) throw std::invalid_argument(std::string(what) + " must be positive");
}

} // namespace

BipartiteGraph make_erdos_renyi(vid_t rows, vid_t cols, eid_t nnz_target,
                                std::uint64_t seed) {
  require_positive(rows, "make_erdos_renyi: rows");
  require_positive(cols, "make_erdos_renyi: cols");
  if (nnz_target < 0) throw std::invalid_argument("make_erdos_renyi: negative nnz");

  // Draw edges in parallel chunks with forked per-chunk streams so the result
  // is independent of the thread count.
  constexpr eid_t kChunk = 1 << 16;
  const eid_t num_chunks = (nnz_target + kChunk - 1) / kChunk;
  std::vector<std::vector<Edge>> chunk_edges(static_cast<std::size_t>(num_chunks));
  const Rng root(seed);
#pragma omp parallel for schedule(dynamic)
  for (eid_t c = 0; c < num_chunks; ++c) {
    Rng rng = root.fork(static_cast<std::uint64_t>(c));
    const eid_t begin = c * kChunk;
    const eid_t end = std::min(nnz_target, begin + kChunk);
    auto& out = chunk_edges[static_cast<std::size_t>(c)];
    out.reserve(static_cast<std::size_t>(end - begin));
    for (eid_t e = begin; e < end; ++e) {
      const auto i = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(rows)));
      const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(cols)));
      out.push_back({i, j});
    }
  }

  GraphBuilder b(rows, cols);
  b.reserve(static_cast<std::size_t>(nnz_target));
  for (auto& ce : chunk_edges)
    for (const Edge& e : ce) b.add_edge(e.row, e.col);
  return b.build();
}

BipartiteGraph make_ks_adversarial(vid_t n, vid_t k) {
  require_positive(n, "make_ks_adversarial: n");
  if (n % 2 != 0) throw std::invalid_argument("make_ks_adversarial: n must be even");
  const vid_t half = n / 2;
  if (k < 0 || k > half) throw std::invalid_argument("make_ks_adversarial: bad k");

  GraphBuilder b(n, n);
  // Full R1 x C1 block.
  for (vid_t i = 0; i < half; ++i)
    for (vid_t j = 0; j < half; ++j) b.add_edge(i, j);
  // Last k rows of R1 are full rows; last k columns of C1 are full columns.
  for (vid_t i = half - k; i < half; ++i)
    for (vid_t j = 0; j < n; ++j) b.add_edge(i, j);
  for (vid_t j = half - k; j < half; ++j)
    for (vid_t i = 0; i < n; ++i) b.add_edge(i, j);
  // Nonzero diagonals of R1 x C2 and R2 x C1: together a perfect matching.
  for (vid_t i = 0; i < half; ++i) b.add_edge(i, half + i);
  for (vid_t i = 0; i < half; ++i) b.add_edge(half + i, i);
  return b.build();
}

BipartiteGraph make_planted_perfect(vid_t n, vid_t extra_per_row, std::uint64_t seed) {
  require_positive(n, "make_planted_perfect: n");
  if (extra_per_row < 0)
    throw std::invalid_argument("make_planted_perfect: negative extra_per_row");
  Rng rng(seed);
  const std::vector<vid_t> perm = random_permutation(n, rng);
  GraphBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(n) * (1 + static_cast<std::size_t>(extra_per_row)));
  for (vid_t i = 0; i < n; ++i) {
    b.add_edge(i, perm[static_cast<std::size_t>(i)]);
    Rng local = rng.fork(static_cast<std::uint64_t>(i));
    for (vid_t t = 0; t < extra_per_row; ++t)
      b.add_edge(i, static_cast<vid_t>(local.next_below(static_cast<std::uint64_t>(n))));
  }
  return b.build();
}

BipartiteGraph make_full(vid_t n) {
  require_positive(n, "make_full: n");
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<vid_t> col_idx(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (vid_t i = 0; i <= n; ++i)
    row_ptr[static_cast<std::size_t>(i)] = static_cast<eid_t>(i) * n;
#pragma omp parallel for schedule(static)
  for (vid_t i = 0; i < n; ++i)
    for (vid_t j = 0; j < n; ++j)
      col_idx[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(j)] = j;
  return BipartiteGraph(n, n, std::move(row_ptr), std::move(col_idx));
}

BipartiteGraph make_mesh(vid_t sx, vid_t sy) {
  require_positive(sx, "make_mesh: sx");
  require_positive(sy, "make_mesh: sy");
  const vid_t n = sx * sy;
  GraphBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(n) * 5);
  auto id = [sx](vid_t x, vid_t y) { return y * sx + x; };
  for (vid_t y = 0; y < sy; ++y) {
    for (vid_t x = 0; x < sx; ++x) {
      const vid_t v = id(x, y);
      b.add_edge(v, v);
      if (x > 0) b.add_edge(v, id(x - 1, y));
      if (x + 1 < sx) b.add_edge(v, id(x + 1, y));
      if (y > 0) b.add_edge(v, id(x, y - 1));
      if (y + 1 < sy) b.add_edge(v, id(x, y + 1));
    }
  }
  return b.build();
}

BipartiteGraph make_road_like(vid_t n, double shortcut_fraction, double drop_fraction,
                              std::uint64_t seed) {
  require_positive(n, "make_road_like: n");
  if (shortcut_fraction < 0 || drop_fraction < 0 || drop_fraction > 1)
    throw std::invalid_argument("make_road_like: bad fractions");
  Rng rng(seed);
  GraphBuilder b(n, n);
  const auto shortcuts = static_cast<eid_t>(shortcut_fraction * static_cast<double>(n));
  b.reserve(static_cast<std::size_t>(2 * n + shortcuts));
  for (vid_t i = 0; i < n; ++i) {
    // A dropped row loses both its cycle entries (it keeps only whatever
    // shortcuts land on it), which is what creates the sprank deficiency —
    // dropping just one of the two would leave the superdiagonal
    // permutation intact and the matrix always full sprank.
    if (rng.next_double() < drop_fraction) continue;
    b.add_edge(i, i);
    b.add_edge(i, (i + 1) % n);
  }
  for (eid_t s = 0; s < shortcuts; ++s) {
    const auto i = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    b.add_edge(i, j);
  }
  return b.build();
}

BipartiteGraph make_power_law(vid_t n, double avg_degree, double alpha,
                              std::uint64_t seed) {
  require_positive(n, "make_power_law: n");
  if (avg_degree < 1.0 || alpha <= 1.0)
    throw std::invalid_argument("make_power_law: need avg_degree >= 1 and alpha > 1");
  Rng rng(seed);
  const std::vector<vid_t> perm = random_permutation(n, rng);

  // Truncated Pareto row degrees: d = min(n, floor(x_m * U^{-1/alpha})).
  // Choose x_m so the mean is ~avg_degree: mean of Pareto = x_m*alpha/(alpha-1).
  const double x_m = avg_degree * (alpha - 1.0) / alpha;
  GraphBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(avg_degree * static_cast<double>(n)) +
            static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) {
    b.add_edge(i, perm[static_cast<std::size_t>(i)]);
    Rng local = rng.fork(static_cast<std::uint64_t>(i));
    const double u = local.next_double_open0();
    const double raw = x_m * std::pow(u, -1.0 / alpha);
    const auto deg = static_cast<vid_t>(
        std::min<double>(static_cast<double>(n), std::max(1.0, raw)));
    for (vid_t t = 0; t < deg; ++t)
      b.add_edge(i, static_cast<vid_t>(local.next_below(static_cast<std::uint64_t>(n))));
  }
  return b.build();
}

BipartiteGraph make_kkt_like(vid_t m, vid_t p, vid_t d, std::uint64_t seed) {
  require_positive(m, "make_kkt_like: m");
  require_positive(p, "make_kkt_like: p");
  if (d <= 0 || d > m) throw std::invalid_argument("make_kkt_like: bad d");
  Rng rng(seed);
  const vid_t n = m + p;
  GraphBuilder b(n, n);

  // H block: tridiagonal mesh-like stencil on the first m rows/cols.
  for (vid_t i = 0; i < m; ++i) {
    b.add_edge(i, i);
    if (i > 0) b.add_edge(i, i - 1);
    if (i + 1 < m) b.add_edge(i, i + 1);
  }
  // B (p x m) and its transpose, d entries per constraint row.
  for (vid_t r = 0; r < p; ++r) {
    Rng local = rng.fork(static_cast<std::uint64_t>(r));
    for (vid_t t = 0; t < d; ++t) {
      const auto c = static_cast<vid_t>(local.next_below(static_cast<std::uint64_t>(m)));
      b.add_edge(m + r, c);  // B
      b.add_edge(c, m + r);  // B^T
    }
    // Planted diagonal in the (2,2) block keeps the matrix full sprank, like
    // the regularized KKT systems in the paper's collection.
    b.add_edge(m + r, m + r);
  }
  return b.build();
}

BipartiteGraph make_one_out(vid_t n, std::uint64_t seed) {
  require_positive(n, "make_one_out: n");
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<vid_t> col_idx(static_cast<std::size_t>(n));
  for (vid_t i = 0; i <= n; ++i) row_ptr[static_cast<std::size_t>(i)] = i;
  const Rng root(seed);
#pragma omp parallel for schedule(static)
  for (vid_t i = 0; i < n; ++i) {
    Rng rng = root.fork(static_cast<std::uint64_t>(i));
    col_idx[static_cast<std::size_t>(i)] =
        static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
  }
  return BipartiteGraph(n, n, std::move(row_ptr), std::move(col_idx));
}

BipartiteGraph make_cycle(vid_t n) {
  require_positive(n, "make_cycle: n");
  GraphBuilder b(n, n);
  for (vid_t i = 0; i < n; ++i) {
    b.add_edge(i, i);
    b.add_edge(i, (i + 1) % n);
  }
  return b.build();
}

BipartiteGraph make_row_regular(vid_t n, vid_t d, std::uint64_t seed) {
  require_positive(n, "make_row_regular: n");
  if (d <= 0 || d > n) throw std::invalid_argument("make_row_regular: bad d");
  GraphBuilder b(n, n);
  b.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  const Rng root(seed);
  for (vid_t i = 0; i < n; ++i) {
    Rng rng = root.fork(static_cast<std::uint64_t>(i));
    std::unordered_set<vid_t> chosen;
    while (chosen.size() < static_cast<std::size_t>(d))
      chosen.insert(static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n))));
    for (const vid_t j : chosen) b.add_edge(i, j);
  }
  return b.build();
}

BipartiteGraph make_block_diagonal(const std::vector<BipartiteGraph>& blocks) {
  vid_t rows = 0, cols = 0;
  eid_t nnz = 0;
  for (const auto& g : blocks) {
    rows += g.num_rows();
    cols += g.num_cols();
    nnz += g.num_edges();
  }
  GraphBuilder b(rows, cols);
  b.reserve(static_cast<std::size_t>(nnz));
  vid_t row_off = 0, col_off = 0;
  for (const auto& g : blocks) {
    for (vid_t i = 0; i < g.num_rows(); ++i)
      for (const vid_t j : g.row_neighbors(i)) b.add_edge(row_off + i, col_off + j);
    row_off += g.num_rows();
    col_off += g.num_cols();
  }
  return b.build();
}

BipartiteGraph make_dm_structured(vid_t h_rows, vid_t h_cols, vid_t s_n, vid_t v_rows,
                                  vid_t v_cols, vid_t coupling_per_row,
                                  std::uint64_t seed) {
  if (h_rows < 0 || h_cols < h_rows || s_n < 0 || v_cols < 0 || v_rows < v_cols)
    throw std::invalid_argument("make_dm_structured: block shape invalid");
  Rng rng(seed);
  const vid_t rows = h_rows + s_n + v_rows;
  const vid_t cols = h_cols + s_n + v_cols;
  GraphBuilder b(rows, cols);

  // Horizontal block: row i matched to column i, plus wrap-around extra
  // columns so every column of H is used by some row (keeps H connected
  // enough to have a row-perfect matching spread over all its columns).
  for (vid_t i = 0; i < h_rows; ++i) {
    b.add_edge(i, i);
    b.add_edge(i, h_rows + (i % std::max<vid_t>(1, h_cols - h_rows)));
  }
  // Square block with total support: a cycle (diagonal + superdiagonal).
  const vid_t s_row0 = h_rows, s_col0 = h_cols;
  for (vid_t i = 0; i < s_n; ++i) {
    b.add_edge(s_row0 + i, s_col0 + i);
    b.add_edge(s_row0 + i, s_col0 + (i + 1) % s_n);
  }
  // Vertical block: column j matched to row j, with a forward chain
  // (r_j, c_{j+1}) so the alternating BFS from the unmatched extra rows
  // reaches *every* V column — otherwise the tail columns would form
  // isolated matched pairs that canonically belong to S, not V.
  const vid_t v_row0 = h_rows + s_n, v_col0 = h_cols + s_n;
  for (vid_t j = 0; j < v_cols; ++j) {
    b.add_edge(v_row0 + j, v_col0 + j);
    if (j + 1 < v_cols) b.add_edge(v_row0 + j, v_col0 + j + 1);
  }
  for (vid_t i = v_cols; i < v_rows; ++i)
    b.add_edge(v_row0 + i, v_col0 + (i % std::max<vid_t>(1, v_cols)));

  // "*" coupling entries: strictly above the block diagonal in the coarse
  // form (H rows to S/V columns; S rows to V columns). These can never be in
  // a maximum matching; Sinkhorn–Knopp must drive them to zero (§3.3).
  for (vid_t i = 0; i < h_rows + s_n; ++i) {
    Rng local = rng.fork(static_cast<std::uint64_t>(i));
    const vid_t first_allowed = (i < h_rows) ? h_cols : h_cols + s_n;
    const vid_t span = cols - first_allowed;
    if (span <= 0) continue;
    for (vid_t t = 0; t < coupling_per_row; ++t)
      b.add_edge(i, first_allowed +
                        static_cast<vid_t>(local.next_below(static_cast<std::uint64_t>(span))));
  }
  return b.build();
}

} // namespace bmh
