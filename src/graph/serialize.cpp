#include "graph/serialize.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "util/failpoint.hpp"
#include "util/mmap_file.hpp"

namespace bmh {

namespace {

constexpr std::size_t kAlign = 8;

constexpr std::size_t align_up(std::size_t n) noexcept {
  return (n + (kAlign - 1)) & ~(kAlign - 1);
}

struct Layout {
  std::size_t key_offset;
  std::size_t row_ptr_offset;
  std::size_t col_idx_offset;
  std::size_t col_ptr_offset;
  std::size_t row_idx_offset;
  std::size_t total_bytes;
};

Layout compute_layout(std::uint64_t num_rows, std::uint64_t num_cols,
                      std::uint64_t num_edges, std::size_t key_bytes) noexcept {
  Layout l{};
  l.key_offset = sizeof(GraphFileHeader);
  l.row_ptr_offset = align_up(l.key_offset + key_bytes);
  l.col_idx_offset = l.row_ptr_offset + (num_rows + 1) * sizeof(eid_t);
  l.col_ptr_offset = align_up(l.col_idx_offset + num_edges * sizeof(vid_t));
  l.row_idx_offset = l.col_ptr_offset + (num_cols + 1) * sizeof(eid_t);
  l.total_bytes = align_up(l.row_idx_offset + num_edges * sizeof(vid_t));
  return l;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("graph file '" + path + "': " + what);
}

/// Load-side rejection: the mapped content itself is bad (vs. fail(),
/// which reports I/O trouble) — the error class GraphStore's self-heal
/// keys off.
[[noreturn]] void reject(const std::string& path, const std::string& what) {
  throw GraphFileError("graph file '" + path + "': " + what);
}

/// Streams file pieces in order while accumulating the payload CRC; padding
/// between pieces is zeros and is checksummed like any other byte.
class PieceWriter {
public:
  explicit PieceWriter(std::ofstream& out) : out_(&out) {}

  void write(const void* data, std::size_t bytes) {
    if (bytes == 0) return;
    out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
    crc_ = crc32_ieee(data, bytes, crc_);
    offset_ += bytes;
  }

  void pad_to(std::size_t offset) {
    static constexpr char kZeros[kAlign] = {};
    while (offset_ < offset) {
      const std::size_t n = std::min(offset - offset_, sizeof(kZeros));
      write(kZeros, n);
    }
  }

  [[nodiscard]] std::uint32_t crc() const noexcept { return crc_; }
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

private:
  std::ofstream* out_;
  std::uint32_t crc_ = 0;
  std::size_t offset_ = sizeof(GraphFileHeader);
};

} // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t size,
                         std::uint32_t seed) noexcept {
  static constexpr auto kTable = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  return ~crc;
}

std::size_t serialized_graph_bytes(const BipartiteGraph& graph,
                                   std::string_view key) noexcept {
  return compute_layout(static_cast<std::uint64_t>(graph.num_rows()),
                        static_cast<std::uint64_t>(graph.num_cols()),
                        static_cast<std::uint64_t>(graph.num_edges()), key.size())
      .total_bytes;
}

namespace {

/// fsync `path` (a file or a directory), reporting failure through fail().
/// Directories need O_DIRECTORY-style open-for-read; O_RDONLY covers both.
void sync_path(const std::string& target, const std::string& reported_path) {
  BMH_FAILPOINT("serialize.save.fsync");
  const int fd = ::open(target.c_str(), O_RDONLY);
  if (fd < 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): copied straight into a string
    const std::string reason = std::strerror(errno);
    fail(reported_path, "cannot open '" + target + "' for fsync: " + reason);
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): copied straight into a string
    const std::string reason = std::strerror(saved_errno);
    fail(reported_path, "fsync of '" + target + "' failed: " + reason);
  }
}

} // namespace

void save_graph(const BipartiteGraph& graph, const std::string& path,
                std::string_view key, bool sync) {
  const Layout layout =
      compute_layout(static_cast<std::uint64_t>(graph.num_rows()),
                     static_cast<std::uint64_t>(graph.num_cols()),
                     static_cast<std::uint64_t>(graph.num_edges()), key.size());

  // An injected failure here models an unwritable device before any bytes
  // land — no temporary is left behind.
  BMH_FAILPOINT("serialize.save.write");

  // Process-unique temporary in the target directory so the final rename is
  // atomic (same filesystem) and concurrent spillers of one path never
  // interleave bytes.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail(path, "cannot open temporary '" + tmp + "' for writing");

    GraphFileHeader header{};
    std::memcpy(header.magic, kGraphFileMagic, sizeof(header.magic));
    header.version = kGraphFileVersion;
    header.header_bytes = sizeof(GraphFileHeader);
    header.sizeof_vid = sizeof(vid_t);
    header.sizeof_eid = sizeof(eid_t);
    header.num_rows = graph.num_rows();
    header.num_cols = graph.num_cols();
    header.num_edges = graph.num_edges();
    header.file_bytes = layout.total_bytes;
    header.key_bytes = static_cast<std::uint32_t>(key.size());

    // The payload streams in file order while its CRC accumulates; the
    // header (which records that CRC) is rewritten in place afterwards.
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    PieceWriter body(out);
    if (!key.empty()) body.write(key.data(), key.size());
    body.pad_to(layout.row_ptr_offset);
    body.write(graph.row_ptr().data(), graph.row_ptr().size_bytes());
    body.write(graph.col_idx().data(), graph.col_idx().size_bytes());
    body.pad_to(layout.col_ptr_offset);
    body.write(graph.col_ptr().data(), graph.col_ptr().size_bytes());
    body.write(graph.row_idx().data(), graph.row_idx().size_bytes());
    body.pad_to(layout.total_bytes);

    header.payload_crc32 = body.crc();
    out.seekp(0);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      fail(path, "write to temporary '" + tmp + "' failed");
    }
  }

  // Durability order: file bytes reach the platter before the rename can
  // publish them, and the directory entry after it — the classic
  // write/fsync/rename/fsync-dir sequence. Without `sync`, the rename is
  // still atomic against this process crashing; only power loss can lose
  // the (complete, CRC-guarded) bytes.
  if (sync) {
    try {
      sync_path(tmp, path);
    } catch (...) {
      std::remove(tmp.c_str());
      throw;
    }
  }

  try {
    BMH_FAILPOINT("serialize.save.rename");
  } catch (...) {
    // Mirror the real rename-failure cleanup: never leave the temporary.
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): copied straight into a string
    const std::string reason = std::strerror(errno);
    std::remove(tmp.c_str());
    fail(path, "rename from temporary failed: " + reason);
  }

  if (sync) {
    const std::size_t slash = path.find_last_of('/');
    sync_path(slash == std::string::npos ? "." : path.substr(0, slash), path);
  }
}

BipartiteGraph load_graph_mapped(const std::string& path, std::string* key_out) {
  // Plain runtime_error class when armed: transient I/O, never self-heal.
  BMH_FAILPOINT("serialize.load");
  auto mapped = std::make_shared<const MappedFile>(path);
  const std::byte* base = mapped->data();
  const std::size_t size = mapped->size();

  if (size < sizeof(GraphFileHeader)) reject(path, "truncated header");
  GraphFileHeader header;
  std::memcpy(&header, base, sizeof(header));

  if (std::memcmp(header.magic, kGraphFileMagic, sizeof(header.magic)) != 0)
    reject(path, "bad magic (not a bmh graph file)");
  if (header.version != kGraphFileVersion)
    reject(path, "unsupported format version " + std::to_string(header.version));
  if (header.header_bytes != sizeof(GraphFileHeader))
    reject(path, "header size mismatch");
  if (header.sizeof_vid != sizeof(vid_t) || header.sizeof_eid != sizeof(eid_t))
    reject(path, "integer width mismatch (file written by an incompatible build)");
  if (header.num_rows < 0 || header.num_cols < 0 || header.num_edges < 0 ||
      header.num_rows > std::numeric_limits<vid_t>::max() ||
      header.num_cols > std::numeric_limits<vid_t>::max())
    reject(path, "dimension out of range");
  // Bound every count by what the mapped bytes could possibly hold *before*
  // the layout arithmetic: a forged astronomical num_edges must be rejected
  // here, not wrap size_t in compute_layout, sail past the size/CRC checks
  // and crash validation reading beyond the mapping.
  if (static_cast<std::uint64_t>(header.num_edges) > size / sizeof(vid_t) ||
      static_cast<std::uint64_t>(header.num_rows) >= size / sizeof(eid_t) ||
      static_cast<std::uint64_t>(header.num_cols) >= size / sizeof(eid_t) ||
      header.key_bytes > size)
    reject(path, "header counts exceed file size");

  const Layout layout = compute_layout(static_cast<std::uint64_t>(header.num_rows),
                                       static_cast<std::uint64_t>(header.num_cols),
                                       static_cast<std::uint64_t>(header.num_edges),
                                       header.key_bytes);
  if (header.file_bytes != layout.total_bytes)
    reject(path, "header counts disagree with recorded file size");
  if (size != layout.total_bytes)
    reject(path, "truncated or oversized file (" + std::to_string(size) + " bytes, " +
                   std::to_string(layout.total_bytes) + " expected)");

  const std::uint32_t crc =
      crc32_ieee(base + sizeof(GraphFileHeader), size - sizeof(GraphFileHeader));
  // The corrupt action forges a mismatch: a GraphFileError rejection, the
  // content-error class GraphStore answers with unlink-and-rebuild.
  if (crc != header.payload_crc32 || BMH_FAILPOINT_CORRUPT("store.load.crc"))
    reject(path, "payload CRC mismatch");

  if (key_out != nullptr)
    key_out->assign(reinterpret_cast<const char*>(base + layout.key_offset),
                    header.key_bytes);

  // Views into the mapping — the zero-copy payoff. Offsets are 8-aligned by
  // construction and mmap returns page-aligned memory, so the casts are safe.
  BipartiteGraph::ExternalStorage storage;
  storage.row_ptr = {reinterpret_cast<const eid_t*>(base + layout.row_ptr_offset),
                     static_cast<std::size_t>(header.num_rows) + 1};
  storage.col_idx = {reinterpret_cast<const vid_t*>(base + layout.col_idx_offset),
                     static_cast<std::size_t>(header.num_edges)};
  storage.col_ptr = {reinterpret_cast<const eid_t*>(base + layout.col_ptr_offset),
                     static_cast<std::size_t>(header.num_cols) + 1};
  storage.row_idx = {reinterpret_cast<const vid_t*>(base + layout.row_idx_offset),
                     static_cast<std::size_t>(header.num_edges)};
  storage.keepalive = mapped;
  storage.resident_bytes = size;

  try {
    return BipartiteGraph(static_cast<vid_t>(header.num_rows),
                          static_cast<vid_t>(header.num_cols), std::move(storage));
  } catch (const std::invalid_argument& e) {
    // Only the validation error type: a bad_alloc from validation scratch
    // is transient memory pressure, not bad content, and must not become a
    // GraphFileError (which would let GraphStore unlink a good file).
    reject(path, std::string("invalid graph contents: ") + e.what());
  }
}

} // namespace bmh
