#pragma once
/// \file generators_suite.hpp
/// \brief The 12-instance evaluation suite standing in for the paper's UFL
/// matrices (Table 3, Figures 3–5).
///
/// The offline environment has no access to the UFL/SuiteSparse collection,
/// so each real matrix is replaced by a synthetic instance from the same
/// structural class (see DESIGN.md §3): meshes for the PDE matrices,
/// low-degree near-cycle graphs with sprank deficiency for the road
/// networks, skewed-degree graphs for torso1/audikw_1 (where the paper
/// observes its worst load balance), KKT-like saddle-point blocks, and
/// uniform random graphs for cage15. Sizes default to roughly 1/10 of the
/// paper's (laptop scale) and can be grown/shrunk with the `scale` factor.

#include <string>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace bmh {

struct SuiteInstance {
  std::string name;        ///< paper instance this stands in for, + "_like"
  std::string family;      ///< generator family (mesh/road/powerlaw/...)
  BipartiteGraph graph;
};

/// Builds the full 12-instance suite. `scale` multiplies vertex counts
/// (clamped so every instance stays non-trivial). Deterministic in `seed`.
[[nodiscard]] std::vector<SuiteInstance> make_suite(double scale = 1.0,
                                                    std::uint64_t seed = 42);

/// Builds one named suite instance ("atmosmodl_like", ...). Throws if the
/// name is unknown.
[[nodiscard]] SuiteInstance make_suite_instance(const std::string& name,
                                                double scale = 1.0,
                                                std::uint64_t seed = 42);

/// Names of all suite instances in canonical (paper Table 3) order.
[[nodiscard]] std::vector<std::string> suite_names();

} // namespace bmh
