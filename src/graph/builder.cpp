#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace bmh {

GraphBuilder::GraphBuilder(vid_t num_rows, vid_t num_cols)
    : num_rows_(num_rows), num_cols_(num_cols) {
  if (num_rows < 0 || num_cols < 0)
    throw std::invalid_argument("GraphBuilder: negative dimension");
}

void GraphBuilder::reset(vid_t num_rows, vid_t num_cols) {
  if (num_rows < 0 || num_cols < 0)
    throw std::invalid_argument("GraphBuilder: negative dimension");
  num_rows_ = num_rows;
  num_cols_ = num_cols;
  edges_.clear();
}

void GraphBuilder::assemble(std::vector<eid_t>& out_ptr, std::vector<vid_t>& out_idx) {
  for (const Edge& e : edges_) {
    if (e.row < 0 || e.row >= num_rows_ || e.col < 0 || e.col >= num_cols_)
      throw std::out_of_range("GraphBuilder: edge id out of range");
  }

  // Counting sort by row.
  row_ptr_scratch_.assign(static_cast<std::size_t>(num_rows_) + 1, 0);
  for (const Edge& e : edges_) ++row_ptr_scratch_[static_cast<std::size_t>(e.row) + 1];
  for (vid_t i = 0; i < num_rows_; ++i)
    row_ptr_scratch_[static_cast<std::size_t>(i) + 1] +=
        row_ptr_scratch_[static_cast<std::size_t>(i)];

  col_idx_scratch_.resize(edges_.size());
  cursor_scratch_.assign(row_ptr_scratch_.begin(), row_ptr_scratch_.end() - 1);
  for (const Edge& e : edges_)
    col_idx_scratch_[static_cast<std::size_t>(
        cursor_scratch_[static_cast<std::size_t>(e.row)]++)] = e.col;

  // Per-row sort + dedup, then compact.
  out_ptr.assign(static_cast<std::size_t>(num_rows_) + 1, 0);
#pragma omp parallel for schedule(dynamic, 512)
  for (vid_t i = 0; i < num_rows_; ++i) {
    auto* begin = col_idx_scratch_.data() + row_ptr_scratch_[static_cast<std::size_t>(i)];
    auto* end = col_idx_scratch_.data() + row_ptr_scratch_[static_cast<std::size_t>(i) + 1];
    std::sort(begin, end);
    out_ptr[static_cast<std::size_t>(i) + 1] = std::unique(begin, end) - begin;
  }
  for (vid_t i = 0; i < num_rows_; ++i)
    out_ptr[static_cast<std::size_t>(i) + 1] += out_ptr[static_cast<std::size_t>(i)];

  out_idx.resize(static_cast<std::size_t>(out_ptr.back()));
#pragma omp parallel for schedule(static)
  for (vid_t i = 0; i < num_rows_; ++i) {
    const eid_t count =
        out_ptr[static_cast<std::size_t>(i) + 1] - out_ptr[static_cast<std::size_t>(i)];
    std::copy_n(col_idx_scratch_.data() + row_ptr_scratch_[static_cast<std::size_t>(i)],
                count, out_idx.data() + out_ptr[static_cast<std::size_t>(i)]);
  }
}

BipartiteGraph GraphBuilder::build() {
  std::vector<eid_t> out_ptr;
  std::vector<vid_t> out_idx;
  assemble(out_ptr, out_idx);
  // One-shot mode: callers are temporaries (generators, readers) building
  // graphs that dwarf the scratch, so hand the memory back immediately.
  edges_.clear();
  edges_.shrink_to_fit();
  row_ptr_scratch_ = {};
  cursor_scratch_ = {};
  col_idx_scratch_ = {};
  return BipartiteGraph(num_rows_, num_cols_, std::move(out_ptr), std::move(out_idx));
}

void GraphBuilder::build_into(BipartiteGraph& out) {
  assemble(out_ptr_scratch_, out_idx_scratch_);
  edges_.clear();  // reusable immediately; capacity kept for the next round
  out.assign_csr(num_rows_, num_cols_, out_ptr_scratch_, out_idx_scratch_);
}

BipartiteGraph graph_from_edges(vid_t num_rows, vid_t num_cols,
                                const std::vector<Edge>& edges) {
  GraphBuilder b(num_rows, num_cols);
  b.reserve(edges.size());
  for (const Edge& e : edges) b.add_edge(e.row, e.col);
  return b.build();
}

BipartiteGraph graph_from_rows(vid_t num_rows, vid_t num_cols,
                               const std::vector<std::vector<vid_t>>& rows) {
  if (rows.size() != static_cast<std::size_t>(num_rows))
    throw std::invalid_argument("graph_from_rows: row count mismatch");
  GraphBuilder b(num_rows, num_cols);
  for (vid_t i = 0; i < num_rows; ++i)
    for (const vid_t j : rows[static_cast<std::size_t>(i)]) b.add_edge(i, j);
  return b.build();
}

} // namespace bmh
