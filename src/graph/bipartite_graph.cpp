#include "graph/bipartite_graph.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

namespace bmh {

void BipartiteGraph::validate_csr(vid_t num_rows, vid_t num_cols,
                                  std::span<const eid_t> row_ptr,
                                  std::span<const vid_t> col_idx) {
  if (num_rows < 0 || num_cols < 0)
    throw std::invalid_argument("BipartiteGraph: negative dimension");
  if (row_ptr.size() != static_cast<std::size_t>(num_rows) + 1)
    throw std::invalid_argument("BipartiteGraph: row_ptr size mismatch");
  if (row_ptr.front() != 0 || row_ptr.back() != static_cast<eid_t>(col_idx.size()))
    throw std::invalid_argument("BipartiteGraph: row_ptr bounds mismatch");
  for (vid_t i = 0; i < num_rows; ++i)
    if (row_ptr[i] > row_ptr[i + 1])
      throw std::invalid_argument("BipartiteGraph: row_ptr not monotone");
  for (const vid_t j : col_idx)
    if (j < 0 || j >= num_cols)
      throw std::invalid_argument("BipartiteGraph: column id out of range");
}

void BipartiteGraph::validate_external(vid_t num_rows, vid_t num_cols,
                                       const ExternalStorage& storage) {
  // The CSR half, then the CSC half (which is the transpose's CSR).
  validate_csr(num_rows, num_cols, storage.row_ptr, storage.col_idx);
  validate_csr(num_cols, num_rows, storage.col_ptr, storage.row_idx);
  // The CSC must be the exact transpose of the CSR in the canonical layout
  // this library produces (row ids within each column sorted ascending):
  // sweeping CSR rows in order, each edge (i, j) must be the next unconsumed
  // CSC entry of column j. O(edges) time, O(cols) scratch — and unlike a
  // degree-only cross-check it rejects degree-preserving forgeries, so even
  // a CRC-valid tampered store file cannot serve mismatched orientations.
  std::vector<eid_t> cursor(storage.col_ptr.begin(), storage.col_ptr.end() - 1);
  for (vid_t i = 0; i < num_rows; ++i)
    for (eid_t e = storage.row_ptr[static_cast<std::size_t>(i)];
         e < storage.row_ptr[static_cast<std::size_t>(i) + 1]; ++e) {
      const auto j = static_cast<std::size_t>(storage.col_idx[static_cast<std::size_t>(e)]);
      if (cursor[j] == storage.col_ptr[j + 1] ||
          storage.row_idx[static_cast<std::size_t>(cursor[j])] != i)
        throw std::invalid_argument(
            "BipartiteGraph: CSC is not the transpose of the CSR");
      ++cursor[j];
    }
  for (vid_t j = 0; j < num_cols; ++j)
    if (cursor[static_cast<std::size_t>(j)] != storage.col_ptr[static_cast<std::size_t>(j) + 1])
      throw std::invalid_argument(
          "BipartiteGraph: CSC is not the transpose of the CSR");
}

void BipartiteGraph::rebind_views() noexcept {
  if (const auto* owned = std::get_if<OwnedStorage>(&storage_)) {
    row_ptr_ = owned->row_ptr;
    col_idx_ = owned->col_idx;
    col_ptr_ = owned->col_ptr;
    row_idx_ = owned->row_idx;
  } else {
    const auto& external = std::get<ExternalStorage>(storage_);
    row_ptr_ = external.row_ptr;
    col_idx_ = external.col_idx;
    col_ptr_ = external.col_ptr;
    row_idx_ = external.row_idx;
  }
}

void BipartiteGraph::reset_empty() {
  // The default-constructed 0x0 graph keeps the historical shape: row_ptr
  // and col_ptr each hold the single offset 0, so row_ptr().size() ==
  // num_rows()+1 holds for it like for any constructed graph.
  auto& owned = storage_.emplace<OwnedStorage>();
  owned.row_ptr.assign(1, 0);
  owned.col_ptr.assign(1, 0);
  num_rows_ = 0;
  num_cols_ = 0;
  rebind_views();
}

BipartiteGraph::BipartiteGraph() { reset_empty(); }

BipartiteGraph::BipartiteGraph(vid_t num_rows, vid_t num_cols,
                               std::vector<eid_t> row_ptr, std::vector<vid_t> col_idx)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      storage_(OwnedStorage{std::move(row_ptr), std::move(col_idx), {}, {}}) {
  auto& owned = std::get<OwnedStorage>(storage_);
  validate_csr(num_rows_, num_cols_, owned.row_ptr, owned.col_idx);
  build_csc();
  rebind_views();
}

BipartiteGraph::BipartiteGraph(vid_t num_rows, vid_t num_cols,
                               ExternalStorage storage)
    : num_rows_(num_rows), num_cols_(num_cols) {
  validate_external(num_rows, num_cols, storage);
  storage_ = std::move(storage);
  rebind_views();
}

BipartiteGraph::BipartiteGraph(const BipartiteGraph& other)
    : num_rows_(other.num_rows_),
      num_cols_(other.num_cols_),
      storage_(other.storage_) {
  rebind_views();
}

BipartiteGraph::BipartiteGraph(BipartiteGraph&& other) noexcept
    : num_rows_(other.num_rows_),
      num_cols_(other.num_cols_),
      storage_(std::move(other.storage_)) {
  rebind_views();
  // Leave the source a valid empty graph rather than with dangling views
  // (vectors empty, exactly like a moved-from vector member used to be;
  // nothing here may allocate, this constructor is noexcept).
  other.num_rows_ = 0;
  other.num_cols_ = 0;
  other.storage_.emplace<OwnedStorage>();
  other.rebind_views();
}

BipartiteGraph& BipartiteGraph::operator=(const BipartiteGraph& other) {
  if (this != &other) {
    num_rows_ = other.num_rows_;
    num_cols_ = other.num_cols_;
    storage_ = other.storage_;
    rebind_views();
  }
  return *this;
}

BipartiteGraph& BipartiteGraph::operator=(BipartiteGraph&& other) noexcept {
  if (this != &other) {
    num_rows_ = other.num_rows_;
    num_cols_ = other.num_cols_;
    storage_ = std::move(other.storage_);
    rebind_views();
    other.num_rows_ = 0;
    other.num_cols_ = 0;
    other.storage_.emplace<OwnedStorage>();
    other.rebind_views();
  }
  return *this;
}

std::size_t BipartiteGraph::memory_bytes() const noexcept {
  if (const auto* owned = std::get_if<OwnedStorage>(&storage_))
    return (owned->row_ptr.capacity() + owned->col_ptr.capacity()) * sizeof(eid_t) +
           (owned->col_idx.capacity() + owned->row_idx.capacity()) * sizeof(vid_t);
  return std::get<ExternalStorage>(storage_).resident_bytes;
}

void BipartiteGraph::assign_csr(vid_t num_rows, vid_t num_cols,
                                std::span<const eid_t> row_ptr,
                                std::span<const vid_t> col_idx) {
  validate_csr(num_rows, num_cols, row_ptr, col_idx);  // members untouched on throw
  // Everything past validation reallocates buffers the view members point
  // into (or, below, tears down a mapping they point into), and any of it
  // can throw bad_alloc. Park the object in the consistent empty state
  // first: if the rebuild is interrupted, the graph reads as 0x0 with empty
  // spans instead of holding views over freed memory.
  num_rows_ = 0;
  num_cols_ = 0;
  row_ptr_ = {};
  col_idx_ = {};
  col_ptr_ = {};
  row_idx_ = {};
  if (!owns_storage()) {
    // The input spans may alias this graph's own mapped storage (the
    // natural g.assign_csr(..., g.row_ptr(), g.col_idx()) conversion
    // idiom), and replacing the variant alternative drops the mapping's
    // keepalive — possibly munmap-ing the bytes the spans point into. Copy
    // through a local first; the one-off allocations are fine, an
    // externally backed graph is never on the pooled rebuild path.
    OwnedStorage fresh;
    fresh.row_ptr.assign(row_ptr.begin(), row_ptr.end());
    fresh.col_idx.assign(col_idx.begin(), col_idx.end());
    storage_ = std::move(fresh);
  } else {
    auto& owned = std::get<OwnedStorage>(storage_);
    owned.row_ptr.assign(row_ptr.begin(), row_ptr.end());
    owned.col_idx.assign(col_idx.begin(), col_idx.end());
  }
  build_csc_serial(num_rows, num_cols);
  num_rows_ = num_rows;
  num_cols_ = num_cols;
  rebind_views();
}

void BipartiteGraph::build_csc() {
  auto& owned = std::get<OwnedStorage>(storage_);
  const std::vector<eid_t>& row_ptr = owned.row_ptr;
  const std::vector<vid_t>& col_idx = owned.col_idx;
  std::vector<eid_t>& col_ptr = owned.col_ptr;
  std::vector<vid_t>& row_idx = owned.row_idx;
  const eid_t nnz = row_ptr.empty() ? 0 : row_ptr.back();
  col_ptr.assign(static_cast<std::size_t>(num_cols_) + 1, 0);
  row_idx.assign(static_cast<std::size_t>(nnz), 0);

  // Column degree histogram. Atomic increments keep this parallel even for
  // badly skewed column degree distributions.
  std::vector<std::atomic<eid_t>> counts(static_cast<std::size_t>(num_cols_));
#pragma omp parallel for schedule(static)
  for (vid_t j = 0; j < num_cols_; ++j)
    counts[static_cast<std::size_t>(j)].store(0, std::memory_order_relaxed);
#pragma omp parallel for schedule(static)
  for (eid_t e = 0; e < nnz; ++e)
    counts[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(e)])]
        .fetch_add(1, std::memory_order_relaxed);

  for (vid_t j = 0; j < num_cols_; ++j)
    col_ptr[static_cast<std::size_t>(j) + 1] =
        col_ptr[static_cast<std::size_t>(j)] +
        counts[static_cast<std::size_t>(j)].load(std::memory_order_relaxed);

  // Scatter. Rows are processed in order per thread chunk, so within each
  // column the row ids arrive unsorted across threads; we sort below to give
  // a canonical layout (useful for structural_equal and binary search).
  std::vector<std::atomic<eid_t>> cursor(static_cast<std::size_t>(num_cols_));
#pragma omp parallel for schedule(static)
  for (vid_t j = 0; j < num_cols_; ++j)
    cursor[static_cast<std::size_t>(j)].store(col_ptr[static_cast<std::size_t>(j)],
                                              std::memory_order_relaxed);
#pragma omp parallel for schedule(dynamic, 1024)
  for (vid_t i = 0; i < num_rows_; ++i) {
    for (eid_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
      const auto j = static_cast<std::size_t>(col_idx[static_cast<std::size_t>(e)]);
      const eid_t slot = cursor[j].fetch_add(1, std::memory_order_relaxed);
      row_idx[static_cast<std::size_t>(slot)] = i;
    }
  }

#pragma omp parallel for schedule(dynamic, 1024)
  for (vid_t j = 0; j < num_cols_; ++j) {
    auto* begin = row_idx.data() + col_ptr[static_cast<std::size_t>(j)];
    auto* end = row_idx.data() + col_ptr[static_cast<std::size_t>(j) + 1];
    std::sort(begin, end);
  }
}

void BipartiteGraph::build_csc_serial(vid_t num_rows, vid_t num_cols) {
  // Allocation-free sibling of build_csc for the pooled-construction path:
  // subgraphs rebuilt thousands of times per batch are small, so a serial
  // pass beats the parallel version's atomic temporaries — and reusing
  // col_ptr as the scatter cursor needs no scratch at all. The output is
  // identical to build_csc (row ids per column sorted ascending, here by
  // construction: rows are scattered in increasing order).
  auto& owned = std::get<OwnedStorage>(storage_);
  const std::vector<eid_t>& row_ptr = owned.row_ptr;
  const std::vector<vid_t>& col_idx = owned.col_idx;
  std::vector<eid_t>& col_ptr = owned.col_ptr;
  std::vector<vid_t>& row_idx = owned.row_idx;
  const eid_t nnz = row_ptr.empty() ? 0 : row_ptr.back();
  col_ptr.assign(static_cast<std::size_t>(num_cols) + 1, 0);
  row_idx.resize(static_cast<std::size_t>(nnz));
  for (eid_t e = 0; e < nnz; ++e)
    ++col_ptr[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(e)]) + 1];
  for (vid_t j = 0; j < num_cols; ++j)
    col_ptr[static_cast<std::size_t>(j) + 1] += col_ptr[static_cast<std::size_t>(j)];
  for (vid_t i = 0; i < num_rows; ++i)
    for (eid_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
      const auto j = static_cast<std::size_t>(col_idx[static_cast<std::size_t>(e)]);
      row_idx[static_cast<std::size_t>(col_ptr[j]++)] = i;
    }
  // The cursor pass left col_ptr[j] == end(j) == start(j+1); shift right to
  // restore start offsets (descending, so each read precedes its overwrite).
  for (vid_t j = num_cols - 1; j > 0; --j)
    col_ptr[static_cast<std::size_t>(j)] = col_ptr[static_cast<std::size_t>(j) - 1];
  if (num_cols > 0) col_ptr[0] = 0;
}

bool BipartiteGraph::has_edge(vid_t i, vid_t j) const noexcept {
  if (i < 0 || i >= num_rows_ || j < 0 || j >= num_cols_) return false;
  const auto nbrs = row_neighbors(i);
  return std::find(nbrs.begin(), nbrs.end(), j) != nbrs.end();
}

BipartiteGraph BipartiteGraph::transposed() const {
  // The CSC view *is* the transpose's CSR view.
  return BipartiteGraph(num_cols_, num_rows_,
                        std::vector<eid_t>(col_ptr_.begin(), col_ptr_.end()),
                        std::vector<vid_t>(row_idx_.begin(), row_idx_.end()));
}

bool BipartiteGraph::structurally_equal(const BipartiteGraph& other) const {
  if (num_rows_ != other.num_rows_ || num_cols_ != other.num_cols_ ||
      num_edges() != other.num_edges())
    return false;
  for (vid_t i = 0; i < num_rows_; ++i) {
    auto a = row_neighbors(i);
    auto b = other.row_neighbors(i);
    if (a.size() != b.size()) return false;
    std::vector<vid_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    if (sa != sb) return false;
  }
  return true;
}

} // namespace bmh
