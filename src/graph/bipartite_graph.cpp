#include "graph/bipartite_graph.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace bmh {

void BipartiteGraph::validate_csr(vid_t num_rows, vid_t num_cols,
                                  std::span<const eid_t> row_ptr,
                                  std::span<const vid_t> col_idx) {
  if (num_rows < 0 || num_cols < 0)
    throw std::invalid_argument("BipartiteGraph: negative dimension");
  if (row_ptr.size() != static_cast<std::size_t>(num_rows) + 1)
    throw std::invalid_argument("BipartiteGraph: row_ptr size mismatch");
  if (row_ptr.front() != 0 || row_ptr.back() != static_cast<eid_t>(col_idx.size()))
    throw std::invalid_argument("BipartiteGraph: row_ptr bounds mismatch");
  for (vid_t i = 0; i < num_rows; ++i)
    if (row_ptr[i] > row_ptr[i + 1])
      throw std::invalid_argument("BipartiteGraph: row_ptr not monotone");
  for (const vid_t j : col_idx)
    if (j < 0 || j >= num_cols)
      throw std::invalid_argument("BipartiteGraph: column id out of range");
}

BipartiteGraph::BipartiteGraph(vid_t num_rows, vid_t num_cols,
                               std::vector<eid_t> row_ptr, std::vector<vid_t> col_idx)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)) {
  validate_csr(num_rows_, num_cols_, row_ptr_, col_idx_);
  build_csc();
}

void BipartiteGraph::assign_csr(vid_t num_rows, vid_t num_cols,
                                std::span<const eid_t> row_ptr,
                                std::span<const vid_t> col_idx) {
  validate_csr(num_rows, num_cols, row_ptr, col_idx);  // members untouched on throw
  num_rows_ = num_rows;
  num_cols_ = num_cols;
  row_ptr_.assign(row_ptr.begin(), row_ptr.end());
  col_idx_.assign(col_idx.begin(), col_idx.end());
  build_csc_serial();
}

void BipartiteGraph::build_csc() {
  const eid_t nnz = num_edges();
  col_ptr_.assign(static_cast<std::size_t>(num_cols_) + 1, 0);
  row_idx_.assign(static_cast<std::size_t>(nnz), 0);

  // Column degree histogram. Atomic increments keep this parallel even for
  // badly skewed column degree distributions.
  std::vector<std::atomic<eid_t>> counts(static_cast<std::size_t>(num_cols_));
#pragma omp parallel for schedule(static)
  for (vid_t j = 0; j < num_cols_; ++j)
    counts[static_cast<std::size_t>(j)].store(0, std::memory_order_relaxed);
#pragma omp parallel for schedule(static)
  for (eid_t e = 0; e < nnz; ++e)
    counts[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(e)])]
        .fetch_add(1, std::memory_order_relaxed);

  for (vid_t j = 0; j < num_cols_; ++j)
    col_ptr_[static_cast<std::size_t>(j) + 1] =
        col_ptr_[static_cast<std::size_t>(j)] +
        counts[static_cast<std::size_t>(j)].load(std::memory_order_relaxed);

  // Scatter. Rows are processed in order per thread chunk, so within each
  // column the row ids arrive unsorted across threads; we sort below to give
  // a canonical layout (useful for structural_equal and binary search).
  std::vector<std::atomic<eid_t>> cursor(static_cast<std::size_t>(num_cols_));
#pragma omp parallel for schedule(static)
  for (vid_t j = 0; j < num_cols_; ++j)
    cursor[static_cast<std::size_t>(j)].store(col_ptr_[static_cast<std::size_t>(j)],
                                              std::memory_order_relaxed);
#pragma omp parallel for schedule(dynamic, 1024)
  for (vid_t i = 0; i < num_rows_; ++i) {
    for (eid_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      const auto j = static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(e)]);
      const eid_t slot = cursor[j].fetch_add(1, std::memory_order_relaxed);
      row_idx_[static_cast<std::size_t>(slot)] = i;
    }
  }

#pragma omp parallel for schedule(dynamic, 1024)
  for (vid_t j = 0; j < num_cols_; ++j) {
    auto* begin = row_idx_.data() + col_ptr_[static_cast<std::size_t>(j)];
    auto* end = row_idx_.data() + col_ptr_[static_cast<std::size_t>(j) + 1];
    std::sort(begin, end);
  }
}

void BipartiteGraph::build_csc_serial() {
  // Allocation-free sibling of build_csc for the pooled-construction path:
  // subgraphs rebuilt thousands of times per batch are small, so a serial
  // pass beats the parallel version's atomic temporaries — and reusing
  // col_ptr_ as the scatter cursor needs no scratch at all. The output is
  // identical to build_csc (row ids per column sorted ascending, here by
  // construction: rows are scattered in increasing order).
  const eid_t nnz = num_edges();
  col_ptr_.assign(static_cast<std::size_t>(num_cols_) + 1, 0);
  row_idx_.resize(static_cast<std::size_t>(nnz));
  for (eid_t e = 0; e < nnz; ++e)
    ++col_ptr_[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(e)]) + 1];
  for (vid_t j = 0; j < num_cols_; ++j)
    col_ptr_[static_cast<std::size_t>(j) + 1] += col_ptr_[static_cast<std::size_t>(j)];
  for (vid_t i = 0; i < num_rows_; ++i)
    for (eid_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      const auto j = static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(e)]);
      row_idx_[static_cast<std::size_t>(col_ptr_[j]++)] = i;
    }
  // The cursor pass left col_ptr_[j] == end(j) == start(j+1); shift right to
  // restore start offsets (descending, so each read precedes its overwrite).
  for (vid_t j = num_cols_ - 1; j > 0; --j)
    col_ptr_[static_cast<std::size_t>(j)] = col_ptr_[static_cast<std::size_t>(j) - 1];
  if (num_cols_ > 0) col_ptr_[0] = 0;
}

bool BipartiteGraph::has_edge(vid_t i, vid_t j) const noexcept {
  if (i < 0 || i >= num_rows_ || j < 0 || j >= num_cols_) return false;
  const auto nbrs = row_neighbors(i);
  return std::find(nbrs.begin(), nbrs.end(), j) != nbrs.end();
}

BipartiteGraph BipartiteGraph::transposed() const {
  // The CSC view *is* the transpose's CSR view.
  return BipartiteGraph(num_cols_, num_rows_, col_ptr_, row_idx_);
}

bool BipartiteGraph::structurally_equal(const BipartiteGraph& other) const {
  if (num_rows_ != other.num_rows_ || num_cols_ != other.num_cols_ ||
      num_edges() != other.num_edges())
    return false;
  for (vid_t i = 0; i < num_rows_; ++i) {
    auto a = row_neighbors(i);
    auto b = other.row_neighbors(i);
    if (a.size() != b.size()) return false;
    std::vector<vid_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    if (sa != sb) return false;
  }
  return true;
}

} // namespace bmh
