#pragma once
/// \file builder.hpp
/// \brief COO → CSR assembly with duplicate removal.
///
/// Generators and file readers produce unsorted (row, col) pairs, possibly
/// with repeats; `GraphBuilder` assembles them into a `BipartiteGraph` via a
/// counting sort over rows followed by per-row sort+unique.

#include <utility>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/types.hpp"

namespace bmh {

/// A single (row, column) structural nonzero.
struct Edge {
  vid_t row;
  vid_t col;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class GraphBuilder {
public:
  GraphBuilder(vid_t num_rows, vid_t num_cols);

  /// Appends an edge; ids are validated at build() time.
  void add_edge(vid_t row, vid_t col) { edges_.push_back({row, col}); }

  void reserve(std::size_t n) { edges_.reserve(n); }

  [[nodiscard]] std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Assembles the graph. Duplicate edges collapse to one; throws on
  /// out-of-range ids. The builder is left empty and reusable.
  [[nodiscard]] BipartiteGraph build();

private:
  vid_t num_rows_;
  vid_t num_cols_;
  std::vector<Edge> edges_;
};

/// Convenience: assemble a graph directly from an edge list.
[[nodiscard]] BipartiteGraph graph_from_edges(vid_t num_rows, vid_t num_cols,
                                              const std::vector<Edge>& edges);

/// Convenience: dense adjacency given as initializer rows of column ids,
/// e.g. `graph_from_rows(3, 3, {{0,1},{1},{0,2}})`. Intended for tests.
[[nodiscard]] BipartiteGraph graph_from_rows(vid_t num_rows, vid_t num_cols,
                                             const std::vector<std::vector<vid_t>>& rows);

} // namespace bmh
