#pragma once
/// \file builder.hpp
/// \brief COO → CSR assembly with duplicate removal.
///
/// Generators and file readers produce unsorted (row, col) pairs, possibly
/// with repeats; `GraphBuilder` assembles them into a `BipartiteGraph` via a
/// counting sort over rows followed by per-row sort+unique.
///
/// Two assembly modes:
///  * build()      — one-shot: returns a fresh graph and releases all builder
///                   memory (the generators' and readers' shape);
///  * build_into() — pooled: assembles into a caller-kept graph, reusing the
///                   builder's scratch and the graph's vectors across calls.
///                   A long-lived builder (e.g. leased from a Workspace via
///                   `ws.obj<GraphBuilder>(tag)`) re-used through
///                   reset()/add_edge()/build_into() performs zero heap
///                   allocations once warm — the k-out subgraph path runs on
///                   this.

#include <utility>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/types.hpp"

namespace bmh {

/// A single (row, column) structural nonzero.
struct Edge {
  vid_t row;
  vid_t col;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class GraphBuilder {
public:
  /// Empty builder (0 x 0); reset() gives it dimensions. Exists so builders
  /// can live in default-constructed slots (Workspace object leases).
  GraphBuilder() = default;

  GraphBuilder(vid_t num_rows, vid_t num_cols);

  /// Re-dimensions the builder and drops pending edges, keeping every
  /// buffer's capacity — the warm path between build_into() calls.
  void reset(vid_t num_rows, vid_t num_cols);

  /// Appends an edge; ids are validated at build() time.
  void add_edge(vid_t row, vid_t col) { edges_.push_back({row, col}); }

  void reserve(std::size_t n) { edges_.reserve(n); }

  [[nodiscard]] std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Assembles the graph. Duplicate edges collapse to one; throws on
  /// out-of-range ids. The builder is left empty with its memory released
  /// (one-shot use by generators and readers).
  [[nodiscard]] BipartiteGraph build();

  /// Pooled assembly: same result as build(), but the scratch arrays and
  /// `out`'s internal vectors reuse their capacity across calls (zero heap
  /// allocations once warm). Pending edges are cleared, capacity kept, so
  /// the builder is immediately reusable via reset().
  void build_into(BipartiteGraph& out);

private:
  /// Counting sort by row + per-row sort/unique + compaction, shared by both
  /// assembly modes. Fills `out_ptr`/`out_idx` (capacity reused).
  void assemble(std::vector<eid_t>& out_ptr, std::vector<vid_t>& out_idx);

  vid_t num_rows_ = 0;
  vid_t num_cols_ = 0;
  std::vector<Edge> edges_;
  // Scratch for assemble(); persists across build_into() calls.
  std::vector<eid_t> row_ptr_scratch_;
  std::vector<eid_t> cursor_scratch_;
  std::vector<vid_t> col_idx_scratch_;
  // Output staging for build_into() (build() stages in locals it moves from).
  std::vector<eid_t> out_ptr_scratch_;
  std::vector<vid_t> out_idx_scratch_;
};

/// Convenience: assemble a graph directly from an edge list.
[[nodiscard]] BipartiteGraph graph_from_edges(vid_t num_rows, vid_t num_cols,
                                              const std::vector<Edge>& edges);

/// Convenience: dense adjacency given as initializer rows of column ids,
/// e.g. `graph_from_rows(3, 3, {{0,1},{1},{0,2}})`. Intended for tests.
[[nodiscard]] BipartiteGraph graph_from_rows(vid_t num_rows, vid_t num_cols,
                                             const std::vector<std::vector<vid_t>>& rows);

} // namespace bmh
