#pragma once
/// \file stats.hpp
/// \brief Structural statistics of a bipartite graph.
///
/// The paper correlates parallel scalability with the variance of the
/// per-row nonzero counts (§4.2: torso1 and audikw_1 scale worst because of
/// load imbalance); these helpers compute exactly those quantities.

#include <cstdint>

#include "graph/bipartite_graph.hpp"

namespace bmh {

struct DegreeStats {
  eid_t min = 0;
  eid_t max = 0;
  double mean = 0.0;
  double variance = 0.0;     ///< population variance, as Matlab `var(...,1)`
  vid_t num_zero = 0;        ///< isolated vertices on this side
  vid_t num_degree_one = 0;  ///< Karp–Sipser Phase-1 seeds
};

/// Degree statistics of the row side.
[[nodiscard]] DegreeStats row_degree_stats(const BipartiteGraph& g);

/// Degree statistics of the column side.
[[nodiscard]] DegreeStats col_degree_stats(const BipartiteGraph& g);

/// Average degree over both sides, the "Avg. deg." column of Table 3.
[[nodiscard]] double average_degree(const BipartiteGraph& g);

} // namespace bmh
