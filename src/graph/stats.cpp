#include "graph/stats.hpp"

#include <algorithm>
#include <span>

namespace bmh {

namespace {

DegreeStats stats_from_ptr(std::span<const eid_t> ptr, vid_t n) {
  DegreeStats s;
  if (n == 0) return s;
  double sum = 0.0, sumsq = 0.0;
  eid_t dmin = ptr[1] - ptr[0], dmax = ptr[1] - ptr[0];
#pragma omp parallel for schedule(static) reduction(+ : sum, sumsq) \
    reduction(min : dmin) reduction(max : dmax)
  for (vid_t v = 0; v < n; ++v) {
    const eid_t d = ptr[static_cast<std::size_t>(v) + 1] - ptr[static_cast<std::size_t>(v)];
    sum += static_cast<double>(d);
    sumsq += static_cast<double>(d) * static_cast<double>(d);
    dmin = std::min(dmin, d);
    dmax = std::max(dmax, d);
  }
  s.min = dmin;
  s.max = dmax;
  s.mean = sum / static_cast<double>(n);
  s.variance = sumsq / static_cast<double>(n) - s.mean * s.mean;
  vid_t zero = 0, one = 0;
#pragma omp parallel for schedule(static) reduction(+ : zero, one)
  for (vid_t v = 0; v < n; ++v) {
    const eid_t d = ptr[static_cast<std::size_t>(v) + 1] - ptr[static_cast<std::size_t>(v)];
    if (d == 0) ++zero;
    if (d == 1) ++one;
  }
  s.num_zero = zero;
  s.num_degree_one = one;
  return s;
}

} // namespace

DegreeStats row_degree_stats(const BipartiteGraph& g) {
  return stats_from_ptr(g.row_ptr(), g.num_rows());
}

DegreeStats col_degree_stats(const BipartiteGraph& g) {
  return stats_from_ptr(g.col_ptr(), g.num_cols());
}

double average_degree(const BipartiteGraph& g) {
  const double verts = static_cast<double>(g.num_rows()) + static_cast<double>(g.num_cols());
  if (verts == 0.0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) / verts;
}

} // namespace bmh
