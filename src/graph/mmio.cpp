#include "graph/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/transform.hpp"

namespace bmh {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("matrix market parse error at line " + std::to_string(line) +
                           ": " + what);
}

} // namespace

BipartiteGraph read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  if (!std::getline(in, line)) fail(1, "empty stream");
  ++lineno;
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (lower(tag) != "%%matrixmarket") fail(lineno, "missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail(lineno, "object must be 'matrix'");
  if (lower(format) != "coordinate") fail(lineno, "only 'coordinate' format supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool mirror = symmetry == "symmetric" || symmetry == "skew-symmetric" ||
                      symmetry == "hermitian";
  if (!mirror && symmetry != "general") fail(lineno, "unknown symmetry '" + symmetry + "'");
  if (field != "pattern" && field != "real" && field != "integer" && field != "complex")
    fail(lineno, "unknown field '" + field +
                     "' (pattern|real|integer|complex)");
  const int value_tokens = (field == "pattern") ? 0 : (field == "complex" ? 2 : 1);

  // Skip comments and blank lines up to the size line.
  do {
    if (!std::getline(in, line)) fail(lineno + 1, "missing size line");
    ++lineno;
  } while (line.empty() || line[0] == '%');

  long long rows = 0, cols = 0, nnz = 0;
  {
    std::istringstream sz(line);
    if (!(sz >> rows >> cols >> nnz) || rows < 0 || cols < 0 || nnz < 0)
      fail(lineno, "bad size line");
  }

  GraphBuilder b(static_cast<vid_t>(rows), static_cast<vid_t>(cols));
  b.reserve(static_cast<std::size_t>(mirror ? 2 * nnz : nnz));
  for (long long k = 0; k < nnz; ++k) {
    do {
      if (!std::getline(in, line)) fail(lineno + 1, "unexpected end of file");
      ++lineno;
    } while (line.empty() || line[0] == '%');
    std::istringstream es(line);
    long long i = 0, j = 0;
    if (!(es >> i >> j)) fail(lineno, "bad entry");
    for (int t = 0; t < value_tokens; ++t) {
      double v;
      if (!(es >> v)) fail(lineno, "missing value token");
    }
    std::string trailing;
    if (es >> trailing) fail(lineno, "trailing garbage '" + trailing + "' after entry");
    if (i < 1 || i > rows || j < 1 || j > cols) fail(lineno, "entry out of range");
    b.add_edge(static_cast<vid_t>(i - 1), static_cast<vid_t>(j - 1));
    if (mirror && i != j)
      b.add_edge(static_cast<vid_t>(j - 1), static_cast<vid_t>(i - 1));
  }
  // The declared count is a contract, not a hint: stray entries after it
  // mean the size line undercounts (a truncated or corrupted file), and
  // silently ignoring them would serve a different matrix than the file
  // describes. Blank lines and comments remain fine.
  while (std::getline(in, line)) {
    ++lineno;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '%') continue;
    fail(lineno, "content after the declared " + std::to_string(nnz) + " entries");
  }
  return b.build();
}

BipartiteGraph read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const BipartiteGraph& g) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << "% written by bmh\n";
  out << g.num_rows() << ' ' << g.num_cols() << ' ' << g.num_edges() << '\n';
  for (vid_t i = 0; i < g.num_rows(); ++i)
    for (const vid_t j : g.row_neighbors(i))
      out << (i + 1) << ' ' << (j + 1) << '\n';
}

void write_matrix_market_file(const std::string& path, const BipartiteGraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  write_matrix_market(out, g);
}

void write_matrix_market_symmetric(std::ostream& out, const BipartiteGraph& g) {
  if (!is_pattern_symmetric(g))
    throw std::invalid_argument(
        "write_matrix_market_symmetric: graph is not square pattern-symmetric");
  // Count and emit the lower triangle (j <= i), diagonal included — the
  // reader mirrors every off-diagonal entry back.
  eid_t lower = 0;
  for (vid_t i = 0; i < g.num_rows(); ++i)
    for (const vid_t j : g.row_neighbors(i))
      if (j <= i) ++lower;
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << "% written by bmh\n";
  out << g.num_rows() << ' ' << g.num_cols() << ' ' << lower << '\n';
  for (vid_t i = 0; i < g.num_rows(); ++i)
    for (const vid_t j : g.row_neighbors(i))
      if (j <= i) out << (i + 1) << ' ' << (j + 1) << '\n';
}

void write_matrix_market_symmetric_file(const std::string& path,
                                        const BipartiteGraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  write_matrix_market_symmetric(out, g);
}

} // namespace bmh
