#pragma once
/// \file transform.hpp
/// \brief Structural transforms: permutations and induced subgraphs.
///
/// Matching cardinality and sprank are invariant under row/column
/// permutations, and the heuristics' quality distributions must be too
/// (their probability densities depend only on the scaled entries, which
/// permute along). These transforms let the tests state those invariances
/// directly, and give downstream users the usual "renumber / take a
/// submatrix" operations.

#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/types.hpp"

namespace bmh {

/// Returns the graph with row i renamed row_perm[i] and column j renamed
/// col_perm[j]. Both arguments must be permutations of their index ranges.
[[nodiscard]] BipartiteGraph permuted(const BipartiteGraph& g,
                                      const std::vector<vid_t>& row_perm,
                                      const std::vector<vid_t>& col_perm);

/// Random permutation of {0..n-1}, deterministic in the seed.
[[nodiscard]] std::vector<vid_t> make_permutation(vid_t n, std::uint64_t seed);

/// The subgraph induced by keeping rows with keep_row[i] and columns with
/// keep_col[j]; kept vertices are renumbered densely in original order.
/// The mapping old-id -> new-id is returned through the optional out
/// parameters (kNil for dropped vertices).
[[nodiscard]] BipartiteGraph induced_subgraph(const BipartiteGraph& g,
                                              const std::vector<bool>& keep_row,
                                              const std::vector<bool>& keep_col,
                                              std::vector<vid_t>* row_map = nullptr,
                                              std::vector<vid_t>* col_map = nullptr);

/// True iff the graph is square and its adjacency structure is symmetric
/// (edge (i, j) present iff (j, i) is). Each structural entry is looked up
/// in the always-sorted CSC mirror, so the check allocates no scratch (it
/// runs on the kind=undirected-match serving path to pick the conversion
/// rule).
[[nodiscard]] bool is_pattern_symmetric(const BipartiteGraph& g);

/// Extracts one coarse Dulmage–Mendelsohn block (or any labeled part) as a
/// standalone graph: convenience over induced_subgraph for the DM tests.
template <typename Label>
[[nodiscard]] BipartiteGraph extract_part(const BipartiteGraph& g,
                                          const std::vector<Label>& row_label,
                                          const std::vector<Label>& col_label,
                                          Label wanted) {
  std::vector<bool> keep_row(row_label.size()), keep_col(col_label.size());
  for (std::size_t i = 0; i < row_label.size(); ++i) keep_row[i] = row_label[i] == wanted;
  for (std::size_t j = 0; j < col_label.size(); ++j) keep_col[j] = col_label[j] == wanted;
  return induced_subgraph(g, keep_row, keep_col);
}

} // namespace bmh
