#pragma once
/// \file mmio.hpp
/// \brief Matrix Market (pattern) reader/writer.
///
/// The paper evaluates on matrices from the UFL (SuiteSparse) collection,
/// which ship in Matrix Market format. We read `matrix coordinate`
/// files of any field (pattern/real/integer/complex — values are discarded,
/// only the structure matters for cardinality matching) and both `general`
/// and `symmetric`-family symmetries (symmetric entries are mirrored).

#include <iosfwd>
#include <string>

#include "graph/bipartite_graph.hpp"

namespace bmh {

/// Reads a Matrix Market coordinate file into a bipartite graph whose rows
/// and columns are the matrix rows and columns. Throws std::runtime_error
/// with a line-numbered message on malformed input — including non-comment
/// content after the declared entry count (a truncated count would
/// otherwise silently drop entries).
[[nodiscard]] BipartiteGraph read_matrix_market(std::istream& in);
[[nodiscard]] BipartiteGraph read_matrix_market_file(const std::string& path);

/// Writes the structure as `matrix coordinate pattern general`.
void write_matrix_market(std::ostream& out, const BipartiteGraph& g);
void write_matrix_market_file(const std::string& path, const BipartiteGraph& g);

/// Writes the structure as `matrix coordinate pattern symmetric`: only the
/// lower triangle (including the diagonal) is emitted, halving the file and
/// round-tripping through the reader's mirroring to the identical graph.
/// Throws std::invalid_argument unless the graph is square with a
/// symmetric pattern (see is_pattern_symmetric in graph/transform.hpp).
void write_matrix_market_symmetric(std::ostream& out, const BipartiteGraph& g);
void write_matrix_market_symmetric_file(const std::string& path,
                                        const BipartiteGraph& g);

} // namespace bmh
