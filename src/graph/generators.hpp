#pragma once
/// \file generators.hpp
/// \brief Synthetic bipartite graph generators used throughout the
/// reproduction.
///
/// The paper's experiments draw on three kinds of inputs:
///   1. Matlab `sprand` Erdős–Rényi matrices (Table 2) — `make_erdos_renyi`.
///   2. The adversarial "bad for Karp–Sipser" family of Fig. 2 (Table 1) —
///      `make_ks_adversarial`.
///   3. Real matrices from the UFL collection (Table 3, Figs. 3–5) — here
///      substituted by structural stand-ins built from the generators below
///      (see generators_suite.hpp and DESIGN.md §3).
///
/// All generators are deterministic in (parameters, seed) and independent of
/// the OpenMP thread count.

#include <cstdint>

#include "graph/bipartite_graph.hpp"

namespace bmh {

/// Erdős–Rényi / Matlab-sprand analogue: `nnz_target` (row, col) pairs drawn
/// iid uniformly; duplicates collapse, so the realized edge count is slightly
/// below the target, exactly as with sprand's density parameter.
[[nodiscard]] BipartiteGraph make_erdos_renyi(vid_t rows, vid_t cols,
                                              eid_t nnz_target, std::uint64_t seed);

/// The Fig. 2 family: an n×n matrix (n even) that is bad for Karp–Sipser.
/// Let R1/C1 be the first n/2 rows/columns and R2/C2 the rest. The block
/// R1×C1 is completely full and R2×C2 completely empty; the last `k` rows of
/// R1 and the last `k` columns of C1 are full (span the whole matrix); and
/// R1×C2, R2×C1 carry nonzero diagonals which together form a perfect
/// matching. For k <= 1 Karp–Sipser is exact; for k > 1 its Phase 1 never
/// fires and random picks land in the (useless) full block.
[[nodiscard]] BipartiteGraph make_ks_adversarial(vid_t n, vid_t k);

/// Random matrix with a planted perfect matching: a random permutation
/// diagonal plus `extra_per_row` additional uniform entries per row. Always
/// full sprank, and with total support for the permutation entries.
[[nodiscard]] BipartiteGraph make_planted_perfect(vid_t n, vid_t extra_per_row,
                                                  std::uint64_t seed);

/// Fully dense n×n matrix of ones (the analysis case of Conjecture 1; its
/// scaled form is exactly s_ij = 1/n).
[[nodiscard]] BipartiteGraph make_full(vid_t n);

/// Five-point-stencil mesh matrix on an sx×sy grid (n = sx*sy): row v is
/// connected to column v and the columns of the 4-neighbours. Mimics
/// PDE/mesh matrices such as atmosmodl / channel / venturiLevel3.
[[nodiscard]] BipartiteGraph make_mesh(vid_t sx, vid_t sy);

/// Road-network-like matrix: a Hamiltonian cycle (diagonal + superdiagonal)
/// with `shortcut_fraction`·n extra random entries, then `drop_fraction`·n
/// diagonal entries removed to create sprank deficiency like road_usa /
/// europe_osm. Average degree stays near 2.
[[nodiscard]] BipartiteGraph make_road_like(vid_t n, double shortcut_fraction,
                                            double drop_fraction, std::uint64_t seed);

/// Skewed (power-law-ish) degree matrix: row degrees are sampled from a
/// truncated Pareto with shape `alpha` and mean ~`avg_degree`, columns drawn
/// uniformly; a permutation diagonal keeps it full sprank. High row-degree
/// variance, mimicking torso1 / audikw_1 where the paper sees its worst
/// load-balance.
[[nodiscard]] BipartiteGraph make_power_law(vid_t n, double avg_degree, double alpha,
                                            std::uint64_t seed);

/// KKT-like 2×2 block matrix [H Bt; B 0] with H an m×m mesh and B a random
/// p×m constraint block with `d` entries per row, plus diagonals to plant a
/// perfect matching. Mimics kkt_power / nlpkkt240. n = m + p.
[[nodiscard]] BipartiteGraph make_kkt_like(vid_t m, vid_t p, vid_t d, std::uint64_t seed);

/// Random 1-out bipartite graph: every row picks exactly one uniform random
/// column. Used by the Conjecture-1 evidence bench (Karoński–Pittel).
[[nodiscard]] BipartiteGraph make_one_out(vid_t n, std::uint64_t seed);

/// Cycle matrix: row i adjacent to columns i and (i+1) mod n. Every vertex
/// has degree 2 and the whole graph is one simple cycle (for n >= 2).
[[nodiscard]] BipartiteGraph make_cycle(vid_t n);

/// d-regular-ish random matrix: each row gets exactly `d` distinct uniform
/// columns (d <= n). Degrees on the column side are near-Poisson.
[[nodiscard]] BipartiteGraph make_row_regular(vid_t n, vid_t d, std::uint64_t seed);

/// Block-diagonal composition of `blocks` copies of an inner generator call;
/// used to build block matrices with each block fully indecomposable.
[[nodiscard]] BipartiteGraph make_block_diagonal(const std::vector<BipartiteGraph>& blocks);

/// A matrix in explicit Dulmage–Mendelsohn coarse form: an `h_rows`×`h_cols`
/// horizontal block (h_cols > h_rows, row-perfect matching planted), a
/// square block of size `s_n` with total support, and a vertical block
/// (`v_rows` > `v_cols`, column-perfect matching planted). The "*" coupling
/// entries above the diagonal blocks are filled randomly with
/// `coupling_per_row` entries; scaling must drive them to zero (§3.3).
[[nodiscard]] BipartiteGraph make_dm_structured(vid_t h_rows, vid_t h_cols, vid_t s_n,
                                                vid_t v_rows, vid_t v_cols,
                                                vid_t coupling_per_row,
                                                std::uint64_t seed);

} // namespace bmh
