#include "graph/transform.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace bmh {

namespace {

void check_permutation(const std::vector<vid_t>& p, vid_t n, const char* what) {
  if (p.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const vid_t v : p) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)])
      throw std::invalid_argument(std::string(what) + ": not a permutation");
    seen[static_cast<std::size_t>(v)] = true;
  }
}

} // namespace

BipartiteGraph permuted(const BipartiteGraph& g, const std::vector<vid_t>& row_perm,
                        const std::vector<vid_t>& col_perm) {
  check_permutation(row_perm, g.num_rows(), "permuted(row_perm)");
  check_permutation(col_perm, g.num_cols(), "permuted(col_perm)");
  GraphBuilder b(g.num_rows(), g.num_cols());
  b.reserve(static_cast<std::size_t>(g.num_edges()));
  for (vid_t i = 0; i < g.num_rows(); ++i)
    for (const vid_t j : g.row_neighbors(i))
      b.add_edge(row_perm[static_cast<std::size_t>(i)],
                 col_perm[static_cast<std::size_t>(j)]);
  return b.build();
}

std::vector<vid_t> make_permutation(vid_t n, std::uint64_t seed) {
  std::vector<vid_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  Rng rng(seed);
  for (vid_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(j)]);
  }
  return p;
}

bool is_pattern_symmetric(const BipartiteGraph& g) {
  if (g.num_rows() != g.num_cols()) return false;
  // E is symmetric iff E ⊆ Eᵀ (the two have equal cardinality). Membership
  // (j, i) ∈ E is j ∈ col_neighbors(i), a binary search in the
  // always-sorted CSC list; row lists may be unsorted, which is why the
  // check is not a span compare.
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (g.row_degree(i) != g.col_degree(i)) return false;
    const auto mirror = g.col_neighbors(i);
    for (const vid_t j : g.row_neighbors(i))
      if (!std::binary_search(mirror.begin(), mirror.end(), j)) return false;
  }
  return true;
}

BipartiteGraph induced_subgraph(const BipartiteGraph& g, const std::vector<bool>& keep_row,
                                const std::vector<bool>& keep_col,
                                std::vector<vid_t>* row_map, std::vector<vid_t>* col_map) {
  if (keep_row.size() != static_cast<std::size_t>(g.num_rows()) ||
      keep_col.size() != static_cast<std::size_t>(g.num_cols()))
    throw std::invalid_argument("induced_subgraph: mask size mismatch");

  std::vector<vid_t> rmap(static_cast<std::size_t>(g.num_rows()), kNil);
  std::vector<vid_t> cmap(static_cast<std::size_t>(g.num_cols()), kNil);
  vid_t new_rows = 0, new_cols = 0;
  for (vid_t i = 0; i < g.num_rows(); ++i)
    if (keep_row[static_cast<std::size_t>(i)]) rmap[static_cast<std::size_t>(i)] = new_rows++;
  for (vid_t j = 0; j < g.num_cols(); ++j)
    if (keep_col[static_cast<std::size_t>(j)]) cmap[static_cast<std::size_t>(j)] = new_cols++;

  GraphBuilder b(new_rows, new_cols);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (rmap[static_cast<std::size_t>(i)] == kNil) continue;
    for (const vid_t j : g.row_neighbors(i))
      if (cmap[static_cast<std::size_t>(j)] != kNil)
        b.add_edge(rmap[static_cast<std::size_t>(i)], cmap[static_cast<std::size_t>(j)]);
  }
  if (row_map != nullptr) *row_map = std::move(rmap);
  if (col_map != nullptr) *col_map = std::move(cmap);
  return b.build();
}

} // namespace bmh
