#include "graph/generators_suite.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"

namespace bmh {

namespace {

vid_t scale_n(vid_t base, double scale, vid_t floor_value = 1024) {
  const double s = std::clamp(scale, 0.001, 1000.0);
  return std::max<vid_t>(floor_value, static_cast<vid_t>(static_cast<double>(base) * s));
}

/// Side length for a mesh whose vertex count is ~base*scale.
vid_t mesh_side(vid_t base_side, double scale) {
  const double s = std::sqrt(std::clamp(scale, 0.001, 1000.0));
  return std::max<vid_t>(32, static_cast<vid_t>(static_cast<double>(base_side) * s));
}

} // namespace

std::vector<std::string> suite_names() {
  return {"atmosmodl_like", "audikw_1_like", "cage15_like",   "channel_like",
          "europe_osm_like", "Hamrle3_like",  "hugebubbles_like", "kkt_power_like",
          "nlpkkt240_like",  "road_usa_like", "torso1_like",   "venturiLevel3_like"};
}

SuiteInstance make_suite_instance(const std::string& name, double scale,
                                  std::uint64_t seed) {
  // Base sizes are ~1/10 of the paper's instances; average degrees match the
  // paper's Table 3 (so per-edge work and degree variance are comparable).
  if (name == "atmosmodl_like") {
    const vid_t s = mesh_side(390, scale);  // paper: n=1.49M, d=6.9 (3D stencil)
    return {name, "mesh", make_mesh(s, s)};
  }
  if (name == "audikw_1_like") {
    // paper: n=0.94M, d=82, very high degree variance.
    const vid_t n = scale_n(94000, scale);
    return {name, "powerlaw", make_power_law(n, 60.0, 1.6, seed + 1)};
  }
  if (name == "cage15_like") {
    // paper: n=5.15M, d=19.2, fairly uniform random structure.
    const vid_t n = scale_n(515000, scale);
    return {name, "erdos_renyi",
            make_erdos_renyi(n, n, static_cast<eid_t>(n) * 19, seed + 2)};
  }
  if (name == "channel_like") {
    // paper: n=4.8M, d=17.8, mesh-like with wide stencil.
    const vid_t n = scale_n(480000, scale);
    return {name, "planted", make_planted_perfect(n, 17, seed + 3)};
  }
  if (name == "europe_osm_like") {
    // paper: n=50.9M, d=2.1, road network, sprank/n = 0.99.
    const vid_t n = scale_n(5090000, scale);
    return {name, "road", make_road_like(n, 0.10, 0.02, seed + 4)};
  }
  if (name == "Hamrle3_like") {
    // paper: n=1.45M, d=3.8, circuit simulation.
    const vid_t n = scale_n(145000, scale);
    return {name, "road", make_road_like(n, 1.8, 0.0, seed + 5)};
  }
  if (name == "hugebubbles_like") {
    // paper: n=21.2M, d=3.0, near-planar mesh with tiny degrees.
    const vid_t n = scale_n(2120000, scale);
    return {name, "road", make_road_like(n, 1.0, 0.0, seed + 6)};
  }
  if (name == "kkt_power_like") {
    // paper: n=2.06M, d=6.2, optimal power flow KKT system.
    const vid_t m = scale_n(150000, scale), p = scale_n(56000, scale);
    return {name, "kkt", make_kkt_like(m, p, 3, seed + 7)};
  }
  if (name == "nlpkkt240_like") {
    // paper: n=28M, d=26.7, huge nonlinear-programming KKT system.
    const vid_t m = scale_n(1800000, scale), p = scale_n(1000000, scale);
    return {name, "kkt", make_kkt_like(m, p, 11, seed + 8)};
  }
  if (name == "road_usa_like") {
    // paper: n=23.9M, d=2.4, road network, sprank/n = 0.95.
    const vid_t n = scale_n(2390000, scale);
    return {name, "road", make_road_like(n, 0.40, 0.05, seed + 9)};
  }
  if (name == "torso1_like") {
    // paper: n=116k, d=73.3; the highest row-degree variance in the set
    // (176056 in Matlab terms) — worst-case load imbalance.
    const vid_t n = scale_n(58000, scale);
    return {name, "powerlaw", make_power_law(n, 55.0, 1.35, seed + 10)};
  }
  if (name == "venturiLevel3_like") {
    // paper: n=4.03M, d=4.0, 2D fluid mesh.
    const vid_t s = mesh_side(635, scale);
    return {name, "mesh", make_mesh(s, s)};
  }
  throw std::invalid_argument("make_suite_instance: unknown instance '" + name + "'");
}

std::vector<SuiteInstance> make_suite(double scale, std::uint64_t seed) {
  std::vector<SuiteInstance> suite;
  for (const auto& name : suite_names())
    suite.push_back(make_suite_instance(name, scale, seed));
  return suite;
}

} // namespace bmh
