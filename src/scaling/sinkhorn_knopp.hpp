#pragma once
/// \file sinkhorn_knopp.hpp
/// \brief Parallel Sinkhorn–Knopp scaling (paper Algorithm 1, "ScaleSK").

#include "scaling/scaling.hpp"

namespace bmh {

/// Runs the Sinkhorn–Knopp iteration: at each step, first the columns are
/// balanced (dc[j] = 1 / sum_i dr[i]·a_ij), then the rows (dr[i] = 1 /
/// sum_j a_ij·dc[j]), each in an OpenMP parallel-for over the corresponding
/// compressed view. After every iteration the row sums are exactly one
/// (modulo round-off), so the reported error is the maximum deviation of the
/// column sums from one.
///
/// Empty rows/columns keep multiplier 1 and are excluded from the error.
/// Edgeless matrices converge immediately (error 0, zero iterations).
[[nodiscard]] ScalingResult scale_sinkhorn_knopp(const BipartiteGraph& g,
                                                 const ScalingOptions& opts = {});

/// Workspace-aware variant: the multipliers are written into `out` (whose
/// vectors' capacity is reused), so a warm call performs no heap allocation.
void scale_sinkhorn_knopp_ws(const BipartiteGraph& g, const ScalingOptions& opts,
                             Workspace& ws, ScalingResult& out);

} // namespace bmh
