#include "scaling/ruiz.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace bmh {

ScalingResult scale_ruiz(const BipartiteGraph& g, const ScalingOptions& opts) {
  ScalingResult r;
  r.dr.assign(static_cast<std::size_t>(g.num_rows()), 1.0);
  r.dc.assign(static_cast<std::size_t>(g.num_cols()), 1.0);
  std::vector<double> rsum(static_cast<std::size_t>(g.num_rows()));
  std::vector<double> csum(static_cast<std::size_t>(g.num_cols()));

  for (int it = 0; it < opts.max_iterations; ++it) {
    // Both sums with the pre-sweep multipliers (this simultaneity is what
    // distinguishes Ruiz from Sinkhorn–Knopp's alternating normalization).
#pragma omp parallel for schedule(dynamic, 512)
    for (vid_t i = 0; i < g.num_rows(); ++i) {
      double acc = 0.0;
      for (const vid_t j : g.row_neighbors(i)) acc += r.dc[static_cast<std::size_t>(j)];
      rsum[static_cast<std::size_t>(i)] = acc * r.dr[static_cast<std::size_t>(i)];
    }
#pragma omp parallel for schedule(dynamic, 512)
    for (vid_t j = 0; j < g.num_cols(); ++j) {
      double acc = 0.0;
      for (const vid_t i : g.col_neighbors(j)) acc += r.dr[static_cast<std::size_t>(i)];
      csum[static_cast<std::size_t>(j)] = acc * r.dc[static_cast<std::size_t>(j)];
    }

#pragma omp parallel for schedule(static)
    for (vid_t i = 0; i < g.num_rows(); ++i) {
      const double s = rsum[static_cast<std::size_t>(i)];
      if (s > 0.0) r.dr[static_cast<std::size_t>(i)] /= std::sqrt(s);
    }
#pragma omp parallel for schedule(static)
    for (vid_t j = 0; j < g.num_cols(); ++j) {
      const double s = csum[static_cast<std::size_t>(j)];
      if (s > 0.0) r.dc[static_cast<std::size_t>(j)] /= std::sqrt(s);
    }

    r.iterations = it + 1;
    r.error = scaling_error(g, r);
    if (opts.tolerance > 0.0 && r.error <= opts.tolerance) {
      r.converged = true;
      break;
    }
  }

  if (opts.max_iterations == 0) r.error = scaling_error(g, r);
  return r;
}

} // namespace bmh
