#include "scaling/ruiz.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace bmh {

ScalingResult scale_ruiz(const BipartiteGraph& g, const ScalingOptions& opts) {
  ScalingResult r;
  scale_ruiz_ws(g, opts, Workspace::for_this_thread(), r);
  return r;
}

void scale_ruiz_ws(const BipartiteGraph& g, const ScalingOptions& opts, Workspace& ws,
                   ScalingResult& out) {
  out.dr.assign(static_cast<std::size_t>(g.num_rows()), 1.0);
  out.dc.assign(static_cast<std::size_t>(g.num_cols()), 1.0);
  out.iterations = 0;
  out.error = 0.0;
  out.converged = false;

  // Edgeless matrix: vacuously doubly stochastic, converge immediately
  // (mirrors scale_sinkhorn_knopp_ws).
  if (g.num_edges() == 0) {
    out.converged = true;
    return;
  }

  std::vector<double>& rsum =
      ws.vec<double>("ruiz.row_sums", static_cast<std::size_t>(g.num_rows()));
  std::vector<double>& csum =
      ws.vec<double>("ruiz.col_sums", static_cast<std::size_t>(g.num_cols()));

  for (int it = 0; it < opts.max_iterations; ++it) {
    // Both sums with the pre-sweep multipliers (this simultaneity is what
    // distinguishes Ruiz from Sinkhorn–Knopp's alternating normalization).
#pragma omp parallel for schedule(dynamic, 512)
    for (vid_t i = 0; i < g.num_rows(); ++i) {
      double acc = 0.0;
      for (const vid_t j : g.row_neighbors(i)) acc += out.dc[static_cast<std::size_t>(j)];
      rsum[static_cast<std::size_t>(i)] = acc * out.dr[static_cast<std::size_t>(i)];
    }
#pragma omp parallel for schedule(dynamic, 512)
    for (vid_t j = 0; j < g.num_cols(); ++j) {
      double acc = 0.0;
      for (const vid_t i : g.col_neighbors(j)) acc += out.dr[static_cast<std::size_t>(i)];
      csum[static_cast<std::size_t>(j)] = acc * out.dc[static_cast<std::size_t>(j)];
    }

#pragma omp parallel for schedule(static)
    for (vid_t i = 0; i < g.num_rows(); ++i) {
      const double s = rsum[static_cast<std::size_t>(i)];
      if (s > 0.0) out.dr[static_cast<std::size_t>(i)] /= std::sqrt(s);
    }
#pragma omp parallel for schedule(static)
    for (vid_t j = 0; j < g.num_cols(); ++j) {
      const double s = csum[static_cast<std::size_t>(j)];
      if (s > 0.0) out.dc[static_cast<std::size_t>(j)] /= std::sqrt(s);
    }

    out.iterations = it + 1;
    out.error = scaling_error_ws(g, out, ws);
    if (opts.tolerance > 0.0 && out.error <= opts.tolerance) {
      out.converged = true;
      break;
    }
  }

  if (opts.max_iterations == 0) out.error = scaling_error_ws(g, out, ws);
}

} // namespace bmh
