#pragma once
/// \file scaling.hpp
/// \brief Doubly stochastic scaling of (0,1)-matrices — shared interface.
///
/// Both heuristics start by scaling the adjacency matrix A to a doubly
/// stochastic S = D_R A D_C (paper §2.2). Only the two diagonal vectors are
/// stored: the scaled entry is s_ij = dr[i] * dc[j] because a_ij is 1.
///
/// For matrices with total support, Sinkhorn–Knopp converges to a doubly
/// stochastic limit; without total support the iteration instead drives the
/// entries that cannot be in a maximum matching toward zero (§3.3), which is
/// exactly what makes the heuristics robust on sprank-deficient inputs.

#include <vector>

#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "util/types.hpp"

namespace bmh {

struct ScalingOptions {
  /// Iteration cap. The paper runs just a few iterations (0/1/5/10); with
  /// alpha-relaxed column sums the quality bound degrades gracefully
  /// (§3.3: alpha = 0.92 still gives ratio ~0.6015).
  int max_iterations = 10;
  /// Early-exit tolerance on the convergence error (0 disables early exit,
  /// forcing exactly max_iterations — used to reproduce the paper's fixed
  /// iteration counts).
  double tolerance = 0.0;
};

struct ScalingResult {
  std::vector<double> dr;  ///< row multipliers, size num_rows
  std::vector<double> dc;  ///< column multipliers, size num_cols
  int iterations = 0;      ///< iterations actually performed
  double error = 0.0;      ///< convergence error after the last iteration
  bool converged = false;  ///< error <= tolerance (when tolerance > 0)

  /// Scaled entry s_ij = dr[i] * dc[j]; valid only where a_ij = 1.
  [[nodiscard]] double entry(vid_t i, vid_t j) const noexcept {
    return dr[static_cast<std::size_t>(i)] * dc[static_cast<std::size_t>(j)];
  }
};

/// Identity scaling (dr = dc = 1): the "0 iterations" rows of the paper's
/// tables, i.e. sampling neighbours from the uniform distribution.
[[nodiscard]] ScalingResult identity_scaling(const BipartiteGraph& g);

/// The paper's scaling error: max over non-empty rows and columns of
/// |sum(S row/col) - 1|. (After an SK iteration the row sums are exactly 1,
/// so this reduces to the column-sum error the paper reports.)
[[nodiscard]] double scaling_error(const BipartiteGraph& g, const ScalingResult& s);

/// Row sums of S = D_R A D_C (length num_rows).
[[nodiscard]] std::vector<double> scaled_row_sums(const BipartiteGraph& g,
                                                  const ScalingResult& s);

/// Column sums of S (length num_cols).
[[nodiscard]] std::vector<double> scaled_col_sums(const BipartiteGraph& g,
                                                  const ScalingResult& s);

/// Allocation-free variants for the batch-serving hot paths: sums land in
/// `out` (capacity reused), identity_scaling writes into `out`, and
/// scaling_error leases its two sum vectors from `ws`.
void scaled_row_sums(const BipartiteGraph& g, const ScalingResult& s,
                     std::vector<double>& out);
void scaled_col_sums(const BipartiteGraph& g, const ScalingResult& s,
                     std::vector<double>& out);
/// `compute_error = false` skips the O(nnz) error sweep for callers that
/// only need the multipliers (the error field is then 0, not meaningful).
void identity_scaling_ws(const BipartiteGraph& g, Workspace& ws, ScalingResult& out,
                         bool compute_error = true);
[[nodiscard]] double scaling_error_ws(const BipartiteGraph& g, const ScalingResult& s,
                                      Workspace& ws);

} // namespace bmh
