#pragma once
/// \file ruiz.hpp
/// \brief Parallel Ruiz equilibration (reviewed in paper §2.2).
///
/// Ruiz's algorithm scales rows and columns *simultaneously* each sweep:
///   dr[i] <- dr[i] / sqrt(rowsum_i),  dc[j] <- dc[j] / sqrt(colsum_j),
/// both sums taken with the pre-sweep multipliers. The paper notes it
/// converges more slowly than Sinkhorn–Knopp on unsymmetric matrices; the
/// ablation bench `bench_ablation_scaling` measures exactly that trade-off
/// as it feeds the matching heuristics.

#include "scaling/scaling.hpp"

namespace bmh {

[[nodiscard]] ScalingResult scale_ruiz(const BipartiteGraph& g,
                                       const ScalingOptions& opts = {});

/// Workspace-aware variant: sweep scratch is leased from `ws` and the
/// multipliers land in `out` (capacity reused); warm calls allocate nothing.
/// Edgeless matrices converge immediately (error 0, zero iterations).
void scale_ruiz_ws(const BipartiteGraph& g, const ScalingOptions& opts, Workspace& ws,
                   ScalingResult& out);

} // namespace bmh
