#include "scaling/scaling.hpp"

#include <algorithm>
#include <cmath>

namespace bmh {

ScalingResult identity_scaling(const BipartiteGraph& g) {
  ScalingResult r;
  identity_scaling_ws(g, Workspace::for_this_thread(), r);
  return r;
}

void identity_scaling_ws(const BipartiteGraph& g, Workspace& ws, ScalingResult& out,
                         bool compute_error) {
  out.dr.assign(static_cast<std::size_t>(g.num_rows()), 1.0);
  out.dc.assign(static_cast<std::size_t>(g.num_cols()), 1.0);
  out.iterations = 0;
  out.error = compute_error ? scaling_error_ws(g, out, ws) : 0.0;
  out.converged = false;
}

std::vector<double> scaled_row_sums(const BipartiteGraph& g, const ScalingResult& s) {
  std::vector<double> sums;
  scaled_row_sums(g, s, sums);
  return sums;
}

void scaled_row_sums(const BipartiteGraph& g, const ScalingResult& s,
                     std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(g.num_rows()), 0.0);
#pragma omp parallel for schedule(dynamic, 512)
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    double acc = 0.0;
    for (const vid_t j : g.row_neighbors(i)) acc += s.dc[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = acc * s.dr[static_cast<std::size_t>(i)];
  }
}

std::vector<double> scaled_col_sums(const BipartiteGraph& g, const ScalingResult& s) {
  std::vector<double> sums;
  scaled_col_sums(g, s, sums);
  return sums;
}

void scaled_col_sums(const BipartiteGraph& g, const ScalingResult& s,
                     std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(g.num_cols()), 0.0);
#pragma omp parallel for schedule(dynamic, 512)
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    double acc = 0.0;
    for (const vid_t i : g.col_neighbors(j)) acc += s.dr[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(j)] = acc * s.dc[static_cast<std::size_t>(j)];
  }
}

double scaling_error(const BipartiteGraph& g, const ScalingResult& s) {
  return scaling_error_ws(g, s, Workspace::for_this_thread());
}

double scaling_error_ws(const BipartiteGraph& g, const ScalingResult& s, Workspace& ws) {
  if (g.num_edges() == 0) return 0.0;  // every non-empty row/col sum is vacuous
  std::vector<double>& rs = ws.buf<double>("scaling.row_sums");
  std::vector<double>& cs = ws.buf<double>("scaling.col_sums");
  scaled_row_sums(g, s, rs);
  scaled_col_sums(g, s, cs);
  double err = 0.0;
#pragma omp parallel for schedule(static) reduction(max : err)
  for (vid_t i = 0; i < g.num_rows(); ++i)
    if (g.row_degree(i) > 0)
      err = std::max(err, std::abs(rs[static_cast<std::size_t>(i)] - 1.0));
#pragma omp parallel for schedule(static) reduction(max : err)
  for (vid_t j = 0; j < g.num_cols(); ++j)
    if (g.col_degree(j) > 0)
      err = std::max(err, std::abs(cs[static_cast<std::size_t>(j)] - 1.0));
  return err;
}

} // namespace bmh
