#include "scaling/scaling.hpp"

#include <algorithm>
#include <cmath>

namespace bmh {

ScalingResult identity_scaling(const BipartiteGraph& g) {
  ScalingResult r;
  r.dr.assign(static_cast<std::size_t>(g.num_rows()), 1.0);
  r.dc.assign(static_cast<std::size_t>(g.num_cols()), 1.0);
  r.iterations = 0;
  r.error = scaling_error(g, r);
  r.converged = false;
  return r;
}

std::vector<double> scaled_row_sums(const BipartiteGraph& g, const ScalingResult& s) {
  std::vector<double> sums(static_cast<std::size_t>(g.num_rows()), 0.0);
#pragma omp parallel for schedule(dynamic, 512)
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    double acc = 0.0;
    for (const vid_t j : g.row_neighbors(i)) acc += s.dc[static_cast<std::size_t>(j)];
    sums[static_cast<std::size_t>(i)] = acc * s.dr[static_cast<std::size_t>(i)];
  }
  return sums;
}

std::vector<double> scaled_col_sums(const BipartiteGraph& g, const ScalingResult& s) {
  std::vector<double> sums(static_cast<std::size_t>(g.num_cols()), 0.0);
#pragma omp parallel for schedule(dynamic, 512)
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    double acc = 0.0;
    for (const vid_t i : g.col_neighbors(j)) acc += s.dr[static_cast<std::size_t>(i)];
    sums[static_cast<std::size_t>(j)] = acc * s.dc[static_cast<std::size_t>(j)];
  }
  return sums;
}

double scaling_error(const BipartiteGraph& g, const ScalingResult& s) {
  const std::vector<double> rs = scaled_row_sums(g, s);
  const std::vector<double> cs = scaled_col_sums(g, s);
  double err = 0.0;
#pragma omp parallel for schedule(static) reduction(max : err)
  for (vid_t i = 0; i < g.num_rows(); ++i)
    if (g.row_degree(i) > 0)
      err = std::max(err, std::abs(rs[static_cast<std::size_t>(i)] - 1.0));
#pragma omp parallel for schedule(static) reduction(max : err)
  for (vid_t j = 0; j < g.num_cols(); ++j)
    if (g.col_degree(j) > 0)
      err = std::max(err, std::abs(cs[static_cast<std::size_t>(j)] - 1.0));
  return err;
}

} // namespace bmh
