#include "scaling/sinkhorn_knopp.hpp"

#include <algorithm>
#include <cmath>

namespace bmh {

ScalingResult scale_sinkhorn_knopp(const BipartiteGraph& g, const ScalingOptions& opts) {
  ScalingResult r;
  scale_sinkhorn_knopp_ws(g, opts, Workspace::for_this_thread(), r);
  return r;
}

void scale_sinkhorn_knopp_ws(const BipartiteGraph& g, const ScalingOptions& opts,
                             Workspace& ws, ScalingResult& out) {
  out.dr.assign(static_cast<std::size_t>(g.num_rows()), 1.0);
  out.dc.assign(static_cast<std::size_t>(g.num_cols()), 1.0);
  out.iterations = 0;
  out.error = 0.0;
  out.converged = false;

  // An edgeless matrix is already (vacuously) doubly stochastic: every
  // row/column sum constraint is over an empty support. Report immediate
  // convergence instead of burning max_iterations no-op sweeps.
  if (g.num_edges() == 0) {
    out.converged = true;
    return;
  }

  for (int it = 0; it < opts.max_iterations; ++it) {
    // Balance columns: dc[j] <- 1 / (sum of dr over the column's rows).
#pragma omp parallel for schedule(dynamic, 512)
    for (vid_t j = 0; j < g.num_cols(); ++j) {
      double csum = 0.0;
      for (const vid_t i : g.col_neighbors(j)) csum += out.dr[static_cast<std::size_t>(i)];
      if (csum > 0.0) out.dc[static_cast<std::size_t>(j)] = 1.0 / csum;
    }

    // Balance rows: dr[i] <- 1 / (sum of dc over the row's columns). The
    // column-sum error is accumulated in the same sweep's mirror image — we
    // compute it after the update from the definition to match the paper.
#pragma omp parallel for schedule(dynamic, 512)
    for (vid_t i = 0; i < g.num_rows(); ++i) {
      double rsum = 0.0;
      for (const vid_t j : g.row_neighbors(i)) rsum += out.dc[static_cast<std::size_t>(j)];
      if (rsum > 0.0) out.dr[static_cast<std::size_t>(i)] = 1.0 / rsum;
    }

    out.iterations = it + 1;

    // Column sums drifted when the rows were re-balanced; their max
    // deviation from 1 is the convergence error (row sums are exactly 1).
    double err = 0.0;
#pragma omp parallel for schedule(dynamic, 512) reduction(max : err)
    for (vid_t j = 0; j < g.num_cols(); ++j) {
      if (g.col_degree(j) == 0) continue;
      double csum = 0.0;
      for (const vid_t i : g.col_neighbors(j)) csum += out.dr[static_cast<std::size_t>(i)];
      err = std::max(err, std::abs(csum * out.dc[static_cast<std::size_t>(j)] - 1.0));
    }
    out.error = err;

    if (opts.tolerance > 0.0 && err <= opts.tolerance) {
      out.converged = true;
      break;
    }
  }

  if (opts.max_iterations == 0) out.error = scaling_error_ws(g, out, ws);
}

} // namespace bmh
