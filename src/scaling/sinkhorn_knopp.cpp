#include "scaling/sinkhorn_knopp.hpp"

#include <algorithm>
#include <cmath>

namespace bmh {

ScalingResult scale_sinkhorn_knopp(const BipartiteGraph& g, const ScalingOptions& opts) {
  ScalingResult r;
  r.dr.assign(static_cast<std::size_t>(g.num_rows()), 1.0);
  r.dc.assign(static_cast<std::size_t>(g.num_cols()), 1.0);

  for (int it = 0; it < opts.max_iterations; ++it) {
    // Balance columns: dc[j] <- 1 / (sum of dr over the column's rows).
#pragma omp parallel for schedule(dynamic, 512)
    for (vid_t j = 0; j < g.num_cols(); ++j) {
      double csum = 0.0;
      for (const vid_t i : g.col_neighbors(j)) csum += r.dr[static_cast<std::size_t>(i)];
      if (csum > 0.0) r.dc[static_cast<std::size_t>(j)] = 1.0 / csum;
    }

    // Balance rows: dr[i] <- 1 / (sum of dc over the row's columns). The
    // column-sum error is accumulated in the same sweep's mirror image — we
    // compute it after the update from the definition to match the paper.
#pragma omp parallel for schedule(dynamic, 512)
    for (vid_t i = 0; i < g.num_rows(); ++i) {
      double rsum = 0.0;
      for (const vid_t j : g.row_neighbors(i)) rsum += r.dc[static_cast<std::size_t>(j)];
      if (rsum > 0.0) r.dr[static_cast<std::size_t>(i)] = 1.0 / rsum;
    }

    r.iterations = it + 1;

    // Column sums drifted when the rows were re-balanced; their max
    // deviation from 1 is the convergence error (row sums are exactly 1).
    double err = 0.0;
#pragma omp parallel for schedule(dynamic, 512) reduction(max : err)
    for (vid_t j = 0; j < g.num_cols(); ++j) {
      if (g.col_degree(j) == 0) continue;
      double csum = 0.0;
      for (const vid_t i : g.col_neighbors(j)) csum += r.dr[static_cast<std::size_t>(i)];
      err = std::max(err, std::abs(csum * r.dc[static_cast<std::size_t>(j)] - 1.0));
    }
    r.error = err;

    if (opts.tolerance > 0.0 && err <= opts.tolerance) {
      r.converged = true;
      break;
    }
  }

  if (opts.max_iterations == 0) r.error = scaling_error(g, r);
  return r;
}

} // namespace bmh
