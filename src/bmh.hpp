#pragma once
/// \file bmh.hpp
/// \brief Umbrella header: the full public API of the bmh library.
///
/// bmh reproduces Dufossé, Kaya & Uçar, "Bipartite matching heuristics with
/// quality guarantees on shared memory parallel computers" (IPDPS 2014 /
/// Inria RR-8386). The two headline entry points are:
///
///   bmh::one_sided_match(graph, scaling_iterations, seed)   // >= 0.632
///   bmh::two_sided_match(graph, scaling_iterations, seed)   // ~= 0.866
///
/// See README.md for a quickstart and DESIGN.md for the system inventory.

// Utilities
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/failpoint.hpp"
#include "util/mmap_file.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/threading.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

// Graph substrate
#include "graph/bipartite_graph.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/generators_suite.hpp"
#include "graph/mmio.hpp"
#include "graph/serialize.hpp"
#include "graph/stats.hpp"
#include "graph/transform.hpp"

// Doubly stochastic scaling
#include "scaling/ruiz.hpp"
#include "scaling/scaling.hpp"
#include "scaling/sinkhorn_knopp.hpp"

// Baseline and exact matchers
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/karp_sipser.hpp"
#include "matching/matching.hpp"
#include "matching/mc21.hpp"
#include "matching/push_relabel.hpp"

// The paper's contribution
#include "core/choice.hpp"
#include "core/k_out.hpp"
#include "core/karp_sipser_mt.hpp"
#include "core/one_sided.hpp"
#include "core/profile.hpp"
#include "core/two_sided.hpp"

// Matching engine (registry, pipelines, batch runner)
#include "engine/engine.hpp"

// Observability (metrics, tracing, exporters)
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Undirected extension (paper §5 future work)
#include "undirected/graph.hpp"
#include "undirected/matching.hpp"

// Analysis
#include "analysis/components.hpp"
#include "analysis/dulmage_mendelsohn.hpp"
#include "analysis/koenig.hpp"
#include "analysis/one_out_structure.hpp"
#include "analysis/quality.hpp"
