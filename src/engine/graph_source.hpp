#pragma once
/// \file graph_source.hpp
/// \brief Pluggable graph sources: the scheme registry behind `input=` specs.
///
/// A graph spec is `SCHEME:REST`; the scheme selects a GraphSource that owns
/// parsing, canonical keying and materialization for that family. PRs 1-6
/// hard-wired three schemes (`gen:`, `suite:`, `mtx:`) into one switch in
/// job.cpp; this registry replaces the switch so new sources — Matrix
/// Market by content hash (`mm:`), future network or database fetchers —
/// plug in without touching the parser, the cache or the store. Built-ins:
///
///   gen:NAME:key=val,...   generator from graph/generators.hpp
///   suite:NAME[:scale=S]   instance from graph/generators_suite.hpp
///   mtx:PATH               Matrix Market file, keyed by its path *text*
///   mm:path=PATH           Matrix Market file, keyed by its *content hash*
///
/// `mtx:` and `mm:` read the same files; they differ only in identity.
/// `mm:` hashes the file bytes (FNV-1a, memoized per (path, mtime, size))
/// into a canonical key of the form `mm:<16 hex digits>`, so the same
/// content yields the same GraphCache/GraphStore key across processes,
/// copies and renames — a restarted server re-serves a real matrix
/// mmap-warm from its first job. `mtx:` keeps the legacy path-text key
/// (cheap, but a moved file is a new key and an edited file a stale one).
///
/// The resolve/render split keeps the cache's warm path allocation-free:
/// resolve() returns a fixed-capacity ResolvedGraphSpec and
/// canonical_graph_key (job.hpp) renders it by appending into a reused
/// string. Sources are registered at startup (built-ins at first use) and
/// never unregistered; lookups take one brief lock and returned pointers
/// stay valid for the process lifetime.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace bmh {

/// Reading a source's backing input failed (missing/unreadable/unparsable
/// file, dead network fetcher) — as opposed to a malformed *spec*, which is
/// std::invalid_argument. The engine classifies this as `source_io` and
/// treats it as transient: worth one bounded retry, never a parse error.
class SourceIoError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// A parsed graph source reference: `spec.scheme` names the GraphSource,
/// the rest is that source's own grammar.
struct GraphSpec {
  std::string scheme = "gen";
  std::string name;                      ///< path, generator name, or instance
  std::map<std::string, double> params;  ///< numeric source parameters
  std::string spec;                      ///< the original spec string
};

/// The resolved inputs a source actually consumes: defaults applied, clamps
/// taken, keys alphabetical; plus the effective seed, whether the instance
/// depends on it, and an optional identity override. build() dispatches on
/// these values and canonical_graph_key renders them, so canonicalization
/// cannot drift from construction. Fixed-capacity on purpose: resolving a
/// generator spec allocates nothing, keeping warm cache lookups heap-free.
struct ResolvedGraphSpec {
  std::array<std::pair<const char*, double>, 4> params{};
  int count = 0;
  bool seeded = false;     ///< the instance depends on the effective seed
  std::uint64_t seed = 0;  ///< pinned spec seed if present, else the job seed
  /// Canonical identity rendered after "SCHEME:" in place of spec.name when
  /// non-empty — content-addressed sources put their hash here. Views either
  /// a string literal or `identity_owner`'s buffer.
  std::string_view identity{};
  /// Keeps `identity`'s backing storage alive while this resolution is in
  /// use (sources may re-hash a changed file concurrently).
  std::shared_ptr<const std::string> identity_owner;

  void add(const char* key, double value) {
    if (static_cast<std::size_t>(count) >= params.size())
      throw std::logic_error("ResolvedGraphSpec: grow the params array before "
                             "giving a source a 5th parameter");
    params[static_cast<std::size_t>(count++)] = {key, value};
  }
  [[nodiscard]] double get(const char* key) const {
    for (int i = 0; i < count; ++i)
      if (std::string_view(params[static_cast<std::size_t>(i)].first) == key)
        return params[static_cast<std::size_t>(i)].second;
    throw std::logic_error(std::string("ResolvedGraphSpec: missing parameter '") +
                           key + "'");
  }
};

/// One spec scheme: parsing, canonical resolution, and materialization.
/// Implementations must be deterministic — build(spec, resolve(spec, seed))
/// yields the same graph for the same resolved values — and thread-safe
/// (resolve/build run concurrently on every worker).
class GraphSource {
public:
  virtual ~GraphSource() = default;

  /// The scheme this source serves ("gen", "mm", ...); stable storage.
  [[nodiscard]] virtual const std::string& scheme() const noexcept = 0;

  /// Parses everything after "SCHEME:" into `out` (scheme and spec text are
  /// already set). Throws std::invalid_argument on malformed input.
  virtual void parse(const std::string& rest, GraphSpec& out) const = 0;

  /// Canonicalizes (spec, job seed) into the values build() will consume.
  /// Must not allocate on repeat calls for the same spec (the cache's warm
  /// key path); throws like build() on invalid parameters.
  [[nodiscard]] virtual ResolvedGraphSpec resolve(const GraphSpec& spec,
                                                  std::uint64_t seed) const = 0;

  /// Materializes the graph for a resolution obtained from resolve().
  [[nodiscard]] virtual BipartiteGraph build(const GraphSpec& spec,
                                             const ResolvedGraphSpec& resolved) const = 0;
};

/// Process-wide scheme -> source map. Thread-safe; the built-in sources are
/// registered on first access. Sources are never unregistered, so pointers
/// returned by find()/at() remain valid for the process lifetime.
class GraphSourceRegistry {
public:
  static GraphSourceRegistry& instance();

  /// Registers a source under its scheme(). Throws std::invalid_argument if
  /// the scheme is empty, contains ':', or is already taken.
  void register_source(std::shared_ptr<const GraphSource> source);

  /// The source serving `scheme`, or nullptr.
  [[nodiscard]] const GraphSource* find(std::string_view scheme) const;

  /// The source serving `scheme`; throws std::invalid_argument listing the
  /// registered schemes when unknown (CLI typos get an actionable message).
  [[nodiscard]] const GraphSource& at(std::string_view scheme,
                                      const std::string& spec_text) const;

  /// All registered schemes, sorted.
  [[nodiscard]] std::vector<std::string> schemes() const;

private:
  GraphSourceRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Convenience: GraphSourceRegistry::instance().schemes().
[[nodiscard]] std::vector<std::string> registered_graph_source_schemes();

} // namespace bmh
