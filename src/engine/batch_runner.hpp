#pragma once
/// \file batch_runner.hpp
/// \brief Concurrent execution of independent matching jobs.
///
/// The runner executes a batch of JobSpecs over a pool of worker threads.
/// Two levels of parallelism compose: `workers` jobs run concurrently, and
/// each job's pipeline runs its OpenMP regions with a per-job nested thread
/// budget (`threads_per_job`), so a 16-core box can serve e.g. 4 jobs x 4
/// threads. Determinism: job i's RNG seed is derived from (batch seed, i)
/// alone and results are collected by job index, so the output is identical
/// for any worker count — the same property the paper's heuristics
/// guarantee for their internal parallelism.
///
/// Graph materialization goes through a sharded content-addressed GraphCache
/// (see graph_cache.hpp): jobs denoting the same instance — same canonical
/// spec and effective seed — share one immutable CSR instead of each
/// rebuilding it, which makes repeated-spec batches allocation-free end to
/// end. The cache is semantically invisible: results are byte-identical with
/// it enabled, disabled, or shared across batches.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/job.hpp"
#include "engine/pipeline.hpp"

namespace bmh {

class GraphCache;

struct BatchOptions {
  int workers = 1;          ///< concurrent jobs; 0 = one per processor
  int threads_per_job = 1;  ///< OpenMP budget inside each job; 0 = ambient
  std::uint64_t seed = 1;   ///< base seed; job i runs with derive_job_seed(seed, i)
  /// Byte budget (MiB) of the per-batch graph cache; 0 rebuilds every job's
  /// graph from its spec (the cache-off path, bit-identical results).
  std::size_t graph_cache_mb = 256;
  /// Non-empty: persistent tier directory for the per-batch cache (see
  /// graph_store.hpp) — built graphs spill there, later batches and
  /// restarted processes mmap-load them instead of rebuilding. Results are
  /// byte-identical with or without it. Requires the cache
  /// (graph_cache_mb > 0); ignored when graph_cache is set (configure that
  /// cache's own store instead).
  std::string graph_store_dir;
  /// Caller-owned cache shared across run_batch calls (a long-lived server
  /// keeping instances warm between batches, or a caller that wants the
  /// hit/miss counters). Overrides graph_cache_mb when set.
  GraphCache* graph_cache = nullptr;
};

/// The per-job record the batch emits (one JSON line each, see json.hpp).
struct JobResult {
  std::size_t index = 0;    ///< position in the batch (results are index-ordered)
  std::string name;
  std::string input;        ///< the graph spec string
  std::string algorithm;    ///< registry name the pipeline ran
  std::uint64_t seed = 0;   ///< effective seed the job used
  vid_t rows = 0;
  vid_t cols = 0;
  eid_t edges = 0;
  bool ok = false;          ///< false: `error` describes the failure
  std::string error;
  PipelineResult result;    ///< valid only when ok
};

/// The deterministic seed job `index` runs with when its spec pins none.
[[nodiscard]] std::uint64_t derive_job_seed(std::uint64_t batch_seed,
                                            std::size_t index) noexcept;

/// Runs every job, `options.workers` at a time. A failing job (bad spec,
/// unreadable file, unknown algorithm) produces an ok=false record instead
/// of aborting the batch. `on_done`, when set, is invoked once per finished
/// job from worker threads, serialized by an internal mutex (completion
/// order; use the returned vector for index order).
[[nodiscard]] std::vector<JobResult> run_batch(
    const std::vector<JobSpec>& jobs, const BatchOptions& options,
    const std::function<void(const JobResult&)>& on_done = {});

/// Streaming variant for batches too large to retain: nothing is collected.
/// `sink` receives every JobResult exactly once, in batch index order, from
/// worker threads (serialized internally); the record — its Matching
/// included — is dropped as soon as the callback returns, so memory stays
/// bounded by the workers' out-of-order window instead of the batch length.
/// The emitted sequence is identical to iterating run_batch's return value
/// (same determinism guarantees, any worker count). Returns the number of
/// failed (ok=false) jobs.
std::size_t run_batch_stream(const std::vector<JobSpec>& jobs,
                             const BatchOptions& options,
                             const std::function<void(const JobResult&)>& sink);

} // namespace bmh
