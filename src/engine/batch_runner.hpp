#pragma once
/// \file batch_runner.hpp
/// \brief Legacy one-shot batch entry points (thin shims over bmh::Engine).
///
/// DEPRECATED surface: `run_batch` and `run_batch_stream` construct a
/// batch-scoped `Engine` per call — pool, per-worker arenas and graph cache
/// are built, used once, and torn down. They are kept as shims because a
/// decade of call sites (tests, benches, scripts parsing their JSONL) rely
/// on them, and their output stays byte-identical to the engine path. New
/// code — anything serving more than one batch per process — should hold a
/// long-lived `bmh::Engine` (engine_api.hpp) instead: consecutive batches
/// and interleaved submits then reuse the same warm pool, arenas, cache and
/// store rather than paying construction per call.
///
/// Determinism (both paths): job i's RNG seed derives from (batch seed, i)
/// alone and results are collected/emitted in index order, so the output is
/// identical for any worker count — the same property the paper's
/// heuristics guarantee for their internal parallelism.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/engine_api.hpp"
#include "engine/job.hpp"

namespace bmh {

class GraphCache;

/// Per-call knobs of the legacy entry points. DEPRECATED: subsumed by
/// `EngineConfig` (threads / threads_per_job / seed / graph_cache_mb /
/// graph_store_dir / graph_cache map 1:1; see the README migration table).
struct BatchOptions {
  int workers = 1;          ///< concurrent jobs; 0 = one per processor
  int threads_per_job = 1;  ///< OpenMP budget inside each job; 0 = ambient
  std::uint64_t seed = 1;   ///< base seed; job i runs with derive_job_seed(seed, i)
  /// Byte budget (MiB) of the per-batch graph cache; 0 rebuilds every job's
  /// graph from its spec (the cache-off path, bit-identical results).
  std::size_t graph_cache_mb = 256;
  /// Non-empty: persistent tier directory for the per-batch cache (see
  /// graph_store.hpp) — built graphs spill there, later batches and
  /// restarted processes mmap-load them instead of rebuilding. Results are
  /// byte-identical with or without it. Requires the cache
  /// (graph_cache_mb > 0); ignored when graph_cache is set (configure that
  /// cache's own store instead).
  std::string graph_store_dir;
  /// Caller-owned cache shared across run_batch calls (the transitional
  /// form of engine warmth; a long-lived `Engine` subsumes it). Overrides
  /// graph_cache_mb when set.
  GraphCache* graph_cache = nullptr;
};

/// Runs every job on a batch-scoped Engine, `options.workers` at a time. A
/// failing job (bad spec, unreadable file, unknown algorithm) produces an
/// ok=false record instead of aborting the batch. `on_done`, when set, is
/// invoked once per finished job from worker threads, serialized by an
/// internal mutex (completion order; use the returned vector for index
/// order). DEPRECATED: prefer `Engine::run_collect` on a long-lived engine.
[[nodiscard]] std::vector<JobResult> run_batch(
    const std::vector<JobSpec>& jobs, const BatchOptions& options,
    const std::function<void(const JobResult&)>& on_done = {});

/// Streaming variant for batches too large to retain: nothing is collected.
/// `sink` receives every JobResult exactly once, in batch index order, from
/// worker threads (serialized internally); the record — its Matching
/// included — is dropped as soon as the callback returns, so memory stays
/// bounded by the workers' out-of-order window instead of the batch length.
/// The emitted sequence is identical to iterating run_batch's return value
/// (same determinism guarantees, any worker count). Returns the number of
/// failed (ok=false) jobs. DEPRECATED: prefer `Engine::run` on a long-lived
/// engine.
std::size_t run_batch_stream(const std::vector<JobSpec>& jobs,
                             const BatchOptions& options,
                             const std::function<void(const JobResult&)>& sink);

} // namespace bmh
