#pragma once
/// \file graph_store.hpp
/// \brief File-backed persistent tier of the graph cache.
///
/// A GraphStore is a directory of serialized graphs (graph/serialize.hpp)
/// keyed by the same canonical `(GraphSpec, effective seed)` text the
/// in-memory GraphCache uses, so the two tiers address identical content:
/// what one process built and spilled, a restarted process mmap-loads
/// instead of rebuilding — zero-copy, kernel-page-shared across processes.
///
/// Filenames are the 64-bit FNV-1a hash of the key (hex, `.bmg` suffix);
/// the full key is embedded in the file and verified on load, so a hash
/// collision degrades to a miss instead of serving the wrong graph.
///
/// Robustness contract: `try_load` never throws and never serves a corrupt
/// graph — a file that fails any format, CRC or structural check counts as
/// an error (`Stats::errors`, message in `last_error()`) and the caller
/// falls back to building. Spills write through a process-unique temporary
/// and an atomic rename, so concurrent spillers (threads or whole
/// processes sharing the directory) are safe.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "graph/bipartite_graph.hpp"

namespace bmh {

class GraphStore {
public:
  struct Stats {
    std::uint64_t hits = 0;        ///< try_load served a graph
    std::uint64_t misses = 0;      ///< no file for the key (or key collision)
    std::uint64_t spills = 0;      ///< graphs written to the directory
    std::uint64_t spill_skips = 0; ///< spill found the key already present
    std::uint64_t errors = 0;      ///< corrupt/unwritable files rejected
  };

  /// Opens (creating if needed) the store directory. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit GraphStore(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// The file path `key` maps to (exposed for tests and tooling).
  [[nodiscard]] std::string path_for(std::string_view key) const;

  /// Loads the graph stored under `key` as a zero-copy mmap view, or
  /// nullptr when absent (a miss) or unreadable/corrupt/mismatched (an
  /// error — never thrown, never served). A file with provably bad content
  /// (GraphFileError: corruption, truncation, width mismatch) is unlinked
  /// so the slot self-heals on the next spill instead of failing forever —
  /// which also means builds with different vid_t/eid_t ABIs must not
  /// share a directory; transient I/O failures leave the file alone.
  /// Thread-safe.
  [[nodiscard]] std::shared_ptr<const BipartiteGraph> try_load(std::string_view key);

  /// Persists `graph` under `key` unless the key's file is already present
  /// (write-once: stored content is immutable, so the existing file is
  /// kept). Returns true when a file for the key's slot is on disk
  /// afterwards — freshly written or already there — false on I/O failure
  /// (recorded, not thrown). Caveat: presence is judged by filename, so in
  /// the astronomically unlikely event two distinct keys collide in the
  /// 64-bit hash, the second key is never persisted (its loads degrade to
  /// misses via the embedded-key check — wrong data is never served, the
  /// colliding key just stays rebuild-only). Thread-safe.
  bool spill(std::string_view key, const BipartiteGraph& graph);

  [[nodiscard]] Stats stats() const;

  /// Human-readable reason for the most recent error ("" if none).
  [[nodiscard]] std::string last_error() const;

private:
  void record_error(const std::string& message);

  std::string dir_;
  mutable std::mutex mutex_;  ///< guards stats_ and last_error_
  Stats stats_;
  std::string last_error_;
};

} // namespace bmh
