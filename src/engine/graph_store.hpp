#pragma once
/// \file graph_store.hpp
/// \brief File-backed persistent tier of the graph cache.
///
/// A GraphStore is a directory of serialized graphs (graph/serialize.hpp)
/// keyed by the same canonical `(GraphSpec, effective seed)` text the
/// in-memory GraphCache uses, so the two tiers address identical content:
/// what one process built and spilled, a restarted process mmap-loads
/// instead of rebuilding — zero-copy, kernel-page-shared across processes.
///
/// Filenames are the 64-bit FNV-1a hash of the key (hex, `.bmg` suffix);
/// the full key is embedded in the file and verified on load, so a hash
/// collision degrades to a miss instead of serving the wrong graph.
///
/// Robustness contract: `try_load` never throws and never serves a corrupt
/// graph — a file that fails any format, CRC or structural check counts as
/// a content error (`Stats::content_errors`, message in `last_error()`),
/// is unlinked so the slot self-heals (`Stats::healed`), and the caller
/// falls back to building; transient I/O trouble counts as
/// `Stats::io_errors` and leaves the file alone. Spills write through a
/// process-unique temporary and an atomic rename, so concurrent spillers
/// (threads or whole processes sharing the directory) are safe.
///
/// Repeated *I/O* errors (never content rejections) trip a circuit
/// breaker: after `Options::breaker_threshold` consecutive failures the
/// store tier disables itself for `Options::breaker_cooldown_ms` — loads
/// report misses and spills return false immediately instead of hammering
/// a dead disk — then closes again and retries. The `breaker_open` gauge
/// and a one-line stderr note per trip make the state visible.
///
/// Lifecycle: `Options::max_bytes` puts a byte budget over the directory.
/// When a spill pushes the `.bmg` payload past the budget, `prune` evicts
/// least-recently-used files — recency is mtime, which `try_load` touches
/// on every hit, so hot keys survive and stale ones age out. A pruned key
/// simply rebuilds (and re-spills) on next use; correctness never depends
/// on a file being present. `Options::fsync` makes each spill durable
/// against unclean shutdown (file and directory entry synced before the
/// rename publishes it). Crashed spillers leave `.tmp.` files behind —
/// invisible to the `.bmg` budget — so the opening scan and every prune()
/// also sweep temporaries older than a grace period.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "graph/bipartite_graph.hpp"
#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace bmh {

class GraphStore {
public:
  struct Options {
    /// Byte budget over the directory's `.bmg` payload; 0 = unbounded.
    /// Enforced after spills by prune() (LRU by mtime).
    std::size_t max_bytes = 0;
    /// fsync each spilled file (and the directory entry) before the atomic
    /// rename publishes it: a spill that returned true survives a crash.
    bool fsync = false;
    /// Consecutive I/O errors (content rejections never count) that trip
    /// the circuit breaker; 0 disables the breaker.
    std::uint32_t breaker_threshold = 5;
    /// How long a tripped breaker keeps the store tier disabled before the
    /// next load/spill is allowed to probe the disk again.
    std::uint64_t breaker_cooldown_ms = 5000;
  };

  /// Point-in-time view of the store's counters. The counters themselves
  /// live in the store's obs::MetricDomain ("graph_store"), the single
  /// source of truth that Engine snapshots and the exporters also read;
  /// this struct is constructed on demand for callers of stats().
  struct Stats {
    std::uint64_t hits = 0;           ///< try_load served a graph
    std::uint64_t misses = 0;         ///< no file for the key (or key collision)
    std::uint64_t spills = 0;         ///< graphs written to the directory
    std::uint64_t spill_skips = 0;    ///< spill found the key already present
    std::uint64_t io_errors = 0;      ///< transient I/O failures (file kept)
    std::uint64_t content_errors = 0; ///< corrupt/mismatched files rejected
    std::uint64_t healed = 0;         ///< bad files unlinked for re-spill
    std::uint64_t breaker_trips = 0;  ///< circuit-breaker openings
    std::uint64_t breaker_skips = 0;  ///< loads/spills skipped while open
    std::uint64_t pruned = 0;         ///< files evicted by the byte budget

    /// Lumped error total, for callers that only care "did anything fail".
    [[nodiscard]] std::uint64_t errors_total() const noexcept {
      return io_errors + content_errors;
    }
  };

  /// Opens (creating if needed) the store directory. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit GraphStore(std::string dir);  // default Options
  GraphStore(std::string dir, Options options);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The file path `key` maps to (exposed for tests and tooling).
  [[nodiscard]] std::string path_for(std::string_view key) const;

  /// Loads the graph stored under `key` as a zero-copy mmap view, or
  /// nullptr when absent (a miss) or unreadable/corrupt/mismatched (an
  /// error — never thrown, never served). A hit touches the file's mtime
  /// (best-effort) so the prune budget evicts in least-recently-used
  /// order. A file with provably bad content (GraphFileError: corruption,
  /// truncation, width mismatch) is unlinked so the slot self-heals on the
  /// next spill instead of failing forever — which also means builds with
  /// different vid_t/eid_t ABIs must not share a directory; transient I/O
  /// failures leave the file alone. Thread-safe.
  [[nodiscard]] std::shared_ptr<const BipartiteGraph> try_load(std::string_view key);

  /// Persists `graph` under `key` unless the key's file is already present
  /// (write-once: stored content is immutable, so the existing file is
  /// kept). Returns true when a file for the key's slot is on disk
  /// afterwards — freshly written or already there — false on I/O failure
  /// (recorded, not thrown). When Options::max_bytes is set and the write
  /// pushed the directory over it, least-recently-used files are pruned
  /// back under budget (the freshly written file is the newest, so it
  /// survives unless it alone exceeds the budget). Caveat: presence is
  /// judged by filename, so in the astronomically unlikely event two
  /// distinct keys collide in the 64-bit hash, the second key is never
  /// persisted (its loads degrade to misses via the embedded-key check —
  /// wrong data is never served, the colliding key just stays
  /// rebuild-only). Thread-safe.
  bool spill(std::string_view key, const BipartiteGraph& graph);

  /// Evicts `.bmg` files, least-recently-modified first, until the
  /// directory's payload is <= max_bytes (0 empties it). Scans the
  /// directory, so other processes' spills are accounted too. Returns the
  /// number of bytes freed. Thread-safe; concurrent loads of a pruned file
  /// degrade to misses. Called automatically by spill() under
  /// Options::max_bytes; exposed for tooling and tests.
  std::size_t prune(std::size_t max_bytes);

  [[nodiscard]] Stats stats() const;

  /// The store's metric domain ("graph_store"): the live counters behind
  /// stats(), attachable to an obs::Registry (Engine does) so snapshots and
  /// exporters read the same instruments. Multi-writer — every counter is
  /// individually atomic, no PublishGuard.
  [[nodiscard]] obs::MetricDomain& metric_domain() noexcept { return domain_; }

  /// Human-readable reason for the most recent error ("" if none).
  [[nodiscard]] std::string last_error() const;

  /// True while the circuit breaker has the store tier disabled.
  [[nodiscard]] bool breaker_open() const noexcept;

private:
  void record_io_error(const std::string& message);
  void record_content_error(const std::string& message);
  void record_success() noexcept;
  /// Breaker gate for try_load/spill: true = skip the disk this call.
  [[nodiscard]] bool breaker_blocks() noexcept;

  std::string dir_;
  Options options_;
  obs::MetricDomain domain_{"graph_store"};
  obs::Counter& hits_ = domain_.counter("hits");
  obs::Counter& misses_ = domain_.counter("misses");
  obs::Counter& spills_ = domain_.counter("spills");
  obs::Counter& spill_skips_ = domain_.counter("spill_skips");
  obs::Counter& io_errors_ = domain_.counter("io_errors");
  obs::Counter& content_errors_ = domain_.counter("content_errors");
  obs::Counter& healed_ = domain_.counter("healed");
  obs::Counter& breaker_trips_ = domain_.counter("breaker_trips");
  obs::Counter& breaker_skips_ = domain_.counter("breaker_skips");
  obs::Gauge& breaker_gauge_ = domain_.gauge("breaker_open");
  obs::Counter& pruned_ = domain_.counter("pruned");
  /// Consecutive I/O errors since the last store success; trips the breaker
  /// at Options::breaker_threshold.
  std::atomic<std::uint32_t> consecutive_io_errors_{0};
  /// steady_clock deadline (ns since epoch) until which the breaker stays
  /// open; 0 = closed.
  std::atomic<std::int64_t> breaker_open_until_ns_{0};
  mutable Mutex mutex_;
  Mutex prune_mutex_;  ///< serializes directory scans (no data of its own)
  /// Payload bytes believed on disk; refreshed by prune()'s scan, advanced
  /// by spills. Only steers *when* the budget check rescans — eviction
  /// decisions always use real directory contents.
  std::atomic<std::size_t> approx_bytes_{0};
  std::string last_error_ BMH_GUARDED_BY(mutex_);
};

} // namespace bmh
