#pragma once
/// \file job.hpp
/// \brief Job specifications: a graph source, a job kind, and a pipeline
/// configuration.
///
/// Jobs are described by compact text specs so that batch files, CLI flags
/// and test fixtures share one parser.
///
/// Graph specs (`input=`, dispatched through GraphSourceRegistry):
///   gen:NAME:key=val,key=val         generator from graph/generators.hpp
///   suite:NAME[:scale=S]             instance from graph/generators_suite.hpp
///   mtx:PATH                         Matrix Market file, keyed by path text
///   mm:path=PATH                     Matrix Market file, keyed by content hash
///
/// Generator names and parameters (defaults in parentheses):
///   er         n(4096) deg(4)            Erdos-Renyi, nnz = n*deg
///   adversarial n(1024) k(8)             Fig. 2 bad-for-Karp-Sipser family
///   planted    n(4096) extra(3)          planted perfect matching + extras
///   mesh       nx(64) ny(nx)             five-point stencil
///   road       n(4096) shortcut(0.3) drop(0.05)
///   powerlaw   n(4096) avg(8) alpha(1.8)
///   kkt        m(1024) p(256) d(4)
///   cycle      n(4096)
///   regular    n(4096) d(3)              d distinct columns per row
///   full       n(256)
///   one_out    n(4096)
///
/// Job spec lines are whitespace-separated key=value pairs; `input=` is
/// required, everything else has defaults:
///
///   name=j0 kind=match input=gen:er:n=8192,deg=5 algo=two_sided
///   scaling=sinkhorn_knopp iters=5 augment=0 quality=1 threads=0 k=2 seed=7
///
/// The `kind=` axis selects the workload (default `match`, so every legacy
/// spec parses and runs unchanged):
///   match             bipartite matching via the algorithm registry
///   undirected-match  undirected matching (§5): the bipartite input is
///                     converted (symmetric view for square pattern-symmetric
///                     graphs, bipartite union otherwise) and `algo=` names
///                     an undirected registry entry (default one_out)
///   analyze           structural analysis; `algo=` names the analysis type
///                     (dm | koenig | sprank, default dm)
///
/// A job without `seed=` gets a deterministic per-job seed derived by the
/// batch runner from (batch seed, job index) — the property that makes
/// batch output reproducible regardless of worker count.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "engine/graph_source.hpp"
#include "engine/pipeline.hpp"
#include "graph/bipartite_graph.hpp"

namespace bmh {

/// Parses `SCHEME:REST`, dispatching REST to the registered GraphSource.
/// Duplicate parameter keys are rejected (never silently last-wins). Throws
/// std::invalid_argument on malformed specs, unknown schemes or unknown
/// generator names.
[[nodiscard]] GraphSpec parse_graph_spec(const std::string& spec);

/// Materializes the graph. `seed` feeds the randomized generators (a
/// `seed` parameter inside the spec takes precedence, pinning the instance
/// independently of the job seed). Deterministic in (spec, seed).
[[nodiscard]] BipartiteGraph build_graph(const GraphSpec& spec, std::uint64_t seed);

/// The canonical content address of the graph build_graph(spec, seed) would
/// materialize — the GraphCache key. Two (spec, seed) pairs produce equal
/// keys iff they denote the same instance:
///   * parameters are sorted, defaults resolved and clamps applied, so
///     "gen:er:n=4096", "gen:er:deg=4,n=4096" and "gen:er:n=4096,cols=4096"
///     all canonicalize to "gen:er:cols=4096,deg=4,n=4096#seed=S";
///   * parameters a source never reads (including a `gen:mesh` reached via
///     its `n` shorthand) are dropped;
///   * the effective seed (a `seed=` parameter inside the spec wins over the
///     job seed, the build_graph precedence) is appended as "#seed=S" only
///     for sources whose instance actually depends on it — deterministic
///     generators (mesh, cycle, full, adversarial) and file sources share
///     one key across all seeds. `mtx:` files are keyed by their path
///     *text*; `mm:` files by their *content hash* ("mm:<16 hex>"), stable
///     across processes, copies and renames.
/// Appends to `out` (cleared first; capacity reused, so warm callers build
/// keys allocation-free) and returns the FNV-1a hash of the appended text.
/// Throws like build_graph on unknown generators or invalid parameters (for
/// `mm:` this includes an unreadable file).
std::uint64_t canonical_graph_key(const GraphSpec& spec, std::uint64_t seed,
                                  std::string& out);

/// Convenience form returning a fresh string.
[[nodiscard]] std::string canonical_graph_key(const GraphSpec& spec,
                                              std::uint64_t seed);

/// True iff the instance build_graph(spec, seed) materializes varies with
/// `seed` — a seed-dependent source with no `seed=` pinned in the spec.
/// False means every job seed denotes one shared instance (cacheable across
/// any batch); true under per-index derived seeds means every job is its
/// own instance (the batch runner skips its per-batch cache for these).
/// Throws like build_graph on unknown generators or invalid parameters.
[[nodiscard]] bool graph_spec_depends_on_job_seed(const GraphSpec& spec);

/// The workload a job runs; every kind flows through the same pool, cache,
/// store and JSON sink.
enum class JobKind {
  kMatch,            ///< bipartite matching (the original workload)
  kUndirectedMatch,  ///< undirected matching on the converted graph (§5)
  kAnalyze,          ///< structural analysis (dm | koenig | sprank)
};

/// Parses "match" | "undirected-match" | "analyze".
/// Throws std::invalid_argument otherwise.
[[nodiscard]] JobKind parse_job_kind(const std::string& name);

/// Canonical name of a JobKind ("match"/"undirected-match"/"analyze").
[[nodiscard]] const char* to_string(JobKind kind) noexcept;

/// All job kind names, sorted — the `bmh_engine --list` introspection order.
[[nodiscard]] std::vector<std::string> job_kind_names();

/// One batch job: where the graph comes from, the workload kind, and what
/// pipeline to run on it.
struct JobSpec {
  std::string name;                  ///< label carried into the result record
  GraphSpec input;
  JobKind kind = JobKind::kMatch;
  PipelineConfig pipeline;
  std::optional<std::uint64_t> seed; ///< fixed seed; unset = derive per index
  /// Per-job deadline in milliseconds; 0 = none. Measured from the moment a
  /// worker starts executing the job (queue wait excluded) and checked at
  /// the failure boundaries — after graph acquire and on entry to every
  /// pipeline stage; a running stage is never interrupted. Overruns become
  /// an ok=false record with error_kind=timeout. Spec key: `timeout_ms=`.
  std::uint64_t timeout_ms = 0;
};

/// Parses a single spec line (see the format above). Duplicate keys are
/// rejected with the offending key named (`algo`/`algorithm` count as one
/// key). When `kind=` is not `match` and no `algo=` is given, the kind's
/// default algorithm applies (one_out / dm). Throws std::invalid_argument
/// with the offending token on malformed input.
[[nodiscard]] JobSpec parse_job_spec_line(const std::string& line);

/// Parses a spec stream: one job per line, blank lines and `#` comments
/// skipped. Errors are rethrown with the 1-based line number prepended.
/// Jobs without `name=` are labeled "job<index>".
[[nodiscard]] std::vector<JobSpec> parse_job_specs(std::istream& in);

/// File variant of parse_job_specs. Throws std::runtime_error if the file
/// cannot be opened.
[[nodiscard]] std::vector<JobSpec> parse_job_spec_file(const std::string& path);

/// The built-in demonstration batch: 10 jobs mixing generator families and
/// algorithms (used by `bmh_engine --demo` and the determinism tests).
[[nodiscard]] std::vector<JobSpec> demo_batch();

} // namespace bmh
