#include "engine/graph_store.hpp"

#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <utility>

#include <sys/stat.h>

#include "graph/serialize.hpp"
#include "util/hash.hpp"

namespace bmh {

namespace {

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, value >>= 4) out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
  return out;
}

} // namespace

GraphStore::GraphStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_))
    throw std::runtime_error("graph store: cannot create directory '" + dir_ +
                             "': " + ec.message());
}

std::string GraphStore::path_for(std::string_view key) const {
  return dir_ + "/" + hex64(fnv1a64(key)) + ".bmg";
}

std::shared_ptr<const BipartiteGraph> GraphStore::try_load(std::string_view key) {
  const std::string path = path_for(key);
  // Identity of the file we are about to map, for the self-heal check
  // below; a missing file is the common cold-store case — a miss, never an
  // error (the directory may legitimately be pruned while we run).
  struct stat before{};
  if (::stat(path.c_str(), &before) != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return nullptr;
  }
  try {
    std::string stored_key;
    auto graph =
        std::make_shared<const BipartiteGraph>(load_graph_mapped(path, &stored_key));
    if (stored_key != key) {
      // Hash collision between distinct keys: the file is fine, it just
      // isn't ours. Degrade to a miss; the builder path takes over.
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return nullptr;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return graph;
  } catch (const GraphFileError& e) {
    record_error(e.what());
    // Self-heal: a provably-bad file (corruption, truncation, incompatible
    // integer widths) would otherwise occupy the key's slot forever —
    // spill() is write-once, so every future run would pay the failed load
    // plus a rebuild. Unlink it so the next spill rewrites the slot whole.
    // (Consequence: builds with different vid_t/eid_t ABIs must not share
    // a directory, or they will churn each other's files.) Only if the
    // path still names the inode we mapped, though: a concurrent healer
    // may already have replaced the bad file with a fresh good spill (our
    // mapping pins the old inode, not the path), and deleting that
    // replacement would throw its work away.
    struct stat now{};
    if (::stat(path.c_str(), &now) == 0 && now.st_dev == before.st_dev &&
        now.st_ino == before.st_ino) {
      std::error_code remove_ec;
      std::filesystem::remove(path, remove_ec);
    }
    return nullptr;
  } catch (const std::exception& e) {
    // The file vanished between stat and open (pruning, a concurrent
    // self-heal): a miss, like the stat-miss above. Anything else is
    // transient I/O trouble (fd exhaustion, permissions) — the content may
    // be perfectly good, so record it but never unlink on this path.
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return nullptr;
    }
    record_error(e.what());
    return nullptr;
  }
}

bool GraphStore::spill(std::string_view key, const BipartiteGraph& graph) {
  const std::string path = path_for(key);
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    // Write-once: stored content is immutable under its key, so the first
    // spill wins and repeats are free. (A colliding different key keeps the
    // incumbent too — its loads degrade to misses, never to wrong data.)
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.spill_skips;
    return true;
  }
  try {
    save_graph(graph, path, key);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.spills;
    return true;
  } catch (const std::exception& e) {
    record_error(e.what());
    return false;
  }
}

GraphStore::Stats GraphStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string GraphStore::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

void GraphStore::record_error(const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.errors;
  last_error_ = message;
}

} // namespace bmh
