#include "engine/graph_store.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "graph/serialize.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"

namespace bmh {

namespace {

namespace fs = std::filesystem;

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, value >>= 4) out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
  return out;
}

bool is_store_file(const fs::directory_entry& entry) {
  // error_code form: a file vanishing mid-scan (concurrent pruner, manual
  // cleanup) must read as "not a store file", not throw out of the scan.
  std::error_code ec;
  return entry.is_regular_file(ec) && entry.path().extension() == ".bmg";
}

/// A save_graph temporary ("<key-hash>.bmg.tmp.<pid>.<seq>") abandoned by a
/// process that died mid-spill — the crash scenario Options::fsync exists
/// for. Only ones older than this grace period count as abandoned: a live
/// spiller's temporary exists for milliseconds, so anything this old is
/// orphaned, while a shared directory's in-flight writers are never raced.
constexpr std::chrono::minutes kStaleTemporaryAge{15};

bool is_stale_temporary(const fs::directory_entry& entry) {
  std::error_code ec;
  if (!entry.is_regular_file(ec)) return false;
  if (entry.path().filename().string().find(".bmg.tmp.") == std::string::npos)
    return false;
  const auto mtime = entry.last_write_time(ec);
  if (ec) return false;
  return fs::file_time_type::clock::now() - mtime > kStaleTemporaryAge;
}

} // namespace

GraphStore::GraphStore(std::string dir) : GraphStore(std::move(dir), Options{}) {}

GraphStore::GraphStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("graph store: cannot create directory '" + dir_ +
                             "': " + ec.message());
  // One opening scan: seed the budget estimate with what previous
  // processes left behind (so an over-budget directory is pruned on the
  // first spill, not after another budget's worth of growth) and sweep
  // temporaries orphaned by crashed spillers — invisible to the `.bmg`
  // budget, they would otherwise leak disk forever.
  std::size_t bytes = 0;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (is_store_file(entry)) {
      std::error_code size_ec;
      const auto size = entry.file_size(size_ec);
      if (!size_ec) bytes += static_cast<std::size_t>(size);
    } else if (is_stale_temporary(entry)) {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
    }
  }
  approx_bytes_.store(bytes, std::memory_order_relaxed);
}

std::string GraphStore::path_for(std::string_view key) const {
  return dir_ + "/" + hex64(fnv1a64(key)) + ".bmg";
}

std::shared_ptr<const BipartiteGraph> GraphStore::try_load(std::string_view key) {
  BMH_SPAN("store_load");
  if (breaker_blocks()) return nullptr;
  const std::string path = path_for(key);
  // Identity of the file we are about to map, for the self-heal check
  // below; a missing file is the common cold-store case — a miss, never an
  // error (the directory may legitimately be pruned while we run).
  struct stat before{};
  if (::stat(path.c_str(), &before) != 0) {
    misses_.inc();
    return nullptr;
  }
  try {
    // After the stat so a cold store stays a plain miss: an injected error
    // here models a file that exists but cannot be read, the transient-I/O
    // class that feeds the circuit breaker.
    BMH_FAILPOINT("store.load");
    std::string stored_key;
    auto graph =
        std::make_shared<const BipartiteGraph>(load_graph_mapped(path, &stored_key));
    if (stored_key != key) {
      // Hash collision between distinct keys: the file is fine, it just
      // isn't ours. Degrade to a miss; the builder path takes over.
      misses_.inc();
      return nullptr;
    }
    // Mark the file used so the prune budget evicts genuinely idle keys:
    // recency is mtime (atime is unreliable under noatime mounts).
    // Best-effort — a failure (read-only directory, concurrent prune)
    // costs nothing but eviction precision.
    (void)::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
    hits_.inc();
    record_success();
    return graph;
  } catch (const GraphFileError& e) {
    record_content_error(e.what());
    // Self-heal: a provably-bad file (corruption, truncation, incompatible
    // integer widths) would otherwise occupy the key's slot forever —
    // spill() is write-once, so every future run would pay the failed load
    // plus a rebuild. Unlink it so the next spill rewrites the slot whole.
    // (Consequence: builds with different vid_t/eid_t ABIs must not share
    // a directory, or they will churn each other's files.) Only if the
    // path still names the inode we mapped, though: a concurrent healer
    // may already have replaced the bad file with a fresh good spill (our
    // mapping pins the old inode, not the path), and deleting that
    // replacement would throw its work away.
    struct stat now{};
    if (::stat(path.c_str(), &now) == 0 && now.st_dev == before.st_dev &&
        now.st_ino == before.st_ino) {
      std::error_code remove_ec;
      if (fs::remove(path, remove_ec)) healed_.inc();
    }
    return nullptr;
  } catch (const std::exception& e) {
    // The file vanished between stat and open (pruning, a concurrent
    // self-heal): a miss, like the stat-miss above. Anything else is
    // transient I/O trouble (fd exhaustion, permissions) — the content may
    // be perfectly good, so record it but never unlink on this path.
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      misses_.inc();
      return nullptr;
    }
    record_io_error(e.what());
    return nullptr;
  }
}

bool GraphStore::spill(std::string_view key, const BipartiteGraph& graph) {
  BMH_SPAN("store_spill");
  if (breaker_blocks()) return false;
  const std::string path = path_for(key);
  std::error_code ec;
  if (fs::exists(path, ec)) {
    // Write-once: stored content is immutable under its key, so the first
    // spill wins and repeats are free. (A colliding different key keeps the
    // incumbent too — its loads degrade to misses, never to wrong data.)
    spill_skips_.inc();
    return true;
  }
  try {
    BMH_FAILPOINT("store.spill");
    save_graph(graph, path, key, options_.fsync);
    spills_.inc();
    record_success();
    if (options_.max_bytes > 0) {
      const std::size_t written = serialized_graph_bytes(graph, key);
      const std::size_t total =
          approx_bytes_.fetch_add(written, std::memory_order_relaxed) + written;
      if (total > options_.max_bytes) (void)prune(options_.max_bytes);
    }
    return true;
  } catch (const std::exception& e) {
    record_io_error(e.what());
    return false;
  }
}

std::size_t GraphStore::prune(std::size_t max_bytes) {
  // One pruner at a time: concurrent spillers would otherwise each scan and
  // race to delete the same victims. Spills proceed meanwhile — the scan
  // below sees whatever is on disk when it runs; a file spilled after the
  // scan is caught by that spill's own budget check.
  LockGuard prune_lock(prune_mutex_);
  // Budget-triggered prunes run inside spill()'s try block, so an injected
  // throw here lands on the spill's transient-I/O path.
  BMH_FAILPOINT("store.prune");

  struct File {
    fs::path path;
    fs::file_time_type mtime;
    std::size_t bytes = 0;
  };
  std::vector<File> files;
  std::size_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!is_store_file(entry)) {
      // Piggy-back the orphaned-temporary sweep on every prune scan: a
      // crashed spiller's `.tmp.` file is outside the `.bmg` budget, so
      // this is the only thing that ever reclaims it in a long-lived
      // process.
      if (is_stale_temporary(entry)) {
        std::error_code remove_ec;
        fs::remove(entry.path(), remove_ec);
      }
      continue;
    }
    // A file vanishing between iteration and stat (concurrent self-heal or
    // pruner) reports error sentinels here — (uintmax_t)-1 bytes, min()
    // mtime — which would corrupt the totals and sort the phantom to the
    // eviction front; skip it instead.
    File f;
    f.path = entry.path();
    std::error_code mtime_ec, size_ec;
    f.mtime = entry.last_write_time(mtime_ec);
    f.bytes = static_cast<std::size_t>(entry.file_size(size_ec));
    if (mtime_ec || size_ec) continue;
    total += f.bytes;
    files.push_back(std::move(f));
  }

  std::size_t freed = 0;
  std::uint64_t removed = 0;
  if (total > max_bytes) {
    // Oldest mtime first = least recently spilled *or loaded* (try_load
    // touches on hit), the store's LRU order.
    std::sort(files.begin(), files.end(),
              [](const File& a, const File& b) { return a.mtime < b.mtime; });
    for (const File& f : files) {
      if (total - freed <= max_bytes) break;
      std::error_code remove_ec;
      if (fs::remove(f.path, remove_ec)) {
        freed += f.bytes;
        ++removed;
      }
    }
  }
  approx_bytes_.store(total - freed, std::memory_order_relaxed);
  if (removed > 0) pruned_.inc(removed);
  return freed;
}

GraphStore::Stats GraphStore::stats() const {
  // A view over the metric domain's live counters — the same instruments a
  // Registry snapshot reads, so the two can never disagree on the totals.
  Stats out;
  out.hits = hits_.value();
  out.misses = misses_.value();
  out.spills = spills_.value();
  out.spill_skips = spill_skips_.value();
  out.io_errors = io_errors_.value();
  out.content_errors = content_errors_.value();
  out.healed = healed_.value();
  out.breaker_trips = breaker_trips_.value();
  out.breaker_skips = breaker_skips_.value();
  out.pruned = pruned_.value();
  return out;
}

std::string GraphStore::last_error() const {
  LockGuard lock(mutex_);
  return last_error_;
}

bool GraphStore::breaker_open() const noexcept {
  const std::int64_t until = breaker_open_until_ns_.load(std::memory_order_relaxed);
  return until != 0 &&
         std::chrono::steady_clock::now().time_since_epoch() <
             std::chrono::nanoseconds(until);
}

bool GraphStore::breaker_blocks() noexcept {
  const std::int64_t until = breaker_open_until_ns_.load(std::memory_order_relaxed);
  if (until == 0) return false;
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  if (now_ns < until) {
    breaker_skips_.inc();
    return true;
  }
  // Cooldown over: half-open. One CAS winner closes the breaker and resets
  // the error streak; the next disk error re-trips it immediately at
  // threshold 1's worth of margin (the streak restarts from zero).
  std::int64_t expected = until;
  if (breaker_open_until_ns_.compare_exchange_strong(expected, 0,
                                                     std::memory_order_relaxed)) {
    consecutive_io_errors_.store(0, std::memory_order_relaxed);
    breaker_gauge_.set(0);
  }
  return false;
}

void GraphStore::record_io_error(const std::string& message) {
  io_errors_.inc();
  {
    LockGuard lock(mutex_);
    last_error_ = message;
  }
  if (options_.breaker_threshold == 0) return;
  const std::uint32_t streak =
      consecutive_io_errors_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak < options_.breaker_threshold) return;
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const std::int64_t until =
      now_ns + static_cast<std::int64_t>(options_.breaker_cooldown_ms) * 1'000'000;
  // Only the trip that transitions closed->open logs and counts; racing
  // errors while already open just extend nothing.
  std::int64_t expected = 0;
  if (breaker_open_until_ns_.compare_exchange_strong(expected, until,
                                                     std::memory_order_relaxed)) {
    breaker_trips_.inc();
    breaker_gauge_.set(1);
    std::fprintf(stderr,
                 "graph store: circuit breaker open after %u consecutive I/O "
                 "errors (cooldown %llums, dir %s): %s\n",
                 streak,
                 static_cast<unsigned long long>(options_.breaker_cooldown_ms),
                 dir_.c_str(), message.c_str());
  }
}

void GraphStore::record_content_error(const std::string& message) {
  // Content rejection is self-healing (the bad file is unlinked, the next
  // spill rewrites the slot) — it never feeds the breaker streak.
  content_errors_.inc();
  LockGuard lock(mutex_);
  last_error_ = message;
}

void GraphStore::record_success() noexcept {
  consecutive_io_errors_.store(0, std::memory_order_relaxed);
}

} // namespace bmh
