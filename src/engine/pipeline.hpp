#pragma once
/// \file pipeline.hpp
/// \brief Composable matching pipelines: scaling -> heuristic -> exact
/// augmentation, with per-stage timing and quality accounting.
///
/// A pipeline is the unit every entry point (benches, examples, the batch
/// runner) executes: it owns the stage sequencing that the seed code
/// hand-wired at each call site. Stages:
///
///   scale    optional Sinkhorn-Knopp or Ruiz scaling (skipped, with
///            identity multipliers, when the algorithm ignores scaling)
///   match    a registered heuristic or exact algorithm
///   augment  optional Hopcroft-Karp completion to the maximum (the paper's
///            jump-start application: the heuristic initializes the exact
///            solver)
///   analyze  validity check and |M| / sprank quality (sprank reuses the
///            known optimum when the pipeline already ended exact)

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/workspace.hpp"
#include "engine/algorithm.hpp"
#include "engine/registry.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

/// Which scaler the pipeline's scale stage runs.
enum class ScalingMethod {
  kNone,           ///< identity multipliers (uniform sampling)
  kSinkhornKnopp,  ///< paper Algorithm 1
  kRuiz,           ///< Ruiz equilibration (§2.2 alternative)
};

/// Parses "none" | "sinkhorn_knopp" (alias "sk") | "ruiz".
/// Throws std::invalid_argument otherwise.
[[nodiscard]] ScalingMethod parse_scaling_method(const std::string& name);

/// Canonical name of a ScalingMethod ("none"/"sinkhorn_knopp"/"ruiz").
[[nodiscard]] const char* to_string(ScalingMethod method) noexcept;

/// A job overran its `timeout_ms=` budget. Thrown at stage boundaries (a
/// running stage is never interrupted — the check costs one clock read per
/// stage and keeps every kernel oblivious to deadlines); the engine turns
/// it into an `ok=false, error_kind=timeout` record.
class JobTimeoutError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Monotonic now in nanoseconds — the clock deadlines are expressed in
/// (std::chrono::steady_clock, immune to wall-clock steps).
[[nodiscard]] std::int64_t steady_now_ns() noexcept;

struct PipelineConfig {
  std::string algorithm = "two_sided";  ///< registry name of the match stage
  AlgorithmOptions options;             ///< seed / threads / k for that stage
  ScalingMethod scaling = ScalingMethod::kSinkhornKnopp;
  int scaling_iterations = 5;
  double scaling_tolerance = 0.0;  ///< 0 = run exactly scaling_iterations
  bool augment = false;    ///< complete to maximum with Hopcroft-Karp
  bool compute_quality = true;  ///< compute sprank (an extra exact solve
                                ///< unless the pipeline ended exact)
  /// Absolute steady_now_ns() deadline; 0 = none. Checked on entry to every
  /// stage — JobTimeoutError when already past.
  std::int64_t deadline_ns = 0;
};

/// Wall-clock seconds of one executed stage, in execution order.
struct StageStats {
  std::string stage;     ///< "scale" | "match" | "augment" | "analyze" | "convert"
  double seconds = 0.0;
};

/// Kind-specific scalars the non-match pipelines report alongside the
/// shared PipelineResult fields. Plain values only — resetting is a single
/// aggregate assignment in PipelineResult::reset().
struct AnalysisExtras {
  // kind=undirected-match: how the bipartite input became undirected.
  bool symmetric_view = false;   ///< symmetric view (else bipartite union)
  vid_t vertices = 0;            ///< vertices of the converted graph
  eid_t undirected_edges = 0;    ///< undirected edges (each counted once)
  // analyze type=dm: coarse Dulmage–Mendelsohn block sizes + fine stats.
  vid_t h_rows = 0, h_cols = 0;  ///< horizontal (underdetermined) block
  vid_t s_size = 0;              ///< square block (rows = cols there)
  vid_t v_rows = 0, v_cols = 0;  ///< vertical (overdetermined) block
  vid_t fine_blocks = 0;         ///< fine decomposition block count
  bool total_support = false;
  bool fully_indecomposable = false;
  // analyze type=koenig: the certified minimum vertex cover.
  vid_t cover_size = 0;
  bool cover_valid = false;      ///< covers every edge
  bool maximum = false;          ///< König equality |cover| = |matching| held
};

struct PipelineResult {
  Matching matching;
  vid_t cardinality = 0;            ///< |matching|
  vid_t heuristic_cardinality = 0;  ///< |matching| before augmentation
  bool valid = false;               ///< is_valid_matching held
  bool exact = false;               ///< matching is provably maximum
  vid_t sprank = 0;                 ///< 0 when quality was not computed
  double quality = 0.0;             ///< cardinality / sprank (0 likewise)
  int scaling_iterations = 0;       ///< iterations the scale stage ran
  double scaling_error = 0.0;       ///< error after the last iteration
  AnalysisExtras extras;            ///< kind-specific scalars (non-match kinds)
  std::vector<StageStats> stages;   ///< per-stage wall-clock timings
  double total_seconds = 0.0;       ///< sum over stages

  /// Clears every field while keeping the vectors' capacity — called by
  /// run_pipeline_ws before refilling a reused result, so a new field added
  /// here must be reset here too (never only at the call site).
  void reset() {
    // `matching` is fully overwritten by the match stage; left as-is.
    cardinality = 0;
    heuristic_cardinality = 0;
    valid = false;
    exact = false;
    sprank = 0;
    quality = 0.0;
    scaling_iterations = 0;
    scaling_error = 0.0;
    extras = AnalysisExtras{};
    stages.clear();
    total_seconds = 0.0;
  }
};

/// Executes the configured pipeline on `g`. Throws std::invalid_argument for
/// an unknown algorithm name (before any work is done). The stage thread
/// budget (config.options.threads) applies to every stage, not just match.
[[nodiscard]] PipelineResult run_pipeline(const BipartiteGraph& g,
                                          const PipelineConfig& config);

/// Workspace-aware pipeline execution — the batch-serving hot path. Every
/// stage's scratch (scaling vectors, choice arrays, solver queues, the
/// sprank matching, k_out's pooled subgraph) is leased from `ws`, the
/// resolved algorithm instance is cached inside `ws` keyed by its
/// configuration, and `out` is fully overwritten with its vectors' capacity
/// reused. A warm worker running same-shaped jobs therefore performs zero
/// heap allocations per call. Results are identical to run_pipeline() for
/// the same config.
void run_pipeline_ws(const BipartiteGraph& g, const PipelineConfig& config,
                     Workspace& ws, PipelineResult& out);

/// Shared-graph overload for cache-served batches: runs on the pointee,
/// which the caller's shared_ptr keeps alive across the stages however the
/// cache evicts the entry. Throws std::invalid_argument when `g` is null.
/// DEPRECATED for job execution: both `run_pipeline_ws` forms are the
/// per-call building blocks that `bmh::Engine` (engine_api.hpp) now wires
/// up — code running batches or serving requests should go through the
/// engine, which owns the workspace, cache and pool plumbing; call these
/// directly only for one-off pipelines on a graph you already hold.
void run_pipeline_ws(const std::shared_ptr<const BipartiteGraph>& g,
                     const PipelineConfig& config, Workspace& ws,
                     PipelineResult& out);

/// The kind=undirected-match pipeline (§5): convert the bipartite input to
/// an undirected graph (symmetric view when square and pattern-symmetric,
/// bipartite union otherwise — recorded in out.extras), run the undirected
/// algorithm config.algorithm names (UndirectedAlgorithmRegistry; unknown
/// names throw before any work), and validate. Stages are "convert",
/// "match", "analyze". Same workspace/zero-allocation contract as
/// run_pipeline_ws; `out.matching` is left untouched (the undirected mate
/// array lives in the workspace, its cardinality lands in out.cardinality).
void run_undirected_pipeline_ws(const BipartiteGraph& g, const PipelineConfig& config,
                                Workspace& ws, PipelineResult& out);

/// The kind=analyze pipeline: config.algorithm names the analysis type.
///   dm      coarse + fine Dulmage–Mendelsohn: sprank, block sizes,
///           total-support / full-indecomposability flags (out.extras)
///   koenig  maximum matching + König minimum vertex cover certificate
///   sprank  structural rank alone (the cheapest exact probe)
/// Unknown types throw std::invalid_argument before any work. Runs a single
/// "analyze" stage; sprank is workspace-leased end to end, while dm/koenig
/// build their decomposition structures afresh per call (they are not on
/// the zero-allocation certified path).
void run_analyze_pipeline_ws(const BipartiteGraph& g, const PipelineConfig& config,
                             Workspace& ws, PipelineResult& out);

/// All analysis type names, sorted — `bmh_engine --list` introspection.
[[nodiscard]] std::vector<std::string> analysis_type_names();

} // namespace bmh
