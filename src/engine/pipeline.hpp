#pragma once
/// \file pipeline.hpp
/// \brief Composable matching pipelines: scaling -> heuristic -> exact
/// augmentation, with per-stage timing and quality accounting.
///
/// A pipeline is the unit every entry point (benches, examples, the batch
/// runner) executes: it owns the stage sequencing that the seed code
/// hand-wired at each call site. Stages:
///
///   scale    optional Sinkhorn-Knopp or Ruiz scaling (skipped, with
///            identity multipliers, when the algorithm ignores scaling)
///   match    a registered heuristic or exact algorithm
///   augment  optional Hopcroft-Karp completion to the maximum (the paper's
///            jump-start application: the heuristic initializes the exact
///            solver)
///   analyze  validity check and |M| / sprank quality (sprank reuses the
///            known optimum when the pipeline already ended exact)

#include <memory>
#include <string>
#include <vector>

#include "core/workspace.hpp"
#include "engine/algorithm.hpp"
#include "engine/registry.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

/// Which scaler the pipeline's scale stage runs.
enum class ScalingMethod {
  kNone,           ///< identity multipliers (uniform sampling)
  kSinkhornKnopp,  ///< paper Algorithm 1
  kRuiz,           ///< Ruiz equilibration (§2.2 alternative)
};

/// Parses "none" | "sinkhorn_knopp" (alias "sk") | "ruiz".
/// Throws std::invalid_argument otherwise.
[[nodiscard]] ScalingMethod parse_scaling_method(const std::string& name);

/// Canonical name of a ScalingMethod ("none"/"sinkhorn_knopp"/"ruiz").
[[nodiscard]] const char* to_string(ScalingMethod method) noexcept;

struct PipelineConfig {
  std::string algorithm = "two_sided";  ///< registry name of the match stage
  AlgorithmOptions options;             ///< seed / threads / k for that stage
  ScalingMethod scaling = ScalingMethod::kSinkhornKnopp;
  int scaling_iterations = 5;
  double scaling_tolerance = 0.0;  ///< 0 = run exactly scaling_iterations
  bool augment = false;    ///< complete to maximum with Hopcroft-Karp
  bool compute_quality = true;  ///< compute sprank (an extra exact solve
                                ///< unless the pipeline ended exact)
};

/// Wall-clock seconds of one executed stage, in execution order.
struct StageStats {
  std::string stage;     ///< "scale" | "match" | "augment" | "analyze"
  double seconds = 0.0;
};

struct PipelineResult {
  Matching matching;
  vid_t cardinality = 0;            ///< |matching|
  vid_t heuristic_cardinality = 0;  ///< |matching| before augmentation
  bool valid = false;               ///< is_valid_matching held
  bool exact = false;               ///< matching is provably maximum
  vid_t sprank = 0;                 ///< 0 when quality was not computed
  double quality = 0.0;             ///< cardinality / sprank (0 likewise)
  int scaling_iterations = 0;       ///< iterations the scale stage ran
  double scaling_error = 0.0;       ///< error after the last iteration
  std::vector<StageStats> stages;   ///< per-stage wall-clock timings
  double total_seconds = 0.0;       ///< sum over stages

  /// Clears every field while keeping the vectors' capacity — called by
  /// run_pipeline_ws before refilling a reused result, so a new field added
  /// here must be reset here too (never only at the call site).
  void reset() {
    // `matching` is fully overwritten by the match stage; left as-is.
    cardinality = 0;
    heuristic_cardinality = 0;
    valid = false;
    exact = false;
    sprank = 0;
    quality = 0.0;
    scaling_iterations = 0;
    scaling_error = 0.0;
    stages.clear();
    total_seconds = 0.0;
  }
};

/// Executes the configured pipeline on `g`. Throws std::invalid_argument for
/// an unknown algorithm name (before any work is done). The stage thread
/// budget (config.options.threads) applies to every stage, not just match.
[[nodiscard]] PipelineResult run_pipeline(const BipartiteGraph& g,
                                          const PipelineConfig& config);

/// Workspace-aware pipeline execution — the batch-serving hot path. Every
/// stage's scratch (scaling vectors, choice arrays, solver queues, the
/// sprank matching, k_out's pooled subgraph) is leased from `ws`, the
/// resolved algorithm instance is cached inside `ws` keyed by its
/// configuration, and `out` is fully overwritten with its vectors' capacity
/// reused. A warm worker running same-shaped jobs therefore performs zero
/// heap allocations per call. Results are identical to run_pipeline() for
/// the same config.
void run_pipeline_ws(const BipartiteGraph& g, const PipelineConfig& config,
                     Workspace& ws, PipelineResult& out);

/// Shared-graph overload for cache-served batches: runs on the pointee,
/// which the caller's shared_ptr keeps alive across the stages however the
/// cache evicts the entry. Throws std::invalid_argument when `g` is null.
/// DEPRECATED for job execution: both `run_pipeline_ws` forms are the
/// per-call building blocks that `bmh::Engine` (engine_api.hpp) now wires
/// up — code running batches or serving requests should go through the
/// engine, which owns the workspace, cache and pool plumbing; call these
/// directly only for one-off pipelines on a graph you already hold.
void run_pipeline_ws(const std::shared_ptr<const BipartiteGraph>& g,
                     const PipelineConfig& config, Workspace& ws,
                     PipelineResult& out);

} // namespace bmh
