#include "engine/graph_source.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/generators_suite.hpp"
#include "graph/mmio.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace bmh {

namespace {

/// Splits "key=val,key=val" into a numeric parameter map.
std::map<std::string, double> parse_params(const std::string& text,
                                           const std::string& spec) {
  std::map<std::string, double> params;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("graph spec '" + spec + "': expected key=value, got '" +
                                  item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (params.count(key) != 0)
      throw std::invalid_argument("graph spec '" + spec + "': duplicate key '" + key +
                                  "'");
    try {
      std::size_t used = 0;
      params[key] = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("graph spec '" + spec + "': non-numeric value for '" +
                                  key + "'");
    }
  }
  return params;
}

/// Looks up `key`, falling back to `fallback`; the clamp keeps tiny or
/// negative user-provided sizes from producing degenerate graphs.
double param(const GraphSpec& s, const char* key, double fallback) {
  const auto it = s.params.find(key);
  return it == s.params.end() ? fallback : it->second;
}

vid_t param_vid(const GraphSpec& s, const char* key, double fallback,
                vid_t floor_value = 1) {
  const double v = param(s, key, fallback);
  // Reject before casting: double -> int32 is UB when out of range, and the
  // range check must fail on *both* sides (a huge negative value is as
  // out-of-range as a huge positive one) plus NaN (every comparison false).
  if (!(v > -2147483649.0) || !(v < 2147483648.0))
    throw std::invalid_argument("graph spec '" + s.spec + "': '" + key +
                                "' does not fit a 32-bit vertex count");
  return std::max(floor_value, static_cast<vid_t>(v));
}

/// The seed precedence every seeded source shares: a seed pinned in the
/// spec wins over the job seed, so one batch can run several algorithms
/// against the *same* random instance.
std::uint64_t effective_seed(const GraphSpec& spec, std::uint64_t seed) {
  const auto pinned = spec.params.find("seed");
  return pinned != spec.params.end() ? static_cast<std::uint64_t>(pinned->second)
                                     : seed;
}

/// Shared NAME[:key=val,...] parsing for the generator-shaped schemes.
void parse_name_and_params(const std::string& rest, GraphSpec& out) {
  const auto colon = rest.find(':');
  out.name = rest.substr(0, colon);
  const std::string params =
      colon == std::string::npos ? std::string() : rest.substr(colon + 1);
  if (out.name.empty())
    throw std::invalid_argument("graph spec '" + out.spec + "': missing name");
  out.params = parse_params(params, out.spec);
}

const char* const kGeneratorNames =
    "er|adversarial|planted|mesh|road|powerlaw|kkt|cycle|regular|full|one_out";

/// Shared file materialization for the mtx:/mm: schemes. Everything the
/// reader throws becomes a SourceIoError: the *spec* was fine, the backing
/// input was not — the engine's transient, retry-once error class.
BipartiteGraph read_matrix_source_file(const std::string& path) {
  BMH_FAILPOINT("source.mtx.read");
  try {
    return read_matrix_market_file(path);
  } catch (const std::exception& e) {
    throw SourceIoError(e.what());
  }
}

class GenSource final : public GraphSource {
public:
  [[nodiscard]] const std::string& scheme() const noexcept override {
    static const std::string kScheme = "gen";
    return kScheme;
  }

  void parse(const std::string& rest, GraphSpec& out) const override {
    parse_name_and_params(rest, out);
  }

  [[nodiscard]] ResolvedGraphSpec resolve(const GraphSpec& spec,
                                          std::uint64_t seed) const override {
    ResolvedGraphSpec r;
    r.seed = effective_seed(spec, seed);

    const std::string& g = spec.name;
    if (g == "er") {
      const vid_t n = param_vid(spec, "n", 4096, 2);
      r.add("cols", param_vid(spec, "cols", static_cast<double>(n), 2));
      r.add("deg", param(spec, "deg", 4.0));
      r.add("n", n);
      r.seeded = true;
    } else if (g == "adversarial") {
      r.add("k", param_vid(spec, "k", 8));
      r.add("n", param_vid(spec, "n", 1024, 4));
    } else if (g == "planted") {
      r.add("extra", param_vid(spec, "extra", 3, 0));
      r.add("n", param_vid(spec, "n", 4096, 2));
      r.seeded = true;
    } else if (g == "mesh") {
      const vid_t n = param_vid(spec, "n", 4096, 2);
      const vid_t nx = param_vid(spec, "nx", std::sqrt(static_cast<double>(n)), 2);
      r.add("nx", nx);
      r.add("ny", param_vid(spec, "ny", static_cast<double>(nx), 2));
    } else if (g == "road") {
      r.add("drop", param(spec, "drop", 0.05));
      r.add("n", param_vid(spec, "n", 4096, 2));
      r.add("shortcut", param(spec, "shortcut", 0.3));
      r.seeded = true;
    } else if (g == "powerlaw") {
      r.add("alpha", param(spec, "alpha", 1.8));
      r.add("avg", param(spec, "avg", 8.0));
      r.add("n", param_vid(spec, "n", 4096, 2));
      r.seeded = true;
    } else if (g == "kkt") {
      r.add("d", param_vid(spec, "d", 4));
      r.add("m", param_vid(spec, "m", 1024, 4));
      r.add("p", param_vid(spec, "p", 256, 1));
      r.seeded = true;
    } else if (g == "cycle") {
      r.add("n", param_vid(spec, "n", 4096, 2));
    } else if (g == "regular") {
      r.add("d", param_vid(spec, "d", 3));
      r.add("n", param_vid(spec, "n", 4096, 2));
      r.seeded = true;
    } else if (g == "full") {
      r.add("n", param_vid(spec, "n", 256, 1));
    } else if (g == "one_out") {
      r.add("n", param_vid(spec, "n", 4096, 2));
      r.seeded = true;
    } else {
      throw std::invalid_argument("graph spec '" + spec.spec +
                                  "': unknown generator '" + g + "' (" +
                                  kGeneratorNames + ")");
    }
    return r;
  }

  [[nodiscard]] BipartiteGraph build(const GraphSpec& spec,
                                     const ResolvedGraphSpec& r) const override {
    const std::string& g = spec.name;
    const std::uint64_t seed = r.seed;
    const auto as_vid = [&r](const char* key) {
      return static_cast<vid_t>(r.get(key));
    };
    if (g == "er") {
      const double nnz = r.get("deg") * r.get("n");
      if (!(nnz >= 0.0 && nnz < 9.0e18))
        throw std::invalid_argument("graph spec '" + spec.spec +
                                    "': 'deg' * n is not a valid edge count");
      return make_erdos_renyi(as_vid("n"), as_vid("cols"), static_cast<eid_t>(nnz),
                              seed);
    }
    if (g == "adversarial") return make_ks_adversarial(as_vid("n"), as_vid("k"));
    if (g == "planted") return make_planted_perfect(as_vid("n"), as_vid("extra"), seed);
    if (g == "mesh") return make_mesh(as_vid("nx"), as_vid("ny"));
    if (g == "road")
      return make_road_like(as_vid("n"), r.get("shortcut"), r.get("drop"), seed);
    if (g == "powerlaw")
      return make_power_law(as_vid("n"), r.get("avg"), r.get("alpha"), seed);
    if (g == "kkt") return make_kkt_like(as_vid("m"), as_vid("p"), as_vid("d"), seed);
    if (g == "cycle") return make_cycle(as_vid("n"));
    if (g == "regular") return make_row_regular(as_vid("n"), as_vid("d"), seed);
    if (g == "full") return make_full(as_vid("n"));
    if (g == "one_out") return make_one_out(as_vid("n"), seed);
    // resolve() already rejected unknown generators.
    throw std::invalid_argument("graph spec '" + spec.spec +
                                "': unknown generator '" + g + "' (" +
                                kGeneratorNames + ")");
  }
};

class SuiteSource final : public GraphSource {
public:
  [[nodiscard]] const std::string& scheme() const noexcept override {
    static const std::string kScheme = "suite";
    return kScheme;
  }

  void parse(const std::string& rest, GraphSpec& out) const override {
    parse_name_and_params(rest, out);
  }

  [[nodiscard]] ResolvedGraphSpec resolve(const GraphSpec& spec,
                                          std::uint64_t seed) const override {
    ResolvedGraphSpec r;
    r.seed = effective_seed(spec, seed);
    r.add("scale", param(spec, "scale", 0.1));
    r.seeded = true;
    return r;
  }

  [[nodiscard]] BipartiteGraph build(const GraphSpec& spec,
                                     const ResolvedGraphSpec& r) const override {
    return make_suite_instance(spec.name, r.get("scale"), r.seed).graph;
  }
};

/// Legacy file scheme: keyed by the path *text* (cheap, but a moved file is
/// a new cache key and an edited one silently serves stale store entries).
class MtxSource final : public GraphSource {
public:
  [[nodiscard]] const std::string& scheme() const noexcept override {
    static const std::string kScheme = "mtx";
    return kScheme;
  }

  void parse(const std::string& rest, GraphSpec& out) const override {
    if (rest.empty())
      throw std::invalid_argument("graph spec '" + out.spec + "': empty mtx path");
    out.name = rest;  // paths may contain ':'; everything after "mtx:" is the path
  }

  [[nodiscard]] ResolvedGraphSpec resolve(const GraphSpec& spec,
                                          std::uint64_t seed) const override {
    ResolvedGraphSpec r;
    r.seed = effective_seed(spec, seed);
    return r;  // keyed by path text; seed never read
  }

  [[nodiscard]] BipartiteGraph build(const GraphSpec& spec,
                                     const ResolvedGraphSpec&) const override {
    return read_matrix_source_file(spec.name);
  }
};

/// Content-addressed file scheme: the canonical identity is the FNV-1a hash
/// of the file bytes, so equal content keys equally across processes, copies
/// and renames — the property that makes the GraphStore mmap-warm for real
/// matrices from the first job after a restart. The hash is memoized per
/// (path, mtime, size): a warm resolve is one stat() plus a map lookup.
class MmSource final : public GraphSource {
public:
  [[nodiscard]] const std::string& scheme() const noexcept override {
    static const std::string kScheme = "mm";
    return kScheme;
  }

  void parse(const std::string& rest, GraphSpec& out) const override {
    constexpr std::string_view kPrefix = "path=";
    if (rest.rfind(kPrefix, 0) != 0 || rest.size() == kPrefix.size())
      throw std::invalid_argument("graph spec '" + out.spec +
                                  "': expected mm:path=FILE");
    out.name = rest.substr(kPrefix.size());  // paths may contain ',' and ':'
  }

  [[nodiscard]] ResolvedGraphSpec resolve(const GraphSpec& spec,
                                          std::uint64_t seed) const override {
    ResolvedGraphSpec r;
    r.seed = effective_seed(spec, seed);
    r.identity_owner = content_token(spec);
    r.identity = *r.identity_owner;
    return r;
  }

  [[nodiscard]] BipartiteGraph build(const GraphSpec& spec,
                                     const ResolvedGraphSpec&) const override {
    return read_matrix_source_file(spec.name);
  }

private:
  struct Entry {
    std::int64_t mtime_ns = 0;
    std::uint64_t size = 0;
    std::shared_ptr<const std::string> token;  ///< 16 hex digits of fnv1a64
  };

  /// The memoized content token for the file behind `spec`. Throws
  /// std::runtime_error when the file cannot be statted or read (resolve —
  /// and therefore canonical_graph_key — fails like build would).
  std::shared_ptr<const std::string> content_token(const GraphSpec& spec) const {
    struct ::stat st = {};
    if (::stat(spec.name.c_str(), &st) != 0)
      throw SourceIoError("graph spec '" + spec.spec + "': cannot stat '" +
                          spec.name + "'");
    const std::int64_t mtime_ns =
        static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
        static_cast<std::int64_t>(st.st_mtim.tv_nsec);
    const auto size = static_cast<std::uint64_t>(st.st_size);
    {
      LockGuard lock(mutex_);
      const auto it = memo_.find(spec.name);
      if (it != memo_.end() && it->second.mtime_ns == mtime_ns &&
          it->second.size == size)
        return it->second.token;
    }
    auto token = std::make_shared<const std::string>(hash_file(spec));
    LockGuard lock(mutex_);
    memo_[spec.name] = Entry{mtime_ns, size, token};
    return token;
  }

  static std::string hash_file(const GraphSpec& spec) {
    std::ifstream in(spec.name, std::ios::binary);
    if (!in)
      throw SourceIoError("graph spec '" + spec.spec + "': cannot open '" +
                          spec.name + "'");
    std::uint64_t h = 14695981039346656037ull;  // FNV-1a, streamed in chunks
    char chunk[1 << 16];
    while (in.read(chunk, sizeof chunk) || in.gcount() > 0) {
      // Per-chunk site: `delay` models a slow disk stalling mid-stream,
      // `error` a read failing after some bytes already hashed.
      BMH_FAILPOINT("source.mm.read");
      const auto got = static_cast<std::size_t>(in.gcount());
      for (std::size_t i = 0; i < got; ++i) {
        h ^= static_cast<unsigned char>(chunk[i]);
        h *= 1099511628211ull;
      }
      if (!in) break;
    }
    // The corrupt action flips a hash bit: the content token (and with it
    // the cache/store key) goes wrong the way a torn read would make it —
    // harmless by construction (a novel key just builds and caches fresh),
    // which the soak test relies on.
    if (BMH_FAILPOINT_CORRUPT("source.mm.hash")) h ^= 0x1;
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
    return std::string(buf, 16);
  }

  mutable Mutex mutex_;
  mutable std::map<std::string, Entry, std::less<>> memo_ BMH_GUARDED_BY(mutex_);
};

} // namespace

struct GraphSourceRegistry::Impl {
  using Map = std::map<std::string, std::shared_ptr<const GraphSource>, std::less<>>;
  mutable Mutex mutex;
  /// Copy-on-register snapshot: readers copy the shared_ptr under the lock
  /// and walk their snapshot lock-free; the sources themselves are shared
  /// between snapshots and never destroyed, so returned raw pointers stay
  /// valid for the process lifetime.
  std::shared_ptr<const Map> snapshot BMH_GUARDED_BY(mutex) = std::make_shared<Map>();
};

GraphSourceRegistry::GraphSourceRegistry() : impl_(std::make_shared<Impl>()) {
  register_source(std::make_shared<GenSource>());
  register_source(std::make_shared<SuiteSource>());
  register_source(std::make_shared<MtxSource>());
  register_source(std::make_shared<MmSource>());
}

GraphSourceRegistry& GraphSourceRegistry::instance() {
  static GraphSourceRegistry registry;
  return registry;
}

void GraphSourceRegistry::register_source(std::shared_ptr<const GraphSource> source) {
  if (source == nullptr)
    throw std::invalid_argument("register_source: null source");
  const std::string& scheme = source->scheme();
  if (scheme.empty() || scheme.find(':') != std::string::npos)
    throw std::invalid_argument("register_source: invalid scheme '" + scheme + "'");
  LockGuard lock(impl_->mutex);
  auto next = std::make_shared<Impl::Map>(*impl_->snapshot);
  if (!next->emplace(scheme, std::move(source)).second)
    throw std::invalid_argument("register_source: scheme '" + scheme +
                                "' is already registered");
  impl_->snapshot = std::move(next);
}

const GraphSource* GraphSourceRegistry::find(std::string_view scheme) const {
  std::shared_ptr<const Impl::Map> map;
  {
    LockGuard lock(impl_->mutex);
    map = impl_->snapshot;
  }
  const auto it = map->find(scheme);
  return it == map->end() ? nullptr : it->second.get();
}

const GraphSource& GraphSourceRegistry::at(std::string_view scheme,
                                           const std::string& spec_text) const {
  if (const GraphSource* source = find(scheme)) return *source;
  std::string known;
  for (const std::string& s : schemes()) {
    if (!known.empty()) known += '|';
    known += s;
  }
  throw std::invalid_argument("graph spec '" + spec_text + "': unknown scheme '" +
                              std::string(scheme) + "' (" + known + ")");
}

std::vector<std::string> GraphSourceRegistry::schemes() const {
  std::shared_ptr<const Impl::Map> map;
  {
    LockGuard lock(impl_->mutex);
    map = impl_->snapshot;
  }
  std::vector<std::string> out;
  out.reserve(map->size());
  for (const auto& [scheme, source] : *map) out.push_back(scheme);
  return out;  // std::map iterates sorted
}

std::vector<std::string> registered_graph_source_schemes() {
  return GraphSourceRegistry::instance().schemes();
}

} // namespace bmh
