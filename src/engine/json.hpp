#pragma once
/// \file json.hpp
/// \brief Minimal JSON emission for batch results (JSON-lines sink).
///
/// Hand-rolled on purpose: the container has no JSON dependency, and the
/// records must be byte-stable — doubles are rendered with std::to_chars
/// shortest round-trip form, so the same result always serializes to the
/// same bytes. `include_timings=false` drops the wall-clock fields (the
/// only nondeterministic ones), making the emitted lines byte-identical
/// across reruns with the same seed.

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/batch_runner.hpp"

namespace bmh {

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Shortest round-trip decimal rendering of a finite double ("0.5", not
/// "0.500000"); non-finite values render as null per JSON.
[[nodiscard]] std::string json_number(double value);

/// One JobResult as a single-line JSON object. Field order is fixed.
[[nodiscard]] std::string to_json_line(const JobResult& result,
                                       bool include_timings = true);

/// Writes one JSON line per result, in batch index order.
void write_jsonl(std::ostream& out, const std::vector<JobResult>& results,
                 bool include_timings = true);

} // namespace bmh
