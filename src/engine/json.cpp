#include "engine/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace bmh {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return ec == std::errc() ? std::string(buf, end) : "null";
}

namespace {

/// Appends `,"key":value` (no comma when the object is still empty).
class ObjectBuilder {
public:
  explicit ObjectBuilder(std::string& out) : out_(out) { out_ += '{'; }
  void close() { out_ += '}'; }

  void raw(const char* key, const std::string& value) {
    if (!first_) out_ += ',';
    first_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\":";
    out_ += value;
  }
  void string(const char* key, const std::string& value) {
    raw(key, '"' + json_escape(value) + '"');
  }
  void integer(const char* key, std::int64_t value) { raw(key, std::to_string(value)); }
  void unsigned_integer(const char* key, std::uint64_t value) {
    raw(key, std::to_string(value));
  }
  void number(const char* key, double value) { raw(key, json_number(value)); }
  void boolean(const char* key, bool value) { raw(key, value ? "true" : "false"); }

private:
  std::string& out_;
  bool first_ = true;
};

} // namespace

namespace {

void append_timings(ObjectBuilder& obj, const JobResult& r) {
  std::string stages = "[";
  for (std::size_t s = 0; s < r.result.stages.size(); ++s) {
    if (s > 0) stages += ',';
    stages += "{\"stage\":\"" + json_escape(r.result.stages[s].stage) +
              "\",\"seconds\":" + json_number(r.result.stages[s].seconds) + '}';
  }
  stages += ']';
  obj.raw("stages", stages);
  obj.number("total_seconds", r.result.total_seconds);
}

} // namespace

std::string to_json_line(const JobResult& r, bool include_timings) {
  std::string line;
  ObjectBuilder obj(line);
  obj.integer("job", static_cast<std::int64_t>(r.index));
  obj.string("name", r.name);
  obj.string("input", r.input);
  // Emitted only for the newer kinds: legacy kind=match records keep their
  // exact pre-kind byte layout, so downstream diffs against old runs hold.
  if (r.kind != JobKind::kMatch) obj.string("kind", to_string(r.kind));
  obj.string("algorithm", r.algorithm);
  obj.unsigned_integer("seed", r.seed);
  obj.boolean("ok", r.ok);
  if (!r.ok) {
    obj.string("error", r.error);
    // Only when classified: records that predate the taxonomy (or were
    // built by hand with kNone) keep their old byte layout.
    if (r.error_kind != ErrorKind::kNone)
      obj.string("error_kind", to_string(r.error_kind));
    obj.close();
    return line;
  }
  if (r.kind == JobKind::kUndirectedMatch) {
    obj.integer("rows", r.rows);
    obj.integer("cols", r.cols);
    obj.integer("edges", r.edges);
    obj.string("conversion", r.result.extras.symmetric_view ? "symmetric" : "union");
    obj.integer("vertices", r.result.extras.vertices);
    obj.integer("undirected_edges",
                static_cast<std::int64_t>(r.result.extras.undirected_edges));
    obj.integer("cardinality", r.result.cardinality);
    obj.boolean("valid", r.result.valid);
    obj.integer("scaling_iterations", r.result.scaling_iterations);
    obj.number("scaling_error", r.result.scaling_error);
    if (include_timings) append_timings(obj, r);
    obj.close();
    return line;
  }
  if (r.kind == JobKind::kAnalyze) {
    obj.integer("rows", r.rows);
    obj.integer("cols", r.cols);
    obj.integer("edges", r.edges);
    if (r.algorithm == "dm") {
      obj.integer("sprank", r.result.sprank);
      obj.integer("h_rows", r.result.extras.h_rows);
      obj.integer("h_cols", r.result.extras.h_cols);
      obj.integer("s_size", r.result.extras.s_size);
      obj.integer("v_rows", r.result.extras.v_rows);
      obj.integer("v_cols", r.result.extras.v_cols);
      obj.integer("fine_blocks", r.result.extras.fine_blocks);
      obj.boolean("total_support", r.result.extras.total_support);
      obj.boolean("fully_indecomposable", r.result.extras.fully_indecomposable);
    } else if (r.algorithm == "koenig") {
      obj.integer("cardinality", r.result.cardinality);
      obj.boolean("valid", r.result.valid);
      obj.integer("cover_size", r.result.extras.cover_size);
      obj.boolean("cover_valid", r.result.extras.cover_valid);
      obj.boolean("maximum", r.result.extras.maximum);
    } else {  // sprank
      obj.integer("sprank", r.result.sprank);
    }
    if (include_timings) append_timings(obj, r);
    obj.close();
    return line;
  }
  obj.integer("rows", r.rows);
  obj.integer("cols", r.cols);
  obj.integer("edges", r.edges);
  obj.integer("cardinality", r.result.cardinality);
  obj.integer("heuristic_cardinality", r.result.heuristic_cardinality);
  obj.boolean("valid", r.result.valid);
  obj.boolean("exact", r.result.exact);
  if (r.result.sprank > 0) {
    obj.integer("sprank", r.result.sprank);
    obj.number("quality", r.result.quality);
  }
  obj.integer("scaling_iterations", r.result.scaling_iterations);
  obj.number("scaling_error", r.result.scaling_error);
  if (include_timings) append_timings(obj, r);
  obj.close();
  return line;
}

void write_jsonl(std::ostream& out, const std::vector<JobResult>& results,
                 bool include_timings) {
  for (const JobResult& r : results) out << to_json_line(r, include_timings) << '\n';
}

} // namespace bmh
