#include "engine/pipeline.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "analysis/dulmage_mendelsohn.hpp"
#include "analysis/koenig.hpp"
#include "analysis/quality.hpp"
#include "graph/transform.hpp"
#include "matching/hopcroft_karp.hpp"
#include "obs/trace.hpp"
#include "undirected/graph.hpp"
#include "undirected/matching.hpp"
#include "scaling/ruiz.hpp"
#include "scaling/sinkhorn_knopp.hpp"
#include "util/failpoint.hpp"
#include "util/threading.hpp"
#include "util/timer.hpp"

namespace bmh {

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScalingMethod parse_scaling_method(const std::string& name) {
  if (name == "none") return ScalingMethod::kNone;
  if (name == "sinkhorn_knopp" || name == "sk") return ScalingMethod::kSinkhornKnopp;
  if (name == "ruiz") return ScalingMethod::kRuiz;
  throw std::invalid_argument("unknown scaling method '" + name +
                              "' (none|sinkhorn_knopp|ruiz)");
}

const char* to_string(ScalingMethod method) noexcept {
  switch (method) {
    case ScalingMethod::kNone: return "none";
    case ScalingMethod::kSinkhornKnopp: return "sinkhorn_knopp";
    case ScalingMethod::kRuiz: return "ruiz";
  }
  return "?";
}

namespace {

/// Runs `fn`, recording its wall-clock under `stage` in `result` — and as a
/// trace span into the worker's journal when one is bound (the stage names
/// are string literals at every call site, as spans require). Stage entry
/// is the failure boundary: the deadline is checked here (a running stage
/// is never interrupted) and the `pipeline.stage` failpoint fires here.
template <typename Fn>
void timed_stage(PipelineResult& result, const PipelineConfig& config,
                 const char* stage, Fn&& fn) {
  BMH_FAILPOINT("pipeline.stage");
  if (config.deadline_ns != 0 && steady_now_ns() >= config.deadline_ns)
    throw JobTimeoutError(std::string("deadline exceeded before stage '") + stage +
                          "'");
  obs::ScopedSpan span(stage);
  Timer timer;
  fn();
  const double seconds = timer.seconds();
  result.stages.push_back({stage, seconds});
  result.total_seconds += seconds;
}

/// The algorithm instance a workspace keeps warm between jobs. Rebindable
/// instances (every built-in) take their options — the per-job seed among
/// them — at run time, so the cache keys on the name alone and a batch
/// worker resolves its algorithm allocation-free after the first job. A
/// non-rebindable custom algorithm baked its options in at creation and is
/// re-created whenever they change.
struct CachedAlgorithm {
  std::string name;
  AlgorithmOptions options;
  std::unique_ptr<MatchingAlgorithm> algorithm;
};

const MatchingAlgorithm& resolve_algorithm(Workspace& ws, const PipelineConfig& config) {
  CachedAlgorithm& cache = ws.obj<CachedAlgorithm>("pipeline.algorithm");
  const bool hit = cache.algorithm != nullptr && cache.name == config.algorithm &&
                   (cache.algorithm->rebindable() || cache.options == config.options);
  if (!hit) {
    cache.algorithm = make_algorithm(config.algorithm, config.options);
    cache.name = config.algorithm;
    cache.options = config.options;
  }
  return *cache.algorithm;
}

void run_stages_ws(const BipartiteGraph& g, const PipelineConfig& config,
                   const MatchingAlgorithm& algorithm, Workspace& ws,
                   PipelineResult& out) {
  out.reset();  // `out` may carry a previous job's results

  ScalingResult& scaling = ws.obj<ScalingResult>("pipeline.scaling");
  const bool scale = algorithm.uses_scaling() &&
                     config.scaling != ScalingMethod::kNone &&
                     config.scaling_iterations > 0;
  timed_stage(out, config, "scale", [&] {
    if (scale) {
      const ScalingOptions opts{config.scaling_iterations, config.scaling_tolerance};
      if (config.scaling == ScalingMethod::kRuiz)
        scale_ruiz_ws(g, opts, ws, scaling);
      else
        scale_sinkhorn_knopp_ws(g, opts, ws, scaling);
    } else {
      // The identity multipliers only feed the samplers; the error field is
      // never read on this branch, so skip its O(nnz) computation.
      identity_scaling_ws(g, ws, scaling, /*compute_error=*/false);
    }
  });
  if (scale) {
    out.scaling_iterations = scaling.iterations;
    out.scaling_error = scaling.error;
  }

  timed_stage(out, config, "match",
              [&] { algorithm.run_ws(g, scaling, config.options, ws, out.matching); });
  out.heuristic_cardinality = out.matching.cardinality();
  out.exact = algorithm.is_exact();

  if (config.augment && !out.exact) {
    timed_stage(out, config, "augment", [&] {
      // Validate before handing the matching to the in-place augmenter: a
      // buggy user-registered algorithm must fail the job cleanly (as the
      // old hopcroft_karp(g, &m) call did), not corrupt the solver.
      if (!is_valid_matching(g, out.matching))
        throw std::invalid_argument("pipeline augment: matching produced by '" +
                                    config.algorithm + "' is invalid");
      hopcroft_karp_augment_ws(g, out.matching, ws);
      out.exact = true;
    });
  }
  out.cardinality = out.matching.cardinality();

  timed_stage(out, config, "analyze", [&] {
    out.valid = is_valid_matching(g, out.matching);
    if (config.compute_quality) {
      // An exact pipeline already knows the optimum: |M| = sprank.
      out.sprank = out.exact ? out.cardinality : sprank_ws(g, ws);
      out.quality = matching_quality(out.matching, out.sprank);
    }
  });
}

} // namespace

PipelineResult run_pipeline(const BipartiteGraph& g, const PipelineConfig& config) {
  PipelineResult result;
  run_pipeline_ws(g, config, Workspace::for_this_thread(), result);
  return result;
}

void run_pipeline_ws(const BipartiteGraph& g, const PipelineConfig& config,
                     Workspace& ws, PipelineResult& out) {
  // Resolve the algorithm first: an unknown name must fail before any work.
  const MatchingAlgorithm& algorithm = resolve_algorithm(ws, config);
  // One body for both thread modes: the guard only engages for an explicit
  // budget (<= 0 keeps the ambient OpenMP count untouched).
  std::optional<ThreadCountGuard> guard;
  if (config.options.threads > 0) guard.emplace(config.options.threads);
  run_stages_ws(g, config, algorithm, ws, out);
}

void run_pipeline_ws(const std::shared_ptr<const BipartiteGraph>& g,
                     const PipelineConfig& config, Workspace& ws,
                     PipelineResult& out) {
  // The caller's shared_ptr outlives this frame, which is all the pinning
  // the stages need; no extra copy.
  if (!g) throw std::invalid_argument("run_pipeline_ws: null graph");
  run_pipeline_ws(*g, config, ws, out);
}

namespace {

/// The undirected counterpart of CachedAlgorithm: the cached shared_ptr
/// keeps the resolved algorithm alive independently of the registry, and a
/// warm worker re-resolves with one string compare (no lock, no allocation).
struct CachedUndirectedAlgorithm {
  std::string name;
  std::shared_ptr<const UndirectedAlgorithmFn> fn;
};

const UndirectedAlgorithmFn& resolve_undirected_algorithm(Workspace& ws,
                                                          const PipelineConfig& config) {
  CachedUndirectedAlgorithm& cache =
      ws.obj<CachedUndirectedAlgorithm>("pipeline.und_algorithm");
  if (cache.fn == nullptr || cache.name != config.algorithm) {
    cache.fn = UndirectedAlgorithmRegistry::instance().at(config.algorithm);
    cache.name = config.algorithm;
  }
  return *cache.fn;
}

} // namespace

void run_undirected_pipeline_ws(const BipartiteGraph& g, const PipelineConfig& config,
                                Workspace& ws, PipelineResult& out) {
  // Resolve first: an unknown name must fail before any work.
  const UndirectedAlgorithmFn& algorithm = resolve_undirected_algorithm(ws, config);
  std::optional<ThreadCountGuard> guard;
  if (config.options.threads > 0) guard.emplace(config.options.threads);
  out.reset();

  UndirectedGraph& ug = ws.obj<UndirectedGraph>("und.graph");
  timed_stage(out, config, "convert", [&] {
    const bool symmetric = g.square() && is_pattern_symmetric(g);
    if (symmetric)
      ug.assign_symmetric_view(g);
    else
      ug.assign_bipartite_union(g);
    out.extras.symmetric_view = symmetric;
    out.extras.vertices = ug.num_vertices();
    out.extras.undirected_edges = ug.num_edges();
  });

  UndirectedMatching& m = ws.obj<UndirectedMatching>("und.matching");
  timed_stage(out, config, "match", [&] {
    UndirectedRunInfo info;
    const int iterations =
        config.scaling == ScalingMethod::kNone ? 0 : config.scaling_iterations;
    algorithm(ug, iterations, config.options, ws, m, info);
    out.scaling_iterations = info.scaling_iterations;
    out.scaling_error = info.scaling_error;
  });
  out.cardinality = m.cardinality();
  out.heuristic_cardinality = out.cardinality;

  timed_stage(out, config, "analyze", [&] { out.valid = is_valid_matching(ug, m); });
}

void run_analyze_pipeline_ws(const BipartiteGraph& g, const PipelineConfig& config,
                             Workspace& ws, PipelineResult& out) {
  const std::string& type = config.algorithm;
  if (type != "dm" && type != "koenig" && type != "sprank")
    throw std::invalid_argument("unknown analysis type '" + type +
                                "' (dm|koenig|sprank)");
  std::optional<ThreadCountGuard> guard;
  if (config.options.threads > 0) guard.emplace(config.options.threads);
  out.reset();

  timed_stage(out, config, "analyze", [&] {
    if (type == "sprank") {
      out.sprank = sprank_ws(g, ws);
      out.exact = true;
      out.valid = true;
    } else if (type == "dm") {
      const DmDecomposition dm = dulmage_mendelsohn(g);
      out.sprank = dm.sprank;
      out.cardinality = dm.sprank;
      out.heuristic_cardinality = dm.sprank;
      out.extras.h_rows = dm.h_rows;
      out.extras.h_cols = dm.h_cols;
      out.extras.s_size = dm.s_size;
      out.extras.v_rows = dm.v_rows;
      out.extras.v_cols = dm.v_cols;
      out.extras.fine_blocks = fine_decomposition(g).num_blocks;
      out.extras.total_support = has_total_support(g);
      out.extras.fully_indecomposable = is_fully_indecomposable(g);
      out.exact = true;
      out.valid = true;
    } else {  // koenig
      Matching& m = ws.obj<Matching>("analyze.matching");
      hopcroft_karp_ws(g, ws, m);
      out.cardinality = m.cardinality();
      out.heuristic_cardinality = out.cardinality;
      out.sprank = out.cardinality;
      const VertexCover cover = koenig_cover(g, m);
      out.extras.cover_size = cover.size();
      out.extras.cover_valid = is_vertex_cover(g, cover);
      out.extras.maximum =
          out.extras.cover_valid && out.extras.cover_size == out.cardinality;
      out.exact = true;
      out.valid = is_valid_matching(g, m);
    }
  });
}

std::vector<std::string> analysis_type_names() { return {"dm", "koenig", "sprank"}; }

} // namespace bmh
