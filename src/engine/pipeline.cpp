#include "engine/pipeline.hpp"

#include <stdexcept>
#include <utility>

#include "analysis/quality.hpp"
#include "matching/hopcroft_karp.hpp"
#include "scaling/ruiz.hpp"
#include "scaling/sinkhorn_knopp.hpp"
#include "util/threading.hpp"
#include "util/timer.hpp"

namespace bmh {

ScalingMethod parse_scaling_method(const std::string& name) {
  if (name == "none") return ScalingMethod::kNone;
  if (name == "sinkhorn_knopp" || name == "sk") return ScalingMethod::kSinkhornKnopp;
  if (name == "ruiz") return ScalingMethod::kRuiz;
  throw std::invalid_argument("unknown scaling method '" + name +
                              "' (none|sinkhorn_knopp|ruiz)");
}

const char* to_string(ScalingMethod method) noexcept {
  switch (method) {
    case ScalingMethod::kNone: return "none";
    case ScalingMethod::kSinkhornKnopp: return "sinkhorn_knopp";
    case ScalingMethod::kRuiz: return "ruiz";
  }
  return "?";
}

namespace {

/// Runs `fn`, recording its wall-clock under `stage` in `result`.
template <typename Fn>
void timed_stage(PipelineResult& result, const char* stage, Fn&& fn) {
  Timer timer;
  fn();
  const double seconds = timer.seconds();
  result.stages.push_back({stage, seconds});
  result.total_seconds += seconds;
}

PipelineResult run_stages(const BipartiteGraph& g, const PipelineConfig& config,
                          const MatchingAlgorithm& algorithm) {
  PipelineResult result;

  ScalingResult scaling;
  const bool scale = algorithm.uses_scaling() &&
                     config.scaling != ScalingMethod::kNone &&
                     config.scaling_iterations > 0;
  timed_stage(result, "scale", [&] {
    if (scale) {
      const ScalingOptions opts{config.scaling_iterations, config.scaling_tolerance};
      scaling = config.scaling == ScalingMethod::kRuiz ? scale_ruiz(g, opts)
                                                       : scale_sinkhorn_knopp(g, opts);
    } else {
      scaling = identity_scaling(g);
    }
  });
  if (scale) {
    result.scaling_iterations = scaling.iterations;
    result.scaling_error = scaling.error;
  }

  timed_stage(result, "match",
              [&] { result.matching = algorithm.run(g, scaling); });
  result.heuristic_cardinality = result.matching.cardinality();
  result.exact = algorithm.is_exact();

  if (config.augment && !result.exact) {
    timed_stage(result, "augment", [&] {
      result.matching = hopcroft_karp(g, &result.matching);
      result.exact = true;
    });
  }
  result.cardinality = result.matching.cardinality();

  timed_stage(result, "analyze", [&] {
    result.valid = is_valid_matching(g, result.matching);
    if (config.compute_quality) {
      // An exact pipeline already knows the optimum: |M| = sprank.
      result.sprank = result.exact ? result.cardinality : sprank(g);
      result.quality = matching_quality(result.matching, result.sprank);
    }
  });
  return result;
}

} // namespace

PipelineResult run_pipeline(const BipartiteGraph& g, const PipelineConfig& config) {
  // Resolve the algorithm first: an unknown name must fail before any work.
  const auto algorithm = make_algorithm(config.algorithm, config.options);
  if (config.options.threads > 0) {
    ThreadCountGuard guard(config.options.threads);
    return run_stages(g, config, *algorithm);
  }
  return run_stages(g, config, *algorithm);
}

} // namespace bmh
