#pragma once
/// \file graph_cache.hpp
/// \brief Sharded, content-addressed cache of immutable graphs.
///
/// The batch hot path was left with one dominant per-job cost after the
/// Workspace arenas removed algorithm scratch: `execute_job` re-materialized
/// its BipartiteGraph from the spec on every execution. Real batch traffic
/// (parameter sweeps, seed ensembles, quality suites) re-runs the same
/// instances constantly, so the fix is a cache keyed by *content address*:
/// the canonical form of (GraphSpec, effective instance seed) from
/// canonical_graph_key(), under which textually different but semantically
/// identical specs ("gen:er:n=4096" vs "gen:er:deg=4,n=4096") share one
/// entry, and sources whose instance ignores the seed (mesh, mtx files, ...)
/// share one entry across all seeds.
///
/// Values are `std::shared_ptr<const BipartiteGraph>`: algorithms treat
/// graphs as read-only shared state (the library's core concurrency
/// invariant), so one cached CSR can serve any number of workers while LRU
/// eviction retires it from the cache independently of in-flight jobs.
///
/// Concurrency: the key space is split across N shards (key-hash selected),
/// each with its own mutex + LRU list, so batch workers hitting different
/// instances never contend on a global lock. A warm hit performs zero heap
/// allocations: the key renders into a thread-local reused buffer, lookup is
/// by string_view, and the LRU bump is a splice. Misses build *outside* the
/// shard lock (a slow build must not block sibling lookups); if two threads
/// race on the same cold key, both build and the first insert wins — the
/// builds are deterministic in the key, so either copy is correct.
///
/// Capacity: a byte budget over the resident CSR+CSC bytes
/// (BipartiteGraph::memory_bytes), split evenly across shards; least
/// recently used entries are evicted per shard when it overflows. A graph
/// larger than a whole shard's budget is returned uncached.
///
/// Persistence: an optional second tier, a file-backed GraphStore sharing
/// the same canonical keys. Memory misses consult the store before
/// building (a hit is a zero-copy mmap view, no CSR rebuild); graphs built
/// cold are written through to the store, and evicted entries re-spill if
/// their file went missing — so a restarted process (whose memory tier is
/// necessarily empty) serves repeated specs warm from its first job. All
/// store I/O happens outside the shard locks.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/job.hpp"
#include "graph/bipartite_graph.hpp"
#include "obs/metrics.hpp"

namespace bmh {

class GraphStore;

class GraphCache {
public:
  struct Options {
    /// Total byte budget across all shards. Sized for a few hundred
    /// medium instances (a 1M-edge CSR+CSC is ~12 MB); see the README's
    /// "Graph cache" section for sizing guidance.
    std::size_t max_bytes = 256ull << 20;
    /// Lock shards; rounded up to a power of two and clamped to [1, 256].
    /// More shards = less contention, coarser per-shard LRU.
    int shards = 8;
    /// Non-empty: persistent tier directory; the cache creates and owns a
    /// GraphStore over it (see graph_store.hpp). Ignored when `store` is
    /// set.
    std::string store_dir;
    /// Caller-owned persistent tier shared across caches/processes;
    /// overrides store_dir. Must outlive the cache.
    GraphStore* store = nullptr;
  };

  /// Point-in-time view of the cache's counters. hits + misses counts every
  /// get_or_build; `uncacheable` misses additionally exceeded a shard
  /// budget and were returned without being inserted. `race_discards`
  /// counts cold-key races: a second thread materialized the same key
  /// concurrently and its copy was discarded in favour of the first insert
  /// (work wasted, result identical). The store_* fields are views of the
  /// persistent tier's own counters (all zero without one; see
  /// GraphStore::Stats). The counters themselves live in the cache's
  /// obs::MetricDomain ("graph_cache") — one source of truth shared with
  /// Registry snapshots and the exporters; there is no per-shard counter
  /// state to fold anymore.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t uncacheable = 0;
    std::uint64_t race_discards = 0;
    std::size_t entries = 0;  ///< graphs currently resident
    std::size_t bytes = 0;    ///< resident CSR+CSC bytes
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;
    std::uint64_t store_spills = 0;
    std::uint64_t store_errors = 0;     ///< io + content errors, lumped
    std::uint64_t store_healed = 0;     ///< bad files self-heal-unlinked
    std::uint64_t insert_failures = 0;  ///< inserts degraded to uncached
  };

  GraphCache();  // default Options
  explicit GraphCache(Options options);
  ~GraphCache();
  GraphCache(const GraphCache&) = delete;
  GraphCache& operator=(const GraphCache&) = delete;

  /// Returns the graph build_graph(spec, seed) denotes, from cache when
  /// resident (allocation-free warm path), loaded from the persistent tier
  /// when configured and present (zero-copy mmap), building and inserting
  /// it otherwise. Thread-safe. Propagates build_graph's exceptions
  /// (failures are never cached; a corrupt store file falls back to
  /// building). The returned graph stays valid for as long as the caller
  /// holds the pointer, eviction notwithstanding.
  [[nodiscard]] std::shared_ptr<const BipartiteGraph> get_or_build(
      const GraphSpec& spec, std::uint64_t seed);

  [[nodiscard]] Stats stats() const;

  /// The cache's metric domain ("graph_cache"): the live counters and
  /// resident-size gauges behind stats(), attachable to an obs::Registry
  /// (Engine does). Multi-writer — individually atomic instruments, no
  /// PublishGuard.
  [[nodiscard]] obs::MetricDomain& metric_domain() noexcept { return domain_; }

  /// The persistent tier, or nullptr when none is configured.
  [[nodiscard]] GraphStore* store() const noexcept { return store_; }

  /// Drops every in-memory entry (counters keep accumulating; the
  /// persistent tier is untouched).
  void clear();

private:
  struct Shard;
  std::size_t shard_budget_;
  std::size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<GraphStore> owned_store_;
  GraphStore* store_ = nullptr;
  obs::MetricDomain domain_{"graph_cache"};
  obs::Counter& hits_ = domain_.counter("hits");
  obs::Counter& misses_ = domain_.counter("misses");
  obs::Counter& evictions_ = domain_.counter("evictions");
  obs::Counter& uncacheable_ = domain_.counter("uncacheable");
  obs::Counter& race_discards_ = domain_.counter("race_discards");
  obs::Counter& insert_failures_ = domain_.counter("insert_failures");
  obs::Gauge& entries_gauge_ = domain_.gauge("entries");
  obs::Gauge& bytes_gauge_ = domain_.gauge("bytes");
};

} // namespace bmh
