#include "engine/job.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "graph/generators.hpp"
#include "graph/generators_suite.hpp"
#include "graph/mmio.hpp"
#include "util/hash.hpp"

namespace bmh {

namespace {

/// Splits "key=val,key=val" into a numeric parameter map.
std::map<std::string, double> parse_params(const std::string& text,
                                           const std::string& spec) {
  std::map<std::string, double> params;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("graph spec '" + spec + "': expected key=value, got '" +
                                  item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (params.count(key) != 0)
      throw std::invalid_argument("graph spec '" + spec + "': duplicate key '" + key +
                                  "'");
    try {
      std::size_t used = 0;
      params[key] = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("graph spec '" + spec + "': non-numeric value for '" +
                                  key + "'");
    }
  }
  return params;
}

/// Looks up `key`, falling back to `fallback`; the clamp keeps tiny or
/// negative user-provided sizes from producing degenerate graphs.
double param(const GraphSpec& s, const char* key, double fallback) {
  const auto it = s.params.find(key);
  return it == s.params.end() ? fallback : it->second;
}

vid_t param_vid(const GraphSpec& s, const char* key, double fallback,
                vid_t floor_value = 1) {
  const double v = param(s, key, fallback);
  // Reject before casting: double -> int32 is UB when out of range.
  if (!(v < 2147483648.0))
    throw std::invalid_argument("graph spec '" + s.spec + "': '" + key +
                                "' does not fit a 32-bit vertex count");
  return std::max(floor_value, static_cast<vid_t>(v));
}

const char* const kGeneratorNames =
    "er|adversarial|planted|mesh|road|powerlaw|kkt|cycle|regular|full|one_out";

} // namespace

GraphSpec parse_graph_spec(const std::string& spec) {
  GraphSpec out;
  out.spec = spec;
  const auto first = spec.find(':');
  if (first == std::string::npos)
    throw std::invalid_argument("graph spec '" + spec +
                                "': expected mtx:PATH, gen:NAME:params or suite:NAME");
  const std::string kind = spec.substr(0, first);
  const std::string rest = spec.substr(first + 1);
  if (kind == "mtx") {
    if (rest.empty())
      throw std::invalid_argument("graph spec '" + spec + "': empty mtx path");
    out.kind = GraphSpec::Kind::kMtxFile;
    out.name = rest;  // paths may contain ':'; everything after "mtx:" is the path
    return out;
  }
  const auto second = rest.find(':');
  out.name = rest.substr(0, second);
  const std::string params =
      second == std::string::npos ? std::string() : rest.substr(second + 1);
  if (out.name.empty())
    throw std::invalid_argument("graph spec '" + spec + "': missing name");
  out.params = parse_params(params, spec);
  if (kind == "gen") {
    out.kind = GraphSpec::Kind::kGenerator;
    return out;
  }
  if (kind == "suite") {
    out.kind = GraphSpec::Kind::kSuite;
    return out;
  }
  throw std::invalid_argument("graph spec '" + spec + "': unknown kind '" + kind +
                              "' (mtx|gen|suite)");
}

namespace {

/// The numeric inputs a graph source actually consumes: defaults resolved,
/// clamps applied, keys alphabetical; plus the effective seed and whether the
/// instance depends on it. build_graph dispatches on these values and
/// canonical_graph_key renders them, so canonicalization cannot drift from
/// construction. Fixed-capacity on purpose: resolving allocates nothing, so
/// warm cache lookups stay heap-free.
struct ResolvedSpec {
  std::array<std::pair<const char*, double>, 4> params{};
  int count = 0;
  bool seeded = false;     ///< the instance depends on the effective seed
  std::uint64_t seed = 0;  ///< pinned spec seed if present, else the job seed

  void add(const char* key, double value) {
    if (static_cast<std::size_t>(count) >= params.size())
      throw std::logic_error("ResolvedSpec: grow the params array before giving "
                             "a source a 5th parameter");
    params[static_cast<std::size_t>(count++)] = {key, value};
  }
  [[nodiscard]] double get(const char* key) const {
    for (int i = 0; i < count; ++i)
      if (std::string_view(params[static_cast<std::size_t>(i)].first) == key)
        return params[static_cast<std::size_t>(i)].second;
    throw std::logic_error(std::string("ResolvedSpec: missing parameter '") + key +
                           "'");
  }
};

ResolvedSpec resolve_spec(const GraphSpec& spec, std::uint64_t seed) {
  ResolvedSpec r;
  // A seed pinned in the spec wins over the job seed, so one batch can run
  // several algorithms against the *same* random instance.
  const auto pinned = spec.params.find("seed");
  if (pinned != spec.params.end())
    seed = static_cast<std::uint64_t>(pinned->second);
  r.seed = seed;

  switch (spec.kind) {
    case GraphSpec::Kind::kMtxFile:
      return r;  // keyed by path text; seed never read
    case GraphSpec::Kind::kSuite:
      r.add("scale", param(spec, "scale", 0.1));
      r.seeded = true;
      return r;
    case GraphSpec::Kind::kGenerator:
      break;
  }

  const std::string& g = spec.name;
  if (g == "er") {
    const vid_t n = param_vid(spec, "n", 4096, 2);
    r.add("cols", param_vid(spec, "cols", static_cast<double>(n), 2));
    r.add("deg", param(spec, "deg", 4.0));
    r.add("n", n);
    r.seeded = true;
  } else if (g == "adversarial") {
    r.add("k", param_vid(spec, "k", 8));
    r.add("n", param_vid(spec, "n", 1024, 4));
  } else if (g == "planted") {
    r.add("extra", param_vid(spec, "extra", 3, 0));
    r.add("n", param_vid(spec, "n", 4096, 2));
    r.seeded = true;
  } else if (g == "mesh") {
    const vid_t n = param_vid(spec, "n", 4096, 2);
    const vid_t nx = param_vid(spec, "nx", std::sqrt(static_cast<double>(n)), 2);
    r.add("nx", nx);
    r.add("ny", param_vid(spec, "ny", static_cast<double>(nx), 2));
  } else if (g == "road") {
    r.add("drop", param(spec, "drop", 0.05));
    r.add("n", param_vid(spec, "n", 4096, 2));
    r.add("shortcut", param(spec, "shortcut", 0.3));
    r.seeded = true;
  } else if (g == "powerlaw") {
    r.add("alpha", param(spec, "alpha", 1.8));
    r.add("avg", param(spec, "avg", 8.0));
    r.add("n", param_vid(spec, "n", 4096, 2));
    r.seeded = true;
  } else if (g == "kkt") {
    r.add("d", param_vid(spec, "d", 4));
    r.add("m", param_vid(spec, "m", 1024, 4));
    r.add("p", param_vid(spec, "p", 256, 1));
    r.seeded = true;
  } else if (g == "cycle") {
    r.add("n", param_vid(spec, "n", 4096, 2));
  } else if (g == "regular") {
    r.add("d", param_vid(spec, "d", 3));
    r.add("n", param_vid(spec, "n", 4096, 2));
    r.seeded = true;
  } else if (g == "full") {
    r.add("n", param_vid(spec, "n", 256, 1));
  } else if (g == "one_out") {
    r.add("n", param_vid(spec, "n", 4096, 2));
    r.seeded = true;
  } else {
    throw std::invalid_argument("graph spec '" + spec.spec + "': unknown generator '" +
                                g + "' (" + kGeneratorNames + ")");
  }
  return r;
}

/// Shortest round-trip rendering, appended without temporaries (the cache's
/// warm key-building path must not allocate).
void append_number(std::string& out, double value) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc()) out.append(buf, end);
}

void append_number(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc()) out.append(buf, end);
}

} // namespace

BipartiteGraph build_graph(const GraphSpec& spec, std::uint64_t seed) {
  const ResolvedSpec r = resolve_spec(spec, seed);
  seed = r.seed;

  switch (spec.kind) {
    case GraphSpec::Kind::kMtxFile:
      return read_matrix_market_file(spec.name);
    case GraphSpec::Kind::kSuite:
      return make_suite_instance(spec.name, r.get("scale"), seed).graph;
    case GraphSpec::Kind::kGenerator:
      break;
  }

  const std::string& g = spec.name;
  const auto as_vid = [&r](const char* key) { return static_cast<vid_t>(r.get(key)); };
  if (g == "er") {
    const double nnz = r.get("deg") * r.get("n");
    if (!(nnz >= 0.0 && nnz < 9.0e18))
      throw std::invalid_argument("graph spec '" + spec.spec +
                                  "': 'deg' * n is not a valid edge count");
    return make_erdos_renyi(as_vid("n"), as_vid("cols"), static_cast<eid_t>(nnz), seed);
  }
  if (g == "adversarial") return make_ks_adversarial(as_vid("n"), as_vid("k"));
  if (g == "planted") return make_planted_perfect(as_vid("n"), as_vid("extra"), seed);
  if (g == "mesh") return make_mesh(as_vid("nx"), as_vid("ny"));
  if (g == "road")
    return make_road_like(as_vid("n"), r.get("shortcut"), r.get("drop"), seed);
  if (g == "powerlaw")
    return make_power_law(as_vid("n"), r.get("avg"), r.get("alpha"), seed);
  if (g == "kkt") return make_kkt_like(as_vid("m"), as_vid("p"), as_vid("d"), seed);
  if (g == "cycle") return make_cycle(as_vid("n"));
  if (g == "regular") return make_row_regular(as_vid("n"), as_vid("d"), seed);
  if (g == "full") return make_full(as_vid("n"));
  if (g == "one_out") return make_one_out(as_vid("n"), seed);
  // resolve_spec already rejected unknown generators.
  throw std::invalid_argument("graph spec '" + spec.spec + "': unknown generator '" +
                              g + "' (" + kGeneratorNames + ")");
}

std::uint64_t canonical_graph_key(const GraphSpec& spec, std::uint64_t seed,
                                  std::string& out) {
  const ResolvedSpec r = resolve_spec(spec, seed);
  out.clear();
  switch (spec.kind) {
    case GraphSpec::Kind::kMtxFile: out += "mtx:"; break;
    case GraphSpec::Kind::kGenerator: out += "gen:"; break;
    case GraphSpec::Kind::kSuite: out += "suite:"; break;
  }
  out += spec.name;
  for (int i = 0; i < r.count; ++i) {
    out += i == 0 ? ':' : ',';
    out += r.params[static_cast<std::size_t>(i)].first;
    out += '=';
    append_number(out, r.params[static_cast<std::size_t>(i)].second);
  }
  if (r.seeded) {
    out += "#seed=";
    append_number(out, r.seed);
  }
  // FNV-1a over the canonical text; the cache shards and buckets on this,
  // and GraphStore derives its filenames from it.
  return fnv1a64(out);
}

std::string canonical_graph_key(const GraphSpec& spec, std::uint64_t seed) {
  std::string out;
  (void)canonical_graph_key(spec, seed, out);
  return out;
}

bool graph_spec_depends_on_job_seed(const GraphSpec& spec) {
  return resolve_spec(spec, 0).seeded && spec.params.find("seed") == spec.params.end();
}

JobSpec parse_job_spec_line(const std::string& line) {
  JobSpec job;
  bool have_input = false;
  std::vector<std::string> seen;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("job spec: expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    // Reject repeats instead of silently letting the last one win; `algo`
    // and `algorithm` are aliases for the same field.
    const std::string canonical = key == "algorithm" ? "algo" : key;
    if (std::find(seen.begin(), seen.end(), canonical) != seen.end())
      throw std::invalid_argument("job spec: duplicate key '" + key + "'");
    seen.push_back(canonical);
    const auto int_value = [&]() -> std::int64_t {
      try {
        std::size_t used = 0;
        const std::int64_t v = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return v;
      } catch (const std::exception&) {
        throw std::invalid_argument("job spec: non-integer value '" + value +
                                    "' for '" + key + "'");
      }
    };

    if (key == "name") {
      job.name = value;
    } else if (key == "input") {
      job.input = parse_graph_spec(value);
      have_input = true;
    } else if (key == "algo" || key == "algorithm") {
      job.pipeline.algorithm = value;
    } else if (key == "scaling") {
      job.pipeline.scaling = parse_scaling_method(value);
    } else if (key == "iters") {
      job.pipeline.scaling_iterations = static_cast<int>(int_value());
    } else if (key == "augment") {
      job.pipeline.augment = int_value() != 0;
    } else if (key == "quality") {
      job.pipeline.compute_quality = int_value() != 0;
    } else if (key == "threads") {
      job.pipeline.options.threads = static_cast<int>(int_value());
    } else if (key == "k") {
      job.pipeline.options.k = static_cast<int>(int_value());
    } else if (key == "seed") {
      job.seed = static_cast<std::uint64_t>(int_value());
    } else {
      throw std::invalid_argument(
          "job spec: unknown key '" + key +
          "' (name|input|algo|scaling|iters|augment|quality|threads|k|seed)");
    }
  }
  if (!have_input) throw std::invalid_argument("job spec: missing required 'input='");
  return job;
}

std::vector<JobSpec> parse_job_specs(std::istream& in) {
  std::vector<JobSpec> jobs;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    try {
      jobs.push_back(parse_job_spec_line(line));
    } catch (const std::exception& e) {
      throw std::invalid_argument("line " + std::to_string(line_number) + ": " +
                                  e.what());
    }
    if (jobs.back().name.empty())
      jobs.back().name = "job" + std::to_string(jobs.size() - 1);
  }
  return jobs;
}

std::vector<JobSpec> parse_job_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open job spec file '" + path + "'");
  return parse_job_specs(in);
}

std::vector<JobSpec> demo_batch() {
  // Mixed families x algorithms; small enough for CI, varied enough to
  // exercise every pipeline shape (scaling on/off, augmentation, exact).
  static const char* const kSpec =
      "name=er_two_sided      input=gen:er:n=8192,deg=5      algo=two_sided iters=5\n"
      "name=er_one_sided      input=gen:er:n=8192,deg=5      algo=one_sided iters=5\n"
      "name=adversarial_two   input=gen:adversarial:n=2048,k=16 algo=two_sided iters=10\n"
      "name=adversarial_ks    input=gen:adversarial:n=2048,k=16 algo=karp_sipser\n"
      "name=mesh_jumpstart    input=gen:mesh:nx=96,ny=96     algo=one_sided iters=5 augment=1\n"
      "name=road_two_sided    input=gen:road:n=16384         algo=two_sided iters=10\n"
      "name=powerlaw_kout     input=gen:powerlaw:n=8192,avg=10 algo=k_out k=2 iters=5\n"
      "name=kkt_greedy        input=gen:kkt:m=4096,p=1024,d=4 algo=greedy\n"
      "name=planted_exact     input=gen:planted:n=8192,extra=3 algo=hopcroft_karp\n"
      "name=suite_smoke       input=suite:cage15_like:scale=0.05 algo=two_sided iters=5\n";
  std::istringstream in(kSpec);
  return parse_job_specs(in);
}

} // namespace bmh
