#include "engine/job.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/hash.hpp"

namespace bmh {

GraphSpec parse_graph_spec(const std::string& spec) {
  GraphSpec out;
  out.spec = spec;
  const auto first = spec.find(':');
  if (first == std::string::npos)
    throw std::invalid_argument("graph spec '" + spec +
                                "': expected SCHEME:REST (e.g. gen:er:n=4096, "
                                "mm:path=FILE, mtx:PATH or suite:NAME)");
  out.scheme = spec.substr(0, first);
  const GraphSource& source =
      GraphSourceRegistry::instance().at(out.scheme, spec);
  source.parse(spec.substr(first + 1), out);
  return out;
}

namespace {

/// Shortest round-trip rendering, appended without temporaries (the cache's
/// warm key-building path must not allocate).
void append_number(std::string& out, double value) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc()) out.append(buf, end);
}

void append_number(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc()) out.append(buf, end);
}

const GraphSource& source_for(const GraphSpec& spec) {
  return GraphSourceRegistry::instance().at(spec.scheme, spec.spec);
}

} // namespace

BipartiteGraph build_graph(const GraphSpec& spec, std::uint64_t seed) {
  const GraphSource& source = source_for(spec);
  return source.build(spec, source.resolve(spec, seed));
}

std::uint64_t canonical_graph_key(const GraphSpec& spec, std::uint64_t seed,
                                  std::string& out) {
  const GraphSource& source = source_for(spec);
  const ResolvedGraphSpec r = source.resolve(spec, seed);
  out.clear();
  out += spec.scheme;
  out += ':';
  // Content-addressed sources render their identity token in place of the
  // spec name, so equal content keys equally whatever path it came from.
  if (!r.identity.empty())
    out += r.identity;
  else
    out += spec.name;
  for (int i = 0; i < r.count; ++i) {
    out += i == 0 ? ':' : ',';
    out += r.params[static_cast<std::size_t>(i)].first;
    out += '=';
    append_number(out, r.params[static_cast<std::size_t>(i)].second);
  }
  if (r.seeded) {
    out += "#seed=";
    append_number(out, r.seed);
  }
  // FNV-1a over the canonical text; the cache shards and buckets on this,
  // and GraphStore derives its filenames from it.
  return fnv1a64(out);
}

std::string canonical_graph_key(const GraphSpec& spec, std::uint64_t seed) {
  std::string out;
  (void)canonical_graph_key(spec, seed, out);
  return out;
}

bool graph_spec_depends_on_job_seed(const GraphSpec& spec) {
  return source_for(spec).resolve(spec, 0).seeded &&
         spec.params.find("seed") == spec.params.end();
}

JobKind parse_job_kind(const std::string& name) {
  if (name == "match") return JobKind::kMatch;
  if (name == "undirected-match") return JobKind::kUndirectedMatch;
  if (name == "analyze") return JobKind::kAnalyze;
  throw std::invalid_argument("unknown job kind '" + name +
                              "' (match|undirected-match|analyze)");
}

const char* to_string(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::kMatch: return "match";
    case JobKind::kUndirectedMatch: return "undirected-match";
    case JobKind::kAnalyze: return "analyze";
  }
  return "?";
}

std::vector<std::string> job_kind_names() {
  return {"analyze", "match", "undirected-match"};
}

JobSpec parse_job_spec_line(const std::string& line) {
  JobSpec job;
  bool have_input = false;
  bool have_algo = false;
  std::vector<std::string> seen;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("job spec: expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    // Reject repeats instead of silently letting the last one win; `algo`
    // and `algorithm` are aliases for the same field.
    const std::string canonical = key == "algorithm" ? "algo" : key;
    if (std::find(seen.begin(), seen.end(), canonical) != seen.end())
      throw std::invalid_argument("job spec: duplicate key '" + key + "'");
    seen.push_back(canonical);
    const auto int_value = [&]() -> std::int64_t {
      try {
        std::size_t used = 0;
        const std::int64_t v = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return v;
      } catch (const std::exception&) {
        throw std::invalid_argument("job spec: non-integer value '" + value +
                                    "' for '" + key + "'");
      }
    };

    if (key == "name") {
      job.name = value;
    } else if (key == "input") {
      job.input = parse_graph_spec(value);
      have_input = true;
    } else if (key == "kind") {
      job.kind = parse_job_kind(value);
    } else if (key == "algo" || key == "algorithm") {
      job.pipeline.algorithm = value;
      have_algo = true;
    } else if (key == "scaling") {
      job.pipeline.scaling = parse_scaling_method(value);
    } else if (key == "iters") {
      job.pipeline.scaling_iterations = static_cast<int>(int_value());
    } else if (key == "augment") {
      job.pipeline.augment = int_value() != 0;
    } else if (key == "quality") {
      job.pipeline.compute_quality = int_value() != 0;
    } else if (key == "threads") {
      job.pipeline.options.threads = static_cast<int>(int_value());
    } else if (key == "k") {
      job.pipeline.options.k = static_cast<int>(int_value());
    } else if (key == "seed") {
      job.seed = static_cast<std::uint64_t>(int_value());
    } else if (key == "timeout_ms") {
      const std::int64_t v = int_value();
      if (v < 0)
        throw std::invalid_argument("job spec: negative value '" + value +
                                    "' for 'timeout_ms'");
      job.timeout_ms = static_cast<std::uint64_t>(v);
    } else {
      throw std::invalid_argument(
          "job spec: unknown key '" + key +
          "' (name|input|kind|algo|scaling|iters|augment|quality|threads|k|seed|"
          "timeout_ms)");
    }
  }
  if (!have_input) throw std::invalid_argument("job spec: missing required 'input='");
  // The pipeline default (two_sided) only makes sense for bipartite
  // matching; the other kinds resolve their own default algorithm.
  if (!have_algo) {
    if (job.kind == JobKind::kUndirectedMatch) job.pipeline.algorithm = "one_out";
    else if (job.kind == JobKind::kAnalyze) job.pipeline.algorithm = "dm";
  }
  return job;
}

std::vector<JobSpec> parse_job_specs(std::istream& in) {
  std::vector<JobSpec> jobs;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    try {
      jobs.push_back(parse_job_spec_line(line));
    } catch (const std::exception& e) {
      throw std::invalid_argument("line " + std::to_string(line_number) + ": " +
                                  e.what());
    }
    if (jobs.back().name.empty())
      jobs.back().name = "job" + std::to_string(jobs.size() - 1);
  }
  return jobs;
}

std::vector<JobSpec> parse_job_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open job spec file '" + path + "'");
  return parse_job_specs(in);
}

std::vector<JobSpec> demo_batch() {
  // Mixed families x algorithms; small enough for CI, varied enough to
  // exercise every pipeline shape (scaling on/off, augmentation, exact).
  static const char* const kSpec =
      "name=er_two_sided      input=gen:er:n=8192,deg=5      algo=two_sided iters=5\n"
      "name=er_one_sided      input=gen:er:n=8192,deg=5      algo=one_sided iters=5\n"
      "name=adversarial_two   input=gen:adversarial:n=2048,k=16 algo=two_sided iters=10\n"
      "name=adversarial_ks    input=gen:adversarial:n=2048,k=16 algo=karp_sipser\n"
      "name=mesh_jumpstart    input=gen:mesh:nx=96,ny=96     algo=one_sided iters=5 augment=1\n"
      "name=road_two_sided    input=gen:road:n=16384         algo=two_sided iters=10\n"
      "name=powerlaw_kout     input=gen:powerlaw:n=8192,avg=10 algo=k_out k=2 iters=5\n"
      "name=kkt_greedy        input=gen:kkt:m=4096,p=1024,d=4 algo=greedy\n"
      "name=planted_exact     input=gen:planted:n=8192,extra=3 algo=hopcroft_karp\n"
      "name=suite_smoke       input=suite:cage15_like:scale=0.05 algo=two_sided iters=5\n";
  std::istringstream in(kSpec);
  return parse_job_specs(in);
}

} // namespace bmh
