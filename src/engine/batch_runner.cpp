#include "engine/batch_runner.hpp"

#include <algorithm>

#include "util/threading.hpp"

namespace bmh {

namespace {

/// Maps the legacy per-call knobs onto a batch-scoped engine. Two
/// deliberate translations: the worker count is clamped to the batch size
/// (the old runner never spawned idle threads, and a scoped pool has no
/// later batch to serve), and derived-seed single-use graphs are not
/// retained — a cache that dies with this call can never see their
/// per-index keys again, exactly the old batch-owned-cache behaviour. A
/// caller-owned cache outlives the call, so for it they are retained, as
/// before.
EngineConfig scoped_config(const BatchOptions& options, std::size_t jobs) {
  EngineConfig config;
  config.threads = options.workers;
  if (config.threads <= 0) config.threads = num_procs();
  config.threads = std::min<int>(config.threads, static_cast<int>(std::max<std::size_t>(jobs, 1)));
  config.threads_per_job = options.threads_per_job;
  config.seed = options.seed;
  config.graph_cache_mb = options.graph_cache_mb;
  config.graph_store_dir = options.graph_store_dir;
  config.graph_cache = options.graph_cache;
  config.retain_derived_seed_graphs = options.graph_cache != nullptr;
  return config;
}

} // namespace

std::vector<JobResult> run_batch(const std::vector<JobSpec>& jobs,
                                 const BatchOptions& options,
                                 const std::function<void(const JobResult&)>& on_done) {
  if (jobs.empty()) return {};
  Engine engine(scoped_config(options, jobs.size()));
  return engine.run_collect(jobs, on_done);
}

std::size_t run_batch_stream(const std::vector<JobSpec>& jobs,
                             const BatchOptions& options,
                             const std::function<void(const JobResult&)>& sink) {
  if (jobs.empty()) return 0;
  Engine engine(scoped_config(options, jobs.size()));
  return engine.run(jobs, sink);
}

} // namespace bmh
