#include "engine/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "core/workspace.hpp"
#include "engine/graph_cache.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace bmh {

std::uint64_t derive_job_seed(std::uint64_t batch_seed, std::size_t index) noexcept {
  return Rng(batch_seed).fork(static_cast<std::uint64_t>(index)).next();
}

namespace {

JobResult execute_job(const JobSpec& job, std::size_t index,
                      const BatchOptions& options, Workspace& ws, GraphCache* cache,
                      bool cache_is_batch_owned) {
  JobResult out;
  out.index = index;
  out.name = job.name;
  out.input = job.input.spec;
  out.algorithm = job.pipeline.algorithm;
  out.seed = job.seed.value_or(derive_job_seed(options.seed, index));
  try {
    // Cache-served graphs are shared immutable state; `shared` keeps the
    // entry alive across the pipeline however the cache evicts. A job whose
    // instance varies with the per-index derived seed can never re-hit a
    // cache that dies with this batch (indices are unique), so for the
    // batch-owned cache such graphs are built directly — no retention, no
    // shard traffic. A caller-owned cache keeps them: re-running the same
    // batch (same batch seed) against it re-derives the same keys. Results
    // are identical on every path — build_graph is deterministic in
    // (spec, effective seed).
    const bool single_use = cache != nullptr && cache_is_batch_owned &&
                            !job.seed.has_value() &&
                            graph_spec_depends_on_job_seed(job.input);
    std::shared_ptr<const BipartiteGraph> shared;
    std::optional<BipartiteGraph> local;
    const BipartiteGraph* graph;
    if (cache != nullptr && !single_use) {
      shared = cache->get_or_build(job.input, out.seed);
      graph = shared.get();
    } else {
      local.emplace(build_graph(job.input, out.seed));
      graph = &*local;
    }
    out.rows = graph->num_rows();
    out.cols = graph->num_cols();
    out.edges = graph->num_edges();

    PipelineConfig config = job.pipeline;
    config.options.seed = out.seed;
    // The spec's thread budget wins; otherwise the batch-wide per-job one.
    if (config.options.threads <= 0) config.options.threads = options.threads_per_job;
    run_pipeline_ws(*graph, config, ws, out.result);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

/// Shared scaffolding of both entry points: the worker pool, the per-worker
/// arena, the graph cache setup. `on_result(i, std::move(result))` runs on
/// worker threads, unsynchronized — the callers own their ordering.
template <typename OnResult>
void run_jobs(const std::vector<JobSpec>& jobs, const BatchOptions& options,
              OnResult&& on_result) {
  if (jobs.empty()) return;

  GraphCache* cache = options.graph_cache;
  std::unique_ptr<GraphCache> owned;
  if (cache == nullptr && options.graph_cache_mb > 0) {
    GraphCache::Options cache_options;
    cache_options.max_bytes = options.graph_cache_mb << 20;
    cache_options.store_dir = options.graph_store_dir;
    owned = std::make_unique<GraphCache>(cache_options);
    cache = owned.get();
  }
  const bool cache_is_batch_owned = owned != nullptr;

  int workers = options.workers > 0 ? options.workers : num_procs();
  workers = std::min<int>(workers, static_cast<int>(jobs.size()));

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    // Each worker owns one scratch arena, reused across all jobs it
    // executes: after its first job of each shape, the pipeline hot path
    // performs no heap allocations (the arena is warm).
    Workspace ws;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      on_result(i, execute_job(jobs[i], i, options, ws, cache, cache_is_batch_owned));
    }
  };

  if (workers <= 1) {
    worker();
    return;
  }
  // Each std::thread owns its OpenMP nthreads ICV, so the per-job budget
  // set inside execute_job's pipeline never leaks across workers.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

} // namespace

std::vector<JobResult> run_batch(const std::vector<JobSpec>& jobs,
                                 const BatchOptions& options,
                                 const std::function<void(const JobResult&)>& on_done) {
  std::vector<JobResult> results(jobs.size());
  std::mutex done_mutex;
  run_jobs(jobs, options, [&](std::size_t i, JobResult&& result) {
    results[i] = std::move(result);
    if (on_done) {
      std::lock_guard<std::mutex> lock(done_mutex);
      on_done(results[i]);
    }
  });
  return results;
}

std::size_t run_batch_stream(const std::vector<JobSpec>& jobs,
                             const BatchOptions& options,
                             const std::function<void(const JobResult&)>& sink) {
  std::size_t failed = 0;
  std::mutex mutex;
  // Out-of-order finishers park here until every lower index has been
  // emitted; in the steady state the window holds at most ~workers records
  // (each already stripped of per-job timing skew by index order).
  std::map<std::size_t, JobResult> pending;
  std::size_t next_emit = 0;
  run_jobs(jobs, options, [&](std::size_t i, JobResult&& result) {
    std::lock_guard<std::mutex> lock(mutex);
    pending.emplace(i, std::move(result));
    while (!pending.empty() && pending.begin()->first == next_emit) {
      const JobResult& head = pending.begin()->second;
      if (!head.ok) ++failed;
      if (sink) sink(head);
      pending.erase(pending.begin());  // Matching and all — memory stays bounded
      ++next_emit;
    }
  });
  return failed;
}

} // namespace bmh
