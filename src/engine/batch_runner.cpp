#include "engine/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "core/workspace.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace bmh {

std::uint64_t derive_job_seed(std::uint64_t batch_seed, std::size_t index) noexcept {
  return Rng(batch_seed).fork(static_cast<std::uint64_t>(index)).next();
}

namespace {

JobResult execute_job(const JobSpec& job, std::size_t index,
                      const BatchOptions& options, Workspace& ws) {
  JobResult out;
  out.index = index;
  out.name = job.name;
  out.input = job.input.spec;
  out.algorithm = job.pipeline.algorithm;
  out.seed = job.seed.value_or(derive_job_seed(options.seed, index));
  try {
    const BipartiteGraph graph = build_graph(job.input, out.seed);
    out.rows = graph.num_rows();
    out.cols = graph.num_cols();
    out.edges = graph.num_edges();

    PipelineConfig config = job.pipeline;
    config.options.seed = out.seed;
    // The spec's thread budget wins; otherwise the batch-wide per-job one.
    if (config.options.threads <= 0) config.options.threads = options.threads_per_job;
    run_pipeline_ws(graph, config, ws, out.result);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

} // namespace

std::vector<JobResult> run_batch(const std::vector<JobSpec>& jobs,
                                 const BatchOptions& options,
                                 const std::function<void(const JobResult&)>& on_done) {
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  int workers = options.workers > 0 ? options.workers : num_procs();
  workers = std::min<int>(workers, static_cast<int>(jobs.size()));

  std::atomic<std::size_t> next{0};
  std::mutex done_mutex;
  auto worker = [&] {
    // Each worker owns one scratch arena, reused across all jobs it
    // executes: after its first job of each shape, the pipeline hot path
    // performs no heap allocations (the arena is warm).
    Workspace ws;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      results[i] = execute_job(jobs[i], i, options, ws);
      if (on_done) {
        std::lock_guard<std::mutex> lock(done_mutex);
        on_done(results[i]);
      }
    }
  };

  if (workers <= 1) {
    worker();
    return results;
  }
  // Each std::thread owns its OpenMP nthreads ICV, so the per-job budget
  // set inside execute_job's pipeline never leaks across workers.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

} // namespace bmh
