#include "engine/graph_cache.hpp"

#include <algorithm>
#include <functional>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/graph_store.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"
#include "util/thread_annotations.hpp"

namespace bmh {

struct GraphCache::Shard {
  struct Entry {
    std::string key;
    std::shared_ptr<const BipartiteGraph> graph;
    std::size_t bytes = 0;
  };
  using Lru = std::list<Entry>;

  mutable Mutex mutex;
  Lru lru BMH_GUARDED_BY(mutex);  ///< front = most recently used
  /// Keys view the Entry::key strings owned by `lru` (list nodes are
  /// pointer-stable and entries immutable after insert), so lookup from the
  /// thread-local key buffer needs no temporary string.
  std::unordered_map<std::string_view, Lru::iterator> map BMH_GUARDED_BY(mutex);
  /// Drives this shard's own budget check; the cache-level `bytes` gauge
  /// (the observable value) is kept in step under the same lock.
  std::size_t bytes BMH_GUARDED_BY(mutex) = 0;
};

namespace {

int clamp_shard_count(int shards) {
  shards = std::clamp(shards, 1, 256);
  int pow2 = 1;
  while (pow2 < shards) pow2 *= 2;
  return pow2;
}

} // namespace

GraphCache::GraphCache() : GraphCache(Options{}) {}

GraphCache::GraphCache(Options options) {
  const int shards = clamp_shard_count(options.shards);
  shard_mask_ = static_cast<std::size_t>(shards) - 1;
  shard_budget_ = std::max<std::size_t>(1, options.max_bytes / static_cast<std::size_t>(shards));
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) shards_.push_back(std::make_unique<Shard>());
  if (options.store != nullptr) {
    store_ = options.store;
  } else if (!options.store_dir.empty()) {
    owned_store_ = std::make_unique<GraphStore>(options.store_dir);
    store_ = owned_store_.get();
  }
}

GraphCache::~GraphCache() = default;

std::shared_ptr<const BipartiteGraph> GraphCache::get_or_build(const GraphSpec& spec,
                                                               std::uint64_t seed) {
  // Reused per thread so warm lookups render their key without allocating.
  thread_local std::string key;
  const std::uint64_t hash = canonical_graph_key(spec, seed, key);
  // Fibonacci-mix before masking: FNV's low bits correlate for short keys.
  Shard& shard = *shards_[(hash * 0x9e3779b97f4a7c15ull >> 32) & shard_mask_];

  {
    BMH_SPAN("cache_probe");
    LockGuard lock(shard.mutex);
    const auto it = shard.map.find(std::string_view(key));
    if (it != shard.map.end()) {
      hits_.inc();
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->graph;
    }
    misses_.inc();
  }

  // Materialize outside the lock: a slow build (file read, big generator)
  // must not block lookups of other keys in this shard. `key` is safe
  // across these calls because neither path re-enters the cache. The
  // persistent tier is consulted first — an mmap view beats a rebuild —
  // and only a store miss (or a rejected corrupt file) pays for the build.
  std::shared_ptr<const BipartiteGraph> built;
  bool loaded_from_store = false;
  if (store_ != nullptr) {
    built = store_->try_load(key);
    loaded_from_store = built != nullptr;
  }
  if (!loaded_from_store) {
    BMH_SPAN("graph_build");
    built = std::make_shared<const BipartiteGraph>(build_graph(spec, seed));
  }
  const std::size_t bytes = built->memory_bytes();

  // Failure domain: if inserting into the shard fails (injected here; a
  // real allocation failure would surface the same way), the job is served
  // its graph uncached — correctness never depends on residency, the next
  // lookup just rebuilds. Write-through still runs so the persistent tier
  // keeps the build.
  try {
    BMH_FAILPOINT("cache.insert");
  } catch (const std::exception&) {
    insert_failures_.inc();
    if (store_ != nullptr && !loaded_from_store) (void)store_->spill(key, *built);
    return built;
  }

  // Evicted entries leave under the lock but spill after it: store I/O on
  // victims (normally a no-op existence probe — builds write through below)
  // must not serialize the shard.
  std::vector<Shard::Entry> victims;
  {
    LockGuard lock(shard.mutex);
    const auto raced = shard.map.find(std::string_view(key));
    if (raced != shard.map.end()) {
      // Another thread materialized the same key meanwhile; keep the
      // resident copy so later lookups share one graph (both copies are
      // identical by key) and count the wasted double-build.
      race_discards_.inc();
      shard.lru.splice(shard.lru.begin(), shard.lru, raced->second);
      return raced->second->graph;
    }
    if (bytes > shard_budget_) {
      uncacheable_.inc();
    } else {
      // Copy (not move) the key: stealing the thread-local buffer would
      // force the next lookup on this thread to regrow it — the warm path
      // must stay allocation-free from the first call after the cold build.
      shard.lru.push_front(Shard::Entry{key, built, bytes});
      shard.map.emplace(std::string_view(shard.lru.front().key), shard.lru.begin());
      shard.bytes += bytes;
      entries_gauge_.add(1);
      bytes_gauge_.add(static_cast<std::int64_t>(bytes));
      while (shard.bytes > shard_budget_) {
        Shard::Entry& victim = shard.lru.back();  // never the entry just added:
        shard.bytes -= victim.bytes;              // its bytes alone fit the budget
        shard.map.erase(std::string_view(victim.key));
        entries_gauge_.add(-1);
        bytes_gauge_.add(-static_cast<std::int64_t>(victim.bytes));
        victims.push_back(std::move(victim));
        shard.lru.pop_back();
        evictions_.inc();
      }
    }
  }

  if (store_ != nullptr) {
    // Write-through for fresh builds (uncacheable ones included — the next
    // process mmaps them instead of rebuilding); evictions re-spill only if
    // their file vanished, which the store's existence probe makes cheap.
    if (!loaded_from_store) (void)store_->spill(key, *built);
    for (const Shard::Entry& victim : victims)
      (void)store_->spill(victim.key, *victim.graph);
  }
  return built;
}

GraphCache::Stats GraphCache::stats() const {
  // A view over live instruments — no shard locks, no counter folding. The
  // store_* fields read the store's own metric domain (via its stats()
  // view), so the persistent tier's counters have exactly one home.
  Stats total;
  total.hits = hits_.value();
  total.misses = misses_.value();
  total.evictions = evictions_.value();
  total.uncacheable = uncacheable_.value();
  total.race_discards = race_discards_.value();
  total.insert_failures = insert_failures_.value();
  total.entries = static_cast<std::size_t>(std::max<std::int64_t>(0, entries_gauge_.value()));
  total.bytes = static_cast<std::size_t>(std::max<std::int64_t>(0, bytes_gauge_.value()));
  if (store_ != nullptr) {
    const GraphStore::Stats s = store_->stats();
    total.store_hits = s.hits;
    total.store_misses = s.misses;
    total.store_spills = s.spills;
    total.store_errors = s.errors_total();
    total.store_healed = s.healed;
  }
  return total;
}

void GraphCache::clear() {
  for (const auto& shard : shards_) {
    LockGuard lock(shard->mutex);
    entries_gauge_.add(-static_cast<std::int64_t>(shard->lru.size()));
    bytes_gauge_.add(-static_cast<std::int64_t>(shard->bytes));
    shard->map.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

} // namespace bmh
