#pragma once
/// \file registry.hpp
/// \brief The algorithm registry: string names -> MatchingAlgorithm factories.
///
/// The registered names are the library's *stable public identifiers* — job
/// specs, CLI flags, bench tables and JSON results all refer to algorithms
/// by these strings:
///
///   one_sided      OneSidedMatch (Alg. 2, 0.632 guarantee)
///   two_sided      TwoSidedMatch (Alg. 3 + parallel KS of Alg. 4, ~0.866)
///   k_out          k-out generalization (exact solve on the k-out subgraph)
///   karp_sipser    classic sequential Karp-Sipser
///   greedy         random-vertex cheap matching (1/2 guarantee)
///   greedy_edge    random-edge cheap matching (1/2 guarantee)
///   min_degree     static mindegree jump-start (deterministic)
///   hopcroft_karp  exact, O(sqrt(n) tau)
///   mc21           exact, augmenting DFS with lookahead
///   push_relabel   exact, push-relabel transversal
///
/// New algorithms (future backends, distributed variants) plug in through
/// register_algorithm() without touching any call site.
///
/// Undirected matching (JobSpec kind=undirected-match) has its own registry
/// with its own stable names:
///
///   greedy         random-vertex cheap matching (1/2 guarantee)
///   one_out        symmetric scaling + 1-out choices + undirected KS (§5)
///   two_thirds     maximal + length-3 augmentation (2/3 guarantee)

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/algorithm.hpp"
#include "undirected/matching.hpp"

namespace bmh {

/// Builds a MatchingAlgorithm instance bound to the given options.
using AlgorithmFactory =
    std::function<std::unique_ptr<MatchingAlgorithm>(const AlgorithmOptions&)>;

/// Process-wide name -> factory map. Thread-safe; the built-in algorithms
/// above are registered on first access.
class AlgorithmRegistry {
public:
  /// The singleton instance (built-ins pre-registered).
  static AlgorithmRegistry& instance();

  /// Registers a factory under `name`. Throws std::invalid_argument if the
  /// name is empty or already taken.
  void register_algorithm(const std::string& name, AlgorithmFactory factory);

  /// True iff `name` is registered.
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiates the algorithm registered under `name`. Throws
  /// std::invalid_argument naming the unknown algorithm and listing the
  /// registered names (so CLI typos produce an actionable message).
  [[nodiscard]] std::unique_ptr<MatchingAlgorithm> create(
      const std::string& name, const AlgorithmOptions& options = {}) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

private:
  AlgorithmRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Convenience: AlgorithmRegistry::instance().create(name, options).
[[nodiscard]] std::unique_ptr<MatchingAlgorithm> make_algorithm(
    const std::string& name, const AlgorithmOptions& options = {});

/// Convenience: AlgorithmRegistry::instance().names().
[[nodiscard]] std::vector<std::string> registered_algorithm_names();

/// What an undirected run reports back beyond the matching itself.
struct UndirectedRunInfo {
  int scaling_iterations = 0;  ///< symmetric scaling sweeps actually run
  double scaling_error = 0.0;  ///< error after the last sweep
};

/// An undirected matching algorithm: scratch comes from `ws` (warm calls
/// are allocation-free, like the bipartite `_ws` registrations), the result
/// lands in `out` with capacity reused. `scaling_iterations` is the
/// pipeline's budget (0 = skip scaling); algorithms that never scale ignore
/// it and leave `info` at its defaults.
using UndirectedAlgorithmFn = std::function<void(
    const UndirectedGraph& g, int scaling_iterations, const AlgorithmOptions& options,
    Workspace& ws, UndirectedMatching& out, UndirectedRunInfo& info)>;

/// Process-wide name -> undirected algorithm map (JobSpec
/// kind=undirected-match). Thread-safe; built-ins registered on first
/// access. at() hands out shared ownership, so a resolved algorithm's
/// lifetime never depends on registry internals.
class UndirectedAlgorithmRegistry {
public:
  static UndirectedAlgorithmRegistry& instance();

  /// Registers `fn` under `name`. Throws std::invalid_argument if the name
  /// is empty or already taken.
  void register_algorithm(const std::string& name, UndirectedAlgorithmFn fn);

  /// True iff `name` is registered.
  [[nodiscard]] bool contains(const std::string& name) const;

  /// The algorithm registered under `name`, copied out of the registry's
  /// critical section (never null — shared ownership keeps it callable
  /// regardless of what the registry does afterwards). Throws
  /// std::invalid_argument naming the unknown algorithm and listing the
  /// registered names.
  [[nodiscard]] std::shared_ptr<const UndirectedAlgorithmFn> at(
      const std::string& name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

private:
  UndirectedAlgorithmRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Convenience: UndirectedAlgorithmRegistry::instance().names().
[[nodiscard]] std::vector<std::string> registered_undirected_algorithm_names();

} // namespace bmh
