#include "engine/registry.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/k_out.hpp"
#include "core/one_sided.hpp"
#include "core/two_sided.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/karp_sipser.hpp"
#include "matching/mc21.hpp"
#include "matching/push_relabel.hpp"
#include "util/thread_annotations.hpp"

namespace bmh {

namespace {

/// Shared adapter: wraps a workspace-aware callable as a MatchingAlgorithm.
/// The thread budget (AlgorithmOptions::threads) is owned by the pipeline,
/// which guards every stage — run()/run_ws() use the ambient OpenMP count.
/// The callable receives the options at *run* time, so one warm instance
/// serves a whole batch whose seeds differ per job (rebindable() is true);
/// run() is derived from the `_ws` form over the calling thread's default
/// workspace, so every entry point shares one registration per algorithm.
class LambdaAlgorithm final : public MatchingAlgorithm {
public:
  using RunWsFn =
      std::function<void(const BipartiteGraph&, const ScalingResult&,
                         const AlgorithmOptions&, Workspace&, Matching&)>;

  LambdaAlgorithm(std::string name, bool uses_scaling, bool exact,
                  AlgorithmOptions options, RunWsFn run)
      : name_(std::move(name)),
        uses_scaling_(uses_scaling),
        exact_(exact),
        options_(options),
        run_(std::move(run)) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] bool uses_scaling() const noexcept override { return uses_scaling_; }
  [[nodiscard]] bool is_exact() const noexcept override { return exact_; }
  [[nodiscard]] bool rebindable() const noexcept override { return true; }

  [[nodiscard]] Matching run(const BipartiteGraph& g,
                             const ScalingResult& scaling) const override {
    Matching out;
    run_(g, scaling, options_, Workspace::for_this_thread(), out);
    return out;
  }

  void run_ws(const BipartiteGraph& g, const ScalingResult& scaling, Workspace& ws,
              Matching& out) const override {
    run_(g, scaling, options_, ws, out);
  }

  void run_ws(const BipartiteGraph& g, const ScalingResult& scaling,
              const AlgorithmOptions& options, Workspace& ws,
              Matching& out) const override {
    run_(g, scaling, options, ws, out);
  }

private:
  std::string name_;
  bool uses_scaling_;
  bool exact_;
  AlgorithmOptions options_;
  RunWsFn run_;
};

AlgorithmFactory wrap(std::string name, bool uses_scaling, bool exact,
                      LambdaAlgorithm::RunWsFn run) {
  return [name = std::move(name), uses_scaling, exact,
          run = std::move(run)](const AlgorithmOptions& opts) {
    return std::make_unique<LambdaAlgorithm>(name, uses_scaling, exact, opts, run);
  };
}

} // namespace

struct AlgorithmRegistry::Impl {
  mutable Mutex mutex;
  std::map<std::string, AlgorithmFactory> factories BMH_GUARDED_BY(mutex);
};

AlgorithmRegistry::AlgorithmRegistry() : impl_(std::make_shared<Impl>()) {
  const auto add = [this](const std::string& name, bool uses_scaling, bool exact,
                          LambdaAlgorithm::RunWsFn run) {
    register_algorithm(name, wrap(name, uses_scaling, exact, std::move(run)));
  };

  // The paper's heuristics: sample from the scaled densities.
  add("one_sided", true, false,
      [](const BipartiteGraph& g, const ScalingResult& s, const AlgorithmOptions& o,
         Workspace& ws, Matching& out) {
        one_sided_from_scaling_ws(g, s, o.seed, ws, out);
      });
  add("two_sided", true, false,
      [](const BipartiteGraph& g, const ScalingResult& s, const AlgorithmOptions& o,
         Workspace& ws, Matching& out) {
        two_sided_from_scaling_ws(g, s, o.seed, nullptr, ws, out);
      });
  add("k_out", true, false,
      [](const BipartiteGraph& g, const ScalingResult& s, const AlgorithmOptions& o,
         Workspace& ws, Matching& out) {
        // Pooled subgraph: CSR assembly reuses workspace capacity, keeping
        // warm k_out jobs allocation-free like every other registration.
        BipartiteGraph& sub = ws.obj<BipartiteGraph>("kout.subgraph");
        k_out_subgraph_ws(g, s, o.k, o.seed, ws, sub);
        hopcroft_karp_ws(sub, ws, out);
      });

  // Cheap baselines (§2.1).
  add("karp_sipser", false, false,
      [](const BipartiteGraph& g, const ScalingResult&, const AlgorithmOptions& o,
         Workspace& ws, Matching& out) { karp_sipser_ws(g, o.seed, nullptr, ws, out); });
  add("greedy", false, false,
      [](const BipartiteGraph& g, const ScalingResult&, const AlgorithmOptions& o,
         Workspace& ws, Matching& out) { match_random_vertices_ws(g, o.seed, ws, out); });
  add("greedy_edge", false, false,
      [](const BipartiteGraph& g, const ScalingResult&, const AlgorithmOptions& o,
         Workspace& ws, Matching& out) { match_random_edges_ws(g, o.seed, ws, out); });
  add("min_degree", false, false,
      [](const BipartiteGraph& g, const ScalingResult&, const AlgorithmOptions&,
         Workspace& ws, Matching& out) { match_min_degree_ws(g, ws, out); });

  // Exact backends.
  add("hopcroft_karp", false, true,
      [](const BipartiteGraph& g, const ScalingResult&, const AlgorithmOptions&,
         Workspace& ws, Matching& out) { hopcroft_karp_ws(g, ws, out); });
  add("mc21", false, true,
      [](const BipartiteGraph& g, const ScalingResult&, const AlgorithmOptions&,
         Workspace& ws, Matching& out) { mc21_ws(g, ws, out); });
  add("push_relabel", false, true,
      [](const BipartiteGraph& g, const ScalingResult&, const AlgorithmOptions&,
         Workspace& ws, Matching& out) { push_relabel_ws(g, ws, out); });
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry registry;
  return registry;
}

void AlgorithmRegistry::register_algorithm(const std::string& name,
                                           AlgorithmFactory factory) {
  if (name.empty())
    throw std::invalid_argument("register_algorithm: empty algorithm name");
  if (!factory)
    throw std::invalid_argument("register_algorithm: null factory for '" + name + "'");
  LockGuard lock(impl_->mutex);
  if (!impl_->factories.emplace(name, std::move(factory)).second)
    throw std::invalid_argument("register_algorithm: '" + name +
                                "' is already registered");
}

bool AlgorithmRegistry::contains(const std::string& name) const {
  LockGuard lock(impl_->mutex);
  return impl_->factories.count(name) != 0;
}

std::unique_ptr<MatchingAlgorithm> AlgorithmRegistry::create(
    const std::string& name, const AlgorithmOptions& options) const {
  AlgorithmFactory factory;
  {
    LockGuard lock(impl_->mutex);
    const auto it = impl_->factories.find(name);
    if (it != impl_->factories.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream os;
    os << "unknown algorithm '" << name << "'; registered:";
    for (const auto& known : names()) os << ' ' << known;
    throw std::invalid_argument(os.str());
  }
  return factory(options);
}

std::vector<std::string> AlgorithmRegistry::names() const {
  LockGuard lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::unique_ptr<MatchingAlgorithm> make_algorithm(const std::string& name,
                                                  const AlgorithmOptions& options) {
  return AlgorithmRegistry::instance().create(name, options);
}

std::vector<std::string> registered_algorithm_names() {
  return AlgorithmRegistry::instance().names();
}

struct UndirectedAlgorithmRegistry::Impl {
  mutable Mutex mutex;
  // Values are shared_ptr so at() can copy ownership out under the lock —
  // returning a reference into the guarded map would escape the critical
  // section (-Wthread-safety-reference) and tie caller lifetime to a
  // never-erase invariant the type system can't see.
  std::map<std::string, std::shared_ptr<const UndirectedAlgorithmFn>>
      algorithms BMH_GUARDED_BY(mutex);
};

UndirectedAlgorithmRegistry::UndirectedAlgorithmRegistry()
    : impl_(std::make_shared<Impl>()) {
  register_algorithm(
      "one_out", [](const UndirectedGraph& g, int scaling_iterations,
                    const AlgorithmOptions& o, Workspace& ws, UndirectedMatching& out,
                    UndirectedRunInfo& info) {
        // Inline undirected_one_out_match_ws so the scaling diagnostics can
        // be reported instead of discarded.
        auto& s = ws.obj<SymmetricScaling>("und.scaling");
        if (scaling_iterations > 0) {
          scale_symmetric_ws(g, scaling_iterations, ws, s);
        } else {
          s.d.assign(static_cast<std::size_t>(g.num_vertices()), 1.0);
          s.iterations = 0;
          s.error = 0.0;
        }
        info.scaling_iterations = s.iterations;
        info.scaling_error = s.error;
        const std::vector<vid_t>& choice = sample_choices_ws(g, s.d, o.seed, ws);
        one_out_karp_sipser_ws(g.num_vertices(), choice, ws, out);
      });
  register_algorithm("greedy",
                     [](const UndirectedGraph& g, int, const AlgorithmOptions& o,
                        Workspace& ws, UndirectedMatching& out, UndirectedRunInfo&) {
                       undirected_greedy_ws(g, o.seed, ws, out);
                     });
  register_algorithm("two_thirds",
                     [](const UndirectedGraph& g, int, const AlgorithmOptions& o,
                        Workspace& ws, UndirectedMatching& out, UndirectedRunInfo&) {
                       undirected_two_thirds_ws(g, o.seed, ws, out);
                     });
}

UndirectedAlgorithmRegistry& UndirectedAlgorithmRegistry::instance() {
  static UndirectedAlgorithmRegistry registry;
  return registry;
}

void UndirectedAlgorithmRegistry::register_algorithm(const std::string& name,
                                                     UndirectedAlgorithmFn fn) {
  if (name.empty())
    throw std::invalid_argument("register_algorithm: empty algorithm name");
  if (!fn)
    throw std::invalid_argument("register_algorithm: null algorithm for '" + name +
                                "'");
  auto shared = std::make_shared<const UndirectedAlgorithmFn>(std::move(fn));
  LockGuard lock(impl_->mutex);
  if (!impl_->algorithms.emplace(name, std::move(shared)).second)
    throw std::invalid_argument("register_algorithm: '" + name +
                                "' is already registered");
}

bool UndirectedAlgorithmRegistry::contains(const std::string& name) const {
  LockGuard lock(impl_->mutex);
  return impl_->algorithms.count(name) != 0;
}

std::shared_ptr<const UndirectedAlgorithmFn> UndirectedAlgorithmRegistry::at(
    const std::string& name) const {
  {
    LockGuard lock(impl_->mutex);
    const auto it = impl_->algorithms.find(name);
    if (it != impl_->algorithms.end()) return it->second;  // ownership copy
  }
  std::ostringstream os;
  os << "unknown undirected algorithm '" << name << "'; registered:";
  for (const auto& known : names()) os << ' ' << known;
  throw std::invalid_argument(os.str());
}

std::vector<std::string> UndirectedAlgorithmRegistry::names() const {
  LockGuard lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->algorithms.size());
  for (const auto& [name, fn] : impl_->algorithms) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::vector<std::string> registered_undirected_algorithm_names() {
  return UndirectedAlgorithmRegistry::instance().names();
}

} // namespace bmh
