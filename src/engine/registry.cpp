#include "engine/registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/k_out.hpp"
#include "core/one_sided.hpp"
#include "core/two_sided.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/karp_sipser.hpp"
#include "matching/mc21.hpp"
#include "matching/push_relabel.hpp"

namespace bmh {

namespace {

/// Shared adapter: wraps a plain callable as a MatchingAlgorithm. The
/// thread budget (AlgorithmOptions::threads) is owned by the pipeline,
/// which guards every stage — run() itself uses the ambient OpenMP count.
class LambdaAlgorithm final : public MatchingAlgorithm {
public:
  using RunFn = std::function<Matching(const BipartiteGraph&, const ScalingResult&)>;

  LambdaAlgorithm(std::string name, bool uses_scaling, bool exact, RunFn run)
      : name_(std::move(name)),
        uses_scaling_(uses_scaling),
        exact_(exact),
        run_(std::move(run)) {}

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] bool uses_scaling() const noexcept override { return uses_scaling_; }
  [[nodiscard]] bool is_exact() const noexcept override { return exact_; }

  [[nodiscard]] Matching run(const BipartiteGraph& g,
                             const ScalingResult& scaling) const override {
    return run_(g, scaling);
  }

private:
  std::string name_;
  bool uses_scaling_;
  bool exact_;
  RunFn run_;
};

AlgorithmFactory wrap(std::string name, bool uses_scaling, bool exact,
                      std::function<LambdaAlgorithm::RunFn(const AlgorithmOptions&)> bind) {
  return [name = std::move(name), uses_scaling, exact,
          bind = std::move(bind)](const AlgorithmOptions& opts) {
    return std::make_unique<LambdaAlgorithm>(name, uses_scaling, exact, bind(opts));
  };
}

} // namespace

struct AlgorithmRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, AlgorithmFactory> factories;
};

AlgorithmRegistry::AlgorithmRegistry() : impl_(std::make_shared<Impl>()) {
  const auto add = [this](const std::string& name, bool uses_scaling, bool exact,
                          std::function<LambdaAlgorithm::RunFn(const AlgorithmOptions&)>
                              bind) {
    register_algorithm(name, wrap(name, uses_scaling, exact, std::move(bind)));
  };

  // The paper's heuristics: sample from the scaled densities.
  add("one_sided", true, false, [](const AlgorithmOptions& o) {
    return [seed = o.seed](const BipartiteGraph& g, const ScalingResult& s) {
      return one_sided_from_scaling(g, s, seed);
    };
  });
  add("two_sided", true, false, [](const AlgorithmOptions& o) {
    return [seed = o.seed](const BipartiteGraph& g, const ScalingResult& s) {
      return two_sided_from_scaling(g, s, seed);
    };
  });
  add("k_out", true, false, [](const AlgorithmOptions& o) {
    return [seed = o.seed, k = o.k](const BipartiteGraph& g, const ScalingResult& s) {
      return hopcroft_karp(k_out_subgraph(g, s, k, seed));
    };
  });

  // Cheap baselines (§2.1).
  add("karp_sipser", false, false, [](const AlgorithmOptions& o) {
    return [seed = o.seed](const BipartiteGraph& g, const ScalingResult&) {
      return karp_sipser(g, seed);
    };
  });
  add("greedy", false, false, [](const AlgorithmOptions& o) {
    return [seed = o.seed](const BipartiteGraph& g, const ScalingResult&) {
      return match_random_vertices(g, seed);
    };
  });
  add("greedy_edge", false, false, [](const AlgorithmOptions& o) {
    return [seed = o.seed](const BipartiteGraph& g, const ScalingResult&) {
      return match_random_edges(g, seed);
    };
  });
  add("min_degree", false, false, [](const AlgorithmOptions&) {
    return [](const BipartiteGraph& g, const ScalingResult&) {
      return match_min_degree(g);
    };
  });

  // Exact backends.
  add("hopcroft_karp", false, true, [](const AlgorithmOptions&) {
    return [](const BipartiteGraph& g, const ScalingResult&) {
      return hopcroft_karp(g);
    };
  });
  add("mc21", false, true, [](const AlgorithmOptions&) {
    return [](const BipartiteGraph& g, const ScalingResult&) { return mc21(g); };
  });
  add("push_relabel", false, true, [](const AlgorithmOptions&) {
    return [](const BipartiteGraph& g, const ScalingResult&) {
      return push_relabel(g);
    };
  });
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry registry;
  return registry;
}

void AlgorithmRegistry::register_algorithm(const std::string& name,
                                           AlgorithmFactory factory) {
  if (name.empty())
    throw std::invalid_argument("register_algorithm: empty algorithm name");
  if (!factory)
    throw std::invalid_argument("register_algorithm: null factory for '" + name + "'");
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->factories.emplace(name, std::move(factory)).second)
    throw std::invalid_argument("register_algorithm: '" + name +
                                "' is already registered");
}

bool AlgorithmRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->factories.count(name) != 0;
}

std::unique_ptr<MatchingAlgorithm> AlgorithmRegistry::create(
    const std::string& name, const AlgorithmOptions& options) const {
  AlgorithmFactory factory;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->factories.find(name);
    if (it != impl_->factories.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream os;
    os << "unknown algorithm '" << name << "'; registered:";
    for (const auto& known : names()) os << ' ' << known;
    throw std::invalid_argument(os.str());
  }
  return factory(options);
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::unique_ptr<MatchingAlgorithm> make_algorithm(const std::string& name,
                                                  const AlgorithmOptions& options) {
  return AlgorithmRegistry::instance().create(name, options);
}

std::vector<std::string> registered_algorithm_names() {
  return AlgorithmRegistry::instance().names();
}

} // namespace bmh
