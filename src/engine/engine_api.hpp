#pragma once
/// \file engine_api.hpp
/// \brief bmh::Engine — the long-lived serving façade over the matching
/// engine's pool, cache, and store.
///
/// PRs 1–4 grew the serving layer one subsystem at a time, and its public
/// surface accreted the same way: `run_batch` / `run_batch_stream` free
/// functions re-plumbed a worker pool, per-worker Workspace arenas, a
/// sharded GraphCache and an optional GraphStore tier on *every call*, with
/// a widening `BatchOptions` grab-bag to carry the knobs. A production
/// server does the opposite: it constructs the expensive state once and
/// keeps it warm across requests. `Engine` is that object:
///
///   bmh::EngineConfig config;
///   config.threads = 0;                      // auto: one per processor
///   config.graph_store_dir = "/var/cache/bmh";
///   bmh::Engine engine(config);              // pool + arenas + cache + store
///
///   auto future = engine.submit(job);        // single job -> std::future
///   engine.run(jobs, sink);                  // batch, index-ordered stream
///   auto results = engine.run_collect(jobs); // batch, collected vector
///
/// Consecutive batches and interleaved submits reuse the same worker
/// threads, the same per-worker scratch arenas (warm after the first job of
/// each shape: zero heap allocations on the pipeline hot path), and the
/// same graph cache — a second identical batch performs zero cold graph
/// builds (`Stats::cold_builds`), serving every instance from memory or the
/// persistent store.
///
/// Determinism contract (unchanged from the free functions): the job at
/// batch index i — or the i-th `submit` since construction — runs with
/// `derive_job_seed(config.seed, i)` unless its spec pins a seed, and
/// batch emission is index-ordered, so output is byte-identical for any
/// `threads` value and identical to the legacy `run_batch` /
/// `run_batch_stream` paths (which are now thin shims over a scoped
/// Engine).
///
/// Threading: every method is safe to call from multiple threads. Batches
/// and submits are executed FIFO by one shared pool; `run`/`run_collect`
/// block the caller until their batch completes (never call them from a
/// sink or a worker callback — the pool cannot finish a batch that is
/// waiting on itself). The destructor finishes all accepted work first, so
/// a pending `submit` future never ends up with a broken promise.
///
/// Submission path (PR 9): jobs enter through a bounded lock-free MPSC
/// ring (util/mpsc_ring.hpp) of `submit_queue_depth` single-job slots —
/// a warm single-job `submit` performs no heap allocation and, with
/// workers awake, never touches a mutex (the engine's condition variable
/// survives only for worker sleep/wake, armed by an atomic sleeper
/// count). The ring is backpressure by construction: when every slot is
/// in use, blocking `submit` waits for capacity and `try_submit` returns
/// false immediately. Size it with EngineConfig::submit_queue_depth and
/// read the resolved value back from submit_capacity().

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/graph_cache.hpp"
#include "engine/job.hpp"
#include "engine/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/mpsc_ring.hpp"
#include "util/thread_annotations.hpp"

namespace bmh {

class GraphStore;

/// Everything an Engine owns, fixed at construction. Subsumes the legacy
/// `BatchOptions`: what used to be per-call wiring is now the session state
/// of one long-lived object (see the migration table in README.md).
struct EngineConfig {
  /// Worker threads in the pool (the number of jobs in flight). 0
  /// auto-detects one per processor; the resolved value is reported by
  /// Engine::threads().
  int threads = 1;
  /// OpenMP budget inside each job's pipeline stages; 0 = ambient. A
  /// `threads=` in the job spec wins over this default.
  int threads_per_job = 1;
  /// Base seed: job index i runs with derive_job_seed(seed, i) unless its
  /// spec pins one.
  std::uint64_t seed = 1;
  /// Byte budget (MiB) of the engine's graph cache; 0 disables caching
  /// (every job rebuilds its graph — bit-identical results either way).
  std::size_t graph_cache_mb = 256;
  /// Non-empty: persistent tier directory (see graph_store.hpp). Built
  /// graphs spill there; later batches and restarted processes mmap-load
  /// them instead of rebuilding. Requires graph_cache_mb > 0; ignored when
  /// `graph_cache` is set (configure that cache's own store instead).
  std::string graph_store_dir;
  /// Byte budget (MiB) over the store directory; 0 = unbounded. When a
  /// spill pushes the directory past the budget, least-recently-used files
  /// (by mtime — loads touch their file) are pruned until it fits.
  std::size_t store_budget_mb = 0;
  /// fsync every spilled file (and its directory entry) before it becomes
  /// visible: survives unclean shutdown at the cost of slower spills.
  bool store_fsync = false;
  /// Caller-owned cache shared across engines (must outlive the engine);
  /// overrides graph_cache_mb / graph_store_dir.
  GraphCache* graph_cache = nullptr;
  /// Capacity of the single-job submission ring: the number of submitted
  /// jobs that may be queued (not yet claimed by a worker) at once. Rounded
  /// up to a power of two; 0 auto-sizes to max(1024, 4 * threads). When the
  /// ring is full, blocking `submit` waits for a worker to free a slot and
  /// `try_submit` fails fast — this is the engine's backpressure boundary,
  /// and servers should derive their in-flight window from it (see
  /// Engine::submit_capacity and bmh_engine --serve). Batch `run` /
  /// `run_collect` calls are not bounded by it (a batch occupies a handful
  /// of ring descriptors regardless of its job count).
  std::size_t submit_queue_depth = 0;
  /// Whether graphs whose instance varies with the per-index derived seed
  /// are retained in the cache. A long-lived engine keeps them (default):
  /// re-running the same batch re-derives the same keys, so a warm second
  /// batch is pure hits even for unpinned randomized specs. The legacy
  /// shims' batch-scoped engines set this false — a cache that dies with
  /// its batch can never re-hit per-index keys, so retaining them only
  /// causes eviction churn. Results are identical either way.
  bool retain_derived_seed_graphs = true;
};

/// Failure taxonomy of a job record: which failure domain produced an
/// ok=false result. Every failing record carries one (kNone only on
/// never-executed default-constructed results); the JSON line emits it as
/// `error_kind` and the worker domains count a `jobs_failed_<kind>` slice
/// per value, so dashboards separate "the disk is dying" (store_io) from
/// "clients send garbage" (parse) at a glance.
enum class ErrorKind : std::uint8_t {
  kNone = 0,   ///< not a failure (or predates execution)
  kParse,      ///< the job spec line / graph spec never parsed
  kSourceIo,   ///< reading the source's backing input failed (transient)
  kStoreIo,    ///< the cache/store tier failed outside its own fallbacks
  kBuild,      ///< materializing the graph failed (generator, memory)
  kExec,       ///< a pipeline stage failed
  kTimeout,    ///< the job overran its timeout_ms= budget
};

/// Canonical token for a kind ("parse", "source_io", ...; "" for kNone) —
/// what the JSON record carries.
[[nodiscard]] const char* to_string(ErrorKind kind) noexcept;

/// The per-job record the engine emits (one JSON line each, see json.hpp).
struct JobResult {
  std::size_t index = 0;    ///< position in the batch (results are index-ordered)
  std::string name;
  std::string input;        ///< the graph spec string
  JobKind kind = JobKind::kMatch;  ///< workload the job ran
  std::string algorithm;    ///< registry name / analysis type the pipeline ran
  std::uint64_t seed = 0;   ///< effective seed the job used
  vid_t rows = 0;
  vid_t cols = 0;
  eid_t edges = 0;
  bool ok = false;          ///< false: `error` describes the failure
  std::string error;
  ErrorKind error_kind = ErrorKind::kNone;  ///< failure domain when !ok
  PipelineResult result;    ///< valid only when ok
};

/// A ready-made ok=false record for an input line that never became a job
/// (spec-line parse failure): error_kind=parse, `message` in `error`. The
/// CLI serve loop emits these so hostile input yields exactly one
/// well-formed record per line, never a crash and never silence.
[[nodiscard]] JobResult parse_error_result(std::size_t index, std::string name,
                                           std::string input, std::string message);

/// The deterministic seed job `index` runs with when its spec pins none.
[[nodiscard]] std::uint64_t derive_job_seed(std::uint64_t batch_seed,
                                            std::size_t index) noexcept;

class Engine {
public:
  /// Session counters, cumulative since construction. `cold_builds` is the
  /// number of graph materializations that ran their generator / read their
  /// file — as opposed to being served from the memory cache or mmap-loaded
  /// from the store — so a warm engine re-running a batch it has seen
  /// reports a cold_builds delta of zero. (Failed materializations — bad
  /// spec, unreadable file — count as attempts; with a shared external
  /// cache the cache-attributed share is cache-wide, not per-engine.)
  /// `cache` aggregates the graph cache's own counters (all zero when
  /// caching is disabled).
  ///
  /// Consistency model (this is a view over metrics(), see there): the
  /// worker totals are atomic per worker — a snapshot never observes half a
  /// job, e.g. jobs_run counted but its failure not — and monotone but
  /// skewed across workers and the cache/store domains by at most the jobs
  /// in flight while the snapshot was taken.
  struct Stats {
    std::uint64_t jobs_run = 0;     ///< results delivered (ok or not)
    std::uint64_t jobs_failed = 0;  ///< ok=false results among them
    std::uint64_t cold_builds = 0;  ///< graphs built from spec, not served
    GraphCache::Stats cache;
  };

  /// Starts the worker pool (config.threads, 0 = one per processor) and
  /// builds the cache/store tiers. Throws std::runtime_error if the store
  /// directory cannot be created.
  explicit Engine(EngineConfig config = {});

  /// Finishes every accepted job (pending submits included), then joins the
  /// pool and releases the engine-owned cache and store.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The resolved pool size (config.threads, with 0 auto-detected).
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// The configuration the engine runs with, `threads` resolved.
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  /// Enqueues one job; the future is fulfilled with its JobResult (a failing
  /// job fulfils with ok=false, it never throws through the future). The
  /// job's derivation index — JobResult::index, and the seed when the spec
  /// pins none — is the number of prior submits, so a fixed submission
  /// order reproduces byte-identical results for any pool size.
  [[nodiscard]] std::future<JobResult> submit(JobSpec job);

  /// Callback form for servers: `done` is invoked once, from a worker
  /// thread, as soon as the job completes (completion order across
  /// submits — serialize output yourself, e.g. bmh_engine --serve).
  /// `index`, when given, overrides the automatic submission counter as the
  /// job's derivation index (JobResult::index and the derived seed) — the
  /// replay form: a server feeding jobs from a numbered stream can keep its
  /// own numbering even when some stream entries never become jobs.
  /// Explicit-index submits do not advance the automatic counter.
  void submit(JobSpec job, std::function<void(JobResult&&)> done,
              std::optional<std::size_t> index = std::nullopt);

  /// Non-blocking sibling of the callback `submit`: accepts the job only if
  /// a submission slot is free right now, otherwise returns false with both
  /// arguments left intact (the caller keeps its job and callback and can
  /// retry, shed load, or push back on its own client). On false the
  /// automatic derivation counter has not advanced — a later successful
  /// submit gets the index this one would have. This is the open-loop
  /// server path: never blocks on queue capacity (a momentary descriptor
  /// collision with a concurrent batch enqueue may spin briefly, bounded by
  /// the pool draining).
  [[nodiscard]] bool try_submit(JobSpec&& job,
                                std::function<void(JobResult&&)>&& done,
                                std::optional<std::size_t> index = std::nullopt);

  /// The resolved submission-ring capacity (EngineConfig::submit_queue_depth
  /// after auto-sizing and power-of-two rounding): the maximum number of
  /// single-job submits that can be queued unclaimed before blocking
  /// `submit` waits and `try_submit` fails.
  [[nodiscard]] std::size_t submit_capacity() const noexcept {
    return free_slots_.capacity();
  }

  /// Runs a batch: `sink` receives every JobResult exactly once, in batch
  /// index order, from worker threads (serialized internally); each record
  /// is dropped as soon as the callback returns, so memory stays bounded by
  /// the pool's out-of-order window. Blocks until the batch completes;
  /// returns the number of failed (ok=false) jobs.
  std::size_t run(const std::vector<JobSpec>& jobs,
                  const std::function<void(const JobResult&)>& sink);

  /// Runs a batch and collects the results in index order. `on_done`, when
  /// set, is invoked once per finished job from worker threads in
  /// completion order (serialized by an internal mutex).
  [[nodiscard]] std::vector<JobResult> run_collect(
      const std::vector<JobSpec>& jobs,
      const std::function<void(const JobResult&)>& on_done = {});

  [[nodiscard]] Stats stats() const;

  /// Full metrics snapshot: one domain per worker ("worker", instances
  /// 0..threads-1) plus the graph cache's and store's domains when
  /// configured. Each worker domain is read atomically with respect to that
  /// worker's per-job update bursts (a seqlock brackets them), so per-worker
  /// invariants — jobs_failed <= jobs_run, latency counts == jobs_run —
  /// hold in every snapshot; across domains the values are monotone but may
  /// be skewed by the jobs in flight while the snapshot walked them.
  /// Slice counters (the per-kind jobs_run_* and per-ErrorKind
  /// jobs_failed_* breakdowns, io_retries, direct_builds) are batched in
  /// worker-local accumulators and flushed at the end of each drain run
  /// (and at least every 64 jobs), so under load their sums may briefly
  /// trail jobs_run / jobs_failed; they catch up whenever a worker runs out
  /// of immediately-available work, and are exact after any blocking call
  /// (run, run_collect, a submit future's get) returns.
  /// Feed the result to obs::prometheus_text / obs::json_lines_text
  /// (obs/export.hpp), or aggregate with Snapshot::aggregated().
  [[nodiscard]] obs::Snapshot metrics() const;

  /// The resident trace events of every worker journal, merged and ordered
  /// by start time. Each worker keeps a bounded ring (the newest ~4096
  /// spans: pipeline stages, graph acquisition, cache/store phases,
  /// queue-wait); older events have wrapped away. Safe to call while jobs
  /// run — events being overwritten mid-read are skipped, never torn.
  [[nodiscard]] std::vector<obs::TraceEvent> trace_events() const;

  /// The graph cache (engine-owned or the configured external one), or
  /// nullptr when caching is disabled.
  [[nodiscard]] GraphCache* cache() const noexcept { return cache_; }

  /// The persistent store tier, or nullptr when none is configured.
  [[nodiscard]] GraphStore* store() const noexcept;

private:
  struct Batch;
  struct WorkerObs;
  struct WorkerSlices;

  /// One unit of work in the submission ring: either a whole batch (shared
  /// ownership — stale fan-out descriptors may outlive the batch's last
  /// job) or one single-job submission slot, identified by index.
  struct WorkItem {
    std::shared_ptr<Batch> batch;  ///< non-null: drain this batch
    std::uint32_t slot = 0;        ///< else: slots_[slot] holds the job
  };

  /// Storage for one in-flight single-job submit. Producers move the job
  /// and callback in (move-assignment reuses the strings' and callback's
  /// existing buffers — a warm submit allocates nothing), publish the slot
  /// index through the ring, and workers move the content back out and
  /// recycle the index through free_slots_ before executing.
  struct SubmitSlot {
    JobSpec job;
    std::function<void(JobResult&&)> done;
    std::size_t index = 0;         ///< derivation index (see submit)
    std::uint64_t enqueue_ns = 0;  ///< obs::now_ns() at acceptance
  };

  [[nodiscard]] static EngineConfig resolve(EngineConfig config);
  void enqueue(std::shared_ptr<Batch> batch);
  static WorkerObs resolve_worker_obs(obs::MetricDomain& domain);
  void wake_one() noexcept;
  std::uint32_t acquire_slot_blocking();
  void publish_slot(std::uint32_t slot, JobSpec&& job,
                    std::function<void(JobResult&&)>&& done,
                    std::optional<std::size_t> index);
  void worker_loop(int worker);
  void drain_batch(const std::shared_ptr<Batch>& batch, Workspace& ws,
                   WorkerObs& wo, WorkerSlices& slices);
  void run_single(std::uint32_t slot, Workspace& ws, WorkerObs& wo,
                  WorkerSlices& slices);
  JobResult execute(const JobSpec& job, std::size_t index, Workspace& ws,
                    WorkerObs& wo);

  EngineConfig config_;
  int threads_ = 1;
  std::unique_ptr<GraphStore> owned_store_;
  std::unique_ptr<GraphCache> owned_cache_;
  GraphCache* cache_ = nullptr;

  /// The work queue: single-job slot descriptors and batch fan-out
  /// descriptors, in acceptance order. Sized 2x the slot count so batch
  /// descriptors (at most `threads_` per batch) don't eat submission
  /// capacity.
  MpscRing<WorkItem> ring_;
  /// Recycled single-job slot indices (starts full: 0..capacity-1). Its
  /// capacity is the engine's submission capacity; producers on both ends
  /// (submitters pop, workers push back).
  MpscRing<std::uint32_t> free_slots_;
  std::vector<SubmitSlot> slots_;

  /// Sleep/wake only — never on the submit fast path. A producer takes
  /// wake_mutex_ solely when sleepers_ says someone is actually parked
  /// (see wake_one); workers register in sleepers_ before re-checking the
  /// ring, Dekker-style, so a wakeup is never lost. The mutex guards no
  /// data — it exists to order the sleepers_ registration against the
  /// producer's notify. condition_variable_any (not condition_variable):
  /// the annotated bmh::Mutex is not a std::mutex, and _any waits on any
  /// BasicLockable; its internal mutex preserves the no-lost-wakeup
  /// ordering (wait locks it before releasing ours, notify takes it too).
  Mutex wake_mutex_;
  std::condition_variable_any work_cv_;
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stopping_{false};
  /// Submit calls currently executing (between entry and their ring
  /// publish). The destructor's drain spins while this is non-zero so a
  /// producer that claimed a ring position but hasn't published — invisible
  /// to try_pop — is always waited for, never abandoned.
  std::atomic<std::uint64_t> pending_submits_{0};
  std::atomic<std::uint64_t> submit_seq_{0};  ///< next auto derivation index

  /// One metric domain + trace journal per worker (created before the
  /// threads start, so the vectors are immutable while the pool runs);
  /// the cache's and store's domains are attached alongside.
  obs::Registry registry_;
  std::vector<obs::MetricDomain*> worker_domains_;
  std::vector<std::unique_ptr<obs::TraceJournal>> journals_;

  std::vector<std::thread> workers_;
};

} // namespace bmh
