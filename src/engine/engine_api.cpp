#include "engine/engine_api.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>

#include "core/workspace.hpp"
#include "engine/graph_store.hpp"
#include "graph/serialize.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace bmh {

std::uint64_t derive_job_seed(std::uint64_t batch_seed, std::size_t index) noexcept {
  return Rng(batch_seed).fork(static_cast<std::uint64_t>(index)).next();
}

const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kNone: return "";
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kSourceIo: return "source_io";
    case ErrorKind::kStoreIo: return "store_io";
    case ErrorKind::kBuild: return "build";
    case ErrorKind::kExec: return "exec";
    case ErrorKind::kTimeout: return "timeout";
  }
  return "";
}

JobResult parse_error_result(std::size_t index, std::string name, std::string input,
                             std::string message) {
  JobResult out;
  out.index = index;
  out.name = std::move(name);
  out.input = std::move(input);
  out.ok = false;
  out.error = std::move(message);
  out.error_kind = ErrorKind::kParse;
  return out;
}

namespace {

/// Total tries at acquiring a graph whose failure looked transient: the
/// original attempt plus one retry after a short jittered backoff. Bounded
/// and small on purpose — a worker sleeping in a retry loop is a worker not
/// serving jobs, and persistent failures should surface, not spin.
constexpr int kAcquireAttempts = 2;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// A graph-acquire failure worth one more try: the input exists and the spec
/// is fine, the I/O just failed this instant. Content rejections (a corrupt
/// store file is already healed + rebuilt inside try_load; a malformed spec
/// is invalid_argument) are deterministic and never retried.
[[nodiscard]] bool transient_acquire_error(const std::exception& e) noexcept {
  if (dynamic_cast<const SourceIoError*>(&e) != nullptr) return true;
  if (const auto* f = dynamic_cast<const fp::FailpointError*>(&e); f != nullptr)
    return starts_with(f->site(), "source.");
  return false;
}

/// Maps an escaped exception to its failure domain. `acquire` distinguishes
/// the graph-acquire phase (spec/source/store/build failures) from pipeline
/// execution (everything is exec there — stage code validated its own
/// arguments by then).
[[nodiscard]] ErrorKind classify_error(const std::exception& e,
                                       bool acquire) noexcept {
  if (dynamic_cast<const SourceIoError*>(&e) != nullptr) return ErrorKind::kSourceIo;
  if (dynamic_cast<const GraphFileError*>(&e) != nullptr) return ErrorKind::kStoreIo;
  if (const auto* f = dynamic_cast<const fp::FailpointError*>(&e); f != nullptr) {
    const std::string& site = f->site();
    if (starts_with(site, "source.")) return ErrorKind::kSourceIo;
    if (starts_with(site, "store.") || starts_with(site, "serialize.") ||
        starts_with(site, "mmap.") || starts_with(site, "cache."))
      return ErrorKind::kStoreIo;
    return ErrorKind::kExec;
  }
  if (!acquire) return ErrorKind::kExec;
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
    return ErrorKind::kParse;
  return ErrorKind::kBuild;
}

/// One stderr note per process for throwing deliver callbacks — the
/// `callback_errors` counter carries the ongoing tally; repeating the
/// message per job would drown real diagnostics under a hot broken sink.
void warn_callback_error(const char* what) noexcept {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed))
    std::fprintf(stderr,
                 "bmh: a result callback threw ('%s'); the exception was "
                 "contained — callbacks must not throw, further throws are "
                 "counted silently (worker.callback_errors)\n",
                 what);
}

} // namespace

/// A caller's batch, viewed — the caller blocks in run()/run_collect()
/// until `finished`, so the vector outlives the batch. Workers claim
/// indices with one atomic fetch_add each, exactly the pull model the old
/// per-batch pool used, so a million-job batch costs a handful of ring
/// descriptors (one per worker), not a million. Single-job submits don't
/// come through here anymore — they ride the slot freelist (SubmitSlot).
struct Engine::Batch {
  const JobSpec* jobs = nullptr;  ///< base of the job array
  std::size_t count = 0;
  std::size_t base_index = 0;     ///< derivation index of jobs[0]
  std::uint64_t enqueue_ns = 0;   ///< obs::now_ns() when accepted (queue wait)
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  /// Invoked on worker threads, unsynchronized — each caller owns its
  /// ordering (run() reorders by index, run_collect() writes by slot,
  /// submit() fulfils its promise).
  std::function<void(std::size_t, JobResult&&)> deliver;
  std::promise<void> finished;    ///< fulfilled when completed == count
};

/// A worker's pre-resolved instruments: looked up once at thread start (the
/// find-or-create path takes a mutex), then every per-job update is a
/// relaxed atomic through these pointers — the hot path never touches a
/// lock or an allocation. Also carries the per-job scratch execute() hands
/// back to the publish burst in worker_loop (single-threaded per worker).
struct Engine::WorkerObs {
  obs::MetricDomain* domain = nullptr;
  obs::Counter* jobs_run = nullptr;
  obs::Counter* jobs_failed = nullptr;
  obs::Counter* direct_builds = nullptr;
  // Per-kind slices of jobs_run (their sum), so dashboards can tell a
  // matching-serving engine from an analysis one at a glance.
  obs::Counter* jobs_run_match = nullptr;
  obs::Counter* jobs_run_undirected_match = nullptr;
  obs::Counter* jobs_run_analyze = nullptr;
  // Per-ErrorKind slices of jobs_failed (their sum): "the disk is dying"
  // (store_io) and "clients send garbage" (parse) are different pages.
  obs::Counter* jobs_failed_parse = nullptr;
  obs::Counter* jobs_failed_source_io = nullptr;
  obs::Counter* jobs_failed_store_io = nullptr;
  obs::Counter* jobs_failed_build = nullptr;
  obs::Counter* jobs_failed_exec = nullptr;
  obs::Counter* jobs_failed_timeout = nullptr;
  obs::Counter* io_retries = nullptr;        ///< transient acquire retries taken
  obs::Counter* callback_errors = nullptr;   ///< deliver callbacks that threw
  obs::Histogram* queue_wait = nullptr;
  obs::Histogram* graph_acquire = nullptr;
  obs::Histogram* job = nullptr;
  obs::Histogram* stage_scale = nullptr;
  obs::Histogram* stage_match = nullptr;
  obs::Histogram* stage_augment = nullptr;
  obs::Histogram* stage_analyze = nullptr;
  obs::Histogram* stage_convert = nullptr;
  obs::Gauge* ws_bytes = nullptr;
  // Scratch for the job being executed:
  std::uint64_t graph_acquire_ns = 0;
  bool direct_build = false;
  std::uint32_t job_io_retries = 0;
};

Engine::WorkerObs Engine::resolve_worker_obs(obs::MetricDomain& domain) {
  WorkerObs wo;
  wo.domain = &domain;
  wo.jobs_run = &domain.counter("jobs_run");
  wo.jobs_failed = &domain.counter("jobs_failed");
  wo.direct_builds = &domain.counter("direct_builds");
  wo.jobs_run_match = &domain.counter("jobs_run_match");
  wo.jobs_run_undirected_match = &domain.counter("jobs_run_undirected_match");
  wo.jobs_run_analyze = &domain.counter("jobs_run_analyze");
  wo.jobs_failed_parse = &domain.counter("jobs_failed_parse");
  wo.jobs_failed_source_io = &domain.counter("jobs_failed_source_io");
  wo.jobs_failed_store_io = &domain.counter("jobs_failed_store_io");
  wo.jobs_failed_build = &domain.counter("jobs_failed_build");
  wo.jobs_failed_exec = &domain.counter("jobs_failed_exec");
  wo.jobs_failed_timeout = &domain.counter("jobs_failed_timeout");
  wo.io_retries = &domain.counter("io_retries");
  wo.callback_errors = &domain.counter("callback_errors");
  wo.queue_wait = &domain.histogram("queue_wait");
  wo.graph_acquire = &domain.histogram("graph_acquire");
  wo.job = &domain.histogram("job");
  wo.stage_scale = &domain.histogram("stage_scale");
  wo.stage_match = &domain.histogram("stage_match");
  wo.stage_augment = &domain.histogram("stage_augment");
  wo.stage_analyze = &domain.histogram("stage_analyze");
  wo.stage_convert = &domain.histogram("stage_convert");
  wo.ws_bytes = &domain.gauge("ws_reserved_bytes");
  return wo;
}

/// Resolves the auto-sized knobs before the member init list runs: the ring
/// members are fixed-capacity at construction, so threads and queue depth
/// must be final by the time they initialize.
EngineConfig Engine::resolve(EngineConfig config) {
  int threads = config.threads > 0 ? config.threads : num_procs();
  config.threads = std::max(threads, 1);
  std::size_t depth = config.submit_queue_depth != 0
                          ? config.submit_queue_depth
                          : std::max<std::size_t>(
                                1024, static_cast<std::size_t>(config.threads) * 4);
  config.submit_queue_depth = std::bit_ceil(std::max<std::size_t>(depth, 2));
  return config;
}

Engine::Engine(EngineConfig config)
    : config_(resolve(std::move(config))),
      threads_(config_.threads),
      ring_(2 * config_.submit_queue_depth),
      free_slots_(config_.submit_queue_depth),
      slots_(config_.submit_queue_depth) {
  // The freelist starts full: every slot index is available to producers.
  for (std::uint32_t i = 0; i < slots_.size(); ++i)
    free_slots_.push(std::uint32_t{i});

  if (config_.graph_cache != nullptr) {
    cache_ = config_.graph_cache;
  } else if (config_.graph_cache_mb > 0) {
    GraphCache::Options cache_options;
    cache_options.max_bytes = config_.graph_cache_mb << 20;
    if (!config_.graph_store_dir.empty()) {
      GraphStore::Options store_options;
      store_options.max_bytes = config_.store_budget_mb << 20;
      store_options.fsync = config_.store_fsync;
      owned_store_ =
          std::make_unique<GraphStore>(config_.graph_store_dir, store_options);
      cache_options.store = owned_store_.get();
    }
    owned_cache_ = std::make_unique<GraphCache>(cache_options);
    cache_ = owned_cache_.get();
  }

  // Observability plumbing precedes the threads so the vectors are
  // immutable (and the registry list stable) while the pool runs: one
  // single-writer metric domain and one bounded trace journal per worker,
  // with the cache's and store's multi-writer domains attached alongside —
  // Engine::metrics() reads all of them through one registry.
  worker_domains_.reserve(static_cast<std::size_t>(threads_));
  journals_.reserve(static_cast<std::size_t>(threads_));
  for (int t = 0; t < threads_; ++t) {
    worker_domains_.push_back(&registry_.create_domain("worker", t));
    journals_.push_back(std::make_unique<obs::TraceJournal>());
    // Materialize the worker's instruments now, on the constructing thread:
    // a metrics() snapshot taken before a worker claims its first job must
    // already see the domain's full shape (all counters/histograms at zero),
    // not a partially-populated domain.
    (void)resolve_worker_obs(*worker_domains_.back());
  }
  if (cache_ != nullptr) registry_.attach(&cache_->metric_domain());
  if (GraphStore* st = cache_ != nullptr ? cache_->store() : nullptr; st != nullptr)
    registry_.attach(&st->metric_domain());
  // In failpoint builds the process-wide hit counters ride along in every
  // metrics() snapshot, so a fault-schedule run can be audited from the same
  // exporter as everything else. (The domain is a process singleton; several
  // engines may each attach it to their own registry.)
  if constexpr (fp::kCompiled) registry_.attach(&fp::metric_domain());

  // Each std::thread owns its OpenMP nthreads ICV, so the per-job budget set
  // inside a pipeline never leaks across workers.
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int t = 0; t < threads_; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

Engine::~Engine() {
  // release pairs with the workers' acquire loads of stopping_.
  stopping_.store(true, std::memory_order_release);
  // The empty critical section orders the flag against sleepers that are
  // between their ring re-check and the wait — the notify can't land in
  // that window because we hold the mutex they re-check under.
  { LockGuard lock(wake_mutex_); }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

GraphStore* Engine::store() const noexcept {
  return cache_ != nullptr ? cache_->store() : nullptr;
}

/// Post-publish wake protocol, shared by every producer path. The seq_cst
/// fence pairs with the one a worker issues after registering in sleepers_:
/// either the producer observes the registration (and pays the mutex +
/// notify), or the worker's re-check observes the published item — never
/// neither. With no sleepers this is one fence and one relaxed load.
void Engine::wake_one() noexcept {
  // seq_cst: Dekker pairing with the worker's post-registration fence.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    // Empty critical section: a worker between registering and waiting
    // holds wake_mutex_, so our notify is ordered after its wait begins.
    { LockGuard lock(wake_mutex_); }
    work_cv_.notify_one();
  }
}

void Engine::enqueue(std::shared_ptr<Batch> batch) {
  if constexpr (obs::kEnabled) batch->enqueue_ns = obs::now_ns();
  // seq_cst: the drain protocol's pending_submits_ check must totally order
  // against this registration (see worker_loop's stopping branch).
  pending_submits_.fetch_add(1, std::memory_order_seq_cst);
  // Fan out one descriptor per worker that could usefully join the drain;
  // claims inside the batch are fetch_add on Batch::next, so extra
  // descriptors popped after the batch is exhausted are dropped harmlessly.
  const std::size_t fanout =
      std::min<std::size_t>(static_cast<std::size_t>(threads_),
                            std::max<std::size_t>(batch->count, 1));
  for (std::size_t k = 0; k < fanout; ++k) {
    ring_.push(WorkItem{batch, 0});
    wake_one();
  }
  // release: deregistration must order after the ring publishes above.
  pending_submits_.fetch_sub(1, std::memory_order_release);
}

/// Per-worker accumulator for the counters that tolerate batching: the
/// per-kind and per-ErrorKind slices, retry and direct-build tallies. The
/// invariant-bearing trio (jobs_run, jobs_failed, every histogram) still
/// publishes per job under one PublishGuard; these slices flush once per
/// drain run (plus every 64 jobs as a staleness bound), so a hot drain pays
/// one seqlock bracket for the breakdown instead of one per job. Flushed
/// before any blocking caller can observe completion — see drain_batch and
/// run_single.
struct Engine::WorkerSlices {
  std::uint64_t run_match = 0;
  std::uint64_t run_undirected_match = 0;
  std::uint64_t run_analyze = 0;
  std::uint64_t failed_parse = 0;
  std::uint64_t failed_source_io = 0;
  std::uint64_t failed_store_io = 0;
  std::uint64_t failed_build = 0;
  std::uint64_t failed_exec = 0;
  std::uint64_t failed_timeout = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t direct_builds = 0;
  unsigned since_flush = 0;

  void account(const JobResult& result, const WorkerObs& wo) noexcept {
    switch (result.kind) {
      case JobKind::kMatch: ++run_match; break;
      case JobKind::kUndirectedMatch: ++run_undirected_match; break;
      case JobKind::kAnalyze: ++run_analyze; break;
    }
    if (!result.ok) {
      switch (result.error_kind) {
        case ErrorKind::kParse: ++failed_parse; break;
        case ErrorKind::kSourceIo: ++failed_source_io; break;
        case ErrorKind::kStoreIo: ++failed_store_io; break;
        case ErrorKind::kBuild: ++failed_build; break;
        case ErrorKind::kTimeout: ++failed_timeout; break;
        case ErrorKind::kExec:
        case ErrorKind::kNone: ++failed_exec; break;
      }
    }
    io_retries += wo.job_io_retries;
    if (wo.direct_build) ++direct_builds;
    ++since_flush;
  }

  void flush(WorkerObs& wo) {
    if (since_flush == 0) return;
    obs::PublishGuard guard(*wo.domain);
    if (run_match != 0) wo.jobs_run_match->inc(run_match);
    if (run_undirected_match != 0)
      wo.jobs_run_undirected_match->inc(run_undirected_match);
    if (run_analyze != 0) wo.jobs_run_analyze->inc(run_analyze);
    if (failed_parse != 0) wo.jobs_failed_parse->inc(failed_parse);
    if (failed_source_io != 0) wo.jobs_failed_source_io->inc(failed_source_io);
    if (failed_store_io != 0) wo.jobs_failed_store_io->inc(failed_store_io);
    if (failed_build != 0) wo.jobs_failed_build->inc(failed_build);
    if (failed_exec != 0) wo.jobs_failed_exec->inc(failed_exec);
    if (failed_timeout != 0) wo.jobs_failed_timeout->inc(failed_timeout);
    if (io_retries != 0) wo.io_retries->inc(io_retries);
    if (direct_builds != 0) wo.direct_builds->inc(direct_builds);
    *this = WorkerSlices{};
  }
};

namespace {
/// Staleness bound on the deferred slice counters: a worker in a long drain
/// flushes at least this often, so dashboards never trail by more than a
/// blink even when the ring never runs dry.
constexpr unsigned kSliceFlushEvery = 64;
} // namespace

void Engine::worker_loop(int worker) {
  // Each worker owns one scratch arena, reused across every job it ever
  // executes — batches and submits alike. After its first job of each
  // shape the pipeline hot path performs no heap allocations, and unlike
  // the per-call pools of the legacy free functions, the warmth survives
  // across batches for the engine's whole lifetime.
  Workspace ws;

  // Re-resolve this worker's instruments (pure find: the constructor already
  // materialized them) and bind its trace journal; from here on every job's
  // accounting is relaxed atomics through WorkerObs — nothing
  // observability-related allocates or locks on the hot path.
  WorkerObs wo =
      resolve_worker_obs(*worker_domains_[static_cast<std::size_t>(worker)]);
  obs::bind_thread_journal(journals_[static_cast<std::size_t>(worker)].get());
  WorkerSlices slices;

  WorkItem item;
  for (;;) {
    if (ring_.try_pop(item)) {
      if (item.batch != nullptr) {
        drain_batch(item.batch, ws, wo, slices);
        item.batch.reset();  // drop the ref before sleeping on an idle ring
      } else {
        run_single(item.slot, ws, wo, slices);
      }
      continue;
    }
    // acquire pairs with the destructor's release store of stopping_.
    if (stopping_.load(std::memory_order_acquire)) {
      // Drain protocol: a submit that already entered (pending_submits_
      // registered) may hold a claimed-but-unpublished ring position that
      // try_pop cannot see — spin until every such producer has published,
      // then take one more look before exiting. Submits that begin after
      // this final empty observation are the caller racing the destructor's
      // completion, which no object can survive (same contract as the old
      // mutex queue).
      if (pending_submits_.load(std::memory_order_seq_cst) != 0) {
        std::this_thread::yield();
        continue;
      }
      if (ring_.try_pop(item)) {
        if (item.batch != nullptr) {
          drain_batch(item.batch, ws, wo, slices);
          item.batch.reset();
        } else {
          run_single(item.slot, ws, wo, slices);
        }
        continue;
      }
      slices.flush(wo);
      return;
    }
    // Nothing ready: park. Register as a sleeper first, then re-check the
    // ring (Dekker pairing with wake_one's fence) so a publish that raced
    // our pop either sees our registration or is seen by this re-check.
    slices.flush(wo);
    UniqueLock lock(wake_mutex_);
    // seq_cst registration + fence: Dekker pairing with wake_one()'s fence,
    // so a racing producer either sees the sleeper or is seen by the
    // re-check below. The stopping_ acquire pairs with ~Engine's release.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);    // register sleeper
    std::atomic_thread_fence(std::memory_order_seq_cst);  // pairs wake_one()
    while (!ring_.ready() &&
           // acquire pairs with ~Engine's release store of stopping_
           !stopping_.load(std::memory_order_acquire))
      work_cv_.wait(lock);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Engine::drain_batch(const std::shared_ptr<Batch>& batch, Workspace& ws,
                         WorkerObs& wo, WorkerSlices& slices) {
  // Drain without re-touching any queue state: each claim is one
  // uncontended fetch_add, so a million-job batch costs a million atomic
  // increments against its own counter, not a million ring operations.
  std::size_t drained = 0;
  for (;;) {
    const std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->count) break;
    const std::uint64_t claimed_ns = obs::kEnabled ? obs::now_ns() : 0;
    const std::uint64_t queue_wait_ns =
        claimed_ns > batch->enqueue_ns ? claimed_ns - batch->enqueue_ns : 0;
    obs::record_phase("queue_wait", batch->enqueue_ns, queue_wait_ns);
    wo.graph_acquire_ns = 0;
    wo.direct_build = false;
    wo.job_io_retries = 0;
    JobResult result = execute(batch->jobs[i], batch->base_index + i, ws, wo);
    // One seqlock-bracketed burst publishes the job's invariant-bearing
    // counters: a concurrent metrics() snapshot sees all of it or none of
    // it — jobs_run can never lead its own latency sample or its failure
    // count within one worker domain. The breakdown slices accumulate in
    // `slices` and flush per drain run.
    {
      obs::PublishGuard guard(*wo.domain);
      wo.jobs_run->inc();
      if (!result.ok) wo.jobs_failed->inc();
      if constexpr (obs::kEnabled) {
        wo.queue_wait->record(queue_wait_ns);
        wo.graph_acquire->record(wo.graph_acquire_ns);
        wo.job->record(obs::now_ns() - claimed_ns);
        for (const StageStats& st : result.result.stages) {
          if (st.stage == "scale") wo.stage_scale->record_seconds(st.seconds);
          else if (st.stage == "match") wo.stage_match->record_seconds(st.seconds);
          else if (st.stage == "augment") wo.stage_augment->record_seconds(st.seconds);
          else if (st.stage == "analyze") wo.stage_analyze->record_seconds(st.seconds);
          else if (st.stage == "convert") wo.stage_convert->record_seconds(st.seconds);
        }
        wo.ws_bytes->set(static_cast<std::int64_t>(ws.bytes_reserved()));
      }
    }
    slices.account(result, wo);
    if (slices.since_flush >= kSliceFlushEvery) slices.flush(wo);
    // Containment boundary: deliver runs caller code (run()'s sink, a
    // submit callback) on this pool thread. A throw here used to unwind
    // through worker_loop and terminate the process via the std::thread —
    // now it costs the caller its own notification and nothing else: the
    // counter ticks, one note hits stderr per process, the batch still
    // completes and every other job still delivers.
    try {
      batch->deliver(i, std::move(result));
    } catch (const std::exception& e) {
      wo.callback_errors->inc();
      warn_callback_error(e.what());
    } catch (...) {
      wo.callback_errors->inc();
      warn_callback_error("non-exception throw");
    }
    ++drained;
  }
  if (drained == 0) return;  // stale fan-out descriptor, everything claimed
  // Flush the slices *before* the completion bookkeeping: the caller
  // blocked on `finished` reads metrics the moment its future fires, and
  // must see this run's breakdown (the promise's internal synchronization
  // publishes the flushed values).
  slices.flush(wo);
  // Batched completion: one fetch_add covers every job this worker drained
  // in the run, instead of one per job.
  if (batch->completed.fetch_add(drained, std::memory_order_acq_rel) +
          drained ==
      batch->count)
    batch->finished.set_value();
}

void Engine::run_single(std::uint32_t slot_index, Workspace& ws, WorkerObs& wo,
                        WorkerSlices& slices) {
  SubmitSlot& slot = slots_[slot_index];
  // Move the submission out and recycle the slot before executing: the
  // engine's submission capacity bounds *queued* jobs, and a slot pinned
  // for a job's whole runtime would halve the effective window.
  JobSpec job = std::move(slot.job);
  std::function<void(JobResult&&)> done = std::move(slot.done);
  const std::size_t index = slot.index;
  const std::uint64_t enqueue_ns = slot.enqueue_ns;
  free_slots_.push(std::uint32_t{slot_index});

  const std::uint64_t claimed_ns = obs::kEnabled ? obs::now_ns() : 0;
  const std::uint64_t queue_wait_ns =
      claimed_ns > enqueue_ns ? claimed_ns - enqueue_ns : 0;
  obs::record_phase("queue_wait", enqueue_ns, queue_wait_ns);
  wo.graph_acquire_ns = 0;
  wo.direct_build = false;
  wo.job_io_retries = 0;
  JobResult result = execute(job, index, ws, wo);
  {
    obs::PublishGuard guard(*wo.domain);
    wo.jobs_run->inc();
    if (!result.ok) wo.jobs_failed->inc();
    if constexpr (obs::kEnabled) {
      wo.queue_wait->record(queue_wait_ns);
      wo.graph_acquire->record(wo.graph_acquire_ns);
      wo.job->record(obs::now_ns() - claimed_ns);
      for (const StageStats& st : result.result.stages) {
        if (st.stage == "scale") wo.stage_scale->record_seconds(st.seconds);
        else if (st.stage == "match") wo.stage_match->record_seconds(st.seconds);
        else if (st.stage == "augment") wo.stage_augment->record_seconds(st.seconds);
        else if (st.stage == "analyze") wo.stage_analyze->record_seconds(st.seconds);
        else if (st.stage == "convert") wo.stage_convert->record_seconds(st.seconds);
      }
      wo.ws_bytes->set(static_cast<std::int64_t>(ws.bytes_reserved()));
    }
  }
  slices.account(result, wo);
  // Flush before delivering when no more work is immediately ready (or at
  // the staleness bound): the delivery may fulfil a future someone is
  // blocked on, and a caller that serializes — submit, get, read metrics —
  // must see this job's slices. Under open-loop load the ring stays ready
  // and the flush amortizes across the run.
  if (!ring_.ready() || slices.since_flush >= kSliceFlushEvery)
    slices.flush(wo);
  try {
    if (done) done(std::move(result));
  } catch (const std::exception& e) {
    wo.callback_errors->inc();
    warn_callback_error(e.what());
  } catch (...) {
    wo.callback_errors->inc();
    warn_callback_error("non-exception throw");
  }
}

JobResult Engine::execute(const JobSpec& job, std::size_t index, Workspace& ws,
                          WorkerObs& wo) {
  BMH_SPAN("job");
  JobResult out;
  out.index = index;
  out.name = job.name;
  out.input = job.input.spec;
  out.kind = job.kind;
  out.algorithm = job.pipeline.algorithm;
  out.seed = job.seed.value_or(derive_job_seed(config_.seed, index));
  // The deadline clock starts when a worker picks the job up (queue wait is
  // the engine's fault, not the job's) and is enforced at the failure
  // boundaries: after acquire and on entry to every pipeline stage.
  const std::int64_t deadline_ns =
      job.timeout_ms > 0
          ? steady_now_ns() + static_cast<std::int64_t>(job.timeout_ms) * 1'000'000
          : 0;
  // Which phase an exception escaped from drives its classification: during
  // acquire a std::invalid_argument is a spec problem (parse) and a generic
  // failure is a build problem; once the pipeline runs, failures are exec.
  bool acquiring = true;
  try {
    // Cache-served graphs are shared immutable state; `shared` keeps the
    // entry alive across the pipeline however the cache evicts. A job whose
    // instance varies with the per-index derived seed is only worth
    // retaining when the cache can live to see the key again — the engine's
    // own long-lived cache can (re-running a batch re-derives the same
    // keys), a batch-scoped shim cache cannot (indices are unique within
    // one batch), which is what retain_derived_seed_graphs encodes. Results
    // are identical on every path — build_graph is deterministic in
    // (spec, effective seed).
    const bool single_use = cache_ != nullptr &&
                            !config_.retain_derived_seed_graphs &&
                            !job.seed.has_value() &&
                            graph_spec_depends_on_job_seed(job.input);
    std::shared_ptr<const BipartiteGraph> shared;
    std::optional<BipartiteGraph> local;
    const BipartiteGraph* graph = nullptr;
    const std::uint64_t acquire_start = obs::kEnabled ? obs::now_ns() : 0;
    {
      BMH_SPAN("graph_acquire");
      // Transient-I/O retry: one extra attempt, short jittered backoff. The
      // store tier never needs this (try_load/spill absorb their own
      // failures and fall back to building), but a source read can fail for
      // reasons that pass an instant later. Deterministic failures — spec
      // errors, content rejections — rethrow immediately; see
      // transient_acquire_error.
      for (int attempt = 1;; ++attempt) {
        try {
          if (cache_ != nullptr && !single_use) {
            shared = cache_->get_or_build(job.input, out.seed);
            graph = shared.get();
          } else {
            local.emplace(build_graph(job.input, out.seed));
            wo.direct_build = true;  // counted in worker_loop's publish burst
            graph = &*local;
          }
          break;
        } catch (const std::exception& e) {
          if (attempt >= kAcquireAttempts || !transient_acquire_error(e)) throw;
          ++wo.job_io_retries;
          // Jitter off the job seed: deterministic for a given job, spread
          // across a batch so retries of many jobs don't re-collide.
          const std::uint64_t jitter_us =
              500 + Rng(out.seed).fork(static_cast<std::uint64_t>(attempt)).next() % 1500;
          std::this_thread::sleep_for(std::chrono::microseconds(jitter_us));
        }
      }
    }
    if constexpr (obs::kEnabled) wo.graph_acquire_ns = obs::now_ns() - acquire_start;
    out.rows = graph->num_rows();
    out.cols = graph->num_cols();
    out.edges = graph->num_edges();
    if (deadline_ns != 0 && steady_now_ns() >= deadline_ns)
      throw JobTimeoutError("deadline exceeded after graph acquire (timeout_ms=" +
                            std::to_string(job.timeout_ms) + ")");

    PipelineConfig config = job.pipeline;
    config.options.seed = out.seed;
    config.deadline_ns = deadline_ns;
    // The spec's thread budget wins; otherwise the engine-wide per-job one.
    if (config.options.threads <= 0) config.options.threads = config_.threads_per_job;
    acquiring = false;
    // Every kind shares the acquire path above — one pool, one cache, one
    // store — and diverges only in which pipeline body runs.
    switch (job.kind) {
      case JobKind::kMatch:
        run_pipeline_ws(*graph, config, ws, out.result);
        break;
      case JobKind::kUndirectedMatch:
        run_undirected_pipeline_ws(*graph, config, ws, out.result);
        break;
      case JobKind::kAnalyze:
        run_analyze_pipeline_ws(*graph, config, ws, out.result);
        break;
    }
    out.ok = true;
  } catch (const JobTimeoutError& e) {
    out.error = e.what();
    out.error_kind = ErrorKind::kTimeout;
  } catch (const std::exception& e) {
    out.error = e.what();
    out.error_kind = classify_error(e, acquiring);
  } catch (...) {
    // Last-resort containment: whatever escaped (a non-std throw from a
    // user-registered algorithm, say) must not unwind into worker_loop and
    // take the thread — and the whole process — with it.
    out.error = "unknown non-exception throw";
    out.error_kind = acquiring ? ErrorKind::kBuild : ErrorKind::kExec;
  }
  return out;
}

std::future<JobResult> Engine::submit(JobSpec job) {
  auto promise = std::make_shared<std::promise<JobResult>>();
  std::future<JobResult> future = promise->get_future();
  submit(std::move(job), [promise](JobResult&& result) {
    promise->set_value(std::move(result));
  });
  return future;
}

/// Blocking slot acquisition: the backpressure point of the submit path.
/// An empty freelist means submit_capacity() jobs are already queued; wait
/// for a worker to recycle one (workers free a slot the moment they claim
/// its job, before executing, so the wait is bounded by claim latency, not
/// job runtime).
std::uint32_t Engine::acquire_slot_blocking() {
  std::uint32_t slot = 0;
  unsigned spins = 0;
  while (!free_slots_.try_pop(slot)) detail::ring_backoff(spins);
  return slot;
}

/// Fills the slot and publishes its descriptor. The auto derivation index
/// is claimed here — after the point of no return — so a failed try_submit
/// never leaves a hole in the index sequence. The ring push is the blocking
/// form, but holding a freelist slot bounds ring occupancy by construction
/// (slot descriptors <= capacity, batch descriptors <= threads per batch in
/// a 2x-capacity ring), so it only ever spins on a momentary collision.
void Engine::publish_slot(std::uint32_t slot_index, JobSpec&& job,
                          std::function<void(JobResult&&)>&& done,
                          std::optional<std::size_t> index) {
  SubmitSlot& slot = slots_[slot_index];
  slot.job = std::move(job);    // move-assign: reuses the slot's buffers
  slot.done = std::move(done);
  slot.index = index.has_value()
                   ? *index
                   : submit_seq_.fetch_add(1, std::memory_order_relaxed);
  slot.enqueue_ns = obs::kEnabled ? obs::now_ns() : 0;
  ring_.push(WorkItem{nullptr, slot_index});
  wake_one();
}

void Engine::submit(JobSpec job, std::function<void(JobResult&&)> done,
                    std::optional<std::size_t> index) {
  // pending_submits_ brackets the whole call so the destructor's drain
  // waits out a submit that has entered but not yet published (including
  // one blocked on a full ring). The decrement is this call's final touch
  // of the engine, release-ordered against the publish.
  pending_submits_.fetch_add(1, std::memory_order_seq_cst);  // drain ordering
  const std::uint32_t slot = acquire_slot_blocking();
  publish_slot(slot, std::move(job), std::move(done), index);
  // release: deregistration orders after the slot publish above.
  pending_submits_.fetch_sub(1, std::memory_order_release);
}

bool Engine::try_submit(JobSpec&& job, std::function<void(JobResult&&)>&& done,
                        std::optional<std::size_t> index) {
  pending_submits_.fetch_add(1, std::memory_order_seq_cst);  // drain ordering
  std::uint32_t slot = 0;
  if (!free_slots_.try_pop(slot)) {
    // release matches the success path; nothing was published to order.
    pending_submits_.fetch_sub(1, std::memory_order_release);
    return false;  // full: caller keeps job and callback untouched
  }
  publish_slot(slot, std::move(job), std::move(done), index);
  // release: deregistration orders after the slot publish above.
  pending_submits_.fetch_sub(1, std::memory_order_release);
  return true;
}

std::size_t Engine::run(const std::vector<JobSpec>& jobs,
                        const std::function<void(const JobResult&)>& sink) {
  if (jobs.empty()) return 0;
  auto batch = std::make_shared<Batch>();
  batch->jobs = jobs.data();
  batch->count = jobs.size();

  // Out-of-order finishers park here until every lower index has been
  // emitted; in the steady state the window holds at most ~threads records.
  // Locals suffice: every deliver happens-before the batch's `finished`
  // promise is fulfilled, and this frame outlives the wait below.
  Mutex mutex;
  std::map<std::size_t, JobResult> pending;
  std::size_t next_emit = 0;
  std::size_t failed = 0;
  batch->deliver = [&](std::size_t i, JobResult&& result) {
    LockGuard lock(mutex);
    pending.emplace(i, std::move(result));
    while (!pending.empty() && pending.begin()->first == next_emit) {
      const JobResult& head = pending.begin()->second;
      if (!head.ok) ++failed;
      if (sink) sink(head);
      pending.erase(pending.begin());  // Matching and all — memory stays bounded
      ++next_emit;
    }
  };

  std::future<void> finished = batch->finished.get_future();
  enqueue(std::move(batch));
  finished.wait();
  return failed;
}

std::vector<JobResult> Engine::run_collect(
    const std::vector<JobSpec>& jobs,
    const std::function<void(const JobResult&)>& on_done) {
  if (jobs.empty()) return {};
  auto batch = std::make_shared<Batch>();
  batch->jobs = jobs.data();
  batch->count = jobs.size();

  std::vector<JobResult> results(jobs.size());
  Mutex done_mutex;
  batch->deliver = [&](std::size_t i, JobResult&& result) {
    results[i] = std::move(result);
    if (on_done) {
      LockGuard lock(done_mutex);
      on_done(results[i]);
    }
  };

  std::future<void> finished = batch->finished.get_future();
  enqueue(std::move(batch));
  finished.wait();
  return results;
}

obs::Snapshot Engine::metrics() const { return registry_.snapshot(); }

std::vector<obs::TraceEvent> Engine::trace_events() const {
  std::vector<obs::TraceEvent> out;
  for (const auto& journal : journals_) {
    std::vector<obs::TraceEvent> events = journal->events();
    out.insert(out.end(), events.begin(), events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

Engine::Stats Engine::stats() const {
  // A view over metrics(): the worker counters are read through each
  // domain's seqlock, so every per-worker triple (jobs_run, jobs_failed,
  // direct_builds) is a consistent post-job state — the totals can lag
  // jobs mid-publish on other workers, never show a partial job.
  Stats stats;
  const obs::Snapshot snap = registry_.snapshot();
  stats.jobs_run = snap.counter_total("worker", "jobs_run");
  stats.jobs_failed = snap.counter_total("worker", "jobs_failed");
  stats.cold_builds = snap.counter_total("worker", "direct_builds");
  if (cache_ != nullptr) {
    stats.cache = cache_->stats();
    // Every cache miss either mmap-loaded from the store or ran
    // build_graph, so the cache-attributed cold builds are exactly
    // misses - store_hits — no per-call plumbing needed, and exact under
    // concurrency (each counter increments once per event). With a shared
    // external cache these counters are cache-wide, not per-engine; a
    // GraphStore additionally shared across *caches* can even push its
    // hit count past this cache's misses, so clamp instead of wrapping.
    if (stats.cache.misses > stats.cache.store_hits)
      stats.cold_builds += stats.cache.misses - stats.cache.store_hits;
  }
  return stats;
}

} // namespace bmh
