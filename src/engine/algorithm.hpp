#pragma once
/// \file algorithm.hpp
/// \brief The uniform MatchingAlgorithm interface served by the registry.
///
/// Every matcher in the library — the paper's heuristics, the cheap
/// baselines, the exact solvers — is wrapped behind this interface so that
/// pipelines, benches and the batch runner can be written once against
/// string algorithm names instead of hand-wiring each entry point. The
/// scaling vectors are computed by the *pipeline* (they are a shared stage,
/// reused across algorithms on the same graph); algorithms that do not
/// sample from the scaled densities simply ignore them.

#include <cstdint>
#include <string>

#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"
#include "scaling/scaling.hpp"

namespace bmh {

/// Per-algorithm knobs, uniform across the registry. Fields irrelevant to a
/// given algorithm (e.g. `k` for anything but "k_out", `seed` for the
/// deterministic solvers) are ignored by it.
struct AlgorithmOptions {
  std::uint64_t seed = 1;  ///< RNG seed for randomized algorithms
  int threads = 0;         ///< OpenMP budget, applied by run_pipeline around
                           ///< every stage; 0 = ambient. Direct callers of
                           ///< run() set the ambient count themselves
                           ///< (ThreadCountGuard).
  int k = 2;               ///< choices per side for the k-out extension

  friend bool operator==(const AlgorithmOptions&, const AlgorithmOptions&) = default;
};

/// A named matching algorithm with uniform invocation. Instances are cheap
/// stateless closures over their options; create one per configuration via
/// make_algorithm() and reuse it across graphs.
class MatchingAlgorithm {
public:
  virtual ~MatchingAlgorithm() = default;

  /// The registry name this instance was created under.
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// True iff the algorithm samples from the scaled densities; pipelines
  /// skip the scaling stage (and pass identity multipliers) otherwise.
  [[nodiscard]] virtual bool uses_scaling() const noexcept { return false; }

  /// True iff the result is always a maximum matching (exact backends).
  [[nodiscard]] virtual bool is_exact() const noexcept { return false; }

  /// Runs the algorithm. `scaling` must cover `g` (identity_scaling(g) when
  /// the caller did not scale); it is ignored unless uses_scaling().
  [[nodiscard]] virtual Matching run(const BipartiteGraph& g,
                                     const ScalingResult& scaling) const = 0;

  /// Workspace-aware execution: scratch is leased from `ws` and the result
  /// lands in `out` (capacity reused) — the batch-serving hot path. The
  /// default forwards to run(); the built-in registrations override it with
  /// the kernels' `_ws` variants, so warm calls allocate nothing.
  virtual void run_ws(const BipartiteGraph& g, const ScalingResult& scaling,
                      Workspace& ws, Matching& out) const {
    (void)ws;
    out = run(g, scaling);
  }

  /// True iff run_ws(g, scaling, options, ws, out) honours per-run options.
  /// Batch seeds vary per job; a rebindable instance can be kept warm across
  /// jobs (the pipeline's algorithm cache keys on the name alone), while a
  /// non-rebindable one must be re-created whenever its options change. The
  /// built-in registrations are all rebindable.
  [[nodiscard]] virtual bool rebindable() const noexcept { return false; }

  /// Workspace-aware execution with per-run options. Only meaningful when
  /// rebindable(); the default ignores `options` and runs with the binding
  /// the instance was created with.
  virtual void run_ws(const BipartiteGraph& g, const ScalingResult& scaling,
                      const AlgorithmOptions& options, Workspace& ws,
                      Matching& out) const {
    (void)options;
    run_ws(g, scaling, ws, out);
  }
};

} // namespace bmh
