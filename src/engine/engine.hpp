#pragma once
/// \file engine.hpp
/// \brief Umbrella header for the matching engine subsystem.
///
/// The engine is the serving layer on top of the paper's algorithms: a
/// registry naming every matcher, pipelines composing scaling + heuristic +
/// exact augmentation, and `bmh::Engine` (engine_api.hpp) — the long-lived
/// session façade owning the worker pool, per-worker arenas, graph cache
/// and persistent store, executing jobs concurrently with deterministic
/// seeding and a JSON-lines result sink. Every scaling, caching or
/// multi-backend feature plugs in here rather than into the algorithm
/// implementations. The legacy one-shot `run_batch`/`run_batch_stream`
/// free functions (batch_runner.hpp) remain as shims over a scoped engine.

#include "engine/algorithm.hpp"
#include "engine/batch_runner.hpp"
#include "engine/engine_api.hpp"
#include "engine/graph_cache.hpp"
#include "engine/graph_store.hpp"
#include "engine/job.hpp"
#include "engine/json.hpp"
#include "engine/pipeline.hpp"
#include "engine/registry.hpp"
