#pragma once
/// \file one_sided.hpp
/// \brief OneSidedMatch (paper Algorithm 2): the synchronization-free
/// 0.632-approximation heuristic.
///
/// Every row independently picks one column from the scaled probability
/// density; concurrent rows may pick the same column and race on
/// `cmatch[j]`, but any surviving write is a valid matching edge, so no
/// conflict resolution is needed (the heuristic's headline property). For
/// a doubly stochastic scaling the expected number of unmatched columns is
/// at most n/e, giving the 1 − 1/e ≈ 0.632 guarantee of Theorem 1.

#include <cstdint>

#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"
#include "scaling/scaling.hpp"

namespace bmh {

/// Runs Algorithm 2 on a pre-scaled matrix. The racy `cmatch` writes are
/// relaxed atomic stores (same machine code as plain stores on x86, but
/// well-defined under the C++ memory model).
[[nodiscard]] Matching one_sided_from_scaling(const BipartiteGraph& g,
                                              const ScalingResult& scaling,
                                              std::uint64_t seed);

/// Convenience: Sinkhorn–Knopp for `scaling_iterations` then Algorithm 2.
/// `scaling_iterations = 0` reproduces the "no scaling / uniform pick"
/// baseline columns of the paper's tables.
[[nodiscard]] Matching one_sided_match(const BipartiteGraph& g, int scaling_iterations,
                                       std::uint64_t seed);

/// Workspace-aware variants: scratch (choices, the column view, and for the
/// convenience form the scaling vectors) is leased from `ws` and the result
/// lands in `out`; warm calls are allocation-free. Identical output to the
/// classic entry points for the same seed.
void one_sided_from_scaling_ws(const BipartiteGraph& g, const ScalingResult& scaling,
                               std::uint64_t seed, Workspace& ws, Matching& out);
void one_sided_match_ws(const BipartiteGraph& g, int scaling_iterations,
                        std::uint64_t seed, Workspace& ws, Matching& out);

} // namespace bmh
