#pragma once
/// \file workspace.hpp
/// \brief Per-thread scratch arenas for the heuristic hot paths.
///
/// Every matcher in the library needs the same few working arrays each call
/// (degree counters, BFS queues, choice vectors, ...). Allocating them per
/// invocation is invisible on one large instance but dominates small-graph
/// jobs in the batch runner, where a worker thread executes thousands of
/// pipelines back to back. A Workspace is the fix: a bag of named, typed
/// buffers that grow monotonically and are reused across calls, so the
/// steady state of a warm worker performs no heap allocations at all.
///
/// Usage, inside an algorithm:
///
///   std::vector<vid_t>& deg = ws.vec<vid_t>("ks.deg", n);        // sized
///   std::vector<vid_t>& stack = ws.buf<vid_t>("ks.stack");       // cleared
///   ScalingResult& scaling = ws.obj<ScalingResult>("p.scaling"); // object
///
/// Rules:
///  * A Workspace is single-threaded. Use one per worker thread (the batch
///    runner does) or the per-thread default behind `for_this_thread()`.
///    Leased buffers may be *filled* by OpenMP parallel regions; only the
///    lease itself must happen on the owning thread.
///  * Tags are namespaced per call site ("hk.dist", "ks.pool", ...). A tag
///    is bound to the type of its first lease; re-leasing it with another
///    type throws std::logic_error. Two functions may share a tag only if
///    they never hold it at the same time (leases have no RAII scope — a
///    lease is valid until the same tag is leased again).
///  * Buffers never shrink; release() drops everything (e.g. between
///    differently-sized phases of a long-lived server, or in tests).

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bmh {

class Workspace {
public:
  Workspace() = default;
  Workspace(Workspace&&) noexcept = default;
  Workspace& operator=(Workspace&&) noexcept = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Leases the vector bound to `tag`, resized to `n` elements. Contents
  /// are unspecified (stale values from the previous lease, value-init in
  /// the grown tail); callers that read before writing must use the fill
  /// overload. Capacity grows monotonically and is reused across calls.
  template <typename T>
  std::vector<T>& vec(std::string_view tag, std::size_t n) {
    std::vector<T>& data = slot<T>(tag);
    if (data.capacity() < n) {
      // Contents are unspecified anyway: drop them so growth is a plain
      // allocation instead of an allocate-and-copy.
      data.clear();
      data.reserve(n);
    }
    data.resize(n);
    return data;
  }

  /// Leases the vector bound to `tag` with every element set to `fill`.
  template <typename T>
  std::vector<T>& vec(std::string_view tag, std::size_t n, const T& fill) {
    std::vector<T>& data = slot<T>(tag);
    data.assign(n, fill);
    return data;
  }

  /// Leases the vector bound to `tag`, cleared but with capacity kept —
  /// the shape for stacks and queues built up by push_back.
  template <typename T>
  std::vector<T>& buf(std::string_view tag) {
    std::vector<T>& data = slot<T>(tag);
    data.clear();
    return data;
  }

  /// Leases a default-constructed object of type T bound to `tag`. The
  /// object persists across calls, so reusable aggregates (a ScalingResult,
  /// a Matching) keep the capacity of their internal vectors.
  template <typename T>
  T& obj(std::string_view tag) {
    if (SlotBase* found = find(tag)) {
      if (found->type != type_key<ObjSlot<T>>())
        throw_type_mismatch(tag);
      return static_cast<ObjSlot<T>*>(found)->data;
    }
    auto created = std::make_unique<ObjSlot<T>>();
    created->tag.assign(tag);
    created->type = type_key<ObjSlot<T>>();
    auto* raw = created.get();
    slots_.push_back(std::move(created));
    return raw->data;
  }

  /// Number of distinct tags leased so far.
  [[nodiscard]] std::size_t lease_count() const noexcept { return slots_.size(); }

  /// Bytes currently reserved by vector leases (object leases count their
  /// shallow size only). Monotone between release() calls.
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const auto& s : slots_) total += s->bytes();
    return total;
  }

  /// Drops every lease and frees the backing memory.
  void release() noexcept { slots_.clear(); }

  /// The calling thread's default workspace; what the classic (non-`_ws`)
  /// entry points use. Lives until thread exit.
  [[nodiscard]] static Workspace& for_this_thread();

private:
  struct SlotBase {
    std::string tag;
    const void* type = nullptr;
    virtual ~SlotBase() = default;
    [[nodiscard]] virtual std::size_t bytes() const noexcept = 0;
  };

  template <typename T>
  struct VecSlot final : SlotBase {
    std::vector<T> data;
    [[nodiscard]] std::size_t bytes() const noexcept override {
      return data.capacity() * sizeof(T);
    }
  };

  template <typename T>
  struct ObjSlot final : SlotBase {
    T data{};
    [[nodiscard]] std::size_t bytes() const noexcept override { return sizeof(T); }
  };

  /// One address per slot instantiation: a cheap RTTI-free type key.
  template <typename Slot>
  [[nodiscard]] static const void* type_key() noexcept {
    static constexpr char key = 0;
    return &key;
  }

  [[nodiscard]] SlotBase* find(std::string_view tag) noexcept {
    for (const auto& s : slots_)
      if (s->tag == tag) return s.get();
    return nullptr;
  }

  template <typename T>
  [[nodiscard]] std::vector<T>& slot(std::string_view tag) {
    if (SlotBase* found = find(tag)) {
      if (found->type != type_key<VecSlot<T>>())
        throw_type_mismatch(tag);
      return static_cast<VecSlot<T>*>(found)->data;
    }
    auto created = std::make_unique<VecSlot<T>>();
    created->tag.assign(tag);
    created->type = type_key<VecSlot<T>>();
    auto* raw = created.get();
    slots_.push_back(std::move(created));
    return raw->data;
  }

  [[noreturn]] static void throw_type_mismatch(std::string_view tag);

  std::vector<std::unique_ptr<SlotBase>> slots_;
};

} // namespace bmh
