#include "core/one_sided.hpp"

#include <atomic>
#include <vector>

#include "core/choice.hpp"
#include "scaling/sinkhorn_knopp.hpp"

namespace bmh {

Matching one_sided_from_scaling(const BipartiteGraph& g, const ScalingResult& scaling,
                                std::uint64_t seed) {
  // Each row's pick; kNil for empty rows.
  const std::vector<vid_t> rchoice = sample_row_choices(g, scaling.dc, seed);

  // cmatch[j] <- i for every row pick, with last-writer-wins races exactly
  // as in the paper. atomic_ref keeps the data race defined; relaxed order
  // compiles to a plain store.
  std::vector<vid_t> cmatch(static_cast<std::size_t>(g.num_cols()), kNil);
#pragma omp parallel for schedule(static)
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    const vid_t j = rchoice[static_cast<std::size_t>(i)];
    if (j == kNil) continue;
    std::atomic_ref<vid_t>(cmatch[static_cast<std::size_t>(j)])
        .store(i, std::memory_order_relaxed);
  }

  return matching_from_col_view(g.num_rows(), cmatch);
}

Matching one_sided_match(const BipartiteGraph& g, int scaling_iterations,
                         std::uint64_t seed) {
  ScalingOptions opts;
  opts.max_iterations = scaling_iterations;
  const ScalingResult scaling =
      scaling_iterations > 0 ? scale_sinkhorn_knopp(g, opts) : identity_scaling(g);
  return one_sided_from_scaling(g, scaling, seed);
}

} // namespace bmh
