#include "core/one_sided.hpp"

#include <atomic>
#include <vector>

#include "core/choice.hpp"
#include "core/workspace.hpp"
#include "scaling/sinkhorn_knopp.hpp"

namespace bmh {

Matching one_sided_from_scaling(const BipartiteGraph& g, const ScalingResult& scaling,
                                std::uint64_t seed) {
  Matching m;
  one_sided_from_scaling_ws(g, scaling, seed, Workspace::for_this_thread(), m);
  return m;
}

void one_sided_from_scaling_ws(const BipartiteGraph& g, const ScalingResult& scaling,
                               std::uint64_t seed, Workspace& ws, Matching& out) {
  // Each row's pick; kNil for empty rows.
  std::vector<vid_t>& rchoice = ws.buf<vid_t>("os.rchoice");
  sample_row_choices(g, scaling.dc, seed, rchoice);

  // cmatch[j] <- i for every row pick, with last-writer-wins races exactly
  // as in the paper. atomic_ref keeps the data race defined; relaxed order
  // compiles to a plain store.
  std::vector<vid_t>& cmatch =
      ws.vec<vid_t>("os.cmatch", static_cast<std::size_t>(g.num_cols()), kNil);
#pragma omp parallel for schedule(static)
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    const vid_t j = rchoice[static_cast<std::size_t>(i)];
    if (j == kNil) continue;
    std::atomic_ref<vid_t>(cmatch[static_cast<std::size_t>(j)])
        .store(i, std::memory_order_relaxed);
  }

  matching_from_col_view(g.num_rows(), cmatch, out);
}

Matching one_sided_match(const BipartiteGraph& g, int scaling_iterations,
                         std::uint64_t seed) {
  Matching m;
  one_sided_match_ws(g, scaling_iterations, seed, Workspace::for_this_thread(), m);
  return m;
}

void one_sided_match_ws(const BipartiteGraph& g, int scaling_iterations,
                        std::uint64_t seed, Workspace& ws, Matching& out) {
  ScalingOptions opts;
  opts.max_iterations = scaling_iterations;
  ScalingResult& scaling = ws.obj<ScalingResult>("os.scaling");
  if (scaling_iterations > 0)
    scale_sinkhorn_knopp_ws(g, opts, ws, scaling);
  else
    identity_scaling_ws(g, ws, scaling, /*compute_error=*/false);
  one_sided_from_scaling_ws(g, scaling, seed, ws, out);
}

} // namespace bmh
