#pragma once
/// \file k_out.hpp
/// \brief k-out generalization of TwoSidedMatch (extension).
///
/// TwoSidedMatch builds a (1-out ∪ 1-in) subgraph. Walkup [31] showed that
/// random *2-out* bipartite graphs already have perfect matchings a.a.s.,
/// and Karoński–Pittel [18] sharpened the threshold to (1 + e^{-1})-out.
/// This module lets each side pick k neighbours from the scaled densities
/// and finds a maximum matching of the resulting ≤ 2kn-edge subgraph.
///
/// For k >= 2 the subgraph components are no longer guaranteed to contain
/// at most one cycle, so Karp–Sipser is *not* exact on them; Hopcroft–Karp
/// runs on the (still tiny) subgraph instead. The trade: more edges and a
/// slower subgraph solve buy a quality that approaches 1 rapidly with k —
/// quantified by bench_extension_kout.

#include <cstdint>
#include <vector>

#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"
#include "scaling/scaling.hpp"

namespace bmh {

/// k choices per row, sampled from the scaled density without replacement
/// (duplicates are re-drawn up to a bounded number of attempts, so rows
/// with fewer than k neighbours simply contribute all of them).
/// Result is row-major: picks of row i are choices[i*k .. i*k+k).
[[nodiscard]] std::vector<vid_t> sample_row_choices_k(const BipartiteGraph& g,
                                                      const std::vector<double>& dc,
                                                      int k, std::uint64_t seed);

/// Column-side mirror of sample_row_choices_k.
[[nodiscard]] std::vector<vid_t> sample_col_choices_k(const BipartiteGraph& g,
                                                      const std::vector<double>& dr,
                                                      int k, std::uint64_t seed);

/// Builds the (k-out ∪ k-in) subgraph from both sides' picks.
[[nodiscard]] BipartiteGraph k_out_subgraph(const BipartiteGraph& g,
                                            const ScalingResult& scaling, int k,
                                            std::uint64_t seed);

/// The k-out heuristic: scale, pick k per side, exact-match the subgraph.
/// k = 1 coincides with TwoSidedMatch up to the subgraph solver used.
[[nodiscard]] Matching k_out_match(const BipartiteGraph& g, int scaling_iterations,
                                   int k, std::uint64_t seed);

/// Workspace-aware variants. Sampling scratch, the scaling vectors, the
/// subgraph solver's arrays *and the subgraph's CSR construction* are all
/// leased from `ws` (pooled `GraphBuilder::build_into` into a workspace-kept
/// graph), so a warm k-out call performs zero heap allocations — same club
/// as every other heuristic.
void sample_row_choices_k(const BipartiteGraph& g, const std::vector<double>& dc, int k,
                          std::uint64_t seed, std::vector<vid_t>& out);
void sample_col_choices_k(const BipartiteGraph& g, const std::vector<double>& dr, int k,
                          std::uint64_t seed, std::vector<vid_t>& out);
[[nodiscard]] BipartiteGraph k_out_subgraph_ws(const BipartiteGraph& g,
                                               const ScalingResult& scaling, int k,
                                               std::uint64_t seed, Workspace& ws);
/// Pooled form: assembles the subgraph into `out`, whose vectors (and the
/// builder scratch behind them, tags "kout.*") reuse capacity across calls.
void k_out_subgraph_ws(const BipartiteGraph& g, const ScalingResult& scaling, int k,
                       std::uint64_t seed, Workspace& ws, BipartiteGraph& out);
void k_out_match_ws(const BipartiteGraph& g, int scaling_iterations, int k,
                    std::uint64_t seed, Workspace& ws, Matching& out);

} // namespace bmh
