#pragma once
/// \file profile.hpp
/// \brief Instrumented heuristic runs with per-phase breakdowns.
///
/// The paper's Table 3 decomposes TwoSidedMatch's cost into ScaleSK +
/// sampling + KarpSipserMT; this module packages that decomposition as a
/// library feature so downstream users (and the bench harnesses) can see
/// where the time goes without re-implementing the pipeline.

#include <cstdint>

#include "core/karp_sipser_mt.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

struct OneSidedProfile {
  double scaling_seconds = 0.0;
  double matching_seconds = 0.0;  ///< sampling + racy cmatch writes
  int scaling_iterations = 0;
  double scaling_error = 0.0;
  Matching matching;

  [[nodiscard]] double total_seconds() const noexcept {
    return scaling_seconds + matching_seconds;
  }
};

struct TwoSidedProfile {
  double scaling_seconds = 0.0;
  double sampling_seconds = 0.0;  ///< both sides' choice draws
  double ksmt_seconds = 0.0;      ///< KarpSipserMT phases 1 + 2
  int scaling_iterations = 0;
  double scaling_error = 0.0;
  KarpSipserMTStats ksmt;
  Matching matching;

  [[nodiscard]] double total_seconds() const noexcept {
    return scaling_seconds + sampling_seconds + ksmt_seconds;
  }
};

/// Runs OneSidedMatch with phase timing.
[[nodiscard]] OneSidedProfile profile_one_sided(const BipartiteGraph& g,
                                                int scaling_iterations,
                                                std::uint64_t seed);

/// Runs TwoSidedMatch with phase timing and KarpSipserMT phase counts.
[[nodiscard]] TwoSidedProfile profile_two_sided(const BipartiteGraph& g,
                                                int scaling_iterations,
                                                std::uint64_t seed);

} // namespace bmh
