#pragma once
/// \file karp_sipser_mt.hpp
/// \brief KarpSipserMT (paper Algorithm 4): the specialized multithreaded
/// Karp–Sipser that is *exact* on TwoSidedMatch's choice subgraphs.
///
/// The input graph is given implicitly by the `choice` array over unified
/// vertex ids (rows `[0, m)`, columns `[m, m+n)`): the edge set is
/// {{u, choice[u]}}. Every component of such a graph contains at most one
/// simple cycle (Lemma 1), which makes Karp–Sipser exact on it and allows
/// two crucial simplifications (paper §3.2):
///
///  * Phase 1 tracks only *out-one* vertices (unmatched u whose choice
///    target is unmatched and whom no unmatched vertex chose). Consuming an
///    out-one vertex creates at most one new out-one vertex (Lemma 4), so
///    the phase follows chains without any worklist; a CAS arbitrates
///    matches, and an atomic decrement on `deg` elects the single thread
///    that continues each chain.
///  * Phase 2 is a plain parallel-for: in the remaining graph (singletons,
///    2-cliques and simple cycles) the column-side choice edges form a
///    maximum matching (Lemma 3), so each free column just takes its choice.

#include <cstdint>
#include <span>
#include <vector>

#include "core/workspace.hpp"
#include "matching/matching.hpp"
#include "util/types.hpp"

namespace bmh {

struct KarpSipserMTStats {
  vid_t phase1_matches = 0;  ///< pairs matched by out-one chain consumption
  vid_t phase2_matches = 0;  ///< pairs matched in the cycle-resolution phase
};

/// Runs Algorithm 4. `choice[u]` is a unified vertex id (the partner chosen
/// by u) or kNil for isolated vertices; `m`/`n` are the row/column counts.
/// The returned matching is maximum on the choice subgraph regardless of
/// the number of threads.
[[nodiscard]] Matching karp_sipser_mt(vid_t m, vid_t n, std::span<const vid_t> choice,
                                      KarpSipserMTStats* stats = nullptr);

/// Workspace-aware variant of Algorithm 4: the match/deg/mark arrays are
/// leased from `ws` (driven through std::atomic_ref so plain vectors can be
/// reused) and the result lands in `out`; warm calls allocate nothing.
void karp_sipser_mt_ws(vid_t m, vid_t n, std::span<const vid_t> choice,
                       KarpSipserMTStats* stats, Workspace& ws, Matching& out);

/// Builds the unified choice array from per-side local choices (rchoice[i]
/// is a column id or kNil; cchoice[j] is a row id or kNil).
[[nodiscard]] std::vector<vid_t> unify_choices(vid_t m, vid_t n,
                                               std::span<const vid_t> rchoice,
                                               std::span<const vid_t> cchoice);

/// Allocation-free variant: writes into `out` (capacity reused).
void unify_choices(vid_t m, vid_t n, std::span<const vid_t> rchoice,
                   std::span<const vid_t> cchoice, std::vector<vid_t>& out);

} // namespace bmh
