#include "core/k_out.hpp"

#include <span>
#include <stdexcept>

#include "core/workspace.hpp"
#include "graph/builder.hpp"
#include "matching/hopcroft_karp.hpp"
#include "scaling/sinkhorn_knopp.hpp"
#include "util/rng.hpp"

namespace bmh {

namespace {

/// Samples k picks ∝ weight over `nbrs` with bounded-retry de-duplication.
/// Writes into `out` (capacity reused by workspace-leased callers).
template <typename NeighborsOf>
void sample_k(vid_t n, NeighborsOf&& neighbors_of, const std::vector<double>& weight,
              int k, std::uint64_t seed, std::uint64_t salt, std::vector<vid_t>& out) {
  if (k < 1) throw std::invalid_argument("sample_k: k must be >= 1");
  out.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(k), kNil);
  const Rng root(seed);
#pragma omp parallel for schedule(dynamic, 512)
  for (vid_t u = 0; u < n; ++u) {
    const std::span<const vid_t> nbrs = neighbors_of(u);
    if (nbrs.empty()) continue;
    Rng rng = root.fork(salt ^ static_cast<std::uint64_t>(u));
    auto* slot = out.data() + static_cast<std::size_t>(u) * static_cast<std::size_t>(k);

    if (static_cast<std::size_t>(k) >= nbrs.size()) {
      // Take the whole neighbourhood.
      for (std::size_t t = 0; t < nbrs.size(); ++t) slot[t] = nbrs[t];
      continue;
    }
    double total = 0.0;
    for (const vid_t v : nbrs) total += weight[static_cast<std::size_t>(v)];
    int filled = 0;
    for (int attempt = 0; attempt < 8 * k && filled < k; ++attempt) {
      vid_t picked;
      if (total <= 0.0) {
        picked = nbrs[static_cast<std::size_t>(rng.next_below(nbrs.size()))];
      } else {
        const double r = rng.next_double_open0() * total;
        double acc = 0.0;
        picked = nbrs.back();
        for (const vid_t v : nbrs) {
          acc += weight[static_cast<std::size_t>(v)];
          if (acc >= r) {
            picked = v;
            break;
          }
        }
      }
      bool duplicate = false;
      for (int t = 0; t < filled; ++t) duplicate |= (slot[t] == picked);
      if (!duplicate) slot[filled++] = picked;
    }
  }
}

} // namespace

std::vector<vid_t> sample_row_choices_k(const BipartiteGraph& g,
                                        const std::vector<double>& dc, int k,
                                        std::uint64_t seed) {
  std::vector<vid_t> out;
  sample_row_choices_k(g, dc, k, seed, out);
  return out;
}

void sample_row_choices_k(const BipartiteGraph& g, const std::vector<double>& dc, int k,
                          std::uint64_t seed, std::vector<vid_t>& out) {
  if (dc.size() != static_cast<std::size_t>(g.num_cols()))
    throw std::invalid_argument("sample_row_choices_k: dc size mismatch");
  sample_k(
      g.num_rows(), [&](vid_t i) { return g.row_neighbors(i); }, dc, k, seed,
      0x6b4f55545f524f57ull, out);
}

std::vector<vid_t> sample_col_choices_k(const BipartiteGraph& g,
                                        const std::vector<double>& dr, int k,
                                        std::uint64_t seed) {
  std::vector<vid_t> out;
  sample_col_choices_k(g, dr, k, seed, out);
  return out;
}

void sample_col_choices_k(const BipartiteGraph& g, const std::vector<double>& dr, int k,
                          std::uint64_t seed, std::vector<vid_t>& out) {
  if (dr.size() != static_cast<std::size_t>(g.num_rows()))
    throw std::invalid_argument("sample_col_choices_k: dr size mismatch");
  sample_k(
      g.num_cols(), [&](vid_t j) { return g.col_neighbors(j); }, dr, k, seed,
      0x6b4f55545f434f4cull, out);
}

namespace {

/// Feeds both sides' picks into `b` (reset to g's dimensions by the caller).
void add_k_out_edges(GraphBuilder& b, const BipartiteGraph& g,
                     const std::vector<vid_t>& row_picks,
                     const std::vector<vid_t>& col_picks, int k) {
  b.reserve((static_cast<std::size_t>(g.num_rows()) + g.num_cols()) *
            static_cast<std::size_t>(k));
  for (vid_t i = 0; i < g.num_rows(); ++i)
    for (int t = 0; t < k; ++t) {
      const vid_t j = row_picks[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(t)];
      if (j != kNil) b.add_edge(i, j);
    }
  for (vid_t j = 0; j < g.num_cols(); ++j)
    for (int t = 0; t < k; ++t) {
      const vid_t i = col_picks[static_cast<std::size_t>(j) * k + static_cast<std::size_t>(t)];
      if (i != kNil) b.add_edge(i, j);
    }
}

} // namespace

BipartiteGraph k_out_subgraph(const BipartiteGraph& g, const ScalingResult& scaling,
                              int k, std::uint64_t seed) {
  return k_out_subgraph_ws(g, scaling, k, seed, Workspace::for_this_thread());
}

BipartiteGraph k_out_subgraph_ws(const BipartiteGraph& g, const ScalingResult& scaling,
                                 int k, std::uint64_t seed, Workspace& ws) {
  BipartiteGraph out;
  k_out_subgraph_ws(g, scaling, k, seed, ws, out);
  return out;
}

void k_out_subgraph_ws(const BipartiteGraph& g, const ScalingResult& scaling, int k,
                       std::uint64_t seed, Workspace& ws, BipartiteGraph& out) {
  std::vector<vid_t>& row_picks = ws.buf<vid_t>("kout.row_picks");
  std::vector<vid_t>& col_picks = ws.buf<vid_t>("kout.col_picks");
  sample_row_choices_k(g, scaling.dc, k, seed, row_picks);
  sample_col_choices_k(g, scaling.dr, k, seed + 0x9e3779b97f4a7c15ULL, col_picks);
  GraphBuilder& b = ws.obj<GraphBuilder>("kout.builder");
  b.reset(g.num_rows(), g.num_cols());
  add_k_out_edges(b, g, row_picks, col_picks, k);
  b.build_into(out);
}

Matching k_out_match(const BipartiteGraph& g, int scaling_iterations, int k,
                     std::uint64_t seed) {
  Matching m;
  k_out_match_ws(g, scaling_iterations, k, seed, Workspace::for_this_thread(), m);
  return m;
}

void k_out_match_ws(const BipartiteGraph& g, int scaling_iterations, int k,
                    std::uint64_t seed, Workspace& ws, Matching& out) {
  ScalingOptions opts;
  opts.max_iterations = scaling_iterations;
  ScalingResult& scaling = ws.obj<ScalingResult>("kout.scaling");
  if (scaling_iterations > 0)
    scale_sinkhorn_knopp_ws(g, opts, ws, scaling);
  else
    identity_scaling_ws(g, ws, scaling, /*compute_error=*/false);
  BipartiteGraph& sub = ws.obj<BipartiteGraph>("kout.subgraph");
  k_out_subgraph_ws(g, scaling, k, seed, ws, sub);
  hopcroft_karp_ws(sub, ws, out);
}

} // namespace bmh
