#pragma once
/// \file two_sided.hpp
/// \brief TwoSidedMatch (paper Algorithm 3): the conjectured
/// 0.866-approximation heuristic.
///
/// Every row picks a column and every column picks a row from the scaled
/// probability densities; the union of the ≤ 2n chosen edges forms a
/// "1-out ∪ 1-in" subgraph on which Karp–Sipser is exact (Lemmas 1–3), run
/// here with the specialized parallel KarpSipserMT. No explicit subgraph is
/// materialized: the two choice arrays *are* the graph.

#include <cstdint>
#include <vector>

#include "core/karp_sipser_mt.hpp"
#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"
#include "scaling/scaling.hpp"

namespace bmh {

/// The per-side random choices (local ids; kNil for empty rows/columns).
struct TwoSidedChoices {
  std::vector<vid_t> rchoice;  ///< column picked by each row
  std::vector<vid_t> cchoice;  ///< row picked by each column
};

/// Samples the two choice vectors from the scaled densities (lines 2–7 of
/// Algorithm 3). Exposed separately so the analysis module can inspect the
/// subgraph structure (Lemma 1) and benches can time phases independently.
[[nodiscard]] TwoSidedChoices sample_two_sided_choices(const BipartiteGraph& g,
                                                       const ScalingResult& scaling,
                                                       std::uint64_t seed);

/// Runs Algorithm 3 on a pre-scaled matrix.
[[nodiscard]] Matching two_sided_from_scaling(const BipartiteGraph& g,
                                              const ScalingResult& scaling,
                                              std::uint64_t seed,
                                              KarpSipserMTStats* stats = nullptr);

/// Convenience: Sinkhorn–Knopp for `scaling_iterations` then Algorithm 3.
/// `scaling_iterations = 0` gives the uniform-pick baseline of the tables.
[[nodiscard]] Matching two_sided_match(const BipartiteGraph& g, int scaling_iterations,
                                       std::uint64_t seed,
                                       KarpSipserMTStats* stats = nullptr);

/// Workspace-aware variants: choices, the unified array, KarpSipserMT's
/// arrays (and for the convenience form the scaling vectors) are leased from
/// `ws`; the result lands in `out`. Warm calls are allocation-free and the
/// output is identical to the classic entry points for the same seed.
void sample_two_sided_choices_ws(const BipartiteGraph& g, const ScalingResult& scaling,
                                 std::uint64_t seed, TwoSidedChoices& out);
void two_sided_from_scaling_ws(const BipartiteGraph& g, const ScalingResult& scaling,
                               std::uint64_t seed, KarpSipserMTStats* stats,
                               Workspace& ws, Matching& out);
void two_sided_match_ws(const BipartiteGraph& g, int scaling_iterations,
                        std::uint64_t seed, KarpSipserMTStats* stats, Workspace& ws,
                        Matching& out);

} // namespace bmh
