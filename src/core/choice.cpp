#include "core/choice.hpp"

#include <span>
#include <stdexcept>

#include "util/rng.hpp"

namespace bmh {

namespace {

/// Inverse-CDF pick over `weights[nbrs[k]]`. Guards against floating-point
/// drift by falling back to the last neighbour when the walk overshoots.
/// Writes into `choice` (capacity reused by workspace-leased callers).
template <typename NeighborsOf>
void sample_side(vid_t n, NeighborsOf&& neighbors_of,
                 const std::vector<double>& weight, std::uint64_t seed,
                 std::uint64_t lane_salt, std::vector<vid_t>& choice) {
  choice.assign(static_cast<std::size_t>(n), kNil);
  const Rng root(seed);
#pragma omp parallel for schedule(dynamic, 512)
  for (vid_t u = 0; u < n; ++u) {
    const std::span<const vid_t> nbrs = neighbors_of(u);
    if (nbrs.empty()) continue;
    Rng rng = root.fork(lane_salt ^ static_cast<std::uint64_t>(u));
    double total = 0.0;
    for (const vid_t v : nbrs) total += weight[static_cast<std::size_t>(v)];
    if (total <= 0.0) {
      // Degenerate multipliers (all zero): fall back to uniform.
      choice[static_cast<std::size_t>(u)] =
          nbrs[static_cast<std::size_t>(rng.next_below(nbrs.size()))];
      continue;
    }
    const double r = rng.next_double_open0() * total;
    double acc = 0.0;
    vid_t picked = nbrs.back();
    for (const vid_t v : nbrs) {
      acc += weight[static_cast<std::size_t>(v)];
      if (acc >= r) {
        picked = v;
        break;
      }
    }
    choice[static_cast<std::size_t>(u)] = picked;
  }
}

} // namespace

std::vector<vid_t> sample_row_choices(const BipartiteGraph& g,
                                      const std::vector<double>& dc,
                                      std::uint64_t seed) {
  std::vector<vid_t> choice;
  sample_row_choices(g, dc, seed, choice);
  return choice;
}

void sample_row_choices(const BipartiteGraph& g, const std::vector<double>& dc,
                        std::uint64_t seed, std::vector<vid_t>& out) {
  if (dc.size() != static_cast<std::size_t>(g.num_cols()))
    throw std::invalid_argument("sample_row_choices: dc size mismatch");
  sample_side(
      g.num_rows(), [&](vid_t i) { return g.row_neighbors(i); }, dc, seed,
      0x524f575f5349444full /* "ROW_SIDO" salt: row-side lanes */, out);
}

std::vector<vid_t> sample_col_choices(const BipartiteGraph& g,
                                      const std::vector<double>& dr,
                                      std::uint64_t seed) {
  std::vector<vid_t> choice;
  sample_col_choices(g, dr, seed, choice);
  return choice;
}

void sample_col_choices(const BipartiteGraph& g, const std::vector<double>& dr,
                        std::uint64_t seed, std::vector<vid_t>& out) {
  if (dr.size() != static_cast<std::size_t>(g.num_rows()))
    throw std::invalid_argument("sample_col_choices: dr size mismatch");
  sample_side(
      g.num_cols(), [&](vid_t j) { return g.col_neighbors(j); }, dr, seed,
      0x434f4c5f53494445ull /* "COL_SIDE" salt: column-side lanes */, out);
}

} // namespace bmh
