#include "core/workspace.hpp"

namespace bmh {

Workspace& Workspace::for_this_thread() {
  static thread_local Workspace workspace;
  return workspace;
}

void Workspace::throw_type_mismatch(std::string_view tag) {
  throw std::logic_error("workspace tag '" + std::string(tag) +
                         "' re-leased with a different type");
}

} // namespace bmh
