#pragma once
/// \file choice.hpp
/// \brief Randomized neighbour selection from the scaled probability
/// density functions (the sampling step shared by Algorithms 2 and 3).
///
/// Row i picks column j in A_i* with probability s_ij / sum_l s_il where
/// s_ij = dr[i]·dc[j]. The dr[i] factor is common to the whole row, so the
/// density reduces to dc[j] / sum_l dc[l] — each row only needs the column
/// multipliers (and symmetrically columns only need dr). Sampling is a
/// single prefix-sum walk over the adjacency list: draw r uniform in
/// (0, rowsum], return the first neighbour where the running sum reaches r
/// (the inverse-CDF method the paper describes in §3.1).

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "scaling/scaling.hpp"

namespace bmh {

/// One column choice per row, sampled ∝ dc over each row's neighbours.
/// Rows with no neighbours get kNil. Deterministic in (graph, dc, seed) and
/// independent of the thread count (per-row forked streams).
[[nodiscard]] std::vector<vid_t> sample_row_choices(const BipartiteGraph& g,
                                                    const std::vector<double>& dc,
                                                    std::uint64_t seed);

/// One row choice per column, sampled ∝ dr over each column's neighbours.
[[nodiscard]] std::vector<vid_t> sample_col_choices(const BipartiteGraph& g,
                                                    const std::vector<double>& dr,
                                                    std::uint64_t seed);

/// Allocation-free variants: the choices land in `out` (capacity reused —
/// pass a workspace-leased vector). Identical output for the same seed.
void sample_row_choices(const BipartiteGraph& g, const std::vector<double>& dc,
                        std::uint64_t seed, std::vector<vid_t>& out);
void sample_col_choices(const BipartiteGraph& g, const std::vector<double>& dr,
                        std::uint64_t seed, std::vector<vid_t>& out);

} // namespace bmh
