#include "core/profile.hpp"

#include "core/choice.hpp"
#include "core/one_sided.hpp"
#include "core/two_sided.hpp"
#include "scaling/sinkhorn_knopp.hpp"
#include "util/timer.hpp"

namespace bmh {

OneSidedProfile profile_one_sided(const BipartiteGraph& g, int scaling_iterations,
                                  std::uint64_t seed) {
  OneSidedProfile p;
  Timer timer;
  const ScalingResult scaling = scaling_iterations > 0
                                    ? scale_sinkhorn_knopp(g, {scaling_iterations, 0.0})
                                    : identity_scaling(g);
  p.scaling_seconds = timer.seconds();
  p.scaling_iterations = scaling.iterations;
  p.scaling_error = scaling.error;

  timer.reset();
  p.matching = one_sided_from_scaling(g, scaling, seed);
  p.matching_seconds = timer.seconds();
  return p;
}

TwoSidedProfile profile_two_sided(const BipartiteGraph& g, int scaling_iterations,
                                  std::uint64_t seed) {
  TwoSidedProfile p;
  Timer timer;
  const ScalingResult scaling = scaling_iterations > 0
                                    ? scale_sinkhorn_knopp(g, {scaling_iterations, 0.0})
                                    : identity_scaling(g);
  p.scaling_seconds = timer.seconds();
  p.scaling_iterations = scaling.iterations;
  p.scaling_error = scaling.error;

  timer.reset();
  const TwoSidedChoices choices = sample_two_sided_choices(g, scaling, seed);
  const std::vector<vid_t> unified =
      unify_choices(g.num_rows(), g.num_cols(), choices.rchoice, choices.cchoice);
  p.sampling_seconds = timer.seconds();

  timer.reset();
  p.matching = karp_sipser_mt(g.num_rows(), g.num_cols(), unified, &p.ksmt);
  p.ksmt_seconds = timer.seconds();
  return p;
}

} // namespace bmh
