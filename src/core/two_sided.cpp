#include "core/two_sided.hpp"

#include "core/choice.hpp"
#include "scaling/sinkhorn_knopp.hpp"

namespace bmh {

TwoSidedChoices sample_two_sided_choices(const BipartiteGraph& g,
                                         const ScalingResult& scaling,
                                         std::uint64_t seed) {
  TwoSidedChoices choices;
  choices.rchoice = sample_row_choices(g, scaling.dc, seed);
  choices.cchoice = sample_col_choices(g, scaling.dr, seed + 0x9e3779b97f4a7c15ULL);
  return choices;
}

Matching two_sided_from_scaling(const BipartiteGraph& g, const ScalingResult& scaling,
                                std::uint64_t seed, KarpSipserMTStats* stats) {
  const TwoSidedChoices choices = sample_two_sided_choices(g, scaling, seed);
  const std::vector<vid_t> unified =
      unify_choices(g.num_rows(), g.num_cols(), choices.rchoice, choices.cchoice);
  return karp_sipser_mt(g.num_rows(), g.num_cols(), unified, stats);
}

Matching two_sided_match(const BipartiteGraph& g, int scaling_iterations,
                         std::uint64_t seed, KarpSipserMTStats* stats) {
  ScalingOptions opts;
  opts.max_iterations = scaling_iterations;
  const ScalingResult scaling =
      scaling_iterations > 0 ? scale_sinkhorn_knopp(g, opts) : identity_scaling(g);
  return two_sided_from_scaling(g, scaling, seed, stats);
}

} // namespace bmh
