#include "core/two_sided.hpp"

#include "core/choice.hpp"
#include "core/workspace.hpp"
#include "scaling/sinkhorn_knopp.hpp"

namespace bmh {

TwoSidedChoices sample_two_sided_choices(const BipartiteGraph& g,
                                         const ScalingResult& scaling,
                                         std::uint64_t seed) {
  TwoSidedChoices choices;
  sample_two_sided_choices_ws(g, scaling, seed, choices);
  return choices;
}

void sample_two_sided_choices_ws(const BipartiteGraph& g, const ScalingResult& scaling,
                                 std::uint64_t seed, TwoSidedChoices& out) {
  sample_row_choices(g, scaling.dc, seed, out.rchoice);
  sample_col_choices(g, scaling.dr, seed + 0x9e3779b97f4a7c15ULL, out.cchoice);
}

Matching two_sided_from_scaling(const BipartiteGraph& g, const ScalingResult& scaling,
                                std::uint64_t seed, KarpSipserMTStats* stats) {
  Matching m;
  two_sided_from_scaling_ws(g, scaling, seed, stats, Workspace::for_this_thread(), m);
  return m;
}

void two_sided_from_scaling_ws(const BipartiteGraph& g, const ScalingResult& scaling,
                               std::uint64_t seed, KarpSipserMTStats* stats,
                               Workspace& ws, Matching& out) {
  TwoSidedChoices& choices = ws.obj<TwoSidedChoices>("ts.choices");
  sample_two_sided_choices_ws(g, scaling, seed, choices);
  std::vector<vid_t>& unified = ws.buf<vid_t>("ts.unified");
  unify_choices(g.num_rows(), g.num_cols(), choices.rchoice, choices.cchoice, unified);
  karp_sipser_mt_ws(g.num_rows(), g.num_cols(), unified, stats, ws, out);
}

Matching two_sided_match(const BipartiteGraph& g, int scaling_iterations,
                         std::uint64_t seed, KarpSipserMTStats* stats) {
  Matching m;
  two_sided_match_ws(g, scaling_iterations, seed, stats, Workspace::for_this_thread(), m);
  return m;
}

void two_sided_match_ws(const BipartiteGraph& g, int scaling_iterations,
                        std::uint64_t seed, KarpSipserMTStats* stats, Workspace& ws,
                        Matching& out) {
  ScalingOptions opts;
  opts.max_iterations = scaling_iterations;
  ScalingResult& scaling = ws.obj<ScalingResult>("ts.scaling");
  if (scaling_iterations > 0)
    scale_sinkhorn_knopp_ws(g, opts, ws, scaling);
  else
    identity_scaling_ws(g, ws, scaling, /*compute_error=*/false);
  two_sided_from_scaling_ws(g, scaling, seed, stats, ws, out);
}

} // namespace bmh
