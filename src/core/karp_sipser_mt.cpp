#include "core/karp_sipser_mt.hpp"

#include <atomic>
#include <stdexcept>

#include "core/workspace.hpp"

namespace bmh {

std::vector<vid_t> unify_choices(vid_t m, vid_t n, std::span<const vid_t> rchoice,
                                 std::span<const vid_t> cchoice) {
  std::vector<vid_t> choice;
  unify_choices(m, n, rchoice, cchoice, choice);
  return choice;
}

void unify_choices(vid_t m, vid_t n, std::span<const vid_t> rchoice,
                   std::span<const vid_t> cchoice, std::vector<vid_t>& out) {
  if (rchoice.size() != static_cast<std::size_t>(m) ||
      cchoice.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("unify_choices: size mismatch");
  out.resize(static_cast<std::size_t>(m) + static_cast<std::size_t>(n));
  for (vid_t i = 0; i < m; ++i) {
    const vid_t j = rchoice[static_cast<std::size_t>(i)];
    if (j != kNil && (j < 0 || j >= n))
      throw std::out_of_range("unify_choices: row choice out of range");
    out[static_cast<std::size_t>(i)] = (j == kNil) ? kNil : m + j;
  }
  for (vid_t j = 0; j < n; ++j) {
    const vid_t i = cchoice[static_cast<std::size_t>(j)];
    if (i != kNil && (i < 0 || i >= m))
      throw std::out_of_range("unify_choices: column choice out of range");
    out[static_cast<std::size_t>(m) + static_cast<std::size_t>(j)] = i;
  }
}

Matching karp_sipser_mt(vid_t m, vid_t n, std::span<const vid_t> choice,
                        KarpSipserMTStats* stats) {
  Matching result;
  karp_sipser_mt_ws(m, n, choice, stats, Workspace::for_this_thread(), result);
  return result;
}

void karp_sipser_mt_ws(vid_t m, vid_t n, std::span<const vid_t> choice,
                       KarpSipserMTStats* stats, Workspace& ws, Matching& out) {
  const vid_t total = m + n;
  if (m < 0 || n < 0)
    throw std::invalid_argument("karp_sipser_mt: negative dimension");
  if (choice.size() != static_cast<std::size_t>(total))
    throw std::invalid_argument("karp_sipser_mt: choice size mismatch");
  // The graph must be bipartite: rows choose columns and vice versa. A
  // same-side choice would silently corrupt the phase invariants, so it is
  // rejected up front (O(n) scan, negligible next to the phases).
  bool well_formed = true;
#pragma omp parallel for schedule(static) reduction(&& : well_formed)
  for (vid_t u = 0; u < total; ++u) {
    const vid_t v = choice[static_cast<std::size_t>(u)];
    if (v == kNil) continue;
    const bool u_is_row = u < m;
    const bool v_is_col = v >= m && v < total;
    well_formed = well_formed && (u_is_row ? v_is_col : (v >= 0 && v < m));
  }
  if (!well_formed)
    throw std::invalid_argument("karp_sipser_mt: choice crosses to the same side");

  // match/deg are concurrently updated; mark only ever transitions 1 -> 0
  // (and is read after the implicit barrier), so relaxed ops suffice there.
  // Plain vectors driven through std::atomic_ref so the storage can live in
  // the workspace (std::vector<std::atomic<T>> cannot be resized).
  std::vector<vid_t>& match = ws.vec<vid_t>("ksmt.match", static_cast<std::size_t>(total));
  std::vector<vid_t>& deg = ws.vec<vid_t>("ksmt.deg", static_cast<std::size_t>(total));
  std::vector<char>& mark = ws.vec<char>("ksmt.mark", static_cast<std::size_t>(total));

#pragma omp parallel for schedule(static)
  for (vid_t u = 0; u < total; ++u) {
    std::atomic_ref<vid_t>(match[static_cast<std::size_t>(u)])
        .store(kNil, std::memory_order_relaxed);
    const bool isolated = choice[static_cast<std::size_t>(u)] == kNil;
    std::atomic_ref<char>(mark[static_cast<std::size_t>(u)])
        .store(isolated ? 0 : 1, std::memory_order_relaxed);
    std::atomic_ref<vid_t>(deg[static_cast<std::size_t>(u)])
        .store(isolated ? 0 : 1, std::memory_order_relaxed);
  }

  // deg[v] = 1 (v's own choice edge) + number of vertices that chose v,
  // counting a reciprocal pair {u ↔ v} as the single edge it is.
#pragma omp parallel for schedule(static)
  for (vid_t u = 0; u < total; ++u) {
    const vid_t v = choice[static_cast<std::size_t>(u)];
    if (v == kNil) continue;
    std::atomic_ref<char>(mark[static_cast<std::size_t>(v)])
        .store(0, std::memory_order_relaxed);
    if (choice[static_cast<std::size_t>(v)] != u)
      std::atomic_ref<vid_t>(deg[static_cast<std::size_t>(v)])
          .fetch_add(1, std::memory_order_relaxed);
  }

  // ---- Phase 1: consume out-one chains (paper lines 10–23). ----
  //
  // A note on a benign race: a reciprocal 2-clique {x, y} (x and y chose
  // each other) that becomes out-one from both ends simultaneously can be
  // consumed by two threads at once — thread A (curr = x) CASes match[y]
  // while thread B (curr = y) CASes match[x]. Both succeed and both then
  // store the *same* pair, so the final state is identical; this is why
  // the phase match counts are derived from the match array between the
  // phases rather than incremented inside the racy loop.
#pragma omp parallel for schedule(guided)
  for (vid_t u = 0; u < total; ++u) {
    if (std::atomic_ref<char>(mark[static_cast<std::size_t>(u)])
            .load(std::memory_order_relaxed) != 1)
      continue;
    vid_t curr = u;
    while (curr != kNil) {
      const vid_t nbr = choice[static_cast<std::size_t>(curr)];
      vid_t expected = kNil;
      if (std::atomic_ref<vid_t>(match[static_cast<std::size_t>(nbr)])
              .compare_exchange_strong(
                  expected, curr,
                  std::memory_order_acq_rel,     // win: publish claim of nbr
                  std::memory_order_acquire)) {  // lose: see winner's writes
        // We won nbr: (curr, nbr) is an optimal degree-one match.
        std::atomic_ref<vid_t>(match[static_cast<std::size_t>(curr)])
            // release pairs with the acquire probes on other threads
            .store(nbr, std::memory_order_release);
        const vid_t next = choice[static_cast<std::size_t>(nbr)];
        curr = kNil;
        if (next != kNil &&
            std::atomic_ref<vid_t>(match[static_cast<std::size_t>(next)])
                    // acquire pairs with the winners' release match stores
                    .load(std::memory_order_acquire) == kNil) {
          // nbr chose `next`; nbr is gone, so next loses one in-chooser.
          // AddAndFetch elects exactly one thread to continue with next as
          // the (single, by Lemma 4) newly created out-one vertex.
          if (std::atomic_ref<vid_t>(deg[static_cast<std::size_t>(next)])
                      // acq_rel: the elected thread sees prior decrementers
                      .fetch_sub(1, std::memory_order_acq_rel) -
                  1 ==
              1)
            curr = next;
        }
      } else {
        // Another thread matched nbr first; curr has no other neighbour
        // worth pursuing here (it was out-one), so this chain ends.
        curr = kNil;
      }
    }
  }

  // Snapshot the phase-1 cardinality (the parallel region above ended with
  // an implicit barrier, so the match array is settled).
  vid_t phase1 = 0;
  if (stats != nullptr) {
#pragma omp parallel for schedule(static) reduction(+ : phase1)
    for (vid_t i = 0; i < m; ++i)
      if (match[static_cast<std::size_t>(i)] != kNil) ++phase1;
  }

  // ---- Phase 2: remaining components are singletons, 2-cliques, or simple
  // cycles; each free column takes its own choice (paper lines 24–28). ----
#pragma omp parallel for schedule(static)
  for (vid_t u = m; u < total; ++u) {
    const vid_t v = choice[static_cast<std::size_t>(u)];
    if (v == kNil) continue;
    if (std::atomic_ref<vid_t>(match[static_cast<std::size_t>(u)])
                .load(std::memory_order_relaxed) == kNil &&
        std::atomic_ref<vid_t>(match[static_cast<std::size_t>(v)])
                .load(std::memory_order_relaxed) == kNil) {
      std::atomic_ref<vid_t>(match[static_cast<std::size_t>(u)])
          .store(v, std::memory_order_relaxed);
      std::atomic_ref<vid_t>(match[static_cast<std::size_t>(v)])
          .store(u, std::memory_order_relaxed);
    }
  }

  if (stats != nullptr) {
    vid_t final_count = 0;
#pragma omp parallel for schedule(static) reduction(+ : final_count)
    for (vid_t i = 0; i < m; ++i)
      if (match[static_cast<std::size_t>(i)] != kNil) ++final_count;
    stats->phase1_matches = phase1;
    stats->phase2_matches = final_count - phase1;
  }

  out.reset(m, n);
#pragma omp parallel for schedule(static)
  for (vid_t i = 0; i < m; ++i) {
    const vid_t p = match[static_cast<std::size_t>(i)];
    if (p != kNil) {
      out.row_match[static_cast<std::size_t>(i)] = p - m;
      out.col_match[static_cast<std::size_t>(p - m)] = i;
    }
  }
}

} // namespace bmh
