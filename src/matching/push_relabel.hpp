#pragma once
/// \file push_relabel.hpp
/// \brief Push-relabel maximum bipartite matching (the paper's ref. [21]:
/// Kaya, Langguth, Manne, Uçar, "Push-relabel based algorithms for the
/// maximum transversal problem").
///
/// A third exact solver, independent of the augmenting-path family
/// (Hopcroft–Karp, MC21), used to cross-validate sprank values in the
/// tests and as another jump-start target in the benches.
///
/// Formulation: each free row holds one unit of excess; rows are pushed to
/// columns along admissible arcs (psi(row) = psi(col) + 1). Pushing onto a
/// matched column kicks the previous owner back to excess (a "double
/// push"); relabeling sets psi(row) = min over neighbours + 1. Rows whose
/// label reaches 2·n are provably unmatchable and retire. With the
/// FIFO processing order and the standard greedy initialization the
/// complexity is O(n·tau).

#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

/// Computes a maximum matching with the push-relabel method, optionally
/// warm-started from `initial` (must be a valid matching of `g`).
[[nodiscard]] Matching push_relabel(const BipartiteGraph& g,
                                    const Matching* initial = nullptr);

/// Workspace-aware cold solve into `out` (capacity reused; warm calls are
/// allocation-free).
void push_relabel_ws(const BipartiteGraph& g, Workspace& ws, Matching& out);

/// In-place completion of `m` to a maximum matching. `m` must be a valid
/// matching of `g` (debug-asserted, not checked in release builds).
void push_relabel_augment_ws(const BipartiteGraph& g, Matching& m, Workspace& ws);

} // namespace bmh
