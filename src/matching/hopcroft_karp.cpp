#include "matching/hopcroft_karp.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/workspace.hpp"

namespace bmh {

namespace {

constexpr vid_t kInf = std::numeric_limits<vid_t>::max();

/// Simple greedy pass: each free row takes its first free neighbour.
/// Cuts the number of Hopcroft–Karp phases roughly in half in practice.
void greedy_init(const BipartiteGraph& g, Matching& m) {
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (m.row_matched(i)) continue;
    for (const vid_t j : g.row_neighbors(i)) {
      if (!m.col_matched(j)) {
        m.match(i, j);
        break;
      }
    }
  }
}

class HopcroftKarp {
public:
  HopcroftKarp(const BipartiteGraph& g, Workspace& ws)
      : g_(g),
        dist_(ws.vec<vid_t>("hk.dist", static_cast<std::size_t>(g.num_rows()))),
        cursor_(ws.vec<eid_t>("hk.cursor", static_cast<std::size_t>(g.num_rows()))),
        queue_(ws.buf<vid_t>("hk.queue")),
        row_stack_(ws.buf<vid_t>("hk.row_stack")),
        col_stack_(ws.buf<vid_t>("hk.col_stack")) {
    queue_.reserve(static_cast<std::size_t>(g.num_rows()));
  }

  void solve(Matching& m) {
    while (bfs(m)) {
      for (vid_t i = 0; i < g_.num_rows(); ++i)
        cursor_[static_cast<std::size_t>(i)] = g_.row_ptr()[i];
      for (vid_t i = 0; i < g_.num_rows(); ++i)
        if (!m.row_matched(i)) augment(i, m);
    }
  }

private:
  /// Layered BFS from all free rows; true iff a free column is reachable.
  bool bfs(const Matching& m) {
    queue_.clear();
    for (vid_t i = 0; i < g_.num_rows(); ++i) {
      if (!m.row_matched(i)) {
        dist_[static_cast<std::size_t>(i)] = 0;
        queue_.push_back(i);
      } else {
        dist_[static_cast<std::size_t>(i)] = kInf;
      }
    }
    bool reachable = false;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const vid_t u = queue_[head];
      for (const vid_t v : g_.row_neighbors(u)) {
        const vid_t w = m.col_match[static_cast<std::size_t>(v)];
        if (w == kNil) {
          reachable = true;
        } else if (dist_[static_cast<std::size_t>(w)] == kInf) {
          dist_[static_cast<std::size_t>(w)] = dist_[static_cast<std::size_t>(u)] + 1;
          queue_.push_back(w);
        }
      }
    }
    return reachable;
  }

  /// Iterative layered DFS with adjacency cursors (Dinic-style); augments
  /// along the found path. Explicit stacks keep huge sparse instances from
  /// overflowing the call stack.
  void augment(vid_t root, Matching& m) {
    row_stack_.assign(1, root);
    col_stack_.clear();
    while (!row_stack_.empty()) {
      const vid_t x = row_stack_.back();
      bool advanced = false;
      eid_t& cur = cursor_[static_cast<std::size_t>(x)];
      const eid_t end = g_.row_ptr()[x + 1];
      while (cur < end) {
        const vid_t v = g_.col_idx()[static_cast<std::size_t>(cur++)];
        const vid_t w = m.col_match[static_cast<std::size_t>(v)];
        if (w == kNil) {
          // Free column: flip the whole alternating path recorded on the
          // stacks (row_stack_[k] was reached through col_stack_[k-1]).
          m.rematch(x, v);
          for (std::size_t k = row_stack_.size() - 1; k-- > 0;)
            m.rematch(row_stack_[k], col_stack_[k]);
          return;
        }
        if (dist_[static_cast<std::size_t>(w)] ==
            dist_[static_cast<std::size_t>(x)] + 1) {
          col_stack_.push_back(v);
          row_stack_.push_back(w);
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        dist_[static_cast<std::size_t>(x)] = kInf;  // dead end for this phase
        row_stack_.pop_back();
        if (!col_stack_.empty()) col_stack_.pop_back();
      }
    }
  }

  const BipartiteGraph& g_;
  std::vector<vid_t>& dist_;
  std::vector<eid_t>& cursor_;
  std::vector<vid_t>& queue_;
  std::vector<vid_t>& row_stack_;
  std::vector<vid_t>& col_stack_;
};

} // namespace

Matching hopcroft_karp(const BipartiteGraph& g, const Matching* initial) {
  Matching m(g.num_rows(), g.num_cols());
  if (initial != nullptr) {
    if (!is_valid_matching(g, *initial))
      throw std::invalid_argument("hopcroft_karp: initial matching invalid");
    m = *initial;
  }
  hopcroft_karp_augment_ws(g, m, Workspace::for_this_thread());
  return m;
}

void hopcroft_karp_ws(const BipartiteGraph& g, Workspace& ws, Matching& out) {
  out.reset(g.num_rows(), g.num_cols());
  hopcroft_karp_augment_ws(g, out, ws);
}

void hopcroft_karp_augment_ws(const BipartiteGraph& g, Matching& m, Workspace& ws) {
  assert(is_valid_matching(g, m));
  greedy_init(g, m);
  HopcroftKarp solver(g, ws);
  solver.solve(m);
}

vid_t sprank(const BipartiteGraph& g) {
  return sprank_ws(g, Workspace::for_this_thread());
}

vid_t sprank_ws(const BipartiteGraph& g, Workspace& ws) {
  Matching& scratch = ws.obj<Matching>("hk.sprank_matching");
  hopcroft_karp_ws(g, ws, scratch);
  return scratch.cardinality();
}

} // namespace bmh
