#include "matching/matching.hpp"

#include <sstream>
#include <stdexcept>

namespace bmh {

vid_t Matching::cardinality() const noexcept {
  vid_t count = 0;
  const auto n = static_cast<vid_t>(row_match.size());
#pragma omp parallel for schedule(static) reduction(+ : count)
  for (vid_t i = 0; i < n; ++i)
    if (row_match[static_cast<std::size_t>(i)] != kNil) ++count;
  return count;
}

Matching matching_from_col_view(vid_t num_rows, const std::vector<vid_t>& col_match) {
  Matching m;
  matching_from_col_view(num_rows, col_match, m);
  return m;
}

void matching_from_col_view(vid_t num_rows, const std::vector<vid_t>& col_match,
                            Matching& out) {
  out.row_match.assign(static_cast<std::size_t>(num_rows), kNil);
  out.col_match = col_match;
  const auto num_cols = static_cast<vid_t>(col_match.size());
  for (vid_t j = 0; j < num_cols; ++j) {
    const vid_t i = col_match[static_cast<std::size_t>(j)];
    if (i == kNil) continue;
    if (i < 0 || i >= num_rows) {
      std::ostringstream os;
      os << "matching_from_col_view: col_match[" << j << "] = " << i
         << " is out of range [0, " << num_rows << ")";
      throw std::out_of_range(os.str());
    }
    // Duplicate claims keep the last column's write (see the col-view test:
    // OneSidedMatch's racy writes never produce them, but the reconstruction
    // stays total on inconsistent views rather than throwing).
    out.row_match[static_cast<std::size_t>(i)] = j;
  }
}

std::string describe_matching_violation(const BipartiteGraph& g, const Matching& m) {
  std::ostringstream os;
  if (m.row_match.size() != static_cast<std::size_t>(g.num_rows())) {
    os << "row_match size " << m.row_match.size() << " != num_rows " << g.num_rows();
    return os.str();
  }
  if (m.col_match.size() != static_cast<std::size_t>(g.num_cols())) {
    os << "col_match size " << m.col_match.size() << " != num_cols " << g.num_cols();
    return os.str();
  }
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    const vid_t j = m.row_match[static_cast<std::size_t>(i)];
    if (j == kNil) continue;
    if (j < 0 || j >= g.num_cols()) {
      os << "row " << i << " matched to out-of-range column " << j;
      return os.str();
    }
    if (m.col_match[static_cast<std::size_t>(j)] != i) {
      os << "row " << i << " matched to column " << j << " but col_match[" << j
         << "] = " << m.col_match[static_cast<std::size_t>(j)];
      return os.str();
    }
    if (!g.has_edge(i, j)) {
      os << "matched pair (" << i << ", " << j << ") is not an edge";
      return os.str();
    }
  }
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    const vid_t i = m.col_match[static_cast<std::size_t>(j)];
    if (i == kNil) continue;
    if (i < 0 || i >= g.num_rows()) {
      os << "column " << j << " matched to out-of-range row " << i;
      return os.str();
    }
    if (m.row_match[static_cast<std::size_t>(i)] != j) {
      os << "column " << j << " matched to row " << i << " but row_match[" << i
         << "] = " << m.row_match[static_cast<std::size_t>(i)];
      return os.str();
    }
  }
  return {};
}

bool is_valid_matching(const BipartiteGraph& g, const Matching& m) {
  return describe_matching_violation(g, m).empty();
}

bool is_maximal_matching(const BipartiteGraph& g, const Matching& m) {
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (m.row_matched(i)) continue;
    for (const vid_t j : g.row_neighbors(i))
      if (!m.col_matched(j)) return false;
  }
  return true;
}

} // namespace bmh
