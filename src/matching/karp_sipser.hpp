#pragma once
/// \file karp_sipser.hpp
/// \brief The classic sequential Karp–Sipser heuristic (paper §2.1).
///
/// Phase 1 repeatedly matches a degree-one vertex with its unique neighbour
/// (an optimal decision) and removes both; Phase 2 picks a uniformly random
/// edge between two still-free vertices, matches it, and returns to Phase 1.
/// Runs in O(n + tau) amortized time.
///
/// This is the baseline the paper measures TwoSidedMatch against in
/// Table 1: on the adversarial family of Fig. 2, Phase 1 never fires and
/// the uniform random picks land in the full-but-useless R1×C1 block, so
/// its quality degrades as k grows, while TwoSidedMatch's scaling step
/// drives the probability of picking those entries to zero.

#include <cstdint>

#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

struct KarpSipserStats {
  vid_t phase1_matches = 0;  ///< optimal degree-one matches
  vid_t phase2_matches = 0;  ///< random-edge matches
  eid_t phase2_draws = 0;    ///< pool draws in Phase 2; every draw retires
                             ///< its pool entry, so this never exceeds the
                             ///< number of edges
};

/// Runs Karp–Sipser with the given random seed; `stats`, when non-null,
/// receives the per-phase counters (accumulated, not reset).
[[nodiscard]] Matching karp_sipser(const BipartiteGraph& g, std::uint64_t seed,
                                   KarpSipserStats* stats = nullptr);

/// Workspace-aware variant: all scratch is leased from `ws` and the result
/// is written into `out` (capacity reused), so a warm call performs no heap
/// allocation. Identical output to karp_sipser() for the same seed.
void karp_sipser_ws(const BipartiteGraph& g, std::uint64_t seed, KarpSipserStats* stats,
                    Workspace& ws, Matching& out);

} // namespace bmh
