#pragma once
/// \file greedy.hpp
/// \brief The "cheap matching" baselines reviewed in paper §2.1.
///
/// Three classic linear-time heuristics, all with worst-case guarantee 1/2
/// (the first two are the literature's two "cheap matching" variants; the
/// third is the common static-mindegree jump-start). They serve as
/// baselines against which OneSidedMatch's 0.632 and TwoSidedMatch's 0.866
/// are compared.

#include <cstdint>

#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

/// Cheap variant 1: visit the edges in uniformly random order; match the two
/// endpoints whenever both are still free. Guarantee 1/2 (Dyer–Frieze).
[[nodiscard]] Matching match_random_edges(const BipartiteGraph& g, std::uint64_t seed);

/// Cheap variant 2: repeatedly pick a random free vertex and match it with a
/// random free neighbour. Guarantee 1/2 + epsilon (Aronson et al.;
/// Poloczek–Szegedy).
[[nodiscard]] Matching match_random_vertices(const BipartiteGraph& g, std::uint64_t seed);

/// Static mindegree: process rows by nondecreasing degree, matching each to
/// its lowest-degree free neighbour. Deterministic.
[[nodiscard]] Matching match_min_degree(const BipartiteGraph& g);

/// Workspace-aware variants: scratch comes from `ws`, the result is written
/// into `out` (capacity reused); warm calls are allocation-free. Outputs are
/// identical to the classic entry points for the same seed.
void match_random_edges_ws(const BipartiteGraph& g, std::uint64_t seed, Workspace& ws,
                           Matching& out);
void match_random_vertices_ws(const BipartiteGraph& g, std::uint64_t seed, Workspace& ws,
                              Matching& out);
void match_min_degree_ws(const BipartiteGraph& g, Workspace& ws, Matching& out);

} // namespace bmh
