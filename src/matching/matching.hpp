#pragma once
/// \file matching.hpp
/// \brief The Matching value type and validity checking.

#include <cassert>
#include <string>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/types.hpp"

namespace bmh {

/// A (partial) matching stored from both sides: `row_match[i]` is the column
/// matched to row i (or kNil), `col_match[j]` the row matched to column j.
/// A valid matching keeps the two views consistent.
struct Matching {
  std::vector<vid_t> row_match;
  std::vector<vid_t> col_match;

  Matching() = default;
  Matching(vid_t num_rows, vid_t num_cols)
      : row_match(static_cast<std::size_t>(num_rows), kNil),
        col_match(static_cast<std::size_t>(num_cols), kNil) {}

  /// Re-dimensions to an all-free matching, reusing the vectors' capacity —
  /// the allocation-free equivalent of `*this = Matching(rows, cols)` that
  /// the workspace-aware algorithms use on their output parameter.
  void reset(vid_t num_rows, vid_t num_cols) {
    row_match.assign(static_cast<std::size_t>(num_rows), kNil);
    col_match.assign(static_cast<std::size_t>(num_cols), kNil);
  }

  /// Number of matched pairs.
  [[nodiscard]] vid_t cardinality() const noexcept;

  /// Records the pair (i, j); both endpoints must currently be free.
  void match(vid_t i, vid_t j) noexcept {
    assert(i >= 0 && static_cast<std::size_t>(i) < row_match.size());
    assert(j >= 0 && static_cast<std::size_t>(j) < col_match.size());
    assert(row_match[static_cast<std::size_t>(i)] == kNil);
    assert(col_match[static_cast<std::size_t>(j)] == kNil);
    row_match[static_cast<std::size_t>(i)] = j;
    col_match[static_cast<std::size_t>(j)] = i;
  }

  /// Redirects row i and column j to each other *without* requiring them to
  /// be free — the augmenting-path flip primitive. Flipping a path rewrites
  /// every pair along it, so stale partner entries are overwritten by the
  /// neighbouring flips; use match() everywhere else.
  void rematch(vid_t i, vid_t j) noexcept {
    assert(i >= 0 && static_cast<std::size_t>(i) < row_match.size());
    assert(j >= 0 && static_cast<std::size_t>(j) < col_match.size());
    row_match[static_cast<std::size_t>(i)] = j;
    col_match[static_cast<std::size_t>(j)] = i;
  }

  [[nodiscard]] bool row_matched(vid_t i) const noexcept {
    return row_match[static_cast<std::size_t>(i)] != kNil;
  }
  [[nodiscard]] bool col_matched(vid_t j) const noexcept {
    return col_match[static_cast<std::size_t>(j)] != kNil;
  }
};

/// Reconstructs the row view from a column view (used by OneSidedMatch,
/// whose racy writes leave only `cmatch` authoritative). Throws
/// std::out_of_range if an entry is neither kNil nor a row id in
/// [0, num_rows).
[[nodiscard]] Matching matching_from_col_view(vid_t num_rows,
                                              const std::vector<vid_t>& col_match);

/// Allocation-free variant: writes the reconstruction into `out` (reusing
/// its capacity). `col_match` must not alias `out.col_match`.
void matching_from_col_view(vid_t num_rows, const std::vector<vid_t>& col_match,
                            Matching& out);

/// Checks that `m` is a valid matching of `g`: sizes agree, views are
/// mutually consistent, every matched pair is an edge of `g`, and no vertex
/// appears twice. Returns an empty string when valid, else a description of
/// the first violation (handy in test failure messages).
[[nodiscard]] std::string describe_matching_violation(const BipartiteGraph& g,
                                                      const Matching& m);

/// Convenience wrapper around describe_matching_violation().
[[nodiscard]] bool is_valid_matching(const BipartiteGraph& g, const Matching& m);

/// True iff `m` is maximal in `g` (no edge joins two free vertices). Every
/// maximal matching is at least half of maximum — the classic cheap bound.
[[nodiscard]] bool is_maximal_matching(const BipartiteGraph& g, const Matching& m);

} // namespace bmh
