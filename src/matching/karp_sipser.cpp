#include "matching/karp_sipser.hpp"

#include <span>
#include <utility>
#include <vector>

#include "core/workspace.hpp"
#include "util/rng.hpp"

namespace bmh {

namespace {

/// Unified-id helpers: rows are [0, m), columns are [m, m+n).
/// All working storage is leased from the caller's Workspace, so repeated
/// invocations on same-shaped graphs are allocation-free.
class KsState {
public:
  KsState(const BipartiteGraph& g, std::uint64_t seed, Workspace& ws)
      : g_(g),
        m_(g.num_rows()),
        rng_(seed),
        matched_(ws.vec<vid_t>("ks.matched",
                               static_cast<std::size_t>(m_ + g.num_cols()), kNil)),
        deg_(ws.vec<eid_t>("ks.deg", static_cast<std::size_t>(m_ + g.num_cols()))),
        stack_(ws.buf<vid_t>("ks.stack")),
        pool_(ws.vec<std::pair<vid_t, vid_t>>(
            "ks.pool", static_cast<std::size_t>(g.num_edges()))) {
    const vid_t total = m_ + g.num_cols();
    for (vid_t i = 0; i < m_; ++i) deg_[static_cast<std::size_t>(i)] = g.row_degree(i);
    for (vid_t j = 0; j < g.num_cols(); ++j)
      deg_[static_cast<std::size_t>(m_ + j)] = g.col_degree(j);
    for (vid_t u = 0; u < total; ++u)
      if (deg_[static_cast<std::size_t>(u)] == 1) stack_.push_back(u);

    // Live-edge pool for Phase 2. Every draw retires its pool entry (the
    // matched edge is as dead as a stale one), so picks stay uniform over
    // the edges whose endpoints are both still free and the total number of
    // draws is bounded by the number of edges.
    eid_t e = 0;
    for (vid_t i = 0; i < m_; ++i)
      for (const vid_t j : g.row_neighbors(i)) pool_[static_cast<std::size_t>(e++)] = {i, j};
  }

  void run(KarpSipserStats* stats) {
    std::size_t live = pool_.size();
    while (true) {
      drain_degree_one(stats);
      // Phase 2 pick: uniform over live edges via swap-removal. The drawn
      // entry is removed whether it matches or is stale — leaving a matched
      // edge in the pool would make it re-drawable.
      bool matched_one = false;
      while (live > 0) {
        const auto idx = static_cast<std::size_t>(rng_.next_below(live));
        const auto [i, j] = pool_[idx];
        if (stats != nullptr) ++stats->phase2_draws;
        pool_[idx] = pool_[--live];
        if (matched_[static_cast<std::size_t>(i)] != kNil ||
            matched_[static_cast<std::size_t>(m_ + j)] != kNil)
          continue;
        match_pair(i, m_ + j);
        if (stats != nullptr) ++stats->phase2_matches;
        matched_one = true;
        break;
      }
      if (!matched_one) break;  // no live edge left: done
    }
  }

  void result_into(Matching& out) const {
    out.reset(m_, g_.num_cols());
    for (vid_t i = 0; i < m_; ++i) {
      const vid_t p = matched_[static_cast<std::size_t>(i)];
      if (p != kNil) out.match(i, p - m_);
    }
  }

  void drain_degree_one(KarpSipserStats* stats) {
    while (!stack_.empty()) {
      const vid_t u = stack_.back();
      stack_.pop_back();
      if (matched_[static_cast<std::size_t>(u)] != kNil ||
          deg_[static_cast<std::size_t>(u)] != 1)
        continue;
      const vid_t v = unique_free_neighbor(u);
      if (v == kNil) continue;  // degenerate: became isolated concurrently
      match_pair(u, v);
      if (stats != nullptr) ++stats->phase1_matches;
    }
  }

private:
  [[nodiscard]] std::span<const vid_t> neighbors(vid_t u) const {
    return u < m_ ? g_.row_neighbors(u) : g_.col_neighbors(u - m_);
  }
  [[nodiscard]] vid_t to_unified(vid_t u, vid_t nbr) const {
    return u < m_ ? m_ + nbr : nbr;
  }

  [[nodiscard]] vid_t unique_free_neighbor(vid_t u) const {
    for (const vid_t raw : neighbors(u)) {
      const vid_t w = to_unified(u, raw);
      if (matched_[static_cast<std::size_t>(w)] == kNil) return w;
    }
    return kNil;
  }

  void match_pair(vid_t u, vid_t v) {
    matched_[static_cast<std::size_t>(u)] = v;
    matched_[static_cast<std::size_t>(v)] = u;
    reduce_neighbors(u);
    reduce_neighbors(v);
  }

  void reduce_neighbors(vid_t u) {
    for (const vid_t raw : neighbors(u)) {
      const vid_t w = to_unified(u, raw);
      if (matched_[static_cast<std::size_t>(w)] != kNil) continue;
      if (--deg_[static_cast<std::size_t>(w)] == 1) stack_.push_back(w);
    }
  }

  const BipartiteGraph& g_;
  vid_t m_;
  Rng rng_;
  std::vector<vid_t>& matched_;
  std::vector<eid_t>& deg_;
  std::vector<vid_t>& stack_;
  std::vector<std::pair<vid_t, vid_t>>& pool_;
};

} // namespace

Matching karp_sipser(const BipartiteGraph& g, std::uint64_t seed, KarpSipserStats* stats) {
  Matching m;
  karp_sipser_ws(g, seed, stats, Workspace::for_this_thread(), m);
  return m;
}

void karp_sipser_ws(const BipartiteGraph& g, std::uint64_t seed, KarpSipserStats* stats,
                    Workspace& ws, Matching& out) {
  KsState state(g, seed, ws);
  state.run(stats);
  state.result_into(out);
}

} // namespace bmh
