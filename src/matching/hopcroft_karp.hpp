#pragma once
/// \file hopcroft_karp.hpp
/// \brief Exact maximum-cardinality matching (Hopcroft–Karp, O(sqrt(n)·tau)).
///
/// The exact solver plays three roles in the reproduction:
///   1. ground truth: every reported "quality" is |M| / sprank(A), and
///      sprank is computed here (paper Tables 1–3);
///   2. the oracle the tests use to certify that KarpSipserMT is exact on
///      the TwoSidedMatch subgraphs (paper Lemmas 1–3);
///   3. the state-of-the-art solver whose jump-start the paper motivates
///      (examples/jump_start_solver.cpp).

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

/// Computes a maximum matching, optionally warm-started from `initial`
/// (which must be a valid matching of `g`; pass nullptr for a cold start —
/// a greedy phase is used internally either way).
[[nodiscard]] Matching hopcroft_karp(const BipartiteGraph& g,
                                     const Matching* initial = nullptr);

/// Maximum matching cardinality (the structural rank of the matrix).
[[nodiscard]] vid_t sprank(const BipartiteGraph& g);

} // namespace bmh
