#pragma once
/// \file hopcroft_karp.hpp
/// \brief Exact maximum-cardinality matching (Hopcroft–Karp, O(sqrt(n)·tau)).
///
/// The exact solver plays three roles in the reproduction:
///   1. ground truth: every reported "quality" is |M| / sprank(A), and
///      sprank is computed here (paper Tables 1–3);
///   2. the oracle the tests use to certify that KarpSipserMT is exact on
///      the TwoSidedMatch subgraphs (paper Lemmas 1–3);
///   3. the state-of-the-art solver whose jump-start the paper motivates
///      (examples/jump_start_solver.cpp).

#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

/// Computes a maximum matching, optionally warm-started from `initial`
/// (which must be a valid matching of `g`; pass nullptr for a cold start —
/// a greedy phase is used internally either way).
[[nodiscard]] Matching hopcroft_karp(const BipartiteGraph& g,
                                     const Matching* initial = nullptr);

/// Workspace-aware cold solve into `out` (capacity reused; warm calls are
/// allocation-free).
void hopcroft_karp_ws(const BipartiteGraph& g, Workspace& ws, Matching& out);

/// In-place completion of `m` to a maximum matching — the jump-start /
/// pipeline-augment primitive. `m` must be a valid matching of `g`
/// (debug-asserted, not checked in release builds).
void hopcroft_karp_augment_ws(const BipartiteGraph& g, Matching& m, Workspace& ws);

/// Maximum matching cardinality (the structural rank of the matrix).
[[nodiscard]] vid_t sprank(const BipartiteGraph& g);

/// Workspace-aware sprank; the solved matching itself is kept inside `ws`.
[[nodiscard]] vid_t sprank_ws(const BipartiteGraph& g, Workspace& ws);

} // namespace bmh
