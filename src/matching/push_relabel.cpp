#include "matching/push_relabel.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/workspace.hpp"

namespace bmh {

namespace {

/// Greedy pass shared with the other exact solvers.
void greedy_init(const BipartiteGraph& g, Matching& m) {
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (m.row_matched(i)) continue;
    for (const vid_t j : g.row_neighbors(i)) {
      if (!m.col_matched(j)) {
        m.match(i, j);
        break;
      }
    }
  }
}

/// FIFO over a workspace vector: pops advance a head index, and the dead
/// prefix is compacted away once it exceeds the live bound, so the backing
/// storage stays O(num_rows) instead of growing with the push count.
class Fifo {
public:
  Fifo(std::vector<vid_t>& storage, std::size_t live_bound)
      : q_(storage), live_bound_(live_bound) {}

  [[nodiscard]] bool empty() const noexcept { return head_ == q_.size(); }
  void push(vid_t v) { q_.push_back(v); }
  vid_t pop() {
    const vid_t v = q_[head_++];
    if (head_ > live_bound_) {
      q_.erase(q_.begin(), q_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return v;
  }

private:
  std::vector<vid_t>& q_;
  std::size_t live_bound_;
  std::size_t head_ = 0;
};

} // namespace

Matching push_relabel(const BipartiteGraph& g, const Matching* initial) {
  Matching m(g.num_rows(), g.num_cols());
  if (initial != nullptr) {
    if (!is_valid_matching(g, *initial))
      throw std::invalid_argument("push_relabel: initial matching invalid");
    m = *initial;
  }
  push_relabel_augment_ws(g, m, Workspace::for_this_thread());
  return m;
}

void push_relabel_ws(const BipartiteGraph& g, Workspace& ws, Matching& out) {
  out.reset(g.num_rows(), g.num_cols());
  push_relabel_augment_ws(g, out, ws);
}

void push_relabel_augment_ws(const BipartiteGraph& g, Matching& m, Workspace& ws) {
  assert(is_valid_matching(g, m));
  greedy_init(g, m);

  const vid_t n_rows = g.num_rows();
  const vid_t n_cols = g.num_cols();
  // Labels: psi_row for rows, psi_col for columns. A row can only push to a
  // column with psi_col = psi_row - 1; columns are relabeled to psi_row + 1
  // when they receive the row (the "wave" moves labels upward).
  std::vector<vid_t>& psi_row =
      ws.vec<vid_t>("pr.psi_row", static_cast<std::size_t>(n_rows), 0);
  std::vector<vid_t>& psi_col =
      ws.vec<vid_t>("pr.psi_col", static_cast<std::size_t>(n_cols), 0);
  const vid_t label_cap = n_rows + n_cols + 1;

  // FIFO of rows with excess (free rows). At any moment a row appears at
  // most once (it is either matched or queued), so the live size is bounded
  // by n_rows.
  Fifo active(ws.buf<vid_t>("pr.active"), static_cast<std::size_t>(n_rows));
  for (vid_t i = 0; i < n_rows; ++i)
    if (!m.row_matched(i) && g.row_degree(i) > 0) active.push(i);

  while (!active.empty()) {
    const vid_t i = active.pop();
    if (m.row_matched(i)) continue;  // matched meanwhile by a kick-back

    // Find the admissible (minimum label) column among i's neighbours.
    vid_t best_col = kNil;
    vid_t best_label = std::numeric_limits<vid_t>::max();
    for (const vid_t j : g.row_neighbors(i)) {
      const vid_t l = psi_col[static_cast<std::size_t>(j)];
      if (l < best_label) {
        best_label = l;
        best_col = j;
        if (l == psi_row[static_cast<std::size_t>(i)] - 1) break;  // already admissible
      }
    }
    if (best_col == kNil) continue;  // isolated

    // Relabel the row just above the best column, then push (double push:
    // if the column was matched, its old row re-enters the FIFO).
    psi_row[static_cast<std::size_t>(i)] = best_label + 1;
    if (psi_row[static_cast<std::size_t>(i)] >= label_cap) continue;  // unmatchable

    const vid_t old_row = m.col_match[static_cast<std::size_t>(best_col)];
    if (old_row != kNil) m.row_match[static_cast<std::size_t>(old_row)] = kNil;
    m.row_match[static_cast<std::size_t>(i)] = best_col;
    m.col_match[static_cast<std::size_t>(best_col)] = i;
    // The column's label rises so the kicked row must look elsewhere first.
    psi_col[static_cast<std::size_t>(best_col)] = psi_row[static_cast<std::size_t>(i)];

    if (old_row != kNil) active.push(old_row);
  }
}

} // namespace bmh
