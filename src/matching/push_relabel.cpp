#include "matching/push_relabel.hpp"

#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

namespace bmh {

namespace {

/// Greedy pass shared with the other exact solvers.
void greedy_init(const BipartiteGraph& g, Matching& m) {
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (m.row_matched(i)) continue;
    for (const vid_t j : g.row_neighbors(i)) {
      if (!m.col_matched(j)) {
        m.match(i, j);
        break;
      }
    }
  }
}

} // namespace

Matching push_relabel(const BipartiteGraph& g, const Matching* initial) {
  Matching m(g.num_rows(), g.num_cols());
  if (initial != nullptr) {
    if (!is_valid_matching(g, *initial))
      throw std::invalid_argument("push_relabel: initial matching invalid");
    m = *initial;
  }
  greedy_init(g, m);

  const vid_t n_rows = g.num_rows();
  const vid_t n_cols = g.num_cols();
  // Labels: psi_row for rows, psi_col for columns. A row can only push to a
  // column with psi_col = psi_row - 1; columns are relabeled to psi_row + 1
  // when they receive the row (the "wave" moves labels upward).
  std::vector<vid_t> psi_row(static_cast<std::size_t>(n_rows), 0);
  std::vector<vid_t> psi_col(static_cast<std::size_t>(n_cols), 0);
  const vid_t label_cap = n_rows + n_cols + 1;

  std::deque<vid_t> active;  // FIFO of rows with excess (free rows)
  for (vid_t i = 0; i < n_rows; ++i)
    if (!m.row_matched(i) && g.row_degree(i) > 0) active.push_back(i);

  while (!active.empty()) {
    const vid_t i = active.front();
    active.pop_front();
    if (m.row_matched(i)) continue;  // matched meanwhile by a kick-back

    // Find the admissible (minimum label) column among i's neighbours.
    vid_t best_col = kNil;
    vid_t best_label = std::numeric_limits<vid_t>::max();
    for (const vid_t j : g.row_neighbors(i)) {
      const vid_t l = psi_col[static_cast<std::size_t>(j)];
      if (l < best_label) {
        best_label = l;
        best_col = j;
        if (l == psi_row[static_cast<std::size_t>(i)] - 1) break;  // already admissible
      }
    }
    if (best_col == kNil) continue;  // isolated

    // Relabel the row just above the best column, then push (double push:
    // if the column was matched, its old row re-enters the FIFO).
    psi_row[static_cast<std::size_t>(i)] = best_label + 1;
    if (psi_row[static_cast<std::size_t>(i)] >= label_cap) continue;  // unmatchable

    const vid_t old_row = m.col_match[static_cast<std::size_t>(best_col)];
    if (old_row != kNil) m.row_match[static_cast<std::size_t>(old_row)] = kNil;
    m.row_match[static_cast<std::size_t>(i)] = best_col;
    m.col_match[static_cast<std::size_t>(best_col)] = i;
    // The column's label rises so the kicked row must look elsewhere first.
    psi_col[static_cast<std::size_t>(best_col)] = psi_row[static_cast<std::size_t>(i)];

    if (old_row != kNil) active.push_back(old_row);
  }
  return m;
}

} // namespace bmh
