#pragma once
/// \file mc21.hpp
/// \brief MC21-style exact matching: row-by-row augmenting DFS with
/// cheap-assignment lookahead (Duff's classic maximum transversal code).
///
/// Worst case O(n·tau) but very fast in practice; serves as an independent
/// exact oracle cross-checked against Hopcroft–Karp in the tests, and as
/// the solver whose jump-start benefit the examples demonstrate (the paper's
/// motivation: cheap heuristics initialize exact matchers [11, 24]).

#include "core/workspace.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

/// Computes a maximum matching by successive augmentation, optionally
/// warm-started from `initial` (must be valid for `g`).
[[nodiscard]] Matching mc21(const BipartiteGraph& g, const Matching* initial = nullptr);

/// Workspace-aware cold solve into `out` (capacity reused, no validation;
/// warm calls are allocation-free).
void mc21_ws(const BipartiteGraph& g, Workspace& ws, Matching& out);

/// In-place augmentation of `m` to a maximum matching. `m` must be a valid
/// matching of `g` (debug-asserted, not checked in release builds).
void mc21_augment_ws(const BipartiteGraph& g, Matching& m, Workspace& ws);

} // namespace bmh
