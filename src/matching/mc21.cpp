#include "matching/mc21.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "core/workspace.hpp"

namespace bmh {

namespace {

/// Iterative augmenting DFS from `root` with lookahead; `stamp` versions the
/// visited array so it is cleared once per solver, not per root. All scratch
/// is leased from the caller's Workspace.
class Mc21Solver {
public:
  Mc21Solver(const BipartiteGraph& g, Workspace& ws)
      : g_(g),
        visited_(ws.vec<std::uint32_t>("mc21.visited",
                                       static_cast<std::size_t>(g.num_cols()), 0u)),
        lookahead_(ws.vec<eid_t>("mc21.lookahead",
                                 static_cast<std::size_t>(g.num_rows()))),
        cursor_(ws.vec<eid_t>("mc21.cursor", static_cast<std::size_t>(g.num_rows()))),
        row_stack_(ws.buf<vid_t>("mc21.row_stack")),
        col_stack_(ws.buf<vid_t>("mc21.col_stack")) {
    for (vid_t i = 0; i < g.num_rows(); ++i)
      lookahead_[static_cast<std::size_t>(i)] = g.row_ptr()[i];
  }

  bool augment_from(vid_t root, Matching& m) {
    ++stamp_;
    row_stack_.assign(1, root);
    col_stack_.clear();
    cursor_[static_cast<std::size_t>(root)] = g_.row_ptr()[root];

    while (!row_stack_.empty()) {
      const vid_t x = row_stack_.back();

      // Lookahead: scan once, over the whole lifetime of the solver, for a
      // directly-free column of x (the MC21 "cheap assignment" trick).
      vid_t free_col = kNil;
      eid_t& la = lookahead_[static_cast<std::size_t>(x)];
      while (la < g_.row_ptr()[x + 1]) {
        const vid_t v = g_.col_idx()[static_cast<std::size_t>(la++)];
        if (!m.col_matched(v)) {
          free_col = v;
          break;
        }
      }
      if (free_col != kNil) {
        flip_path(free_col, m);
        return true;
      }

      // Deep step: advance x's cursor to an unvisited matched column.
      bool advanced = false;
      eid_t& cur = cursor_[static_cast<std::size_t>(x)];
      while (cur < g_.row_ptr()[x + 1]) {
        const vid_t v = g_.col_idx()[static_cast<std::size_t>(cur++)];
        if (visited_[static_cast<std::size_t>(v)] == stamp_) continue;
        visited_[static_cast<std::size_t>(v)] = stamp_;
        const vid_t w = m.col_match[static_cast<std::size_t>(v)];
        if (w == kNil) {
          flip_path(v, m);
          return true;
        }
        col_stack_.push_back(v);
        row_stack_.push_back(w);
        cursor_[static_cast<std::size_t>(w)] = g_.row_ptr()[w];
        advanced = true;
        break;
      }
      if (!advanced) {
        row_stack_.pop_back();
        if (!col_stack_.empty()) col_stack_.pop_back();
      }
    }
    return false;
  }

private:
  /// Assigns the free column to the top row and flips the recorded
  /// alternating path back to the root.
  void flip_path(vid_t free_col, Matching& m) {
    m.rematch(row_stack_.back(), free_col);
    for (std::size_t k = row_stack_.size() - 1; k-- > 0;)
      m.rematch(row_stack_[k], col_stack_[k]);
  }

  const BipartiteGraph& g_;
  std::vector<std::uint32_t>& visited_;
  std::vector<eid_t>& lookahead_;
  std::vector<eid_t>& cursor_;
  std::vector<vid_t>& row_stack_;
  std::vector<vid_t>& col_stack_;
  std::uint32_t stamp_ = 0;
};

} // namespace

Matching mc21(const BipartiteGraph& g, const Matching* initial) {
  Matching m(g.num_rows(), g.num_cols());
  if (initial != nullptr) {
    if (!is_valid_matching(g, *initial))
      throw std::invalid_argument("mc21: initial matching invalid");
    m = *initial;
  }
  mc21_augment_ws(g, m, Workspace::for_this_thread());
  return m;
}

void mc21_ws(const BipartiteGraph& g, Workspace& ws, Matching& out) {
  out.reset(g.num_rows(), g.num_cols());
  mc21_augment_ws(g, out, ws);
}

void mc21_augment_ws(const BipartiteGraph& g, Matching& m, Workspace& ws) {
  assert(is_valid_matching(g, m));
  Mc21Solver solver(g, ws);
  for (vid_t i = 0; i < g.num_rows(); ++i)
    if (!m.row_matched(i)) solver.augment_from(i, m);
}

} // namespace bmh
