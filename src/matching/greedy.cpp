#include "matching/greedy.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/workspace.hpp"
#include "util/rng.hpp"

namespace bmh {

Matching match_random_edges(const BipartiteGraph& g, std::uint64_t seed) {
  Matching m;
  match_random_edges_ws(g, seed, Workspace::for_this_thread(), m);
  return m;
}

void match_random_edges_ws(const BipartiteGraph& g, std::uint64_t seed, Workspace& ws,
                           Matching& out) {
  out.reset(g.num_rows(), g.num_cols());
  const eid_t nnz = g.num_edges();

  // Materialize (row of edge e) once; a random permutation of edge ids then
  // gives the uniform edge visit order.
  std::vector<vid_t>& edge_row =
      ws.vec<vid_t>("greedy.edge_row", static_cast<std::size_t>(nnz));
#pragma omp parallel for schedule(static)
  for (vid_t i = 0; i < g.num_rows(); ++i)
    for (eid_t e = g.row_ptr()[i]; e < g.row_ptr()[i + 1]; ++e)
      edge_row[static_cast<std::size_t>(e)] = i;

  std::vector<eid_t>& order =
      ws.vec<eid_t>("greedy.edge_order", static_cast<std::size_t>(nnz));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (eid_t k = nnz - 1; k > 0; --k) {
    const auto r = static_cast<eid_t>(rng.next_below(static_cast<std::uint64_t>(k) + 1));
    std::swap(order[static_cast<std::size_t>(k)], order[static_cast<std::size_t>(r)]);
  }

  for (const eid_t e : order) {
    const vid_t i = edge_row[static_cast<std::size_t>(e)];
    const vid_t j = g.col_idx()[static_cast<std::size_t>(e)];
    if (!out.row_matched(i) && !out.col_matched(j)) out.match(i, j);
  }
}

Matching match_random_vertices(const BipartiteGraph& g, std::uint64_t seed) {
  Matching m;
  match_random_vertices_ws(g, seed, Workspace::for_this_thread(), m);
  return m;
}

void match_random_vertices_ws(const BipartiteGraph& g, std::uint64_t seed, Workspace& ws,
                              Matching& out) {
  out.reset(g.num_rows(), g.num_cols());
  Rng rng(seed);

  // Random row visit order; each row picks a uniformly random *free*
  // neighbour via reservoir sampling over its adjacency list.
  std::vector<vid_t>& order =
      ws.vec<vid_t>("greedy.vertex_order", static_cast<std::size_t>(g.num_rows()));
  std::iota(order.begin(), order.end(), 0);
  for (vid_t k = g.num_rows() - 1; k > 0; --k) {
    const auto r = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(k) + 1));
    std::swap(order[static_cast<std::size_t>(k)], order[static_cast<std::size_t>(r)]);
  }

  for (const vid_t i : order) {
    vid_t picked = kNil;
    std::uint64_t seen = 0;
    for (const vid_t j : g.row_neighbors(i)) {
      if (out.col_matched(j)) continue;
      ++seen;
      if (rng.next_below(seen) == 0) picked = j;
    }
    if (picked != kNil) out.match(i, picked);
  }
}

Matching match_min_degree(const BipartiteGraph& g) {
  Matching m;
  match_min_degree_ws(g, Workspace::for_this_thread(), m);
  return m;
}

void match_min_degree_ws(const BipartiteGraph& g, Workspace& ws, Matching& out) {
  out.reset(g.num_rows(), g.num_cols());

  std::vector<vid_t>& order =
      ws.vec<vid_t>("greedy.degree_order", static_cast<std::size_t>(g.num_rows()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    const eid_t da = g.row_degree(a), db = g.row_degree(b);
    return da != db ? da < db : a < b;
  });

  for (const vid_t i : order) {
    vid_t best = kNil;
    eid_t best_deg = 0;
    for (const vid_t j : g.row_neighbors(i)) {
      if (out.col_matched(j)) continue;
      const eid_t dj = g.col_degree(j);
      if (best == kNil || dj < best_deg) {
        best = j;
        best_deg = dj;
      }
    }
    if (best != kNil) out.match(i, best);
  }
}

} // namespace bmh
