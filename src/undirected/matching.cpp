#include "undirected/matching.hpp"

#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace bmh {

vid_t UndirectedMatching::cardinality() const noexcept {
  vid_t twice = 0;
  const auto n = static_cast<vid_t>(mate.size());
#pragma omp parallel for schedule(static) reduction(+ : twice)
  for (vid_t u = 0; u < n; ++u)
    if (mate[static_cast<std::size_t>(u)] != kNil) ++twice;
  return twice / 2;
}

std::string describe_violation(const UndirectedGraph& g, const UndirectedMatching& m) {
  std::ostringstream os;
  if (m.mate.size() != static_cast<std::size_t>(g.num_vertices())) {
    os << "mate size " << m.mate.size() << " != num_vertices " << g.num_vertices();
    return os.str();
  }
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const vid_t v = m.mate[static_cast<std::size_t>(u)];
    if (v == kNil) continue;
    if (v < 0 || v >= g.num_vertices()) {
      os << "vertex " << u << " matched out of range (" << v << ")";
      return os.str();
    }
    if (m.mate[static_cast<std::size_t>(v)] != u) {
      os << "asymmetric mate: mate[" << u << "]=" << v << " but mate[" << v
         << "]=" << m.mate[static_cast<std::size_t>(v)];
      return os.str();
    }
    if (!g.has_edge(u, v)) {
      os << "matched pair (" << u << ", " << v << ") is not an edge";
      return os.str();
    }
  }
  return {};
}

bool is_valid_matching(const UndirectedGraph& g, const UndirectedMatching& m) {
  // Direct loop rather than describe_violation().empty(): this runs on the
  // warm serving path (kind=undirected-match validates every job), so it
  // must not build strings.
  if (m.mate.size() != static_cast<std::size_t>(g.num_vertices())) return false;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const vid_t v = m.mate[static_cast<std::size_t>(u)];
    if (v == kNil) continue;
    if (v < 0 || v >= g.num_vertices()) return false;
    if (m.mate[static_cast<std::size_t>(v)] != u) return false;
    if (!g.has_edge(u, v)) return false;
  }
  return true;
}

void scale_symmetric_ws(const UndirectedGraph& g, int iterations, Workspace& ws,
                        SymmetricScaling& out) {
  const vid_t n = g.num_vertices();
  out.d.assign(static_cast<std::size_t>(n), 1.0);
  out.iterations = 0;
  out.error = 0.0;
  auto& rowsum = ws.vec<double>("und.scale.rowsum", static_cast<std::size_t>(n));

  for (int it = 0; it < iterations; ++it) {
    // r[u] = d[u] * sum_{v in N(u)} d[v]; then d[u] /= sqrt(r[u]). This is
    // the symmetric (Ruiz-style) sweep; symmetry of d is preserved exactly.
#pragma omp parallel for schedule(dynamic, 512)
    for (vid_t u = 0; u < n; ++u) {
      double acc = 0.0;
      for (const vid_t v : g.neighbors(u)) acc += out.d[static_cast<std::size_t>(v)];
      rowsum[static_cast<std::size_t>(u)] = acc * out.d[static_cast<std::size_t>(u)];
    }
#pragma omp parallel for schedule(static)
    for (vid_t u = 0; u < n; ++u) {
      const double r = rowsum[static_cast<std::size_t>(u)];
      if (r > 0.0) out.d[static_cast<std::size_t>(u)] /= std::sqrt(r);
    }
    out.iterations = it + 1;
  }

  double err = 0.0;
#pragma omp parallel for schedule(dynamic, 512) reduction(max : err)
  for (vid_t u = 0; u < n; ++u) {
    if (g.degree(u) == 0) continue;
    double acc = 0.0;
    for (const vid_t v : g.neighbors(u)) acc += out.d[static_cast<std::size_t>(v)];
    err = std::max(err, std::abs(acc * out.d[static_cast<std::size_t>(u)] - 1.0));
  }
  out.error = err;
}

SymmetricScaling scale_symmetric(const UndirectedGraph& g, int iterations) {
  SymmetricScaling s;
  scale_symmetric_ws(g, iterations, Workspace::for_this_thread(), s);
  return s;
}

std::vector<vid_t>& sample_choices_ws(const UndirectedGraph& g,
                                      std::span<const double> d, std::uint64_t seed,
                                      Workspace& ws) {
  if (d.size() != static_cast<std::size_t>(g.num_vertices()))
    throw std::invalid_argument("sample_choices: multiplier size mismatch");
  const vid_t n = g.num_vertices();
  auto& choice = ws.vec<vid_t>("und.choice", static_cast<std::size_t>(n), kNil);
  const Rng root(seed);
#pragma omp parallel for schedule(dynamic, 512)
  for (vid_t u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) continue;
    Rng rng = root.fork(static_cast<std::uint64_t>(u));
    double total = 0.0;
    for (const vid_t v : nbrs) total += d[static_cast<std::size_t>(v)];
    if (total <= 0.0) {
      choice[static_cast<std::size_t>(u)] =
          nbrs[static_cast<std::size_t>(rng.next_below(nbrs.size()))];
      continue;
    }
    const double r = rng.next_double_open0() * total;
    double acc = 0.0;
    vid_t picked = nbrs.back();
    for (const vid_t v : nbrs) {
      acc += d[static_cast<std::size_t>(v)];
      if (acc >= r) {
        picked = v;
        break;
      }
    }
    choice[static_cast<std::size_t>(u)] = picked;
  }
  return choice;
}

std::vector<vid_t> sample_choices(const UndirectedGraph& g, std::span<const double> d,
                                  std::uint64_t seed) {
  return sample_choices_ws(g, d, seed, Workspace::for_this_thread());
}

void one_out_karp_sipser_ws(vid_t n, std::span<const vid_t> choice, Workspace& ws,
                            UndirectedMatching& out) {
  if (choice.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("one_out_karp_sipser: choice size mismatch");

  // Plain leased vectors accessed through std::atomic_ref where phases race
  // (the karp_sipser_mt idiom) — std::vector<std::atomic<…>> cannot live in
  // a workspace lease.
  auto& match = ws.vec<vid_t>("und.ks.match", static_cast<std::size_t>(n));
  auto& deg = ws.vec<vid_t>("und.ks.deg", static_cast<std::size_t>(n));
  auto& mark = ws.vec<char>("und.ks.mark", static_cast<std::size_t>(n));

#pragma omp parallel for schedule(static)
  for (vid_t u = 0; u < n; ++u) {
    match[static_cast<std::size_t>(u)] = kNil;
    const bool isolated = choice[static_cast<std::size_t>(u)] == kNil;
    mark[static_cast<std::size_t>(u)] = isolated ? 0 : 1;
    deg[static_cast<std::size_t>(u)] = isolated ? 0 : 1;
  }
#pragma omp parallel for schedule(static)
  for (vid_t u = 0; u < n; ++u) {
    const vid_t v = choice[static_cast<std::size_t>(u)];
    if (v == kNil) continue;
    std::atomic_ref<char>(mark[static_cast<std::size_t>(v)])
        .store(0, std::memory_order_relaxed);
    if (choice[static_cast<std::size_t>(v)] != u)
      std::atomic_ref<vid_t>(deg[static_cast<std::size_t>(v)])
          .fetch_add(1, std::memory_order_relaxed);
  }

  // Phase 1: identical to the bipartite Algorithm 4 — the out-one chain
  // argument never uses bipartiteness.
#pragma omp parallel for schedule(guided)
  for (vid_t u = 0; u < n; ++u) {
    if (mark[static_cast<std::size_t>(u)] != 1) continue;
    vid_t curr = u;
    while (curr != kNil) {
      const vid_t nbr = choice[static_cast<std::size_t>(curr)];
      vid_t expected = kNil;
      if (std::atomic_ref<vid_t>(match[static_cast<std::size_t>(nbr)])
              .compare_exchange_strong(
                  expected, curr,
                  std::memory_order_acq_rel,     // win: publish claim of nbr
                  std::memory_order_acquire)) {  // lose: see winner's writes
        std::atomic_ref<vid_t>(match[static_cast<std::size_t>(curr)])
            // release pairs with the acquire probes on other threads
            .store(nbr, std::memory_order_release);
        const vid_t next = choice[static_cast<std::size_t>(nbr)];
        curr = kNil;
        if (next != kNil &&
            std::atomic_ref<vid_t>(match[static_cast<std::size_t>(next)])
                    // acquire pairs with the winners' release match stores
                    .load(std::memory_order_acquire) == kNil) {
          if (std::atomic_ref<vid_t>(deg[static_cast<std::size_t>(next)])
                      // acq_rel: the elected thread sees prior decrementers
                      .fetch_sub(1, std::memory_order_acq_rel) -
                  1 ==
              1)
            curr = next;
        }
      } else {
        curr = kNil;
      }
    }
  }

  // Phase 2: survivors form disjoint simple cycles (possibly odd). Walk
  // each once and match alternate edges; odd cycles leave one vertex free.
  // This phase is sequential: surviving cycle mass is O(sqrt(n)) in
  // expectation for random choices, so it does not affect scalability.
  out.mate.resize(static_cast<std::size_t>(n));
#pragma omp parallel for schedule(static)
  for (vid_t u = 0; u < n; ++u)
    out.mate[static_cast<std::size_t>(u)] = match[static_cast<std::size_t>(u)];

  auto& visited = ws.vec<char>("und.ks.visited", static_cast<std::size_t>(n),
                               static_cast<char>(0));
  auto& cycle = ws.buf<vid_t>("und.ks.cycle");
  for (vid_t u = 0; u < n; ++u) {
    if (visited[static_cast<std::size_t>(u)]) continue;
    if (out.mate[static_cast<std::size_t>(u)] != kNil) continue;
    const vid_t v = choice[static_cast<std::size_t>(u)];
    if (v == kNil || out.mate[static_cast<std::size_t>(v)] != kNil) continue;

    // Collect the cycle through u. At Phase-1 fixpoint every unmatched
    // vertex with an unmatched choice target lies on an all-unmatched
    // cycle; the matched/kNil guards below are defensive (a prematurely
    // ended walk yields a path whose consecutive pairs are still edges, so
    // the alternate-pair matching below remains valid).
    cycle.clear();
    vid_t w = u;
    while (w != kNil && !visited[static_cast<std::size_t>(w)] &&
           out.mate[static_cast<std::size_t>(w)] == kNil) {
      visited[static_cast<std::size_t>(w)] = 1;
      cycle.push_back(w);
      w = choice[static_cast<std::size_t>(w)];
    }
    for (std::size_t i = 0; i + 1 < cycle.size(); i += 2) {
      out.mate[static_cast<std::size_t>(cycle[i])] = cycle[i + 1];
      out.mate[static_cast<std::size_t>(cycle[i + 1])] = cycle[i];
    }
  }
}

UndirectedMatching one_out_karp_sipser(vid_t n, std::span<const vid_t> choice) {
  UndirectedMatching result;
  one_out_karp_sipser_ws(n, choice, Workspace::for_this_thread(), result);
  return result;
}

void undirected_one_out_match_ws(const UndirectedGraph& g, int scaling_iterations,
                                 std::uint64_t seed, Workspace& ws,
                                 UndirectedMatching& out) {
  auto& s = ws.obj<SymmetricScaling>("und.scaling");
  if (scaling_iterations > 0) {
    scale_symmetric_ws(g, scaling_iterations, ws, s);
  } else {
    s.d.assign(static_cast<std::size_t>(g.num_vertices()), 1.0);
    s.iterations = 0;
    s.error = 0.0;
  }
  const std::vector<vid_t>& choice = sample_choices_ws(g, s.d, seed, ws);
  one_out_karp_sipser_ws(g.num_vertices(), choice, ws, out);
}

UndirectedMatching undirected_one_out_match(const UndirectedGraph& g,
                                            int scaling_iterations, std::uint64_t seed) {
  UndirectedMatching m;
  undirected_one_out_match_ws(g, scaling_iterations, seed,
                              Workspace::for_this_thread(), m);
  return m;
}

void undirected_greedy_ws(const UndirectedGraph& g, std::uint64_t seed, Workspace& ws,
                          UndirectedMatching& out) {
  const vid_t n = g.num_vertices();
  out.mate.assign(static_cast<std::size_t>(n), kNil);
  Rng rng(seed);
  auto& order = ws.vec<vid_t>("und.greedy.order", static_cast<std::size_t>(n));
  for (vid_t u = 0; u < n; ++u) order[static_cast<std::size_t>(u)] = u;
  for (vid_t k = n - 1; k > 0; --k) {
    const auto r = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(k) + 1));
    std::swap(order[static_cast<std::size_t>(k)], order[static_cast<std::size_t>(r)]);
  }
  for (const vid_t u : order) {
    if (out.matched(u)) continue;
    vid_t picked = kNil;
    std::uint64_t seen = 0;
    for (const vid_t v : g.neighbors(u)) {
      if (out.matched(v)) continue;
      ++seen;
      if (rng.next_below(seen) == 0) picked = v;
    }
    if (picked != kNil) {
      out.mate[static_cast<std::size_t>(u)] = picked;
      out.mate[static_cast<std::size_t>(picked)] = u;
    }
  }
}

UndirectedMatching undirected_greedy(const UndirectedGraph& g, std::uint64_t seed) {
  UndirectedMatching m;
  undirected_greedy_ws(g, seed, Workspace::for_this_thread(), m);
  return m;
}

void undirected_two_thirds_ws(const UndirectedGraph& g, std::uint64_t seed,
                              Workspace& ws, UndirectedMatching& out) {
  undirected_greedy_ws(g, seed, ws, out);
  // Improve with length-3 alternating paths until none remains: for a
  // matched edge (u, v), look for free x ~ u and free y ~ v with x != y;
  // rematch as (x, u), (v, y). A matching with no length-3 augmenting path
  // is a 2/3-approximation of the maximum.
  bool improved = true;
  while (improved) {
    improved = false;
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      const vid_t v = out.mate[static_cast<std::size_t>(u)];
      if (v == kNil || v < u) continue;
      vid_t x = kNil;
      for (const vid_t cand : g.neighbors(u)) {
        if (cand != v && !out.matched(cand)) {
          x = cand;
          break;
        }
      }
      if (x == kNil) continue;
      vid_t y = kNil;
      for (const vid_t cand : g.neighbors(v)) {
        if (cand != u && cand != x && !out.matched(cand)) {
          y = cand;
          break;
        }
      }
      if (y == kNil) continue;
      out.mate[static_cast<std::size_t>(x)] = u;
      out.mate[static_cast<std::size_t>(u)] = x;
      out.mate[static_cast<std::size_t>(v)] = y;
      out.mate[static_cast<std::size_t>(y)] = v;
      improved = true;
    }
  }
}

UndirectedMatching undirected_two_thirds(const UndirectedGraph& g, std::uint64_t seed) {
  UndirectedMatching m;
  undirected_two_thirds_ws(g, seed, Workspace::for_this_thread(), m);
  return m;
}

} // namespace bmh
