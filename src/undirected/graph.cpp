#include "undirected/graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace bmh {

UndirectedGraph UndirectedGraph::from_edges(
    vid_t num_vertices, const std::vector<std::pair<vid_t, vid_t>>& edges) {
  if (num_vertices < 0)
    throw std::invalid_argument("UndirectedGraph: negative vertex count");
  UndirectedGraph g;
  g.n_ = num_vertices;

  std::vector<std::pair<vid_t, vid_t>> sym;
  sym.reserve(2 * edges.size());
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= num_vertices || v < 0 || v >= num_vertices)
      throw std::out_of_range("UndirectedGraph: vertex id out of range");
    if (u == v) throw std::invalid_argument("UndirectedGraph: self-loop");
    sym.emplace_back(u, v);
    sym.emplace_back(v, u);
  }
  std::sort(sym.begin(), sym.end());
  sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

  g.ptr_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : sym) ++g.ptr_[static_cast<std::size_t>(u) + 1];
  for (vid_t u = 0; u < num_vertices; ++u)
    g.ptr_[static_cast<std::size_t>(u) + 1] += g.ptr_[static_cast<std::size_t>(u)];
  g.adj_.resize(sym.size());
  {
    std::vector<eid_t> cursor(g.ptr_.begin(), g.ptr_.end() - 1);
    for (const auto& [u, v] : sym)
      g.adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
  }
  return g;
}

bool UndirectedGraph::has_edge(vid_t u, vid_t v) const noexcept {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void UndirectedGraph::assign_symmetric_view(const BipartiteGraph& g) {
  const vid_t n = g.num_rows();
  if (n != g.num_cols())
    throw std::invalid_argument("assign_symmetric_view: graph is not square");
  // Read the CSC mirror rather than the CSR rows: col_neighbors is sorted by
  // construction (row lists need not be), and under the pattern-symmetry
  // precondition both describe the same neighbour set — so each adjacency
  // list lands sorted, which has_edge's binary_search requires.
  n_ = n;
  ptr_.resize(static_cast<std::size_t>(n) + 1);
  ptr_[0] = 0;
  for (vid_t u = 0; u < n; ++u) {
    const auto nbrs = g.col_neighbors(u);
    const bool diagonal = std::binary_search(nbrs.begin(), nbrs.end(), u);
    ptr_[static_cast<std::size_t>(u) + 1] =
        ptr_[static_cast<std::size_t>(u)] +
        static_cast<eid_t>(nbrs.size() - (diagonal ? 1 : 0));
  }
  adj_.resize(static_cast<std::size_t>(ptr_.back()));
  for (vid_t u = 0; u < n; ++u) {
    eid_t cursor = ptr_[static_cast<std::size_t>(u)];
    for (const vid_t v : g.col_neighbors(u))
      if (v != u) adj_[static_cast<std::size_t>(cursor++)] = v;
  }
}

void UndirectedGraph::assign_bipartite_union(const BipartiteGraph& g) {
  const vid_t rows = g.num_rows();
  const vid_t cols = g.num_cols();
  n_ = rows + cols;
  ptr_.resize(static_cast<std::size_t>(n_) + 1);
  ptr_[0] = 0;
  for (vid_t u = 0; u < rows; ++u)
    ptr_[static_cast<std::size_t>(u) + 1] =
        ptr_[static_cast<std::size_t>(u)] + g.row_degree(u);
  for (vid_t j = 0; j < cols; ++j)
    ptr_[static_cast<std::size_t>(rows + j) + 1] =
        ptr_[static_cast<std::size_t>(rows + j)] + g.col_degree(j);
  adj_.resize(static_cast<std::size_t>(ptr_.back()));
  // Row-vertex lists are filled by walking the CSC in ascending column
  // order (row lists may be unsorted, column lists are sorted), using the
  // ptr_ entries themselves as cursors — each list comes out sorted and no
  // scratch is allocated. The shift below restores the offsets.
  for (vid_t j = 0; j < cols; ++j)
    for (const vid_t i : g.col_neighbors(j))
      adj_[static_cast<std::size_t>(ptr_[static_cast<std::size_t>(i)]++)] = rows + j;
  for (vid_t u = rows; u > 0; --u)
    ptr_[static_cast<std::size_t>(u)] = ptr_[static_cast<std::size_t>(u) - 1];
  ptr_[0] = 0;
  for (vid_t j = 0; j < cols; ++j) {
    eid_t cursor = ptr_[static_cast<std::size_t>(rows + j)];
    for (const vid_t i : g.col_neighbors(j))
      adj_[static_cast<std::size_t>(cursor++)] = i;
  }
}

BipartiteGraph UndirectedGraph::as_bipartite() const {
  std::vector<eid_t> row_ptr(ptr_.begin(), ptr_.end());
  std::vector<vid_t> col_idx(adj_.begin(), adj_.end());
  return BipartiteGraph(n_, n_, std::move(row_ptr), std::move(col_idx));
}

UndirectedGraph make_undirected_erdos_renyi(vid_t n, eid_t edge_target,
                                            std::uint64_t seed) {
  if (n <= 1) throw std::invalid_argument("make_undirected_erdos_renyi: n must be > 1");
  Rng rng(seed);
  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(static_cast<std::size_t>(edge_target));
  for (eid_t e = 0; e < edge_target; ++e) {
    const auto u = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    edges.emplace_back(u, v);
  }
  return UndirectedGraph::from_edges(n, edges);
}

UndirectedGraph make_undirected_cycle(vid_t n) {
  if (n < 3) throw std::invalid_argument("make_undirected_cycle: n must be >= 3");
  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (vid_t u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  return UndirectedGraph::from_edges(n, edges);
}

UndirectedGraph make_undirected_path(vid_t n) {
  if (n < 2) throw std::invalid_argument("make_undirected_path: n must be >= 2");
  std::vector<std::pair<vid_t, vid_t>> edges;
  for (vid_t u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return UndirectedGraph::from_edges(n, edges);
}

UndirectedGraph make_undirected_complete(vid_t n) {
  if (n < 2) throw std::invalid_argument("make_undirected_complete: n must be >= 2");
  std::vector<std::pair<vid_t, vid_t>> edges;
  for (vid_t u = 0; u < n; ++u)
    for (vid_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  return UndirectedGraph::from_edges(n, edges);
}

} // namespace bmh
