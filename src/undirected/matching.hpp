#pragma once
/// \file undirected/matching.hpp
/// \brief Matching heuristics on general undirected graphs — the paper's
/// §5 "natural extension".
///
/// The bipartite machinery carries over with two changes:
///  1. Scaling: the adjacency matrix is symmetric, so a symmetry-preserving
///     doubly stochastic scaling (single multiplier vector d, s_uv =
///     d[u]·a_uv·d[v]) replaces the (dr, dc) pair. We run Sinkhorn–Knopp
///     sweeps and re-symmetrize by averaging — equivalent in the limit to
///     the Knight–Ruiz–Uçar symmetric scaling.
///  2. The choice subgraph {{u, choice[u]}} is a functional graph whose
///     components still contain at most one cycle (the Lemma 1 argument
///     never used bipartiteness), but cycles may now be ODD, so the
///     bipartite Phase 2 of KarpSipserMT (each column takes its choice)
///     does not apply. Phase 2 here walks each remaining cycle, matching
///     alternate edges; an odd cycle necessarily leaves one vertex free.
///
/// The one-sided analogue has the same 1 − 1/e guarantee argument; the
/// one-out Karp–Sipser variant is the direct analogue of TwoSidedMatch
/// (each vertex picks once — there is only one side).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/workspace.hpp"
#include "scaling/scaling.hpp"
#include "undirected/graph.hpp"
#include "util/types.hpp"

namespace bmh {

/// A matching on an undirected graph: mate[u] is u's partner or kNil.
struct UndirectedMatching {
  std::vector<vid_t> mate;

  UndirectedMatching() = default;
  explicit UndirectedMatching(vid_t n) : mate(static_cast<std::size_t>(n), kNil) {}

  [[nodiscard]] vid_t cardinality() const noexcept;
  [[nodiscard]] bool matched(vid_t u) const noexcept {
    return mate[static_cast<std::size_t>(u)] != kNil;
  }
};

/// Empty string when valid; otherwise a description of the violation.
[[nodiscard]] std::string describe_violation(const UndirectedGraph& g,
                                             const UndirectedMatching& m);
/// Allocation-free validity check (the serving path's per-job verifier);
/// describe_violation is the diagnostic counterpart.
[[nodiscard]] bool is_valid_matching(const UndirectedGraph& g,
                                     const UndirectedMatching& m);

/// Symmetric doubly stochastic scaling: returns a single multiplier vector
/// d with s_uv = d[u]·d[v] for each edge. `iterations` alternating sweeps
/// with re-symmetrization; error is max |sum_u s_uv − 1| over non-isolated
/// vertices.
struct SymmetricScaling {
  std::vector<double> d;
  int iterations = 0;
  double error = 0.0;
};
[[nodiscard]] SymmetricScaling scale_symmetric(const UndirectedGraph& g, int iterations);

/// Each vertex picks one neighbour ∝ d (the scaled PDF); kNil if isolated.
/// Deterministic in (graph, d, seed), thread-count independent.
[[nodiscard]] std::vector<vid_t> sample_choices(const UndirectedGraph& g,
                                                std::span<const double> d,
                                                std::uint64_t seed);

/// Karp–Sipser specialized to functional (1-out) subgraphs of an
/// undirected graph: exact maximum matching on {{u, choice[u]}}, handling
/// odd cycles. Parallel Phase 1 (out-one chains, as Algorithm 4); Phase 2
/// claims each surviving cycle and matches alternate edges.
[[nodiscard]] UndirectedMatching one_out_karp_sipser(vid_t n,
                                                     std::span<const vid_t> choice);

/// The undirected analogue of TwoSidedMatch: scale, let every vertex pick a
/// neighbour, and run the exact one-out Karp–Sipser on the choices.
[[nodiscard]] UndirectedMatching undirected_one_out_match(const UndirectedGraph& g,
                                                          int scaling_iterations,
                                                          std::uint64_t seed);

/// Greedy baseline: random vertex order, match with a random free
/// neighbour (1/2 guarantee).
[[nodiscard]] UndirectedMatching undirected_greedy(const UndirectedGraph& g,
                                                   std::uint64_t seed);

/// Exact maximum matching via reduction is NOT valid for general graphs
/// (the bipartite double cover overcounts); this is a maximal + augmenting
/// improvement restricted to length-3 alternating paths, giving a 2/3
/// approximation — used as the quality yardstick where exactness is not
/// required by the tests. For trees and bipartite-structured inputs the
/// tests compare against known optima instead.
[[nodiscard]] UndirectedMatching undirected_two_thirds(const UndirectedGraph& g,
                                                       std::uint64_t seed);

/// \name Workspace overloads
/// The serving-path forms: scratch is leased from `ws` (tags under "und.")
/// and results land in caller-provided objects with capacity reused, so a
/// warm worker runs every undirected algorithm allocation-free — the same
/// contract the bipartite `_ws` kernels certify in the workspace tests.
/// Each produces bit-identical results to its classic counterpart.
///@{

/// scale_symmetric into `out` (d/iterations/error fully reset).
void scale_symmetric_ws(const UndirectedGraph& g, int iterations, Workspace& ws,
                        SymmetricScaling& out);

/// sample_choices into a leased vector (valid until the tag is re-leased).
[[nodiscard]] std::vector<vid_t>& sample_choices_ws(const UndirectedGraph& g,
                                                    std::span<const double> d,
                                                    std::uint64_t seed, Workspace& ws);

/// one_out_karp_sipser into `out`.
void one_out_karp_sipser_ws(vid_t n, std::span<const vid_t> choice, Workspace& ws,
                            UndirectedMatching& out);

/// undirected_one_out_match into `out`.
void undirected_one_out_match_ws(const UndirectedGraph& g, int scaling_iterations,
                                 std::uint64_t seed, Workspace& ws,
                                 UndirectedMatching& out);

/// undirected_greedy into `out`.
void undirected_greedy_ws(const UndirectedGraph& g, std::uint64_t seed, Workspace& ws,
                          UndirectedMatching& out);

/// undirected_two_thirds into `out`.
void undirected_two_thirds_ws(const UndirectedGraph& g, std::uint64_t seed,
                              Workspace& ws, UndirectedMatching& out);

///@}

} // namespace bmh
