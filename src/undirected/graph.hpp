#pragma once
/// \file undirected/graph.hpp
/// \brief Undirected graph substrate for the paper's §5 extension.
///
/// The paper closes with: "We are investigating variants of the proposed
/// heuristics for finding approximate matchings in undirected graphs. The
/// algorithms and results extend naturally…". This module provides that
/// extension: a CSR symmetric graph, a symmetry-preserving doubly
/// stochastic scaling, and the 1-out choice machinery adapted to the
/// one-sided (single vertex class) setting.

#include <span>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/types.hpp"

namespace bmh {

/// Simple undirected graph in CSR form; the adjacency is stored
/// symmetrically (each edge appears in both endpoint lists). Self-loops are
/// rejected (they cannot participate in a matching).
class UndirectedGraph {
public:
  UndirectedGraph() = default;

  /// Builds from an edge list; duplicates collapse, (u,v) implies (v,u).
  static UndirectedGraph from_edges(vid_t num_vertices,
                                    const std::vector<std::pair<vid_t, vid_t>>& edges);

  [[nodiscard]] vid_t num_vertices() const noexcept { return n_; }
  /// Number of undirected edges (each counted once).
  [[nodiscard]] eid_t num_edges() const noexcept { return adj_.empty() ? 0 : static_cast<eid_t>(adj_.size()) / 2; }

  [[nodiscard]] std::span<const vid_t> neighbors(vid_t u) const noexcept {
    return {adj_.data() + ptr_[static_cast<std::size_t>(u)],
            static_cast<std::size_t>(ptr_[static_cast<std::size_t>(u) + 1] -
                                     ptr_[static_cast<std::size_t>(u)])};
  }
  [[nodiscard]] eid_t degree(vid_t u) const noexcept {
    return ptr_[static_cast<std::size_t>(u) + 1] - ptr_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] bool has_edge(vid_t u, vid_t v) const noexcept;

  /// The symmetric (0,1)-adjacency matrix as a square bipartite graph
  /// (rows = columns = vertices); used to reuse the scaling kernels.
  [[nodiscard]] BipartiteGraph as_bipartite() const;

  /// In-place rebuild as the *symmetric view* of a square pattern-symmetric
  /// bipartite graph: vertex u's neighbours are row u's columns, diagonal
  /// entries dropped (self-loops cannot be matched). Preconditions
  /// (squareness, is_pattern_symmetric) are the caller's — see
  /// graph/transform.hpp; violating them yields an asymmetric adjacency.
  /// Capacity is reused, so warm calls on same-shaped graphs are
  /// allocation-free (the kind=undirected-match serving path).
  void assign_symmetric_view(const BipartiteGraph& g);

  /// In-place rebuild as the *bipartite union* graph: vertices are the rows
  /// followed by the columns (column j becomes vertex num_rows + j), with an
  /// edge per structural nonzero. Defined for every bipartite graph; an
  /// undirected matching on it is exactly a bipartite matching of `g`.
  /// Capacity is reused like assign_symmetric_view.
  void assign_bipartite_union(const BipartiteGraph& g);

private:
  vid_t n_ = 0;
  std::vector<eid_t> ptr_{0};
  std::vector<vid_t> adj_;
};

/// Erdős–Rényi G(n, m)-style random undirected graph (m edge draws,
/// duplicates collapse, self-loops skipped). Deterministic in the seed.
[[nodiscard]] UndirectedGraph make_undirected_erdos_renyi(vid_t n, eid_t edge_target,
                                                          std::uint64_t seed);

/// Cycle graph C_n.
[[nodiscard]] UndirectedGraph make_undirected_cycle(vid_t n);

/// Path graph P_n.
[[nodiscard]] UndirectedGraph make_undirected_path(vid_t n);

/// Complete graph K_n.
[[nodiscard]] UndirectedGraph make_undirected_complete(vid_t n);

} // namespace bmh
