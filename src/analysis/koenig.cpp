#include "analysis/koenig.hpp"

#include <vector>

namespace bmh {

vid_t VertexCover::size() const noexcept {
  vid_t count = 0;
  for (const bool b : row_in_cover) count += b ? 1 : 0;
  for (const bool b : col_in_cover) count += b ? 1 : 0;
  return count;
}

VertexCover koenig_cover(const BipartiteGraph& g, const Matching& m) {
  // Alternating BFS from the free rows: row -> column via any edge,
  // column -> row via its matching edge.
  std::vector<bool> row_reached(static_cast<std::size_t>(g.num_rows()), false);
  std::vector<bool> col_reached(static_cast<std::size_t>(g.num_cols()), false);
  std::vector<vid_t> queue;
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (!m.row_matched(i)) {
      row_reached[static_cast<std::size_t>(i)] = true;
      queue.push_back(i);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const vid_t i = queue[head];
    for (const vid_t j : g.row_neighbors(i)) {
      if (col_reached[static_cast<std::size_t>(j)]) continue;
      col_reached[static_cast<std::size_t>(j)] = true;
      const vid_t w = m.col_match[static_cast<std::size_t>(j)];
      if (w != kNil && !row_reached[static_cast<std::size_t>(w)]) {
        row_reached[static_cast<std::size_t>(w)] = true;
        queue.push_back(w);
      }
    }
  }

  VertexCover cover;
  cover.row_in_cover.assign(static_cast<std::size_t>(g.num_rows()), false);
  cover.col_in_cover.assign(static_cast<std::size_t>(g.num_cols()), false);
  for (vid_t i = 0; i < g.num_rows(); ++i)
    cover.row_in_cover[static_cast<std::size_t>(i)] =
        !row_reached[static_cast<std::size_t>(i)];
  for (vid_t j = 0; j < g.num_cols(); ++j)
    cover.col_in_cover[static_cast<std::size_t>(j)] =
        col_reached[static_cast<std::size_t>(j)];
  return cover;
}

bool is_vertex_cover(const BipartiteGraph& g, const VertexCover& c) {
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (c.row_in_cover[static_cast<std::size_t>(i)]) continue;
    for (const vid_t j : g.row_neighbors(i))
      if (!c.col_in_cover[static_cast<std::size_t>(j)]) return false;
  }
  return true;
}

bool is_maximum_matching(const BipartiteGraph& g, const Matching& m) {
  if (!is_valid_matching(g, m)) return false;
  const VertexCover cover = koenig_cover(g, m);
  // For a maximum matching the construction provably covers and has size
  // |M| (weak duality gives |C| >= |M| for every cover/matching pair, so
  // equality certifies both optimal). For a non-maximum matching an
  // augmenting path exists; its free column endpoint is reached, making
  // some matched column counted while its free row endpoint escapes the
  // row side — the sizes then differ or the cover fails.
  return is_vertex_cover(g, cover) && cover.size() == m.cardinality();
}

} // namespace bmh
