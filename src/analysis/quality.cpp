#include "analysis/quality.hpp"

#include "matching/hopcroft_karp.hpp"

namespace bmh {

double matching_quality(const Matching& m, vid_t max_cardinality) {
  if (max_cardinality <= 0) return 1.0;
  return static_cast<double>(m.cardinality()) / static_cast<double>(max_cardinality);
}

QualityReport evaluate_matching(const BipartiteGraph& g, const Matching& m) {
  QualityReport r;
  r.cardinality = m.cardinality();
  r.sprank = sprank(g);
  r.quality = matching_quality(m, r.sprank);
  r.valid = is_valid_matching(g, m);
  return r;
}

} // namespace bmh
