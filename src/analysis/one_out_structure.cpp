#include "analysis/one_out_structure.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/builder.hpp"

namespace bmh {

namespace {

/// Union–find with path halving; small and adequate for analysis use.
class DisjointSets {
public:
  explicit DisjointSets(vid_t n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  vid_t find(vid_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(vid_t a, vid_t b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

private:
  std::vector<vid_t> parent_;
};

} // namespace

ChoiceGraphStructure analyze_choice_graph(vid_t m, vid_t n,
                                          std::span<const vid_t> choice) {
  const vid_t total = m + n;
  if (choice.size() != static_cast<std::size_t>(total))
    throw std::invalid_argument("analyze_choice_graph: choice size mismatch");

  ChoiceGraphStructure s;
  s.num_vertices = total;

  DisjointSets ds(total);
  for (vid_t u = 0; u < total; ++u) {
    const vid_t v = choice[static_cast<std::size_t>(u)];
    if (v != kNil) ds.unite(u, v);
  }

  // Count distinct edges per component; a reciprocal pair (u chose v and v
  // chose u) is one edge, counted once via the u < v tie-break.
  std::vector<vid_t> comp_vertices(static_cast<std::size_t>(total), 0);
  std::vector<vid_t> comp_edges(static_cast<std::size_t>(total), 0);
  std::vector<bool> comp_has_vertex_with_edge(static_cast<std::size_t>(total), false);
  for (vid_t u = 0; u < total; ++u) {
    const vid_t root = ds.find(u);
    ++comp_vertices[static_cast<std::size_t>(root)];
    const vid_t v = choice[static_cast<std::size_t>(u)];
    if (v == kNil) continue;
    comp_has_vertex_with_edge[static_cast<std::size_t>(root)] = true;
    const bool reciprocal = choice[static_cast<std::size_t>(v)] == u;
    if (!reciprocal || u < v) ++comp_edges[static_cast<std::size_t>(root)];
  }

  s.lemma1_holds = true;
  for (vid_t r = 0; r < total; ++r) {
    const vid_t verts = comp_vertices[static_cast<std::size_t>(r)];
    if (verts == 0) continue;  // r is not a root representative
    ++s.num_components;
    s.max_component_size = std::max(s.max_component_size, verts);
    const vid_t edges = comp_edges[static_cast<std::size_t>(r)];
    s.num_edges += edges;
    if (verts == 1 && !comp_has_vertex_with_edge[static_cast<std::size_t>(r)]) {
      ++s.num_singletons;
    } else if (edges == verts - 1) {
      ++s.num_tree_components;
    } else if (edges == verts) {
      ++s.num_unicyclic;
    } else {
      s.lemma1_holds = false;  // would contradict Lemma 1
    }
  }
  return s;
}

BipartiteGraph materialize_choice_graph(vid_t m, vid_t n,
                                        std::span<const vid_t> rchoice,
                                        std::span<const vid_t> cchoice) {
  if (rchoice.size() != static_cast<std::size_t>(m) ||
      cchoice.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("materialize_choice_graph: size mismatch");
  GraphBuilder b(m, n);
  b.reserve(static_cast<std::size_t>(m) + static_cast<std::size_t>(n));
  for (vid_t i = 0; i < m; ++i)
    if (rchoice[static_cast<std::size_t>(i)] != kNil)
      b.add_edge(i, rchoice[static_cast<std::size_t>(i)]);
  for (vid_t j = 0; j < n; ++j)
    if (cchoice[static_cast<std::size_t>(j)] != kNil)
      b.add_edge(cchoice[static_cast<std::size_t>(j)], j);
  return b.build();
}

} // namespace bmh
