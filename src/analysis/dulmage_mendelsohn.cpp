#include "analysis/dulmage_mendelsohn.hpp"

#include <algorithm>
#include <vector>

#include "matching/hopcroft_karp.hpp"

namespace bmh {

namespace {

/// Alternating BFS from the unmatched columns: column -> row along any
/// edge, row -> column along its matching edge. Marks everything reached.
void sweep_from_free_columns(const BipartiteGraph& g, const Matching& m,
                             std::vector<bool>& row_reached,
                             std::vector<bool>& col_reached) {
  std::vector<vid_t> queue;
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    if (!m.col_matched(j)) {
      col_reached[static_cast<std::size_t>(j)] = true;
      queue.push_back(j);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const vid_t j = queue[head];
    for (const vid_t i : g.col_neighbors(j)) {
      if (row_reached[static_cast<std::size_t>(i)]) continue;
      row_reached[static_cast<std::size_t>(i)] = true;
      const vid_t jm = m.row_match[static_cast<std::size_t>(i)];
      // i is matched (otherwise j -> i would be an augmenting path).
      if (jm != kNil && !col_reached[static_cast<std::size_t>(jm)]) {
        col_reached[static_cast<std::size_t>(jm)] = true;
        queue.push_back(jm);
      }
    }
  }
}

/// Mirror image: alternating BFS from the unmatched rows.
void sweep_from_free_rows(const BipartiteGraph& g, const Matching& m,
                          std::vector<bool>& row_reached,
                          std::vector<bool>& col_reached) {
  std::vector<vid_t> queue;
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (!m.row_matched(i)) {
      row_reached[static_cast<std::size_t>(i)] = true;
      queue.push_back(i);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const vid_t i = queue[head];
    for (const vid_t j : g.row_neighbors(i)) {
      if (col_reached[static_cast<std::size_t>(j)]) continue;
      col_reached[static_cast<std::size_t>(j)] = true;
      const vid_t im = m.col_match[static_cast<std::size_t>(j)];
      if (im != kNil && !row_reached[static_cast<std::size_t>(im)]) {
        row_reached[static_cast<std::size_t>(im)] = true;
        queue.push_back(im);
      }
    }
  }
}

/// Iterative Tarjan SCC over the column digraph: j -> j' when the row
/// matched to j has an edge to j'. Returns per-column component ids
/// (kNil for unmatched columns, which have no outgoing arcs and sit in
/// trivial components irrelevant to total support).
std::vector<vid_t> matched_column_sccs(const BipartiteGraph& g, const Matching& m) {
  const vid_t n = g.num_cols();
  std::vector<vid_t> comp(static_cast<std::size_t>(n), kNil);
  std::vector<vid_t> low(static_cast<std::size_t>(n), 0), num(static_cast<std::size_t>(n), kNil);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<vid_t> scc_stack;
  vid_t next_num = 0, next_comp = 0;

  struct Frame {
    vid_t j;
    eid_t edge;  // cursor into the matched row's adjacency
  };
  std::vector<Frame> call;

  for (vid_t root = 0; root < n; ++root) {
    if (num[static_cast<std::size_t>(root)] != kNil) continue;
    if (m.col_match[static_cast<std::size_t>(root)] == kNil) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      const vid_t i = m.col_match[static_cast<std::size_t>(f.j)];
      if (f.edge == 0) {
        num[static_cast<std::size_t>(f.j)] = low[static_cast<std::size_t>(f.j)] = next_num++;
        scc_stack.push_back(f.j);
        on_stack[static_cast<std::size_t>(f.j)] = true;
      }
      bool descended = false;
      const auto nbrs = g.row_neighbors(i);
      while (f.edge < static_cast<eid_t>(nbrs.size())) {
        const vid_t j2 = nbrs[static_cast<std::size_t>(f.edge++)];
        if (m.col_match[static_cast<std::size_t>(j2)] == kNil) continue;
        if (num[static_cast<std::size_t>(j2)] == kNil) {
          call.push_back({j2, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(j2)])
          low[static_cast<std::size_t>(f.j)] =
              std::min(low[static_cast<std::size_t>(f.j)], num[static_cast<std::size_t>(j2)]);
      }
      if (descended) continue;
      // f.j is finished.
      if (low[static_cast<std::size_t>(f.j)] == num[static_cast<std::size_t>(f.j)]) {
        vid_t w;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          comp[static_cast<std::size_t>(w)] = next_comp;
        } while (w != f.j);
        ++next_comp;
      }
      const vid_t finished = f.j;
      call.pop_back();
      if (!call.empty()) {
        Frame& parent = call.back();
        low[static_cast<std::size_t>(parent.j)] =
            std::min(low[static_cast<std::size_t>(parent.j)],
                     low[static_cast<std::size_t>(finished)]);
      }
    }
  }
  return comp;
}

} // namespace

DmDecomposition dulmage_mendelsohn(const BipartiteGraph& g) {
  DmDecomposition dm;
  dm.matching = hopcroft_karp(g);
  dm.sprank = dm.matching.cardinality();

  std::vector<bool> h_row(static_cast<std::size_t>(g.num_rows()), false);
  std::vector<bool> h_col(static_cast<std::size_t>(g.num_cols()), false);
  sweep_from_free_columns(g, dm.matching, h_row, h_col);

  std::vector<bool> v_row(static_cast<std::size_t>(g.num_rows()), false);
  std::vector<bool> v_col(static_cast<std::size_t>(g.num_cols()), false);
  sweep_from_free_rows(g, dm.matching, v_row, v_col);

  dm.row_part.assign(static_cast<std::size_t>(g.num_rows()), DmPart::Square);
  dm.col_part.assign(static_cast<std::size_t>(g.num_cols()), DmPart::Square);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (h_row[static_cast<std::size_t>(i)]) {
      dm.row_part[static_cast<std::size_t>(i)] = DmPart::Horizontal;
      ++dm.h_rows;
    } else if (v_row[static_cast<std::size_t>(i)]) {
      dm.row_part[static_cast<std::size_t>(i)] = DmPart::Vertical;
      ++dm.v_rows;
    }
  }
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    if (h_col[static_cast<std::size_t>(j)]) {
      dm.col_part[static_cast<std::size_t>(j)] = DmPart::Horizontal;
      ++dm.h_cols;
    } else if (v_col[static_cast<std::size_t>(j)]) {
      dm.col_part[static_cast<std::size_t>(j)] = DmPart::Vertical;
      ++dm.v_cols;
    }
  }
  dm.s_size = g.num_rows() - dm.h_rows - dm.v_rows;
  return dm;
}

FineDm fine_decomposition(const BipartiteGraph& g) {
  const DmDecomposition dm = dulmage_mendelsohn(g);
  FineDm fine;
  fine.col_block.assign(static_cast<std::size_t>(g.num_cols()), kNil);
  fine.row_block.assign(static_cast<std::size_t>(g.num_rows()), kNil);

  // SCC over all matched columns, then renumber densely over the S part
  // only (H/V columns are excluded from the fine decomposition).
  const std::vector<vid_t> comp = matched_column_sccs(g, dm.matching);
  std::vector<vid_t> remap;
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    if (dm.col_part[static_cast<std::size_t>(j)] != DmPart::Square) continue;
    const vid_t c = comp[static_cast<std::size_t>(j)];
    if (c == kNil) continue;  // unmatched column cannot be in S anyway
    if (static_cast<std::size_t>(c) >= remap.size()) remap.resize(static_cast<std::size_t>(c) + 1, kNil);
    if (remap[static_cast<std::size_t>(c)] == kNil)
      remap[static_cast<std::size_t>(c)] = fine.num_blocks++;
    fine.col_block[static_cast<std::size_t>(j)] = remap[static_cast<std::size_t>(c)];
    const vid_t i = dm.matching.col_match[static_cast<std::size_t>(j)];
    fine.row_block[static_cast<std::size_t>(i)] = fine.col_block[static_cast<std::size_t>(j)];
  }
  return fine;
}

bool has_total_support(const BipartiteGraph& g) {
  if (!g.square() || g.num_rows() == 0) return g.num_rows() == 0;
  const Matching m = hopcroft_karp(g);
  if (m.cardinality() != g.num_rows()) return false;
  const std::vector<vid_t> comp = matched_column_sccs(g, m);
  // Edge (i, j) lies in some perfect matching iff j and i's matched column
  // are in the same SCC of the matching-directed column graph.
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    const vid_t jm = m.row_match[static_cast<std::size_t>(i)];
    for (const vid_t j : g.row_neighbors(i))
      if (comp[static_cast<std::size_t>(j)] != comp[static_cast<std::size_t>(jm)])
        return false;
  }
  return true;
}

bool is_fully_indecomposable(const BipartiteGraph& g) {
  if (!g.square() || g.num_rows() == 0) return false;
  const Matching m = hopcroft_karp(g);
  if (m.cardinality() != g.num_rows()) return false;
  const std::vector<vid_t> comp = matched_column_sccs(g, m);
  for (vid_t j = 0; j < g.num_cols(); ++j)
    if (comp[static_cast<std::size_t>(j)] != comp[0]) return false;
  // One SCC and a perfect matching: every entry is in a perfect matching
  // and the matrix cannot be permuted to block triangular form.
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    const vid_t jm = m.row_match[static_cast<std::size_t>(i)];
    for (const vid_t j : g.row_neighbors(i))
      if (comp[static_cast<std::size_t>(j)] != comp[static_cast<std::size_t>(jm)])
        return false;
  }
  return true;
}

} // namespace bmh
