#pragma once
/// \file koenig.hpp
/// \brief König certification: minimum vertex covers from maximum
/// matchings.
///
/// König's theorem: in a bipartite graph the maximum matching cardinality
/// equals the minimum vertex cover size. Given a *maximum* matching, the
/// cover is constructed from the alternating-reachability sweep (the same
/// machinery as the Dulmage–Mendelsohn H part): let Z be everything
/// reachable from free rows by alternating paths; the cover is
/// (rows \ Z) ∪ (columns ∩ Z).
///
/// The pair (matching, cover) with |M| = |C| is a self-checking optimality
/// certificate: the tests use it to validate every exact solver without
/// trusting any single implementation.

#include <vector>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

struct VertexCover {
  std::vector<bool> row_in_cover;
  std::vector<bool> col_in_cover;

  [[nodiscard]] vid_t size() const noexcept;
};

/// Builds the König cover from a matching of `g`. The result is a valid
/// cover with |C| = |M| **iff** `m` is maximum; for non-maximum matchings
/// the construction still returns a vertex set but it may fail to cover
/// (which is exactly how is_maximum_matching detects non-optimality).
[[nodiscard]] VertexCover koenig_cover(const BipartiteGraph& g, const Matching& m);

/// True iff every edge has at least one endpoint in the cover.
[[nodiscard]] bool is_vertex_cover(const BipartiteGraph& g, const VertexCover& c);

/// True iff `m` is a *maximum* matching of `g`: valid, and the König
/// construction yields a cover of equal size. O(n + tau).
[[nodiscard]] bool is_maximum_matching(const BipartiteGraph& g, const Matching& m);

} // namespace bmh
