#pragma once
/// \file quality.hpp
/// \brief Matching quality accounting (|M| / sprank), the metric of every
/// table and figure in the paper's evaluation.

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bmh {

/// |M| / max_cardinality. `max_cardinality` is typically sprank(g), computed
/// once per instance and reused across heuristic runs.
[[nodiscard]] double matching_quality(const Matching& m, vid_t max_cardinality);

struct QualityReport {
  vid_t cardinality = 0;
  vid_t sprank = 0;
  double quality = 0.0;  ///< cardinality / sprank
  bool valid = false;    ///< is_valid_matching held
};

/// One-stop evaluation of a heuristic result against the exact optimum.
[[nodiscard]] QualityReport evaluate_matching(const BipartiteGraph& g, const Matching& m);

} // namespace bmh
