#include "analysis/components.hpp"

#include <algorithm>

namespace bmh {

ComponentInfo connected_components(const BipartiteGraph& g) {
  ComponentInfo info;
  info.row_component.assign(static_cast<std::size_t>(g.num_rows()), kNil);
  info.col_component.assign(static_cast<std::size_t>(g.num_cols()), kNil);

  // Unified BFS queue: rows are [0, m), columns are [m, m+n).
  const vid_t m = g.num_rows();
  std::vector<vid_t> queue;
  auto bfs = [&](vid_t start_unified, vid_t comp) {
    queue.clear();
    queue.push_back(start_unified);
    if (start_unified < m) {
      info.row_component[static_cast<std::size_t>(start_unified)] = comp;
    } else {
      info.col_component[static_cast<std::size_t>(start_unified - m)] = comp;
    }
    vid_t rows_here = 0, cols_here = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const vid_t u = queue[head];
      if (u < m) {
        ++rows_here;
        for (const vid_t j : g.row_neighbors(u)) {
          if (info.col_component[static_cast<std::size_t>(j)] != kNil) continue;
          info.col_component[static_cast<std::size_t>(j)] = comp;
          queue.push_back(m + j);
        }
      } else {
        ++cols_here;
        for (const vid_t i : g.col_neighbors(u - m)) {
          if (info.row_component[static_cast<std::size_t>(i)] != kNil) continue;
          info.row_component[static_cast<std::size_t>(i)] = comp;
          queue.push_back(i);
        }
      }
    }
    if (rows_here + cols_here > info.largest_rows + info.largest_cols) {
      info.largest_rows = rows_here;
      info.largest_cols = cols_here;
    }
  };

  for (vid_t i = 0; i < g.num_rows(); ++i)
    if (info.row_component[static_cast<std::size_t>(i)] == kNil)
      bfs(i, info.num_components++);
  for (vid_t j = 0; j < g.num_cols(); ++j)
    if (info.col_component[static_cast<std::size_t>(j)] == kNil)
      bfs(m + j, info.num_components++);
  return info;
}

bool is_connected(const BipartiteGraph& g) {
  if (g.num_rows() + g.num_cols() <= 1) return true;
  return connected_components(g).num_components == 1;
}

} // namespace bmh
