#pragma once
/// \file one_out_structure.hpp
/// \brief Structural analysis of TwoSidedMatch's choice subgraphs.
///
/// Lemma 1 of the paper: every connected component of the "1-out ∪ 1-in"
/// graph built from the row and column choices contains at most one simple
/// cycle (a component with n' vertices has at most n' edges). This module
/// verifies that property empirically and classifies the components — the
/// tests use it to certify the precondition under which KarpSipserMT is an
/// exact algorithm.

#include <span>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/types.hpp"

namespace bmh {

struct ChoiceGraphStructure {
  vid_t num_vertices = 0;        ///< m + n
  vid_t num_components = 0;      ///< including singletons
  vid_t num_singletons = 0;      ///< isolated vertices (no incident choice)
  vid_t num_tree_components = 0; ///< edges = vertices - 1 (no cycle)
  vid_t num_unicyclic = 0;       ///< edges = vertices (exactly one cycle)
  vid_t max_component_size = 0;
  eid_t num_edges = 0;           ///< distinct edges (reciprocal picks merge)
  bool lemma1_holds = false;     ///< edges <= vertices in every component
};

/// Analyzes the implicit graph {{u, choice[u]}} over unified ids (rows
/// [0, m), columns [m, m+n)); kNil entries contribute no edge.
[[nodiscard]] ChoiceGraphStructure analyze_choice_graph(vid_t m, vid_t n,
                                                        std::span<const vid_t> choice);

/// Materializes the choice subgraph as an explicit BipartiteGraph (at most
/// m + n edges), so exact solvers can certify KarpSipserMT's output.
[[nodiscard]] BipartiteGraph materialize_choice_graph(vid_t m, vid_t n,
                                                      std::span<const vid_t> rchoice,
                                                      std::span<const vid_t> cchoice);

} // namespace bmh
