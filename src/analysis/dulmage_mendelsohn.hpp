#pragma once
/// \file dulmage_mendelsohn.hpp
/// \brief Dulmage–Mendelsohn decomposition (paper §3.3).
///
/// The canonical block-triangular form splits a matrix into a horizontal
/// block H (more columns than rows, row-perfect matching), a square block S
/// (perfect matching), and a vertical block V (more rows than columns,
/// column-perfect matching). The paper uses the DM structure to argue why
/// the heuristics remain sound without total support: Sinkhorn–Knopp drives
/// the coupling "*" entries — which can never belong to a maximum matching —
/// toward zero, so the random choices concentrate on the useful blocks.
/// The tests verify exactly that behaviour.

#include <vector>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"
#include "util/types.hpp"

namespace bmh {

enum class DmPart : unsigned char {
  Horizontal,  ///< H: underdetermined part
  Square,      ///< S: well-determined part
  Vertical,    ///< V: overdetermined part
};

struct DmDecomposition {
  std::vector<DmPart> row_part;  ///< per row vertex
  std::vector<DmPart> col_part;  ///< per column vertex
  Matching matching;             ///< the maximum matching used
  vid_t sprank = 0;

  vid_t h_rows = 0, h_cols = 0;
  vid_t s_size = 0;  ///< S is square: s_size rows and columns
  vid_t v_rows = 0, v_cols = 0;
};

/// Computes the coarse decomposition via one maximum matching plus two
/// alternating BFS sweeps (from the unmatched columns for H, and from the
/// unmatched rows for V).
[[nodiscard]] DmDecomposition dulmage_mendelsohn(const BipartiteGraph& g);

/// The fine decomposition of the square part S: its strongly connected
/// blocks S_1, ..., S_b in the matching-directed column graph. S has total
/// support iff no edge of S leaves its block; S is fully indecomposable
/// iff b == 1 (and S == the whole matrix).
struct FineDm {
  /// Block id per column: valid for columns in the Square part, kNil for
  /// Horizontal/Vertical columns. Ids are dense in [0, num_blocks).
  std::vector<vid_t> col_block;
  /// Block id per row: the block of the row's matched column (S rows are
  /// always matched); kNil outside S.
  std::vector<vid_t> row_block;
  vid_t num_blocks = 0;
};

/// Computes the fine decomposition (coarse DM + Tarjan SCC on S).
[[nodiscard]] FineDm fine_decomposition(const BipartiteGraph& g);

/// True iff every edge of `g` can be put in a perfect matching, i.e. the
/// matrix is square, has a perfect matching, and each edge stays inside one
/// strongly connected component of the matching-directed graph. This is the
/// paper's standing "total support" assumption; fully indecomposable
/// matrices are exactly the square ones whose S part is a single SCC.
[[nodiscard]] bool has_total_support(const BipartiteGraph& g);

/// True iff the matrix is fully indecomposable (square, total support, and
/// the matching-directed graph is one SCC spanning all vertices).
[[nodiscard]] bool is_fully_indecomposable(const BipartiteGraph& g);

} // namespace bmh
