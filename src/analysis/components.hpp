#pragma once
/// \file components.hpp
/// \brief Connected components of a bipartite graph.
///
/// The paper's standing assumption (§1) is a square matrix that is fully
/// indecomposable *or block diagonal with fully indecomposable blocks* —
/// i.e., the analysis applies per connected component. This module finds
/// the components so tests and users can verify/exploit that structure
/// (e.g., run the heuristics per block, or check that quality guarantees
/// hold blockwise).

#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/types.hpp"

namespace bmh {

struct ComponentInfo {
  std::vector<vid_t> row_component;  ///< component id per row (kNil never)
  std::vector<vid_t> col_component;  ///< component id per column
  vid_t num_components = 0;          ///< includes isolated vertices
  vid_t largest_rows = 0;            ///< row count of the largest component
  vid_t largest_cols = 0;
};

/// BFS labeling over the union of CSR and CSC adjacency. Isolated rows and
/// columns each form their own (trivial) component.
[[nodiscard]] ComponentInfo connected_components(const BipartiteGraph& g);

/// True iff the graph is connected (a fully indecomposable matrix must be;
/// the converse does not hold).
[[nodiscard]] bool is_connected(const BipartiteGraph& g);

} // namespace bmh
