#include "util/failpoint.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace bmh::fp {
namespace {

// splitmix64 — the draw for probability mode. Deterministic in
// (seed, site, per-site evaluation ordinal), so a fault schedule replays
// identically as long as each site sees the same number of evaluations.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

struct Site {
  Config config;  ///< guarded by Registry::mutex_
  std::atomic<std::uint64_t> evals{0};
  obs::Counter* eval_counter = nullptr;   ///< stable once created
  obs::Counter* fire_counter = nullptr;
};

class Registry {
public:
  static Registry& instance() {
    static Registry* r = new Registry();  // leaked: sites outlive all users
    return *r;
  }

  void configure(std::string_view site, const Config& config) {
    ExclusiveLock lock(mutex_);
    Site& s = find_or_create_locked(site);
    s.config = config;
  }

  void clear(std::string_view site) {
    ExclusiveLock lock(mutex_);
    auto it = sites_.find(site);
    if (it != sites_.end()) it->second->config = Config{};
  }

  void clear_all() {
    ExclusiveLock lock(mutex_);
    for (auto& [name, site] : sites_) site->config = Config{};
  }

  void set_seed(std::uint64_t seed) noexcept {
    seed_.store(seed, std::memory_order_relaxed);
  }

  obs::MetricDomain& domain() noexcept { return domain_; }

  bool hit(std::string_view site_name) {
    Site* site = nullptr;
    Config config;
    {
      SharedLock lock(mutex_);
      auto it = sites_.find(site_name);
      if (it == sites_.end()) return false;
      site = it->second.get();
      config = site->config;
    }
    if (config.action == Action::kOff) return false;

    const std::uint64_t n = site->evals.fetch_add(1, std::memory_order_relaxed) + 1;
    site->eval_counter->inc();

    bool fire = true;
    if (config.first > 0 && n > config.first) fire = false;
    if (fire && config.every > 0) fire = (n % config.every == 0);
    if (fire && config.probability >= 0.0) {
      const std::uint64_t draw = splitmix64(
          seed_.load(std::memory_order_relaxed) ^ fnv1a(site_name) ^ n);
      const double u =
          static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
      fire = u < config.probability;
    }
    if (!fire) return false;

    site->fire_counter->inc();
    switch (config.action) {
      case Action::kError:
        throw FailpointError(std::string(site_name));
      case Action::kDelay:
        std::this_thread::sleep_for(std::chrono::nanoseconds(config.delay_ns));
        return false;
      case Action::kCorrupt:
        return true;
      case Action::kOff:
        break;
    }
    return false;
  }

  void apply_string(std::string_view text) {
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t end = std::min(text.find(';', pos), text.size());
      std::string_view entry = text.substr(pos, end - pos);
      pos = end + 1;
      while (!entry.empty() && std::isspace(static_cast<unsigned char>(entry.front())))
        entry.remove_prefix(1);
      while (!entry.empty() && std::isspace(static_cast<unsigned char>(entry.back())))
        entry.remove_suffix(1);
      if (entry.empty()) continue;
      const std::size_t eq = entry.find('=');
      if (eq == std::string_view::npos || eq == 0)
        throw std::invalid_argument("failpoint spec missing 'site=': '" +
                                    std::string(entry) + "'");
      configure(entry.substr(0, eq), parse_config(entry.substr(eq + 1)));
    }
  }

  std::uint64_t counter_value(std::string_view site, const char* suffix) {
    SharedLock lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return 0;
    return (suffix[0] == 'f' ? it->second->fire_counter : it->second->eval_counter)
        ->value();
  }

private:
  Registry() {
    // One-shot env arming: grammar errors are a warning, not a crash — a
    // bad BMH_FAILPOINTS value must not take down a production process
    // whose build happens to have the subsystem compiled in.
    // One-shot read at registry construction, before any worker exists.
    // NOLINTNEXTLINE(concurrency-mt-unsafe): see above
    if (const char* env = std::getenv("BMH_FAILPOINTS"); env && *env) {
      try {
        apply_string(env);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bmh: ignoring bad BMH_FAILPOINTS entry: %s\n",
                     e.what());
      }
    }
  }

  Site& find_or_create_locked(std::string_view site) BMH_REQUIRES(mutex_) {
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      auto owned = std::make_unique<Site>();
      owned->eval_counter = &domain_.counter(std::string(site) + ".evaluations");
      owned->fire_counter = &domain_.counter(std::string(site) + ".fires");
      it = sites_.emplace(std::string(site), std::move(owned)).first;
    }
    return *it->second;
  }

  SharedMutex mutex_;
  std::map<std::string, std::unique_ptr<Site>, std::less<>> sites_
      BMH_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> seed_{0x9E3779B97F4A7C15ull};
  obs::MetricDomain domain_{"failpoints"};
};

std::uint64_t parse_count(std::string_view text, const char* what) {
  if (text.empty()) throw std::invalid_argument(std::string("failpoint ") + what +
                                                " missing a value");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9')
      throw std::invalid_argument(std::string("failpoint ") + what +
                                  " is not a number: '" + std::string(text) + "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::uint64_t parse_delay_ns(std::string_view arg) {
  std::size_t digits = 0;
  while (digits < arg.size() && arg[digits] >= '0' && arg[digits] <= '9') ++digits;
  if (digits == 0)
    throw std::invalid_argument("failpoint delay needs a duration: '" +
                                std::string(arg) + "'");
  const std::uint64_t value = parse_count(arg.substr(0, digits), "delay");
  const std::string_view unit = arg.substr(digits);
  if (unit.empty() || unit == "ms") return value * 1'000'000ull;
  if (unit == "us") return value * 1'000ull;
  if (unit == "ns") return value;
  if (unit == "s") return value * 1'000'000'000ull;
  throw std::invalid_argument("failpoint delay unit must be ns/us/ms/s: '" +
                              std::string(arg) + "'");
}

} // namespace

FailpointError::FailpointError(std::string site)
    : std::runtime_error("failpoint '" + site + "' injected error"),
      site_(std::move(site)) {}

Config parse_config(std::string_view spec) {
  Config config;
  const std::size_t colon = spec.find(':');
  std::string_view action = spec.substr(0, colon);
  if (action == "off") {
    config.action = Action::kOff;
  } else if (action == "error") {
    config.action = Action::kError;
  } else if (action == "corrupt") {
    config.action = Action::kCorrupt;
  } else if (action.starts_with("delay(") && action.ends_with(")")) {
    config.action = Action::kDelay;
    config.delay_ns = parse_delay_ns(action.substr(6, action.size() - 7));
  } else {
    throw std::invalid_argument("unknown failpoint action: '" +
                                std::string(action) + "'");
  }
  if (colon == std::string_view::npos) return config;

  std::string_view mods = spec.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= mods.size()) {
    const std::size_t end = std::min(mods.find(',', pos), mods.size());
    const std::string_view mod = mods.substr(pos, end - pos);
    pos = end + 1;
    if (mod.empty()) continue;
    if (mod.starts_with("p=")) {
      const std::string text(mod.substr(2));
      char* tail = nullptr;
      const double p = std::strtod(text.c_str(), &tail);
      if (tail == text.c_str() || *tail != '\0' || !(p >= 0.0) || p > 1.0)
        throw std::invalid_argument("failpoint probability must be in [0,1]: '" +
                                    text + "'");
      config.probability = p;
    } else if (mod.starts_with("every=")) {
      config.every = parse_count(mod.substr(6), "every");
      if (config.every == 0)
        throw std::invalid_argument("failpoint every= must be >= 1");
    } else if (mod.starts_with("first=")) {
      config.first = parse_count(mod.substr(6), "first");
      if (config.first == 0)
        throw std::invalid_argument("failpoint first= must be >= 1");
    } else {
      throw std::invalid_argument("unknown failpoint modifier: '" +
                                  std::string(mod) + "'");
    }
  }
  return config;
}

void configure(std::string_view site, const Config& config) {
  Registry::instance().configure(site, config);
}

void configure_from_string(std::string_view text) {
  Registry::instance().apply_string(text);
}

void clear(std::string_view site) { Registry::instance().clear(site); }
void clear_all() { Registry::instance().clear_all(); }
void set_seed(std::uint64_t seed) noexcept { Registry::instance().set_seed(seed); }

obs::MetricDomain& metric_domain() { return Registry::instance().domain(); }

std::uint64_t evaluations(std::string_view site) {
  return Registry::instance().counter_value(site, "e");
}

std::uint64_t fires(std::string_view site) {
  return Registry::instance().counter_value(site, "f");
}

bool hit(std::string_view site) { return Registry::instance().hit(site); }

} // namespace bmh::fp
