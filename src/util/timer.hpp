#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing helpers for the benchmark harnesses.

#include <chrono>
#include <cstddef>
#include <vector>

namespace bmh {

/// Monotonic wall-clock stopwatch.
class Timer {
public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Aggregates repeated measurements, following the paper's protocol of
/// dropping warm-up runs and reporting the geometric mean of the rest.
class RunStats {
public:
  void add(double seconds) { samples_.push_back(seconds); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// Geometric mean of all samples after skipping the first `warmup`.
  [[nodiscard]] double geomean(std::size_t warmup = 0) const;

  /// Arithmetic minimum over all samples after skipping the first `warmup`.
  [[nodiscard]] double min(std::size_t warmup = 0) const;

  /// Arithmetic mean after skipping the first `warmup`.
  [[nodiscard]] double mean(std::size_t warmup = 0) const;

private:
  std::vector<double> samples_;
};

} // namespace bmh
