#pragma once
/// \file rng.hpp
/// \brief Deterministic, splittable pseudo-random number generation.
///
/// The heuristics in this library are randomized, and both the tests and the
/// benchmark harnesses need reproducible runs, including under OpenMP where
/// each thread must own an independent stream. We use two small PRNGs:
///
///  * SplitMix64 — a tiny state-advance generator used for seeding.
///  * Xoshiro256** — a fast, high-quality generator for the actual draws.
///
/// `Rng::fork(i)` derives a statistically independent stream for index `i`,
/// so a parallel loop can use `rng.fork(static_cast<std::uint64_t>(i))` per
/// iteration and the output is identical regardless of the thread count —
/// the property the paper relies on when claiming quality does not degrade
/// with parallelism.

#include <cstdint>
#include <limits>

namespace bmh {

/// SplitMix64: used to expand a 64-bit seed into generator state.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x1234abcdULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0, suitable for use as the
  /// random threshold `r` in inverse-CDF sampling over positive weights.
  constexpr double next_double_open0() noexcept {
    return 1.0 - next_double();
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection-free
  /// variant is unnecessary here; modulo bias is negligible for our bounds,
  /// but we still use the widening-multiply trick for speed and uniformity.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Derives an independent stream for lane `lane`. Deterministic: the same
  /// (parent seed, lane) pair always yields the same child stream.
  [[nodiscard]] constexpr Rng fork(std::uint64_t lane) const noexcept {
    SplitMix64 sm(s_[0] ^ (0x9e3779b97f4a7c15ULL * (lane + 1)));
    return Rng(sm.next() ^ s_[3]);
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

/// Hash of a (seed, a, b) triple; handy for seeding per-object generators.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0) noexcept;

} // namespace bmh
