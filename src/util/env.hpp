#pragma once
/// \file env.hpp
/// \brief Environment-variable knobs shared by the benchmark harnesses.
///
/// Benches honour two variables so the same binaries scale from CI smoke
/// runs to full paper-sized reproductions:
///   BMH_SCALE        — multiplies instance sizes (default 1.0, clamped to
///                      [0.01, 100]).
///   BMH_MAX_THREADS  — caps thread sweeps (default: hardware).
///   BMH_REPEATS      — overrides the number of repetitions per data point.

#include <cstdint>
#include <string>

namespace bmh {

/// Reads a double from the environment; returns `fallback` when unset/bad.
double env_double(const char* name, double fallback);

/// Reads an integer from the environment; returns `fallback` when unset/bad.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a string from the environment; returns `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

/// BMH_SCALE, clamped to [0.01, 100].
double bench_scale();

/// Scales `n` by bench_scale(), with a floor to keep instances meaningful.
std::int64_t scaled(std::int64_t n, std::int64_t floor_value = 64);

/// Thread counts for a sweep: {1, 2, 4, ...} capped at BMH_MAX_THREADS
/// (or the hardware limit). Always includes 1.
std::string thread_sweep_description();

} // namespace bmh
