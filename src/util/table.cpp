#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bmh {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_count(std::int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  if (value < 0) out.insert(out.begin(), '-');
  return out;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(header_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (cells_.empty()) row();
  if (cells_.back().size() >= header_.size())
    throw std::logic_error("Table: row has more cells than header columns");
  cells_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }
Table& Table::add(double value, int precision) { return add(format_double(value, precision)); }
Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : cells_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  if (!title.empty()) os << title << '\n';
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      os << "  " << std::setw(static_cast<int>(width[c])) << cell;
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : cells_) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c != 0) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : cells_) emit(r);
}

} // namespace bmh
