#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/failpoint.hpp"

namespace bmh {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  // strerror's static buffer is copied into the message string before any
  // other call can clobber it.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): see above
  const std::string reason = std::strerror(errno);
  throw std::runtime_error("mmap '" + path + "': " + what + ": " + reason);
}

} // namespace

MappedFile::MappedFile(const std::string& path) : path_(path) {
  BMH_FAILPOINT("mmap.open");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "open failed");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "fstat failed");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      size_ = 0;
      fail(path, "mmap failed");
    }
    data_ = static_cast<const std::byte*>(mapped);
  }
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed (and keeping it would leak fds across a long-lived cache).
  ::close(fd);
}

MappedFile::~MappedFile() { unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

void MappedFile::unmap() noexcept {
  if (data_ != nullptr)
    ::munmap(const_cast<std::byte*>(data_), size_);
  data_ = nullptr;
  size_ = 0;
}

} // namespace bmh
