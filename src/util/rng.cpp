#include "util/rng.hpp"

namespace bmh {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) noexcept {
  SplitMix64 sm(seed ^ (a * 0xd1342543de82ef95ULL) ^ (b * 0xaf251af3b0f025b5ULL));
  sm.next();
  return sm.next();
}

} // namespace bmh
