#include "util/cli.hpp"

#include <cstdlib>

namespace bmh {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = std::string("1");
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) != 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

} // namespace bmh
