#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/threading.hpp"

namespace bmh {

double env_double(const char* name, double fallback) {
  // Read-only env lookup; this process never setenv/putenvs after main.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): see above
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup (see above).
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup (see above).
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

double bench_scale() {
  return std::clamp(env_double("BMH_SCALE", 1.0), 0.01, 100.0);
}

std::int64_t scaled(std::int64_t n, std::int64_t floor_value) {
  const auto s = static_cast<std::int64_t>(static_cast<double>(n) * bench_scale());
  return std::max(s, floor_value);
}

std::string thread_sweep_description() {
  std::ostringstream os;
  os << "threads sweep capped at "
     << env_int("BMH_MAX_THREADS", max_threads())
     << " (hardware max " << num_procs() << ")";
  return os.str();
}

} // namespace bmh
