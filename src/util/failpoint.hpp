#pragma once
/// \file failpoint.hpp
/// \brief Named fault-injection points for testing the serving stack under
/// failure.
///
/// A *failpoint* is a named site compiled into an I/O or resource edge
/// (`BMH_FAILPOINT("store.load")`) that normally does nothing, but can be
/// armed — programmatically or through the `BMH_FAILPOINTS` environment
/// variable — to throw, sleep, or corrupt at that site. The whole subsystem
/// is gated by the `BMH_FAILPOINTS` CMake option: in the default build the
/// macros expand to nothing (zero code, zero overhead) and the library
/// contains no evaluation paths; `fp::kCompiled` tells tests which build
/// they are in.
///
/// Configuration grammar (env var `BMH_FAILPOINTS`, or
/// `configure_from_string`):
///
///     SPEC      := SITE '=' ACTION [':' MOD (',' MOD)*] (';' SPEC)*
///     ACTION    := 'off' | 'error' | 'delay' '(' NUMBER ['ms'|'us'|'s'] ')'
///                | 'corrupt'
///     MOD       := 'p=' FLOAT        — fire with probability p
///                | 'every=' N        — fire every Nth evaluation
///                | 'first=' N        — fire only the first N evaluations
///
///     BMH_FAILPOINTS="store.spill=error;source.mm.read=delay(50ms);store.load.crc=corrupt:p=0.1"
///
/// Actions:
///  * `error`   — the site throws `fp::FailpointError` (derives from
///                std::runtime_error, carries the site name). Each layer's
///                existing exception discipline then classifies it exactly
///                like a real transient fault at that edge.
///  * `delay`   — the site sleeps for the given duration, modelling a slow
///                disk/fsync; combined with `timeout_ms=` job deadlines it
///                exercises the timeout path.
///  * `corrupt` — the site's `BMH_FAILPOINT_CORRUPT` macro evaluates to
///                true and the surrounding code perturbs its own data the
///                way a real corruption would (e.g. the serializer reports
///                a payload CRC mismatch, taking the content-rejection +
///                self-heal path rather than the transient-I/O path).
///
/// Trigger modes compose with any action; probability draws come from a
/// deterministic per-site counter hash (splitmix64 over a global seed set
/// by `set_seed`), so a fault schedule is reproducible run to run.
///
/// Every armed site owns two counters in the global `failpoints` metric
/// domain (`fp::metric_domain()`, attached by `bmh::Engine` to its
/// registry): `<site>.evaluations` and `<site>.fires`.
///
/// Compiled-in sites (grep for the literals):
///   store.load            GraphStore::try_load, after the stat   (error/delay)
///   store.load.crc        serialized-payload CRC check           (corrupt/error)
///   store.spill           GraphStore::spill entry                (error/delay)
///   store.prune           GraphStore::prune entry                (error/delay)
///   serialize.load        load_graph_mapped entry                (error/delay)
///   serialize.save.write  save_graph piece write                 (error/delay)
///   serialize.save.fsync  save_graph fsync                       (error/delay)
///   serialize.save.rename save_graph tmp->final rename           (error/delay)
///   mmap.open             MappedFile constructor                 (error/delay)
///   source.mm.read        mm: streaming chunk read               (error/delay)
///   source.mm.hash        mm: content-token hashing              (corrupt/error)
///   source.mtx.read       mtx:/mm: matrix parse entry            (error/delay)
///   cache.insert          GraphCache shard insert                (error/delay)
///   pipeline.stage        every pipeline stage entry             (error/delay)

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace bmh::obs {
class MetricDomain;
}

namespace bmh::fp {

#if defined(BMH_FAILPOINTS)
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

/// What an armed site does when its trigger mode says "fire".
enum class Action : std::uint8_t { kOff, kError, kDelay, kCorrupt };

/// Full per-site configuration. Defaults describe a disarmed site.
struct Config {
  Action action = Action::kOff;
  std::uint64_t delay_ns = 0;  ///< kDelay: how long the site sleeps
  double probability = -1.0;   ///< >= 0: fire with this probability
  std::uint64_t every = 0;     ///< > 0: fire on every Nth evaluation
  std::uint64_t first = 0;     ///< > 0: fire only on the first N evaluations
};

/// Thrown by a site armed with `error`. `site()` names the failpoint, which
/// the engine uses to classify the failure into its error taxonomy.
class FailpointError : public std::runtime_error {
public:
  explicit FailpointError(std::string site);
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

private:
  std::string site_;
};

/// Parses one ACTION[:MOD,...] spec (the part right of '='). Throws
/// std::invalid_argument on grammar errors.
[[nodiscard]] Config parse_config(std::string_view spec);

/// Arms (or, with Action::kOff, disarms) one site.
void configure(std::string_view site, const Config& config);

/// Parses and applies a full `site=spec;site=spec` string. Throws
/// std::invalid_argument on grammar errors; earlier entries stay applied.
void configure_from_string(std::string_view text);

/// Disarms one site / every site. Counters are kept (monotone).
void clear(std::string_view site);
void clear_all();

/// Seed for the deterministic probability draws (default 0x9E3779B97F4A7C15).
void set_seed(std::uint64_t seed) noexcept;

/// The global `failpoints` metric domain holding `<site>.evaluations` and
/// `<site>.fires` counters for every site ever armed. Engine attaches it to
/// its registry when the subsystem is compiled in.
[[nodiscard]] obs::MetricDomain& metric_domain();

/// Convenience counter reads for tests (0 for never-armed sites).
[[nodiscard]] std::uint64_t evaluations(std::string_view site);
[[nodiscard]] std::uint64_t fires(std::string_view site);

/// Site evaluation — reached only through the macros below in production
/// code (tests may call it directly). Looks the site up; if armed and the
/// trigger mode fires: throws FailpointError (kError), sleeps (kDelay), or
/// returns true (kCorrupt). Returns false otherwise. Disarmed lookups are
/// one shared-lock map probe; unarmed builds never call this.
bool hit(std::string_view site);

} // namespace bmh::fp

#if defined(BMH_FAILPOINTS)
/// Injection site: may throw FailpointError or sleep when armed.
#define BMH_FAILPOINT(site) ((void)::bmh::fp::hit(site))
/// Corruption site: evaluates to true when armed with `corrupt` and firing;
/// the surrounding code then perturbs its own data. May also throw/sleep
/// when armed with error/delay.
#define BMH_FAILPOINT_CORRUPT(site) (::bmh::fp::hit(site))
#else
#define BMH_FAILPOINT(site) ((void)0)
#define BMH_FAILPOINT_CORRUPT(site) (false)
#endif
