#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bmh {

namespace {
void check_window(std::size_t n, std::size_t warmup) {
  if (warmup >= n) throw std::invalid_argument("RunStats: warmup consumes all samples");
}
} // namespace

double RunStats::geomean(std::size_t warmup) const {
  check_window(samples_.size(), warmup);
  double log_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = warmup; i < samples_.size(); ++i) {
    log_sum += std::log(std::max(samples_[i], 1e-12));
    ++n;
  }
  return std::exp(log_sum / static_cast<double>(n));
}

double RunStats::min(std::size_t warmup) const {
  check_window(samples_.size(), warmup);
  return *std::min_element(samples_.begin() + static_cast<std::ptrdiff_t>(warmup),
                           samples_.end());
}

double RunStats::mean(std::size_t warmup) const {
  check_window(samples_.size(), warmup);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = warmup; i < samples_.size(); ++i) {
    sum += samples_[i];
    ++n;
  }
  return sum / static_cast<double>(n);
}

} // namespace bmh
