#pragma once
/// \file mpsc_ring.hpp
/// \brief Bounded lock-free ring of fixed-size slots (Vyukov sequence
/// scheme) — the engine's submission queue.
///
/// The serving tier's hot path is millions of independent single-job
/// `Engine::submit` calls; a mutex-guarded deque serializes all of them on
/// one lock. This ring is the classic alternative the related DMA/SRIO
/// descriptor rings use: a fixed power-of-two array of slots, each carrying
/// its own sequence number, with cache-line-padded producer and consumer
/// cursors. A producer claims a slot with one `fetch_add` (blocking form)
/// or one CAS (`try_push`), writes the value, and publishes it by storing
/// the slot's sequence — no allocation, no lock, no producer ever waits on
/// another producer that was merely descheduled mid-operation on a
/// *different* slot.
///
/// Despite the name (the engine's dominant flow is many producers, one
/// consuming pool), both ends are multi-access safe: `try_pop` CASes the
/// consumer cursor, so any number of workers may drain concurrently and the
/// engine's slot freelist can reuse the same type with producers on both
/// ends. Progress is lock-free in the Vyukov sense: a producer stalled
/// between claim and publish delays only consumers of *that* slot position,
/// never other producers.
///
/// Layout: the two cursors get their own cache lines so producers and
/// consumers never false-share; slots themselves are left unpadded — the
/// engine's descriptors are small (a pointer and an index), and padding
/// every slot to 64 bytes would quadruple the ring's footprint for a
/// second-order effect (adjacent slots are touched by *successive*
/// positions, which different threads rarely contend on simultaneously).
///
/// Memory ordering: publish is a release store of the slot sequence, claim
/// checks it with an acquire load — the value write is fully visible to
/// whoever observes the sequence. Cursor RMWs are relaxed; they order
/// nothing by themselves.

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

namespace bmh {

namespace detail {

/// Shared wait strategy for the blocking ring paths: burn a few iterations
/// (the common "the consumer is one instruction away" case), then yield,
/// then sleep — a full ring means the pool is saturated, and a producer
/// spinning hot on a saturated pool only steals cycles from the workers
/// that would drain it.
inline void ring_backoff(unsigned& spins) noexcept {
  ++spins;
  if (spins < 64) return;
  if (spins < 256) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

} // namespace detail

/// Bounded multi-producer ring of `T` slots. Capacity is rounded up to a
/// power of two at construction and never changes. `T` must be default
/// constructible and movable; moved-out slots are left to `T`'s moved-from
/// state (the ring never destroys early — slots die with the ring).
template <typename T>
class MpscRing {
public:
  explicit MpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer cursor minus consumer cursor — items in flight, approximate
  /// under concurrency (either cursor may move while you look).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    return head > tail ? static_cast<std::size_t>(head - tail) : 0;
  }

  /// Whether the next item to pop has been published. A false result does
  /// not mean the ring is empty — a producer may hold a claimed slot it has
  /// not published yet (that producer will publish and then run its own
  /// wake protocol), and a true result may be stolen by a faster consumer.
  /// Use as a sleep/flush heuristic, never as an emptiness proof.
  [[nodiscard]] bool ready() const noexcept {
    // acquire both loads: pairs with the release seq store in publish() so a
    // true result proves the slot's value write is visible to this thread.
    const std::uint64_t pos = tail_.load(std::memory_order_acquire);
    const std::uint64_t seq =  // acquire: see the comment above
        slots_[pos & mask_].seq.load(std::memory_order_acquire);
    return static_cast<std::int64_t>(seq - (pos + 1)) >= 0;
  }

  /// Non-blocking push: claims the producer cursor with a CAS so a full
  /// ring fails *without* consuming a position. Returns false when full
  /// (value untouched).
  [[nodiscard]] bool try_push(T&& value) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      // acquire pairs with the consumer's release recycle store: a free slot
      // must not be claimed before its previous value has been moved out.
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq - pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          return publish(slot, pos, std::move(value)), true;
      } else if (dif < 0) {
        return false;  // full: slot still holds an unconsumed older item
      } else {
        pos = head_.load(std::memory_order_relaxed);  // lost a race, re-read
      }
    }
  }

  /// Blocking push: claims a position with one unconditional `fetch_add` —
  /// the single-atomic submit fast path — and, when the ring is full, waits
  /// for the consumer to recycle the claimed slot (backpressure: producers
  /// can never outrun a bounded queue by more than its capacity).
  void push(T&& value) {
    const std::uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    unsigned spins = 0;
    // acquire pairs with the consumer's release recycle store (see try_pop):
    // the slot must be fully drained before we overwrite its value.
    while (static_cast<std::int64_t>(  // acquire: see the comment above
               slot.seq.load(std::memory_order_acquire) - pos) < 0)
      detail::ring_backoff(spins);
    publish(slot, pos, std::move(value));
  }

  /// Non-blocking pop; returns false when no published item is available.
  /// Safe from any number of threads (the consumer cursor is CASed).
  [[nodiscard]] bool try_pop(T& out) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      // acquire pairs with publish()'s release store: seeing seq == pos + 1
      // makes the producer's value write visible before the move below.
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq - (pos + 1));
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(slot.value);
          // Recycle: this position next accepts the producer claim at
          // pos + capacity.
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // next item not published (empty, or producer mid-push)
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  static void publish(Slot& slot, std::uint64_t pos, T&& value) {
    slot.value = std::move(value);
    // release publishes the value write above; consumers acquire-load seq.
    slot.seq.store(pos + 1, std::memory_order_release);
  }

  const std::uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< producer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< consumer cursor
};

} // namespace bmh
