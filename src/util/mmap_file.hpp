#pragma once
/// \file mmap_file.hpp
/// \brief Read-only memory-mapped files.
///
/// `MappedFile` is the storage primitive behind the persistent graph store:
/// a whole file mapped read-only into the address space, so a serialized
/// CSR/CSC can be *viewed* (via std::span) instead of copied into heap
/// vectors. The kernel pages the bytes in on first touch and shares them
/// across every process mapping the same file — exactly the restart-warm
/// behaviour a serving fleet wants.
///
/// The mapping lives until the object is destroyed; spans handed out from
/// `data()` must not outlive it (holders keep the MappedFile alive through a
/// shared_ptr, see BipartiteGraph::ExternalStorage::keepalive).

#include <cstddef>
#include <string>

namespace bmh {

class MappedFile {
public:
  /// Maps `path` read-only in its entirety. Throws std::runtime_error with
  /// the path and the OS error on open/stat/mmap failure. An empty file maps
  /// to {nullptr, 0}.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
  void unmap() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

} // namespace bmh
