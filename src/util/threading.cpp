#include "util/threading.hpp"

#include <omp.h>

#include <stdexcept>

namespace bmh {

void set_num_threads(int n) {
  if (n < 1) throw std::invalid_argument("set_num_threads: n must be >= 1");
  omp_set_num_threads(n);
}

int max_threads() noexcept { return omp_get_max_threads(); }

int num_procs() noexcept { return omp_get_num_procs(); }

ThreadCountGuard::ThreadCountGuard(int n) : previous_(omp_get_max_threads()) {
  set_num_threads(n);
}

ThreadCountGuard::~ThreadCountGuard() { omp_set_num_threads(previous_); }

} // namespace bmh
