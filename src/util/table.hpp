#pragma once
/// \file table.hpp
/// \brief Aligned text tables and CSV emission for the benchmark harnesses.
///
/// Every bench binary regenerates one of the paper's tables or figures; this
/// helper renders the same rows both as a human-readable aligned table (to
/// stdout) and, optionally, as CSV for plotting.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bmh {

/// A simple column-aligned table. Cells are strings; helpers format numbers.
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 3);
  Table& add(std::int64_t value);
  Table& add(int value);
  Table& add(std::size_t value);

  /// Renders with padded columns, a header rule, and optional title.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Renders as CSV (no title).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision (shared by Table and ad-hoc output).
std::string format_double(double value, int precision);

/// Formats 12345678 as "12,345,678" for readability in instance listings.
std::string format_count(std::int64_t value);

} // namespace bmh
