// Clang Thread Safety Analysis macros and annotated lock primitives.
//
// The BMH_* macros expand to Clang's `thread_safety` attributes when the
// translation unit is compiled by Clang, and to nothing everywhere else, so
// GCC builds are byte-identical in behavior. The `static-analysis` CI tier
// compiles the whole tree with `clang++ -Wthread-safety -Werror`, which turns
// a lock held on the wrong path into a build failure.
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot see through it. The bmh::Mutex / bmh::LockGuard / bmh::UniqueLock /
// bmh::SharedMutex / bmh::SharedLock wrappers below are thin, zero-overhead
// adapters over the std primitives whose acquire/release methods are
// annotated; all project code that guards data with a mutex should use them
// together with BMH_GUARDED_BY on the protected members.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define BMH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BMH_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// Class-level: the type is a capability ("mutex") / a scoped lock object.
#define BMH_CAPABILITY(x) BMH_THREAD_ANNOTATION(capability(x))
#define BMH_SCOPED_CAPABILITY BMH_THREAD_ANNOTATION(scoped_lockable)

// Member-level: the data member may only be touched while holding `x`
// (or, for pointers, while holding `x` for the pointee).
#define BMH_GUARDED_BY(x) BMH_THREAD_ANNOTATION(guarded_by(x))
#define BMH_PT_GUARDED_BY(x) BMH_THREAD_ANNOTATION(pt_guarded_by(x))

// Function-level: caller must hold / must not hold the listed capabilities.
#define BMH_REQUIRES(...) \
  BMH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BMH_REQUIRES_SHARED(...) \
  BMH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define BMH_EXCLUDES(...) BMH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function-level: the function acquires / releases the listed capabilities.
#define BMH_ACQUIRE(...) \
  BMH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BMH_ACQUIRE_SHARED(...) \
  BMH_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define BMH_RELEASE(...) \
  BMH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BMH_RELEASE_SHARED(...) \
  BMH_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define BMH_RELEASE_GENERIC(...) \
  BMH_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define BMH_TRY_ACQUIRE(...) \
  BMH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BMH_TRY_ACQUIRE_SHARED(...) \
  BMH_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Escape hatch. Only for code whose protocol the analysis cannot express
// (e.g. the obs seqlock single-writer domains); every use must carry a
// comment stating the protocol that makes it safe.
#define BMH_NO_THREAD_SAFETY_ANALYSIS \
  BMH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bmh {

/// std::mutex with capability annotations. Same size, same codegen.
class BMH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BMH_ACQUIRE() { m_.lock(); }
  void unlock() BMH_RELEASE() { m_.unlock(); }
  bool try_lock() BMH_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// std::shared_mutex with capability annotations (exclusive + shared).
class BMH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() BMH_ACQUIRE() { m_.lock(); }
  void unlock() BMH_RELEASE() { m_.unlock(); }
  bool try_lock() BMH_TRY_ACQUIRE(true) { return m_.try_lock(); }
  void lock_shared() BMH_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() BMH_RELEASE_SHARED() { m_.unlock_shared(); }
  bool try_lock_shared() BMH_TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock over bmh::Mutex or bmh::SharedMutex
/// (std::lock_guard is not a scoped capability in the analysis's eyes).
template <class M>
class BMH_SCOPED_CAPABILITY BasicLockGuard {
 public:
  explicit BasicLockGuard(M& m) BMH_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~BasicLockGuard() BMH_RELEASE() { m_.unlock(); }
  BasicLockGuard(const BasicLockGuard&) = delete;
  BasicLockGuard& operator=(const BasicLockGuard&) = delete;

 private:
  M& m_;
};

using LockGuard = BasicLockGuard<Mutex>;
/// Scoped *exclusive* (writer) lock over bmh::SharedMutex.
using ExclusiveLock = BasicLockGuard<SharedMutex>;

/// Scoped shared (reader) lock over bmh::SharedMutex.
class BMH_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& m) BMH_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  // Destructors release whatever mode the scoped capability holds, so the
  // annotation is the generic release form.
  ~SharedLock() BMH_RELEASE_GENERIC() { m_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& m_;
};

/// Scoped lock that satisfies BasicLockable, for use with
/// std::condition_variable_any::wait (which unlocks and relocks it).
/// Always constructed locked; relockable via lock()/unlock().
class BMH_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) BMH_ACQUIRE(m) : m_(m), locked_(true) {
    m_.lock();
  }
  ~UniqueLock() BMH_RELEASE() {
    if (locked_) m_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() BMH_ACQUIRE() {
    m_.lock();
    locked_ = true;
  }
  void unlock() BMH_RELEASE() {
    locked_ = false;
    m_.unlock();
  }

 private:
  Mutex& m_;
  bool locked_;
};

}  // namespace bmh
