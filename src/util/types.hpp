#pragma once
/// \file types.hpp
/// \brief Fundamental integer types and constants used across the library.

#include <cstdint>

namespace bmh {

/// Vertex identifier. 32-bit: the paper's largest instance has ~51M vertices
/// per side, which fits comfortably; laptop-scale reproductions are smaller.
using vid_t = std::int32_t;

/// Edge identifier / CSR offset. 64-bit so that edge counts beyond 2^31 work.
using eid_t = std::int64_t;

/// Sentinel meaning "no vertex" / "unmatched" (the paper's NIL).
inline constexpr vid_t kNil = -1;

/// The proven approximation ratio of OneSidedMatch: 1 - 1/e.
inline constexpr double kOneSidedGuarantee = 0.63212055882855767;

/// The conjectured approximation ratio of TwoSidedMatch: 2(1 - rho) where
/// rho is the unique root of x e^x = 1 (rho ~= 0.5671432904097838).
inline constexpr double kTwoSidedGuarantee = 0.86571341918044583;

} // namespace bmh
