#pragma once
/// \file hash.hpp
/// \brief Shared noncryptographic hashing.

#include <cstdint>
#include <string_view>

namespace bmh {

/// 64-bit FNV-1a. This is the library's content-address hash: the value
/// canonical_graph_key returns (GraphCache shards and buckets on it) and
/// the one GraphStore derives filenames from — one implementation so the
/// key→filename contract can never drift between the two.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

} // namespace bmh
