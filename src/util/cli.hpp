#pragma once
/// \file cli.hpp
/// \brief Minimal `--flag value` command-line parsing for examples/benches.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bmh {

/// Parses `--key value` and `--switch` style arguments. Unknown positional
/// arguments are collected in order. No external dependency; just enough
/// for the example programs and bench harnesses.
class CliArgs {
public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

} // namespace bmh
