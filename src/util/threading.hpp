#pragma once
/// \file threading.hpp
/// \brief Thin wrapper around OpenMP runtime controls.
///
/// All parallel regions in the library use the ambient OpenMP thread count;
/// these helpers let tests and benches sweep thread counts deterministically
/// without touching environment variables mid-process.

namespace bmh {

/// Sets the number of OpenMP threads used by subsequent parallel regions.
void set_num_threads(int n);

/// Maximum number of threads a parallel region would use right now.
[[nodiscard]] int max_threads() noexcept;

/// Number of physical processors visible to the OpenMP runtime.
[[nodiscard]] int num_procs() noexcept;

/// RAII guard that sets the thread count and restores the previous value.
class ThreadCountGuard {
public:
  explicit ThreadCountGuard(int n);
  ~ThreadCountGuard();
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

private:
  int previous_;
};

} // namespace bmh
