#!/usr/bin/env python3
"""Golden test for tools/lint/bmh_lint.py, wired into ctest as `lint_fixtures`.

Two assertions:
  1. Fixture mode: linting tests/lint/fixtures/ against fixture_readme.md
     produces exactly expected_output.txt (one finding per rule pattern,
     none from the clean file) and exit status 1.
  2. Self-check mode (--repo, used by the `lint_repo` ctest entry): the
     real tree is clean — bmh_lint.py over the build's compile database
     exits 0 with no output.

Run directly: python3 tests/lint/check_lint.py [--repo <compile_db>]
"""
import argparse
import difflib
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINTER = REPO / "tools" / "lint" / "bmh_lint.py"

FIXTURES = [
    "fixtures/bad_bare_allow.cpp",
    "fixtures/bad_failpoint.cpp",
    "fixtures/bad_memory_order.cpp",
    "fixtures/bad_metric_name.cpp",
    "fixtures/bad_ws_alloc.cpp",
    "fixtures/clean.cpp",
]


def run_fixture_check() -> int:
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--readme", "fixture_readme.md",
         "--files", *FIXTURES],
        cwd=HERE, capture_output=True, text=True)
    expected = (HERE / "expected_output.txt").read_text(encoding="utf-8")
    ok = True
    if proc.returncode != 1:
        print(f"FAIL: fixture lint exited {proc.returncode}, expected 1")
        print(proc.stderr, file=sys.stderr)
        ok = False
    if proc.stdout != expected:
        print("FAIL: fixture findings differ from expected_output.txt:")
        sys.stdout.writelines(difflib.unified_diff(
            expected.splitlines(keepends=True),
            proc.stdout.splitlines(keepends=True),
            fromfile="expected_output.txt", tofile="actual"))
        ok = False
    if ok:
        print(f"OK: fixtures produce the {len(expected.splitlines())} "
              "expected findings")
    return 0 if ok else 1


def run_repo_check(compile_db: Path) -> int:
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--compile-db", str(compile_db),
         "--repo-root", str(REPO)],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print("FAIL: the tree has lint findings:")
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        return 1
    print("OK: tree is lint-clean")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--repo", type=Path, metavar="COMPILE_DB",
                        help="instead of the fixture check, assert the real "
                             "tree is clean against this compile database")
    args = parser.parse_args()
    if args.repo:
        return run_repo_check(args.repo)
    return run_fixture_check()


if __name__ == "__main__":
    sys.exit(main())
