// Fixture: metric-name violations — instrument names must be lowercase
// snake_case so rendered `bmh_<domain>_<metric>` names match the grammar.
namespace fixture {

struct Domain {
  int& counter(const char*);
  int& gauge(const char*);
  int& histogram(const char*);
};

void record(Domain& d) {
  d.counter("BadCamelCase");
  d.gauge("kebab-case-name");
  d.histogram("jobs_run_total");

  d.counter("9th_percentile");
}

// Suppressed with a justification: no finding.
void legacy(Domain& d) {
  // bmh-lint: allow(metric-name) legacy dashboard expects this exact name
  d.counter("Legacy.Name");
}

}  // namespace fixture
