// Fixture: ws-alloc violations. A `_ws` function is the zero-alloc-warm
// serving path; these bodies allocate and must each produce one finding.
#include <string>
#include <vector>

namespace fixture {

int sum_ws(const std::vector<int>& in) {
  std::vector<int> copy(in.begin(), in.end());  // finding: vector ctor
  int total = 0;
  for (int v : copy) total += v;
  return total;
}

std::size_t label_len_ws(const char* name) {
  std::string label(name);  // finding: string ctor
  return label.size();
}

int* leak_ws(int n) {
  return new int[static_cast<std::size_t>(n)];  // finding: raw new
}

// Suppressed with a justification: no finding, and no bare-allow either.
int seeded_ws(int n) {
  // bmh-lint: allow(ws-alloc) one-time warmup allocation, measured cold
  std::vector<int> seed(static_cast<std::size_t>(n));
  return static_cast<int>(seed.size());
}

}  // namespace fixture
