// Fixture: failpoint-site violations. `fix.dup` appears twice (duplicate
// finding at the second occurrence); `fix.unlisted` is absent from the
// fixture README's site table (listing finding).
#define BMH_FAILPOINT(site)
#define BMH_FAILPOINT_CORRUPT(site, expr)

namespace fixture {

void first() {
  BMH_FAILPOINT("fix.dup");
}

void second() {
  BMH_FAILPOINT("fix.dup");  // finding: duplicate site
}

void third() {
  BMH_FAILPOINT("fix.unlisted");  // finding: not in the README table
}

void fourth() {
  BMH_FAILPOINT_CORRUPT("fix.listed", true);  // clean: unique and listed
}

}  // namespace fixture
