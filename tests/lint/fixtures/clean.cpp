// Fixture: a file that exercises every rule's trigger pattern correctly —
// the linter must report nothing here.
#include <atomic>
#include <string_view>
#include <vector>

#define BMH_FAILPOINT(site)

namespace fixture {

struct Domain {
  int& counter(const char*);
  int& histogram(const char*);
};

std::atomic<int> seq{0};

// `_ws` function: string_view and caller-owned scratch only, no allocation.
int count_ws(std::string_view text, std::vector<int>& scratch) {
  BMH_FAILPOINT("fix.clean");
  scratch.clear();
  for (char c : text)
    if (c == '.') scratch.push_back(1);
  return static_cast<int>(scratch.size());
}

// Non-_ws functions may allocate freely.
std::vector<int> build(int n) {
  return std::vector<int>(static_cast<std::size_t>(n));
}

void publish(Domain& d) {
  d.counter("jobs_run_total");
  d.histogram("job_latency_ns");
  // release pairs with the reader's acquire load of seq
  seq.store(1, std::memory_order_release);
  seq.store(2, std::memory_order_relaxed);
}

}  // namespace fixture
