// Fixture: memory-order violations — non-relaxed orders with no justifying
// comment on the same or preceding line.
#include <atomic>

namespace fixture {

std::atomic<int> flag{0};

void writer() {
  flag.store(1, std::memory_order_seq_cst);
}

int reader() {
  int v = flag.load(std::memory_order_acquire);

  return v;
}

void relaxed_is_fine() {
  flag.store(2, std::memory_order_relaxed);
}

int justified() {
  // acquire pairs with writer()'s release publish of flag
  return flag.load(std::memory_order_acquire);
}

int suppressed() {
  // bmh-lint: allow(memory-order) fixture exercises the suppression path
  return flag.load(std::memory_order_seq_cst);
}

}  // namespace fixture
