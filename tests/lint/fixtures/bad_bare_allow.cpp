// Fixture: bare-allow — a suppression without a justification is itself a
// finding (and still suppresses the underlying rule, so only bare-allow
// fires here).
#include <atomic>

namespace fixture {

std::atomic<int> flag{0};

int bare() {
  // bmh-lint: allow(memory-order)
  return flag.load(std::memory_order_seq_cst);
}

}  // namespace fixture
