/// Tests for KarpSipserMT (Algorithm 4). The central property — the paper's
/// Lemmas 1-3 — is that it is an *exact* maximum matching algorithm on the
/// choice subgraphs, for any thread count. We certify against Hopcroft-Karp
/// on the materialized subgraph across many random instances.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/one_out_structure.hpp"
#include "core/karp_sipser_mt.hpp"
#include "core/two_sided.hpp"
#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "scaling/sinkhorn_knopp.hpp"
#include "test_helpers.hpp"
#include "util/threading.hpp"

namespace bmh {
namespace {

/// Toy graph of the paper's Figure 1: 9 rows (circles) and 9 columns
/// (squares) with each vertex's single outgoing choice. Vertex labels 1-18
/// in the figure map to rows 1..9 -> ids 0..8 and columns 10..18 -> 9..17
/// here. The exact arrows are not printed in the text, so we use a
/// same-shape instance: chains feeding a cycle, exercising out-one chains,
/// in-one targets, and Phase-2 cycle resolution.
std::vector<vid_t> figure1_like_choice() {
  // Rows are ids 0..8, columns are ids 9..17.
  std::vector<vid_t> choice(18, kNil);
  // A 6-cycle: r0 -> c0 -> r1 -> c1 -> r2 -> c2 -> r0.
  choice[0] = 9;
  choice[9] = 1;
  choice[1] = 10;
  choice[10] = 2;
  choice[2] = 11;
  choice[11] = 0;
  // A chain of out-ones feeding the cycle: r3 -> c3 -> r4 -> c0 (in cycle).
  choice[3] = 12;
  choice[12] = 4;
  choice[4] = 9;
  // A reciprocal 2-clique: r5 <-> c4.
  choice[5] = 13;
  choice[13] = 5;
  // A tree: c5 -> r6, r6 -> c6, c6 -> r6's target... keep it simple:
  choice[14] = 6;
  choice[6] = 15;
  choice[15] = 7;
  choice[7] = 16;
  choice[16] = 7;  // reciprocal with r7
  // r8/c8 isolated pair choosing each other.
  choice[8] = 17;
  choice[17] = 8;
  return choice;
}

TEST(KarpSipserMT, ExactOnFigure1LikeToyGraph) {
  const std::vector<vid_t> choice = figure1_like_choice();
  const Matching m = karp_sipser_mt(9, 9, choice);

  // Materialize and compare against the exact solver.
  std::vector<vid_t> rchoice(9, kNil), cchoice(9, kNil);
  for (vid_t i = 0; i < 9; ++i)
    rchoice[static_cast<std::size_t>(i)] =
        choice[static_cast<std::size_t>(i)] == kNil ? kNil
                                                    : choice[static_cast<std::size_t>(i)] - 9;
  for (vid_t j = 0; j < 9; ++j)
    cchoice[static_cast<std::size_t>(j)] = choice[static_cast<std::size_t>(9 + j)];
  const BipartiteGraph sub = materialize_choice_graph(9, 9, rchoice, cchoice);
  testing::expect_valid(sub, m, "figure1");
  EXPECT_EQ(m.cardinality(), sprank(sub));
}

TEST(KarpSipserMT, HandlesAllNilChoices) {
  const std::vector<vid_t> choice(10, kNil);
  const Matching m = karp_sipser_mt(5, 5, choice);
  EXPECT_EQ(m.cardinality(), 0);
}

TEST(KarpSipserMT, SizeMismatchThrows) {
  const std::vector<vid_t> choice(7, kNil);
  EXPECT_THROW((void)karp_sipser_mt(5, 5, choice), std::invalid_argument);
}

TEST(KarpSipserMT, SameSideChoiceRejected) {
  // Row 0 "choosing" row 1 would violate bipartiteness and corrupt the
  // phase invariants; the algorithm must reject it.
  std::vector<vid_t> choice(4, kNil);
  choice[0] = 1;  // row -> row
  EXPECT_THROW((void)karp_sipser_mt(2, 2, choice), std::invalid_argument);
  choice[0] = kNil;
  choice[2] = 3;  // column -> column
  EXPECT_THROW((void)karp_sipser_mt(2, 2, choice), std::invalid_argument);
  choice[2] = 7;  // out of range entirely
  EXPECT_THROW((void)karp_sipser_mt(2, 2, choice), std::invalid_argument);
}

TEST(KarpSipserMT, UnifyChoicesValidatesRanges) {
  const std::vector<vid_t> bad_row = {5};   // column 5 does not exist
  const std::vector<vid_t> ok_col = {kNil};
  EXPECT_THROW((void)unify_choices(1, 1, bad_row, ok_col), std::out_of_range);
  const std::vector<vid_t> ok_row = {0};
  const std::vector<vid_t> bad_col = {3};   // row 3 does not exist
  EXPECT_THROW((void)unify_choices(1, 1, ok_row, bad_col), std::out_of_range);
}

TEST(KarpSipserMT, PureCycleResolvedEntirelyInPhase2) {
  // rows 0..3, cols 4..7 forming one 8-cycle; no degree-one vertex exists,
  // so Phase 1 must match nothing and Phase 2 must match everything.
  std::vector<vid_t> choice(8);
  choice[0] = 4;
  choice[4] = 1;
  choice[1] = 5;
  choice[5] = 2;
  choice[2] = 6;
  choice[6] = 3;
  choice[3] = 7;
  choice[7] = 0;
  KarpSipserMTStats stats;
  const Matching m = karp_sipser_mt(4, 4, choice, &stats);
  EXPECT_EQ(m.cardinality(), 4);
  EXPECT_EQ(stats.phase1_matches, 0);
  EXPECT_EQ(stats.phase2_matches, 4);
}

TEST(KarpSipserMT, PureChainResolvedEntirelyInPhase1) {
  // r0 -> c0, c0 -> r1, r1 -> c1, c1 -> r1 (reciprocal at the end).
  std::vector<vid_t> choice(4);
  const vid_t m_rows = 2;
  choice[0] = m_rows + 0;  // r0 -> c0
  choice[2] = 1;           // c0 -> r1
  choice[1] = m_rows + 1;  // r1 -> c1
  choice[3] = 1;           // c1 -> r1 (in-one)
  KarpSipserMTStats stats;
  const Matching m = karp_sipser_mt(2, 2, choice, &stats);
  EXPECT_EQ(m.cardinality(), 2);
  EXPECT_EQ(stats.phase2_matches, 0);
}

TEST(KarpSipserMT, ReciprocalCliqueReachedFromBothSidesCountsOnce) {
  // Regression test for a benign race: a reciprocal 2-clique {x, y} whose
  // two endpoints both become out-one can be consumed by two threads at
  // once (both CAS different locations and write the same pair). The
  // matching is unaffected, but the phase statistics must not double-count
  // the pair. Structure: two out-one tails feeding the two sides of a
  // reciprocal pair:  t1 -> x,  t2 -> y,  x <-> y.
  //
  // Unified ids: rows {t1=0, x=1}, columns {t2=2 -> local 0, y=3 -> 1}.
  std::vector<vid_t> choice(4, kNil);
  choice[0] = 3;  // row t1 chooses column y
  choice[1] = 3;  // row x chooses column y  (x <-> y reciprocal)
  choice[3] = 1;  // column y chooses row x
  choice[2] = 1;  // column t2 chooses row x
  for (int rep = 0; rep < 50; ++rep) {
    KarpSipserMTStats stats;
    const Matching m = karp_sipser_mt(2, 2, choice, &stats);
    EXPECT_EQ(stats.phase1_matches + stats.phase2_matches, m.cardinality()) << rep;
    // The component is a path t1 - y - x - t2 plus the reciprocal edge;
    // its maximum matching has 2 pairs.
    EXPECT_EQ(m.cardinality(), 2) << rep;
  }
}

TEST(KarpSipserMT, StatsSumUnderHeavyRepetition) {
  // Stress the counting under real parallel schedules on a large random
  // instance (the configuration above occurs organically here).
  const BipartiteGraph g = make_erdos_renyi(2000, 2000, 8000, 3);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const TwoSidedChoices ch = sample_two_sided_choices(g, s, 5);
  const std::vector<vid_t> choice =
      unify_choices(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
  for (int rep = 0; rep < 30; ++rep) {
    KarpSipserMTStats stats;
    const Matching m = karp_sipser_mt(g.num_rows(), g.num_cols(), choice, &stats);
    ASSERT_EQ(stats.phase1_matches + stats.phase2_matches, m.cardinality()) << rep;
  }
}

TEST(KarpSipserMT, StatsSumToCardinality) {
  const BipartiteGraph g = make_erdos_renyi(2000, 2000, 8000, 3);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const TwoSidedChoices ch = sample_two_sided_choices(g, s, 5);
  const std::vector<vid_t> choice =
      unify_choices(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
  KarpSipserMTStats stats;
  const Matching m = karp_sipser_mt(g.num_rows(), g.num_cols(), choice, &stats);
  EXPECT_EQ(stats.phase1_matches + stats.phase2_matches, m.cardinality());
}

/// The heart of the exactness claim, swept over instance families, seeds
/// and thread counts: KarpSipserMT's cardinality equals Hopcroft-Karp's on
/// the materialized choice subgraph.
class KsmtExactnessTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(KsmtExactnessTest, MatchesExactSolverOnChoiceSubgraphs) {
  const auto [threads, seed] = GetParam();
  ThreadCountGuard guard(threads);

  struct Case {
    BipartiteGraph g;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({make_erdos_renyi(1500, 1500, 6000, seed), "er"});
  cases.push_back({make_erdos_renyi(900, 1100, 3500, seed + 1), "rect"});
  cases.push_back({make_planted_perfect(1200, 3, seed + 2), "planted"});
  cases.push_back({make_ks_adversarial(256, 8), "adversarial"});
  cases.push_back({make_road_like(2000, 0.1, 0.05, seed + 3), "road"});

  for (const auto& c : cases) {
    const ScalingResult s = scale_sinkhorn_knopp(c.g, {5, 0.0});
    const TwoSidedChoices ch = sample_two_sided_choices(c.g, s, seed + 7);
    const std::vector<vid_t> choice =
        unify_choices(c.g.num_rows(), c.g.num_cols(), ch.rchoice, ch.cchoice);

    const Matching m = karp_sipser_mt(c.g.num_rows(), c.g.num_cols(), choice);
    const BipartiteGraph sub =
        materialize_choice_graph(c.g.num_rows(), c.g.num_cols(), ch.rchoice, ch.cchoice);
    testing::expect_valid(sub, m, c.name);
    EXPECT_EQ(m.cardinality(), sprank(sub))
        << c.name << " threads=" << threads << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadsAndSeeds, KsmtExactnessTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0ULL, 1ULL, 2ULL, 3ULL)));

TEST(KarpSipserMT, CardinalityIndependentOfThreadCount) {
  const BipartiteGraph g = make_erdos_renyi(5000, 5000, 20000, 9);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const TwoSidedChoices ch = sample_two_sided_choices(g, s, 11);
  const std::vector<vid_t> choice =
      unify_choices(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);

  vid_t reference = -1;
  for (const int threads : {1, 2, 4, 8, 16}) {
    ThreadCountGuard guard(threads);
    const vid_t card = karp_sipser_mt(g.num_rows(), g.num_cols(), choice).cardinality();
    if (reference < 0) reference = card;
    EXPECT_EQ(card, reference) << "threads=" << threads;
  }
}

TEST(KarpSipserMT, RepeatedParallelRunsStayExact) {
  // Stress the Phase-1 races: many repetitions on the same instance at max
  // threads must all remain exact and valid.
  const BipartiteGraph g = make_erdos_renyi(3000, 3000, 9000, 21);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const TwoSidedChoices ch = sample_two_sided_choices(g, s, 13);
  const std::vector<vid_t> choice =
      unify_choices(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
  const BipartiteGraph sub =
      materialize_choice_graph(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
  const vid_t exact = sprank(sub);
  for (int rep = 0; rep < 20; ++rep) {
    const Matching m = karp_sipser_mt(g.num_rows(), g.num_cols(), choice);
    testing::expect_valid(sub, m, "stress");
    EXPECT_EQ(m.cardinality(), exact) << "rep " << rep;
  }
}

} // namespace
} // namespace bmh
