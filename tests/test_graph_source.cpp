/// \file test_graph_source.cpp
/// \brief Tests for the GraphSource abstraction — scheme registry
/// introspection, `mm:` content-hash keying (same bytes ⇒ same canonical
/// key across copies and renames, new bytes ⇒ new key), seed independence,
/// build parity with the mmio reader, and the headline serving property:
/// an `mm:` job re-served by a fresh engine over the same GraphStore is a
/// pure store hit with zero cold builds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "test_helpers.hpp"

namespace bmh {
namespace {

namespace fs = std::filesystem;

std::string fixture(const char* name) {
  return std::string(BMH_TEST_DATA_DIR) + "/" + name;
}

/// Writes `text` to a fresh file under a per-test temp dir.
class TempDir {
public:
  explicit TempDir(const char* tag)
      : dir_(fs::temp_directory_path() /
             (std::string("bmh_graph_source_") + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  [[nodiscard]] std::string write(const char* name, const std::string& text) const {
    const fs::path p = dir_ / name;
    std::ofstream out(p);
    out << text;
    return p.string();
  }
  [[nodiscard]] fs::path path() const { return dir_; }

private:
  fs::path dir_;
};

const char* kTinyMtx =
    "%%MatrixMarket matrix coordinate pattern general\n"
    "3 3 4\n"
    "1 1\n"
    "2 2\n"
    "3 3\n"
    "1 3\n";

TEST(GraphSourceRegistry, SchemesAreSortedAndComplete) {
  const std::vector<std::string> schemes = registered_graph_source_schemes();
  EXPECT_TRUE(std::is_sorted(schemes.begin(), schemes.end()));
  for (const char* s : {"gen", "mm", "mtx", "suite"})
    EXPECT_NE(std::find(schemes.begin(), schemes.end(), s), schemes.end()) << s;
}

TEST(GraphSourceRegistry, UnknownSchemeNamesTheRegisteredOnes) {
  try {
    (void)parse_graph_spec("nope:er:n=4");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown scheme"), std::string::npos);
  }
}

TEST(MmSource, ParsesPathForm) {
  const GraphSpec spec = parse_graph_spec("mm:path=/tmp/some file.mtx");
  EXPECT_EQ(spec.scheme, "mm");
  EXPECT_EQ(spec.name, "/tmp/some file.mtx");
  EXPECT_THROW((void)parse_graph_spec("mm:/tmp/x.mtx"), std::invalid_argument);
  EXPECT_THROW((void)parse_graph_spec("mm:path="), std::invalid_argument);
}

TEST(MmSource, KeyIsContentHashedAndSeedIndependent) {
  const TempDir tmp("key");
  const std::string path = tmp.write("a.mtx", kTinyMtx);
  const GraphSpec spec = parse_graph_spec("mm:path=" + path);

  const std::string key = canonical_graph_key(spec, 1);
  ASSERT_EQ(key.size(), 3 + 16u);  // "mm:" + 16 hex digits
  EXPECT_EQ(key.rfind("mm:", 0), 0u);
  for (std::size_t i = 3; i < key.size(); ++i)
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(key[i]))) << key;

  // The instance never depends on the job seed.
  EXPECT_EQ(canonical_graph_key(spec, 2), key);
  EXPECT_FALSE(graph_spec_depends_on_job_seed(spec));
}

TEST(MmSource, SameContentSameKeyAcrossCopiesAndRenames) {
  const TempDir tmp("copy");
  const std::string a = tmp.write("a.mtx", kTinyMtx);
  const std::string b = tmp.write("subdir_free_copy.mtx", kTinyMtx);
  fs::create_directories(tmp.path() / "nested");
  const std::string c = (tmp.path() / "nested" / "renamed.mtx").string();
  fs::copy_file(a, c);

  const std::string key_a = canonical_graph_key(parse_graph_spec("mm:path=" + a), 1);
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("mm:path=" + b), 1), key_a);
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("mm:path=" + c), 1), key_a);
}

TEST(MmSource, ContentEditChangesKey) {
  const TempDir tmp("edit");
  const std::string path = tmp.write("a.mtx", kTinyMtx);
  const GraphSpec spec = parse_graph_spec("mm:path=" + path);
  const std::string before = canonical_graph_key(spec, 1);

  // Different bytes and a different size, so the (mtime, size) memo can
  // never confuse the two versions even on coarse-mtime filesystems.
  (void)tmp.write("a.mtx",
                  "%%MatrixMarket matrix coordinate pattern general\n"
                  "3 3 3\n"
                  "1 1\n"
                  "2 2\n"
                  "3 3\n");
  const std::string after = canonical_graph_key(spec, 1);
  EXPECT_NE(after, before);
  EXPECT_EQ(after.rfind("mm:", 0), 0u);
}

TEST(MmSource, BuildMatchesMmioReader) {
  const std::string path = fixture("rect_general.mtx");
  const BipartiteGraph direct = read_matrix_market_file(path);
  const BipartiteGraph via_source =
      build_graph(parse_graph_spec("mm:path=" + path), 7);
  EXPECT_TRUE(direct.structurally_equal(via_source));
  EXPECT_EQ(via_source.num_rows(), 4);
  EXPECT_EQ(via_source.num_cols(), 6);
}

TEST(MmSource, MissingFileThrowsOnResolveAndBuild) {
  const GraphSpec spec = parse_graph_spec("mm:path=/nonexistent/bmh.mtx");
  EXPECT_THROW((void)canonical_graph_key(spec, 1), std::runtime_error);
  EXPECT_THROW((void)build_graph(spec, 1), std::runtime_error);
}

TEST(MmSource, CacheServesSameContentAcrossPaths) {
  const TempDir tmp("cache");
  const std::string a = tmp.write("a.mtx", kTinyMtx);
  const std::string b = tmp.write("b.mtx", kTinyMtx);

  GraphCache cache;
  const auto ga = cache.get_or_build(parse_graph_spec("mm:path=" + a), 1);
  const auto gb = cache.get_or_build(parse_graph_spec("mm:path=" + b), 2);
  EXPECT_EQ(ga.get(), gb.get());  // one entry, shared across both paths
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MmSource, EngineRestartIsPureStoreHitWithZeroColdBuilds) {
  const TempDir tmp("store");
  const std::string store_dir = (tmp.path() / "store").string();
  std::vector<JobSpec> jobs;
  jobs.push_back(parse_job_spec_line("name=mm input=mm:path=" +
                                     fixture("rect_general.mtx") +
                                     " algo=hopcroft_karp"));

  std::string first_line;
  {
    EngineConfig config;
    config.threads = 1;
    config.graph_store_dir = store_dir;
    Engine engine(config);
    const std::vector<JobResult> results = engine.run_collect(jobs);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    first_line = to_json_line(results[0], /*include_timings=*/false);
    EXPECT_EQ(engine.stats().cold_builds, 1u);  // built once, spilled
  }

  // A fresh engine = a restarted process: empty memory cache, same store.
  {
    EngineConfig config;
    config.threads = 1;
    config.graph_store_dir = store_dir;
    Engine engine(config);
    const std::vector<JobResult> results = engine.run_collect(jobs);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(to_json_line(results[0], /*include_timings=*/false), first_line);
    const Engine::Stats stats = engine.stats();
    EXPECT_EQ(stats.cold_builds, 0u);  // mmap-loaded, never rebuilt
    EXPECT_EQ(stats.cache.store_hits, 1u);
    EXPECT_EQ(stats.cache.misses, 1u);
  }
}

TEST(GenSource, LegacyKeysUnchanged) {
  // The refactor moved resolution behind GraphSource; the canonical text —
  // the GraphStore's on-disk naming — must not have moved with it.
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("gen:er:n=4096"), 3),
            "gen:er:cols=4096,deg=4,n=4096#seed=3");
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("gen:mesh:nx=8,ny=4"), 9),
            "gen:mesh:nx=8,ny=4");
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("mtx:/tmp/a.mtx"), 5),
            "mtx:/tmp/a.mtx");
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("suite:cage15_like:scale=0.5"), 2),
            "suite:cage15_like:scale=0.5#seed=2");
}

} // namespace
} // namespace bmh
