/// Tests for graph transforms: permutations (with matching/sprank/quality
/// invariance) and induced subgraphs (with DM-block extraction).

#include <gtest/gtest.h>

#include <numeric>

#include "analysis/dulmage_mendelsohn.hpp"
#include "core/one_sided.hpp"
#include "core/two_sided.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "matching/hopcroft_karp.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(Permute, IdentityIsNoop) {
  const BipartiteGraph g = make_erdos_renyi(50, 60, 300, 1);
  std::vector<vid_t> id_r(50), id_c(60);
  std::iota(id_r.begin(), id_r.end(), 0);
  std::iota(id_c.begin(), id_c.end(), 0);
  EXPECT_TRUE(permuted(g, id_r, id_c).structurally_equal(g));
}

TEST(Permute, EdgesFollowThePermutation) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  const BipartiteGraph p = permuted(g, {1, 0}, {0, 1});
  EXPECT_TRUE(p.has_edge(1, 0));
  EXPECT_TRUE(p.has_edge(0, 1));
  EXPECT_FALSE(p.has_edge(0, 0));
}

TEST(Permute, RejectsNonPermutations) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  EXPECT_THROW((void)permuted(g, {0, 0}, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)permuted(g, {0}, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)permuted(g, {0, 2}, {0, 1}), std::invalid_argument);
}

TEST(Permute, SprankIsInvariant) {
  const BipartiteGraph g = make_erdos_renyi(400, 400, 1200, 7);
  const BipartiteGraph p =
      permuted(g, make_permutation(400, 1), make_permutation(400, 2));
  EXPECT_EQ(sprank(g), sprank(p));
}

TEST(Permute, HeuristicQualityDistributionUnchanged) {
  // The heuristics must behave identically in distribution on permuted
  // inputs; compare mean cardinalities over several seeds with slack.
  const vid_t n = 2000;
  const BipartiteGraph g = make_planted_perfect(n, 3, 5);
  const BipartiteGraph p = permuted(g, make_permutation(n, 11), make_permutation(n, 12));
  double mean_g = 0.0, mean_p = 0.0;
  constexpr int kRuns = 8;
  for (int r = 0; r < kRuns; ++r) {
    mean_g += two_sided_match(g, 5, static_cast<std::uint64_t>(r)).cardinality();
    mean_p += two_sided_match(p, 5, static_cast<std::uint64_t>(r)).cardinality();
  }
  mean_g /= kRuns * static_cast<double>(n);
  mean_p /= kRuns * static_cast<double>(n);
  EXPECT_NEAR(mean_g, mean_p, 0.01);
}

TEST(MakePermutation, IsAValidPermutationAndDeterministic) {
  const std::vector<vid_t> p = make_permutation(100, 3);
  std::vector<bool> seen(100, false);
  for (const vid_t v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
  EXPECT_EQ(p, make_permutation(100, 3));
  EXPECT_NE(p, make_permutation(100, 4));
}

TEST(InducedSubgraph, KeepsExactlyTheRequestedPart) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{0, 1}, {1, 2}, {0, 2}});
  const BipartiteGraph sub =
      induced_subgraph(g, {true, false, true}, {true, true, false});
  EXPECT_EQ(sub.num_rows(), 2);
  EXPECT_EQ(sub.num_cols(), 2);
  // Kept: row0 (new 0) with cols {0,1}; row2 (new 1) with col {0}.
  EXPECT_TRUE(sub.has_edge(0, 0));
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 0));
  EXPECT_EQ(sub.num_edges(), 3);
}

TEST(InducedSubgraph, MapsReportRenumbering) {
  const BipartiteGraph g = graph_from_rows(3, 2, {{0}, {1}, {0}});
  std::vector<vid_t> rmap, cmap;
  (void)induced_subgraph(g, {false, true, true}, {true, true}, &rmap, &cmap);
  EXPECT_EQ(rmap, (std::vector<vid_t>{kNil, 0, 1}));
  EXPECT_EQ(cmap, (std::vector<vid_t>{0, 1}));
}

TEST(InducedSubgraph, MaskSizeMismatchThrows) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{0}, {1}});
  EXPECT_THROW((void)induced_subgraph(g, {true}, {true, true}), std::invalid_argument);
}

TEST(ExtractPart, DmBlocksHaveTheirDocumentedProperties) {
  const BipartiteGraph g = make_dm_structured(15, 25, 30, 28, 18, 2, 3);
  const DmDecomposition dm = dulmage_mendelsohn(g);

  // H block: wide, row-perfect matching.
  const BipartiteGraph h = extract_part(g, dm.row_part, dm.col_part, DmPart::Horizontal);
  EXPECT_GT(h.num_cols(), h.num_rows());
  EXPECT_EQ(sprank(h), h.num_rows());

  // S block: square with a perfect matching.
  const BipartiteGraph s = extract_part(g, dm.row_part, dm.col_part, DmPart::Square);
  EXPECT_EQ(s.num_rows(), s.num_cols());
  EXPECT_EQ(sprank(s), s.num_rows());

  // V block: tall, column-perfect matching.
  const BipartiteGraph v = extract_part(g, dm.row_part, dm.col_part, DmPart::Vertical);
  EXPECT_GT(v.num_rows(), v.num_cols());
  EXPECT_EQ(sprank(v), v.num_cols());
}

} // namespace
} // namespace bmh
