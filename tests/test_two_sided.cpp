/// Tests for TwoSidedMatch (Algorithm 3): validity, the conjectured 0.866
/// bound on perfect-matching families, the exact 1-out analysis case, and
/// robustness on deficient/rectangular inputs.

#include <gtest/gtest.h>

#include "analysis/quality.hpp"
#include "core/two_sided.hpp"
#include "graph/generators.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/karp_sipser.hpp"
#include "scaling/sinkhorn_knopp.hpp"
#include "test_helpers.hpp"

namespace bmh {
namespace {

TEST(TwoSided, ValidOnZoo) {
  for (const auto& g : testing::small_graph_zoo()) {
    const Matching m = two_sided_match(g, 5, 3);
    testing::expect_valid(g, m, "two_sided zoo");
  }
}

TEST(TwoSided, MeetsConjectureOnFullMatrix) {
  // The analysis case of Conjecture 1: on the all-ones matrix the choice
  // graph is a random 1-out bipartite graph whose maximum matching is
  // ~2(1-rho)n = 0.866n (Karonski-Pittel / Meir-Moon).
  const vid_t n = 4000;
  const BipartiteGraph g = make_full(n);
  double worst = 1.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Matching m = two_sided_match(g, 1, seed);
    worst = std::min(worst,
                     static_cast<double>(m.cardinality()) / static_cast<double>(n));
  }
  EXPECT_GE(worst, kTwoSidedGuarantee - 0.02);
  EXPECT_LE(worst, kTwoSidedGuarantee + 0.04);  // conjecture is tight here
}

class TwoSidedFamilyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoSidedFamilyTest, MeetsConjectureOnPlantedPerfect) {
  const std::uint64_t seed = GetParam();
  const vid_t n = 3000;
  const BipartiteGraph g = make_planted_perfect(n, 3, seed);
  const Matching m = two_sided_match(g, 10, seed + 5);
  testing::expect_valid(g, m, "planted");
  EXPECT_GE(static_cast<double>(m.cardinality()) / static_cast<double>(n),
            kTwoSidedGuarantee - 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoSidedFamilyTest, ::testing::Range<std::uint64_t>(0, 8));

TEST(TwoSided, AlwaysAtLeastOneSidedInExpectationOnRandom) {
  // TwoSided uses strictly more information than OneSided; on random
  // instances its cardinality should dominate clearly.
  const BipartiteGraph g = make_erdos_renyi(3000, 3000, 12000, 3);
  const vid_t rank = sprank(g);
  const Matching two = two_sided_match(g, 5, 1);
  EXPECT_GE(matching_quality(two, rank), kTwoSidedGuarantee - 0.02);
}

TEST(TwoSided, BeatsKarpSipserOnAdversarialFamily) {
  // The Table 1 phenomenon at unit-test scale: 5 scaling iterations make
  // TwoSidedMatch clearly better than plain KS for k = 16.
  const vid_t n = 512;
  const BipartiteGraph g = make_ks_adversarial(n, 16);
  vid_t ks_worst = n, ts_worst = n;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ks_worst = std::min(ks_worst, karp_sipser(g, seed).cardinality());
    ts_worst = std::min(ts_worst, two_sided_match(g, 10, seed).cardinality());
  }
  EXPECT_GT(ts_worst, ks_worst);
  EXPECT_GE(static_cast<double>(ts_worst) / n, 0.95);
}

TEST(TwoSided, WorksOnSprankDeficientGraphs) {
  const BipartiteGraph g = make_erdos_renyi(3000, 3000, 3 * 3000, 7);
  const vid_t rank = sprank(g);
  EXPECT_LT(rank, 3000);
  const Matching m = two_sided_match(g, 5, 2);
  testing::expect_valid(g, m, "deficient");
  EXPECT_GE(matching_quality(m, rank), kTwoSidedGuarantee - 0.02);
}

TEST(TwoSided, WorksOnRectangularGraphs) {
  // §4.1.3: rectangular 100k x 120k reached 0.930 with 5 iterations; at
  // unit-test scale we check the same comfortably-above-0.866 behaviour.
  const BipartiteGraph g = make_erdos_renyi(2000, 2400, 4 * 2000, 11);
  const vid_t rank = sprank(g);
  const Matching m = two_sided_match(g, 5, 3);
  testing::expect_valid(g, m, "rectangular");
  EXPECT_GE(matching_quality(m, rank), kTwoSidedGuarantee - 0.02);
}

TEST(TwoSided, ChoicesComeFromTheGraph) {
  const BipartiteGraph g = make_erdos_renyi(500, 500, 2500, 5);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const TwoSidedChoices ch = sample_two_sided_choices(g, s, 9);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    if (ch.rchoice[static_cast<std::size_t>(i)] != kNil) {
      EXPECT_TRUE(g.has_edge(i, ch.rchoice[static_cast<std::size_t>(i)]));
    }
  }
  for (vid_t j = 0; j < g.num_cols(); ++j) {
    if (ch.cchoice[static_cast<std::size_t>(j)] != kNil) {
      EXPECT_TRUE(g.has_edge(ch.cchoice[static_cast<std::size_t>(j)], j));
    }
  }
}

TEST(TwoSided, MatchingUsesOnlyChosenEdges) {
  const BipartiteGraph g = make_erdos_renyi(800, 800, 4000, 13);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const TwoSidedChoices ch = sample_two_sided_choices(g, s, 17);
  const Matching m = two_sided_from_scaling(g, s, 17);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    const vid_t j = m.row_match[static_cast<std::size_t>(i)];
    if (j == kNil) continue;
    const bool row_chose = ch.rchoice[static_cast<std::size_t>(i)] == j;
    const bool col_chose = ch.cchoice[static_cast<std::size_t>(j)] == i;
    EXPECT_TRUE(row_chose || col_chose) << "edge (" << i << "," << j << ")";
  }
}

TEST(TwoSided, QualityImprovesWithIterationsOnAdversarial) {
  const BipartiteGraph g = make_ks_adversarial(1024, 32);
  auto min_quality = [&](int iters) {
    vid_t worst = 1024;
    for (std::uint64_t seed = 0; seed < 5; ++seed)
      worst = std::min(worst, two_sided_match(g, iters, seed).cardinality());
    return static_cast<double>(worst) / 1024.0;
  };
  const double q0 = min_quality(0);
  const double q5 = min_quality(5);
  const double q10 = min_quality(10);
  EXPECT_GT(q5, q0);
  EXPECT_GE(q10, q5 - 0.01);  // monotone up to noise
  EXPECT_GE(q10, 0.95);
}

} // namespace
} // namespace bmh
