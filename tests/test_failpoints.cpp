/// \file test_failpoints.cpp
/// \brief The failure-domain hardening suite: failpoint grammar and trigger
/// modes (exercised directly, so they run in every build), and — in
/// BMH_FAILPOINTS builds — fault injection through the real sites: store
/// I/O errors degrading to direct builds, the circuit breaker tripping and
/// cooling down, CRC corruption taking the content/self-heal path, job
/// deadlines, and the randomized 500-job fault-schedule soak asserting the
/// engine's core robustness contract: no crash, exactly one record per
/// job, and byte-identical records for every job that succeeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "test_helpers.hpp"

namespace bmh {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ the grammar ---

TEST(FailpointConfig, ParsesActions) {
  EXPECT_EQ(fp::parse_config("off").action, fp::Action::kOff);
  EXPECT_EQ(fp::parse_config("error").action, fp::Action::kError);
  EXPECT_EQ(fp::parse_config("corrupt").action, fp::Action::kCorrupt);

  const fp::Config ms = fp::parse_config("delay(50ms)");
  EXPECT_EQ(ms.action, fp::Action::kDelay);
  EXPECT_EQ(ms.delay_ns, 50'000'000ull);
  EXPECT_EQ(fp::parse_config("delay(7)").delay_ns, 7'000'000ull);  // default ms
  EXPECT_EQ(fp::parse_config("delay(10us)").delay_ns, 10'000ull);
  EXPECT_EQ(fp::parse_config("delay(3ns)").delay_ns, 3ull);
  EXPECT_EQ(fp::parse_config("delay(2s)").delay_ns, 2'000'000'000ull);
}

TEST(FailpointConfig, ParsesTriggerModifiers) {
  const fp::Config c = fp::parse_config("error:p=0.25,every=3,first=10");
  EXPECT_EQ(c.action, fp::Action::kError);
  EXPECT_DOUBLE_EQ(c.probability, 0.25);
  EXPECT_EQ(c.every, 3ull);
  EXPECT_EQ(c.first, 10ull);
  // Defaults: disarmed modifiers.
  const fp::Config plain = fp::parse_config("error");
  EXPECT_LT(plain.probability, 0.0);
  EXPECT_EQ(plain.every, 0ull);
  EXPECT_EQ(plain.first, 0ull);
}

TEST(FailpointConfig, RejectsGrammarErrors) {
  EXPECT_THROW((void)fp::parse_config("explode"), std::invalid_argument);
  EXPECT_THROW((void)fp::parse_config("delay()"), std::invalid_argument);
  EXPECT_THROW((void)fp::parse_config("delay(5min)"), std::invalid_argument);
  EXPECT_THROW((void)fp::parse_config("error:p=1.5"), std::invalid_argument);
  EXPECT_THROW((void)fp::parse_config("error:p=nope"), std::invalid_argument);
  EXPECT_THROW((void)fp::parse_config("error:every=0"), std::invalid_argument);
  EXPECT_THROW((void)fp::parse_config("error:first=0"), std::invalid_argument);
  EXPECT_THROW((void)fp::parse_config("error:bogus=1"), std::invalid_argument);
  EXPECT_THROW(fp::configure_from_string("noequalsign"), std::invalid_argument);
  EXPECT_THROW(fp::configure_from_string("=error"), std::invalid_argument);
}

// -------------------------------------------------- direct site evaluation ---
// fp::hit() exists in every build (only the macros compile out), so the
// trigger-mode semantics are certified even where no site is armed in
// production code. Sites are test-local names — never compiled-in ones, so
// these cannot perturb the injection tests below.

TEST(FailpointHit, UnarmedSiteIsFalseAndUncounted) {
  EXPECT_FALSE(fp::hit("test.never_armed"));
  EXPECT_EQ(fp::evaluations("test.never_armed"), 0ull);
}

TEST(FailpointHit, ErrorActionThrowsWithSiteName) {
  fp::configure("test.error_site", fp::parse_config("error"));
  try {
    (void)fp::hit("test.error_site");
    FAIL() << "armed error site did not throw";
  } catch (const fp::FailpointError& e) {
    EXPECT_EQ(e.site(), "test.error_site");
    EXPECT_NE(std::string(e.what()).find("test.error_site"), std::string::npos);
  }
  EXPECT_EQ(fp::evaluations("test.error_site"), 1ull);
  EXPECT_EQ(fp::fires("test.error_site"), 1ull);
  // Disarm: evaluations freeze (disarmed lookups don't count), counters keep
  // their totals.
  fp::clear("test.error_site");
  EXPECT_FALSE(fp::hit("test.error_site"));
  EXPECT_EQ(fp::evaluations("test.error_site"), 1ull);
}

TEST(FailpointHit, FirstNFiresOnlyTheFirstN) {
  fp::configure("test.first2", fp::parse_config("corrupt:first=2"));
  EXPECT_TRUE(fp::hit("test.first2"));
  EXPECT_TRUE(fp::hit("test.first2"));
  EXPECT_FALSE(fp::hit("test.first2"));
  EXPECT_FALSE(fp::hit("test.first2"));
  EXPECT_EQ(fp::fires("test.first2"), 2ull);
  EXPECT_EQ(fp::evaluations("test.first2"), 4ull);
  fp::clear("test.first2");
}

TEST(FailpointHit, EveryNthFiresOnMultiplesOfN) {
  fp::configure("test.every3", fp::parse_config("corrupt:every=3"));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(fp::hit("test.every3"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  fp::clear("test.every3");
}

TEST(FailpointHit, ProbabilityEndpointsAndDeterminism) {
  fp::configure("test.p0", fp::parse_config("corrupt:p=0"));
  fp::configure("test.p1", fp::parse_config("corrupt:p=1"));
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(fp::hit("test.p0"));
    EXPECT_TRUE(fp::hit("test.p1"));
  }
  // A fractional p replays identically for the same seed: the draw hashes
  // (seed, site, per-site ordinal), nothing else.
  fp::set_seed(42);
  fp::configure("test.phalf_a", fp::parse_config("corrupt:p=0.5"));
  fp::configure("test.phalf_b", fp::parse_config("corrupt:p=0.5"));
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) a.push_back(fp::hit("test.phalf_a"));
  for (int i = 0; i < 64; ++i) b.push_back(fp::hit("test.phalf_b"));
  // Distinct sites draw distinct (hash-decorrelated) sequences...
  EXPECT_NE(a, b);
  // ...and ~p of the draws fire (loose bound; the sequence is fixed).
  const auto fires_in = [](const std::vector<bool>& v) {
    return std::count(v.begin(), v.end(), true);
  };
  EXPECT_GT(fires_in(a), 16);
  EXPECT_LT(fires_in(a), 48);
  fp::set_seed(0x9E3779B97F4A7C15ull);  // restore the default
  fp::clear("test.p0");
  fp::clear("test.p1");
  fp::clear("test.phalf_a");
  fp::clear("test.phalf_b");
}

TEST(FailpointHit, DelayActionSleepsAndReturnsFalse) {
  fp::configure("test.delay", fp::parse_config("delay(2ms)"));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(fp::hit("test.delay"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(2));
  fp::clear("test.delay");
}

TEST(FailpointHit, ConfigureFromStringArmsSeveralSites) {
  fp::configure_from_string(
      "test.multi_a=error; test.multi_b=delay(1us):every=2 ;test.multi_c=off");
  EXPECT_THROW((void)fp::hit("test.multi_a"), fp::FailpointError);
  EXPECT_FALSE(fp::hit("test.multi_b"));  // every=2: first evaluation skips
  EXPECT_FALSE(fp::hit("test.multi_c"));
  fp::clear_all();
  EXPECT_FALSE(fp::hit("test.multi_a"));
}

// ------------------------------------------------------ deadline machinery ---
// timeout_ms needs no failpoints: a deliberately over-sized build blows a
// 1 ms budget at the post-acquire check in every build mode.

TEST(JobDeadlines, TimeoutProducesATimeoutRecordNotACrash) {
  EngineConfig config;
  config.threads = 1;
  config.graph_cache_mb = 0;  // direct build — nothing cached between tests
  Engine engine(config);

  JobSpec job = parse_job_spec_line(
      "name=slow input=gen:er:n=400000,deg=8 algo=two_sided timeout_ms=1");
  EXPECT_EQ(job.timeout_ms, 1ull);
  const JobResult r = engine.submit(std::move(job)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, ErrorKind::kTimeout);
  EXPECT_NE(r.error.find("deadline exceeded"), std::string::npos) << r.error;
  // The record renders with the taxonomy attached.
  const std::string line = to_json_line(r, /*include_timings=*/false);
  EXPECT_NE(line.find("\"error_kind\":\"timeout\""), std::string::npos) << line;

  // The same job without the deadline succeeds — proof the timeout was the
  // only failure cause.
  JobSpec fine = parse_job_spec_line(
      "name=slow input=gen:er:n=400000,deg=8 algo=two_sided");
  const JobResult ok = engine.submit(std::move(fine)).get();
  EXPECT_TRUE(ok.ok) << ok.error;
}

TEST(JobDeadlines, ZeroTimeoutMeansNone) {
  const JobSpec job = parse_job_spec_line("input=gen:er:n=64 timeout_ms=0");
  EXPECT_EQ(job.timeout_ms, 0ull);
  EXPECT_THROW((void)parse_job_spec_line("input=gen:er:n=64 timeout_ms=-5"),
               std::invalid_argument);
}

// --------------------------------------------------------- injected faults ---
// Everything below drives faults through the compiled-in sites, so it only
// runs in BMH_FAILPOINTS builds (the CI `failpoints` job). The fixture
// guarantees a clean slate per test however a predecessor failed.

class FailpointInjection : public ::testing::Test {
protected:
  void SetUp() override {
    if (!fp::kCompiled) GTEST_SKIP() << "BMH_FAILPOINTS not compiled in";
    fp::clear_all();
    dir_ = (fs::temp_directory_path() /
            ("bmh_fp_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fp::clear_all();
    fp::set_seed(0x9E3779B97F4A7C15ull);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_F(FailpointInjection, StoreLoadErrorDegradesToBuildNotFailure) {
  const GraphSpec spec = parse_graph_spec("gen:er:n=512,deg=4,seed=5");
  const std::string key = canonical_graph_key(spec, 1);
  {
    GraphStore store(dir_);
    ASSERT_TRUE(store.spill(key, build_graph(spec, 1)));
  }

  fp::configure("store.load", fp::parse_config("error"));
  GraphCache::Options options;
  options.store_dir = dir_;
  GraphCache cache(options);
  // The warm file is there, every load of it errors — the cache absorbs the
  // fault and builds. The caller cannot tell; the counters can.
  const auto g = cache.get_or_build(spec, 1);
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->structurally_equal(build_graph(spec, 1)));
  const GraphCache::Stats s = cache.stats();
  EXPECT_EQ(s.store_hits, 0ull);
  EXPECT_GE(s.store_errors, 1ull);
  EXPECT_GE(fp::fires("store.load"), 1ull);
}

TEST_F(FailpointInjection, BreakerTripsOnConsecutiveIoErrorsAndCoolsDown) {
  GraphStore::Options options;
  options.breaker_threshold = 3;
  options.breaker_cooldown_ms = 50;
  GraphStore store(dir_, options);
  const GraphSpec spec = parse_graph_spec("gen:cycle:n=64");
  const std::string key = canonical_graph_key(spec, 1);
  ASSERT_TRUE(store.spill(key, build_graph(spec, 1)));

  fp::configure("store.load", fp::parse_config("error"));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(store.try_load(key), nullptr);
  GraphStore::Stats stats = store.stats();
  EXPECT_EQ(stats.io_errors, 3ull);
  EXPECT_EQ(stats.breaker_trips, 1ull);
  EXPECT_TRUE(store.breaker_open());

  // Open breaker: calls are skipped without touching the failpoint (no new
  // evaluations), spills are skipped too.
  const std::uint64_t evals_at_trip = fp::evaluations("store.load");
  EXPECT_EQ(store.try_load(key), nullptr);
  EXPECT_FALSE(store.spill("other-key", build_graph(spec, 2)));
  EXPECT_EQ(fp::evaluations("store.load"), evals_at_trip);
  stats = store.stats();
  EXPECT_EQ(stats.io_errors, 3ull);  // skips are not errors
  EXPECT_GE(stats.breaker_skips, 2ull);

  // After the cooldown (fault gone) the store serves again and the streak
  // resets — half-open probe succeeds, breaker closes.
  fp::clear("store.load");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(store.breaker_open());
  const auto g = store.try_load(key);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(store.stats().breaker_trips, 1ull);
}

TEST_F(FailpointInjection, ContentCorruptionNeverFeedsTheBreaker) {
  GraphStore::Options options;
  options.breaker_threshold = 2;
  GraphStore store(dir_, options);
  const GraphSpec spec = parse_graph_spec("gen:mesh:nx=12");
  const std::string key = canonical_graph_key(spec, 1);
  const BipartiteGraph g = build_graph(spec, 1);

  // Every load reports a CRC mismatch: content rejection + self-heal unlink,
  // then the rewritten file corrupts again... N times over. The breaker must
  // stay closed throughout — the medium is healthy, the bytes are not.
  fp::configure("store.load.crc", fp::parse_config("corrupt"));
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(store.spill(key, g));
    EXPECT_EQ(store.try_load(key), nullptr);
    EXPECT_FALSE(fs::exists(store.path_for(key)));  // self-healed
  }
  const GraphStore::Stats stats = store.stats();
  EXPECT_EQ(stats.content_errors, 4ull);
  EXPECT_EQ(stats.healed, 4ull);
  EXPECT_EQ(stats.io_errors, 0ull);
  EXPECT_EQ(stats.breaker_trips, 0ull);
  EXPECT_FALSE(store.breaker_open());

  // Fault gone: the key self-heals for real on the next spill/load cycle.
  fp::clear("store.load.crc");
  ASSERT_TRUE(store.spill(key, g));
  const auto healed = store.try_load(key);
  ASSERT_NE(healed, nullptr);
  EXPECT_TRUE(healed->structurally_equal(g));
}

TEST_F(FailpointInjection, SpillErrorLeavesNoTmpResidue) {
  GraphStore store(dir_);
  const GraphSpec spec = parse_graph_spec("gen:er:n=128,deg=4,seed=3");
  fp::configure("serialize.save.rename", fp::parse_config("error"));
  EXPECT_FALSE(store.spill("key", build_graph(spec, 1)));
  EXPECT_EQ(store.stats().io_errors, 1ull);
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 0u) << "failed spill left residue in the store dir";
  // And the slot is not poisoned: the next spill succeeds.
  fp::clear("serialize.save.rename");
  EXPECT_TRUE(store.spill("key", build_graph(spec, 1)));
  EXPECT_NE(store.try_load("key"), nullptr);
}

TEST_F(FailpointInjection, SourceIoErrorIsRetriedThenClassified) {
  EngineConfig config;
  config.threads = 1;
  config.graph_cache_mb = 0;  // every job reads the file: no cached graph
                              // can mask the injected read fault
  Engine engine(config);
  const std::string path = std::string(BMH_TEST_DATA_DIR) + "/rect_general.mtx";

  // first=1: the initial read fails, the engine's one retry succeeds — the
  // job is ok and the retry is visible in the worker counters.
  fp::configure("source.mtx.read", fp::parse_config("error:first=1"));
  JobSpec job = parse_job_spec_line("name=retry input=mtx:" + path +
                                    " algo=hopcroft_karp");
  const JobResult ok = engine.submit(std::move(job)).get();
  EXPECT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(engine.metrics().counter_total("worker", "io_retries"), 1ull);

  // Always-on: both attempts fail, the record carries source_io.
  fp::configure("source.mtx.read", fp::parse_config("error"));
  JobSpec doomed = parse_job_spec_line("name=doomed input=mtx:" + path +
                                       " algo=hopcroft_karp");
  const JobResult bad = engine.submit(std::move(doomed)).get();
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error_kind, ErrorKind::kSourceIo);
  EXPECT_EQ(engine.metrics().counter_total("worker", "jobs_failed_source_io"), 1ull);
}

TEST_F(FailpointInjection, PipelineStageErrorIsExecNeverRetried) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  fp::configure("pipeline.stage", fp::parse_config("error:first=1"));
  JobSpec job = parse_job_spec_line("name=stagefail input=gen:er:n=256,deg=4");
  const JobResult r = engine.submit(std::move(job)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, ErrorKind::kExec);
  // A pipeline fault must not trigger the acquire retry loop.
  EXPECT_EQ(engine.metrics().counter_total("worker", "io_retries"), 0ull);
  EXPECT_EQ(engine.metrics().counter_total("worker", "jobs_failed_exec"), 1ull);
}

TEST_F(FailpointInjection, DelayPlusDeadlineTimesOutAtAStageBoundary) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  fp::configure("pipeline.stage", fp::parse_config("delay(20ms)"));
  JobSpec job =
      parse_job_spec_line("name=slowstage input=gen:er:n=256,deg=4 timeout_ms=5");
  const JobResult r = engine.submit(std::move(job)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, ErrorKind::kTimeout);
  EXPECT_NE(r.error.find("before stage"), std::string::npos) << r.error;
}

// ------------------------------------------------------------ the big soak ---

/// The randomized fault-schedule soak (the PR's capstone): 500 jobs of
/// every kind through an engine with cache + store while every compiled-in
/// failpoint fires with ~10% probability. Certified invariants:
///   1. no crash, no hang (the suite completing under ASan is the proof);
///   2. exactly one result per job, every failure carrying a message and a
///      classified kind;
///   3. every job that *does* succeed emits a record byte-identical to the
///      fault-free run's — degraded paths may be slower, never different;
///   4. the store self-heals: with faults cleared, a fresh engine over the
///      same directory serves the whole batch clean.
TEST_F(FailpointInjection, RandomizedFaultScheduleSoak) {
  const std::string mm_path = std::string(BMH_TEST_DATA_DIR) + "/rect_general.mtx";
  const char* kTemplates[] = {
      "input=gen:er:n=%d,deg=4 algo=two_sided iters=3",
      "input=gen:er:n=%d,deg=5 algo=one_sided augment=1",
      "input=gen:adversarial:n=%d,k=4 algo=karp_sipser",
      "input=gen:planted:n=%d algo=hopcroft_karp",
      "input=gen:mesh:nx=24 algo=one_sided",
      "kind=undirected-match input=gen:mesh:nx=20",
      "kind=undirected-match algo=greedy input=gen:er:n=%d,deg=4",
      "kind=analyze algo=dm input=gen:er:n=%d,deg=4",
      "kind=analyze algo=sprank input=gen:powerlaw:n=%d,avg=6",
      "kind=analyze algo=koenig input=gen:cycle:n=%d",
  };
  constexpr int kJobs = 500;
  std::vector<JobSpec> jobs;
  jobs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    std::string spec_line;
    if (i % 25 == 7) {
      // File-backed jobs so the source.mm.* / source.mtx.read sites see
      // real traffic.
      spec_line = "input=mm:path=" + mm_path + " algo=hopcroft_karp";
    } else if (i % 25 == 19) {
      spec_line = "kind=analyze algo=dm input=mtx:" + mm_path;
    } else {
      char line[160];
      // Three sizes per template so the cache serves some jobs and builds
      // others; names make any failure's job identifiable in gtest output.
      std::snprintf(line, sizeof line, kTemplates[i % std::size(kTemplates)],
                    256 + 128 * (i % 3));
      spec_line = line;
    }
    jobs.push_back(
        parse_job_spec_line("name=soak" + std::to_string(i) + " " + spec_line));
  }

  const auto run_batch = [&](bool with_store) {
    EngineConfig config;
    config.threads = 4;
    config.seed = 7;
    config.graph_cache_mb = 64;
    if (with_store) config.graph_store_dir = dir_;
    Engine engine(config);
    return engine.run_collect(jobs);
  };

  // Fault-free baseline (no store: the pure compute truth).
  const std::vector<JobResult> baseline = run_batch(false);
  ASSERT_EQ(baseline.size(), static_cast<std::size_t>(kJobs));
  for (const JobResult& r : baseline) ASSERT_TRUE(r.ok) << r.name << ": " << r.error;

  // Arm the full schedule: every compiled-in site, ~10% each, deterministic.
  fp::set_seed(0xDEADBEEF);
  fp::configure_from_string(
      "store.load=error:p=0.1;"
      "store.load.crc=corrupt:p=0.1;"
      "store.spill=error:p=0.1;"
      "serialize.load=error:p=0.1;"
      "serialize.save.write=error:p=0.1;"
      "serialize.save.fsync=error:p=0.1;"
      "serialize.save.rename=error:p=0.1;"
      "mmap.open=error:p=0.1;"
      "source.mtx.read=error:p=0.1;"
      "source.mm.read=error:p=0.1;"
      "source.mm.hash=corrupt:p=0.1;"
      "cache.insert=error:p=0.1;"
      "pipeline.stage=error:p=0.05;"
      "store.prune=error:p=0.1");
  const std::vector<JobResult> faulted = run_batch(true);

  // Invariant 2: one record per job, indexed and classified.
  ASSERT_EQ(faulted.size(), static_cast<std::size_t>(kJobs));
  std::size_t failures = 0;
  for (int i = 0; i < kJobs; ++i) {
    const JobResult& r = faulted[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.index, static_cast<std::size_t>(i));
    EXPECT_EQ(r.name, "soak" + std::to_string(i));
    if (!r.ok) {
      ++failures;
      EXPECT_FALSE(r.error.empty()) << r.name;
      EXPECT_NE(r.error_kind, ErrorKind::kNone) << r.name << ": " << r.error;
    }
  }
  // Sanity on the schedule itself: with every site at ~10% some jobs must
  // fail (pipeline faults are not absorbed) and — because the store/cache
  // tier degrades instead of failing — many must still succeed.
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, static_cast<std::size_t>(kJobs));

  // Invariant 3: success means byte-identical to the fault-free record.
  for (int i = 0; i < kJobs; ++i) {
    const JobResult& r = faulted[static_cast<std::size_t>(i)];
    if (!r.ok) continue;
    EXPECT_EQ(to_json_line(r, /*include_timings=*/false),
              to_json_line(baseline[static_cast<std::size_t>(i)],
                           /*include_timings=*/false))
        << r.name;
  }

  // Invariant 4: clear the faults and the store directory — whatever state
  // the fault schedule left it in — serves a clean batch from scratch.
  fp::clear_all();
  const std::vector<JobResult> recovered = run_batch(true);
  ASSERT_EQ(recovered.size(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) {
    const JobResult& r = recovered[static_cast<std::size_t>(i)];
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_EQ(to_json_line(r, /*include_timings=*/false),
              to_json_line(baseline[static_cast<std::size_t>(i)],
                           /*include_timings=*/false))
        << r.name;
  }
}

} // namespace
} // namespace bmh
