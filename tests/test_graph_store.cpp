/// \file test_graph_store.cpp
/// \brief Tests for the persistent graph tier: GraphStore spill/load round
/// trips, corruption and key-collision handling (a bad file is a recorded
/// error or a miss, never a served graph), the GraphCache two-tier flow — a
/// fresh cache over a warm directory serves from disk instead of building —
/// restart-warm batch byte-parity through BatchOptions::graph_store_dir, and
/// the race_discards counter's exact accounting under a 2-thread same-key
/// stress.

#include <gtest/gtest.h>

#include <barrier>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "test_helpers.hpp"

namespace bmh {
namespace {

namespace fs = std::filesystem;

/// Flips one byte in place (read-XOR-write, so the corruption can never be
/// a no-op whatever value the byte held).
void flip_byte(const std::string& path, std::streamoff offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(offset);
  const int byte = f.get();
  ASSERT_NE(byte, EOF);
  f.seekp(offset);
  f.put(static_cast<char>(byte ^ 0x5A));
}

class GraphStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("bmh_store_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

// --------------------------------------------------------------- the store ---

TEST_F(GraphStoreTest, SpillThenLoadRoundTrips) {
  GraphStore store(dir_);
  const GraphSpec spec = parse_graph_spec("gen:er:n=256,deg=4,seed=7");
  const BipartiteGraph g = build_graph(spec, 1);
  const std::string key = canonical_graph_key(spec, 1);

  EXPECT_EQ(store.try_load(key), nullptr);  // empty store: a miss
  EXPECT_TRUE(store.spill(key, g));
  EXPECT_TRUE(fs::exists(store.path_for(key)));

  const auto loaded = store.try_load(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->structurally_equal(g));
  EXPECT_FALSE(loaded->owns_storage());  // mmap view, not a rebuild

  // Write-once: a second spill of the same key is a skip, not a rewrite.
  EXPECT_TRUE(store.spill(key, g));
  const GraphStore::Stats stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.spills, 1u);
  EXPECT_EQ(stats.spill_skips, 1u);
  EXPECT_EQ(stats.io_errors, 0u);
  EXPECT_EQ(stats.content_errors, 0u);
}

TEST_F(GraphStoreTest, StoreSurvivesReopenLikeAProcessRestart) {
  const BipartiteGraph g = build_graph(parse_graph_spec("gen:mesh:nx=16"), 1);
  {
    GraphStore store(dir_);
    ASSERT_TRUE(store.spill("mesh-key", g));
  }
  GraphStore reopened(dir_);  // fresh object, same directory
  const auto loaded = reopened.try_load("mesh-key");
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->structurally_equal(g));
}

TEST_F(GraphStoreTest, CorruptFileIsAnErrorNeverServed) {
  GraphStore store(dir_);
  const BipartiteGraph g = build_graph(parse_graph_spec("gen:er:n=128,deg=4"), 9);
  ASSERT_TRUE(store.spill("victim", g));
  const std::string path = store.path_for("victim");
  flip_byte(path, static_cast<std::streamoff>(fs::file_size(path) / 2));
  EXPECT_EQ(store.try_load("victim"), nullptr);
  const GraphStore::Stats stats = store.stats();
  EXPECT_EQ(stats.hits, 0u);
  // A corrupt file is a *content* error — it must never feed the I/O streak
  // that trips the circuit breaker (the medium is fine, one file is bad).
  EXPECT_EQ(stats.content_errors, 1u);
  EXPECT_EQ(stats.io_errors, 0u);
  EXPECT_EQ(stats.errors_total(), 1u);
  // The rejection names the offending file.
  EXPECT_NE(store.last_error().find(path), std::string::npos) << store.last_error();
  // Self-heal: the rejected file was unlinked, so the key's slot is not
  // poisoned forever — the next spill rewrites it and loads succeed again.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(store.stats().healed, 1u);
  EXPECT_TRUE(store.spill("victim", g));
  EXPECT_EQ(store.stats().spill_skips, 0u);  // a real rewrite, not a skip
  const auto healed = store.try_load("victim");
  ASSERT_NE(healed, nullptr);
  EXPECT_TRUE(healed->structurally_equal(g));
}

TEST_F(GraphStoreTest, FilenamesUseTheCanonicalKeyHash) {
  // Documented contract: the filename is the 64-bit FNV-1a of the key text
  // — the very hash canonical_graph_key returns — so external tooling can
  // locate a key's file without linking the store.
  GraphStore store(dir_);
  const GraphSpec spec = parse_graph_spec("gen:er:n=64,deg=4,seed=2");
  std::string key;
  const std::uint64_t hash = canonical_graph_key(spec, 1, key);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(hash));
  EXPECT_EQ(store.path_for(key), dir_ + "/" + hex + ".bmg");
}

TEST_F(GraphStoreTest, EmbeddedKeyMismatchDegradesToMiss) {
  GraphStore store(dir_);
  const BipartiteGraph g = build_graph(parse_graph_spec("gen:cycle:n=32"), 1);
  ASSERT_TRUE(store.spill("key-a", g));
  // Simulate a filename hash collision: key-b's slot holds key-a's file.
  fs::rename(store.path_for("key-a"), store.path_for("key-b"));
  EXPECT_EQ(store.try_load("key-b"), nullptr);
  const GraphStore::Stats stats = store.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.errors_total(), 0u);  // the file is fine, it just isn't key-b's
  EXPECT_EQ(stats.misses, 1u);
}

// ----------------------------------------------------- cache second tier ---

TEST_F(GraphStoreTest, FreshCacheServesFromWarmStoreWithoutBuilding) {
  const GraphSpec spec = parse_graph_spec("gen:er:n=512,deg=4,seed=3");

  GraphCache::Options options;
  options.store_dir = dir_;
  std::size_t file_bytes = 0;
  {
    GraphCache cold(options);
    const auto built = cold.get_or_build(spec, 1);
    ASSERT_NE(built, nullptr);
    EXPECT_TRUE(built->owns_storage());  // built from spec, write-through spilled
    const GraphCache::Stats s = cold.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.store_misses, 1u);
    EXPECT_EQ(s.store_spills, 1u);
    ASSERT_NE(cold.store(), nullptr);
    file_bytes = fs::file_size(cold.store()->path_for(
        canonical_graph_key(spec, 1)));
    EXPECT_GT(file_bytes, 0u);
  }

  // "Restart": a brand-new cache (empty memory tier) over the same dir.
  GraphCache warm(options);
  const auto loaded = warm.get_or_build(spec, 1);
  ASSERT_NE(loaded, nullptr);
  EXPECT_FALSE(loaded->owns_storage());  // mmap view — no rebuild
  EXPECT_EQ(loaded->memory_bytes(), file_bytes);
  EXPECT_TRUE(loaded->structurally_equal(build_graph(spec, 1)));
  GraphCache::Stats s = warm.stats();
  EXPECT_EQ(s.misses, 1u);       // memory tier was cold...
  EXPECT_EQ(s.store_hits, 1u);   // ...the store tier was not
  EXPECT_EQ(s.store_spills, 0u); // nothing new written

  // Second call is a pure memory hit on the mapped entry.
  const auto again = warm.get_or_build(spec, 1);
  EXPECT_EQ(again.get(), loaded.get());
  EXPECT_EQ(warm.stats().hits, 1u);
}

TEST_F(GraphStoreTest, EvictedEntriesAreOnDiskAndReloadable) {
  const GraphSpec spec = parse_graph_spec("gen:er:n=512,deg=4");
  const std::size_t one_graph = build_graph(spec, 0).memory_bytes();

  GraphCache::Options options;
  options.shards = 1;
  options.max_bytes = 2 * one_graph + one_graph / 2;  // room for ~2
  options.store_dir = dir_;
  GraphCache cache(options);
  for (std::uint64_t s = 0; s < 5; ++s) (void)cache.get_or_build(spec, s);

  const GraphCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 3u);
  // Write-through put every build on disk regardless of eviction order.
  EXPECT_EQ(stats.store_spills, 5u);
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir_)) ++files;
  EXPECT_EQ(files, 5u);

  // An evicted instance comes back from disk, not from a rebuild.
  (void)cache.get_or_build(spec, 0);
  EXPECT_EQ(cache.stats().store_hits, 1u);
}

TEST_F(GraphStoreTest, CorruptStoreFileFallsBackToBuilding) {
  const GraphSpec spec = parse_graph_spec("gen:er:n=256,deg=4,seed=11");
  GraphCache::Options options;
  options.store_dir = dir_;
  {
    GraphCache cache(options);
    (void)cache.get_or_build(spec, 1);
  }
  // Corrupt the spilled file, then restart.
  GraphStore probe(dir_);
  const std::string path = probe.path_for(canonical_graph_key(spec, 1));
  flip_byte(path, sizeof(GraphFileHeader) + 1);
  GraphCache cache(options);
  const auto g = cache.get_or_build(spec, 1);  // must not throw, must be right
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->owns_storage());  // rebuilt, the mapped path was rejected
  EXPECT_TRUE(g->structurally_equal(build_graph(spec, 1)));
  EXPECT_EQ(cache.stats().store_errors, 1u);
}

// ------------------------------------------------ restart-warm batch parity ---

std::string run_lines(const std::vector<JobSpec>& jobs, const BatchOptions& options) {
  std::string out;
  for (const JobResult& r : run_batch(jobs, options)) {
    out += to_json_line(r, /*include_timings=*/false);
    out += '\n';
  }
  return out;
}

TEST_F(GraphStoreTest, RestartedProcessServesByteIdenticalBatchFromWarmStore) {
  std::istringstream in(
      "input=gen:er:n=512,deg=4,seed=7 algo=two_sided iters=5\n"
      "input=gen:er:n=512,deg=4,seed=7 algo=one_sided iters=5\n"
      "input=gen:mesh:nx=24 algo=one_sided augment=1\n"
      "input=gen:er:n=512,deg=4,seed=7 algo=karp_sipser\n");
  const std::vector<JobSpec> jobs = parse_job_specs(in);

  BatchOptions plain;
  plain.seed = 42;
  plain.workers = 2;
  const std::string reference = run_lines(jobs, plain);

  // Cold run with the persistent tier: output identical, store now warm.
  BatchOptions with_store = plain;
  with_store.graph_store_dir = dir_;
  EXPECT_EQ(run_lines(jobs, with_store), reference);

  // "Restarted process": a fresh caller-owned cache (so the counters are
  // observable) whose memory tier is empty but whose store dir is warm.
  GraphCache::Options cache_options;
  cache_options.store_dir = dir_;
  GraphCache restarted(cache_options);
  BatchOptions warm = plain;
  warm.graph_cache = &restarted;
  EXPECT_EQ(run_lines(jobs, warm), reference);
  const GraphCache::Stats stats = restarted.stats();
  EXPECT_GT(stats.store_hits, 0u);   // served from disk...
  EXPECT_EQ(stats.store_spills, 0u); // ...built nothing new
  EXPECT_EQ(stats.store_errors, 0u);
}

// -------------------------------------------------- race_discards counter ---

TEST(GraphCacheRace, TwoThreadSameKeyStressCountsDiscardsExactly) {
  // Every round releases two threads simultaneously onto the same cold key.
  // Each round therefore resolves as either (miss, miss) with the loser's
  // copy discarded — one race_discard — or (miss, hit) when one thread got
  // there first. Whatever the interleaving, the counters must satisfy the
  // exact accounting below; any drift means discards are miscounted.
  constexpr int kRounds = 200;
  GraphCache cache;
  const GraphSpec spec = parse_graph_spec("gen:er:n=64,deg=4");

  std::barrier<> gate(2);
  std::vector<std::thread> pool;
  for (int t = 0; t < 2; ++t) {
    pool.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        gate.arrive_and_wait();
        // Seed = round: a fresh cold key each round, same key across threads.
        const auto g = cache.get_or_build(spec, static_cast<std::uint64_t>(round));
        ASSERT_NE(g, nullptr);
        EXPECT_EQ(g->num_rows(), 64);
      }
    });
  }
  for (auto& t : pool) t.join();

  const GraphCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 2u * kRounds);
  EXPECT_EQ(stats.misses, kRounds + stats.race_discards);
  EXPECT_EQ(stats.hits, kRounds - stats.race_discards);
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kRounds));
  EXPECT_LE(stats.race_discards, static_cast<std::uint64_t>(kRounds));
}

} // namespace
} // namespace bmh
