/// Tests for Sinkhorn-Knopp and Ruiz scaling: convergence to doubly
/// stochastic form, the paper's error metric, behaviour without total
/// support (DM "*"-entry suppression, §3.3), and the SK-vs-Ruiz comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/dulmage_mendelsohn.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "scaling/ruiz.hpp"
#include "scaling/scaling.hpp"
#include "scaling/sinkhorn_knopp.hpp"

namespace bmh {
namespace {

ScalingOptions iters(int n) {
  ScalingOptions o;
  o.max_iterations = n;
  return o;
}

TEST(IdentityScaling, AllOnesMultipliers) {
  const BipartiteGraph g = make_erdos_renyi(50, 60, 300, 1);
  const ScalingResult r = identity_scaling(g);
  EXPECT_EQ(r.iterations, 0);
  for (const double d : r.dr) EXPECT_EQ(d, 1.0);
  for (const double d : r.dc) EXPECT_EQ(d, 1.0);
}

TEST(IdentityScaling, ErrorIsMaxDegreeMinusOne) {
  // For an unscaled (0,1)-matrix the row/col sums are the degrees, so the
  // error is max(deg) - 1 (the paper notes n-1 for a full matrix).
  const BipartiteGraph g = make_full(10);
  const ScalingResult r = identity_scaling(g);
  EXPECT_NEAR(r.error, 9.0, 1e-12);
}

TEST(SinkhornKnopp, FullMatrixScalesInOneIteration) {
  // For the all-ones matrix the doubly stochastic limit is s_ij = 1/n,
  // reached immediately.
  const BipartiteGraph g = make_full(8);
  const ScalingResult r = scale_sinkhorn_knopp(g, iters(1));
  for (vid_t i = 0; i < 8; ++i)
    for (vid_t j = 0; j < 8; ++j) EXPECT_NEAR(r.entry(i, j), 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(r.error, 0.0, 1e-12);
}

TEST(SinkhornKnopp, PermutationMatrixIsFixedPoint) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{1}, {2}, {0}});
  const ScalingResult r = scale_sinkhorn_knopp(g, iters(3));
  EXPECT_NEAR(r.error, 0.0, 1e-12);
  EXPECT_NEAR(r.entry(0, 1), 1.0, 1e-12);
}

TEST(SinkhornKnopp, RowSumsAreOneAfterEachIteration) {
  const BipartiteGraph g = make_planted_perfect(300, 4, 5);
  const ScalingResult r = scale_sinkhorn_knopp(g, iters(3));
  const std::vector<double> rs = scaled_row_sums(g, r);
  for (const double s : rs) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(SinkhornKnopp, ErrorDecreasesWithIterations) {
  const BipartiteGraph g = make_planted_perfect(500, 5, 11);
  const double e1 = scale_sinkhorn_knopp(g, iters(1)).error;
  const double e5 = scale_sinkhorn_knopp(g, iters(5)).error;
  const double e20 = scale_sinkhorn_knopp(g, iters(20)).error;
  EXPECT_LT(e5, e1);
  EXPECT_LT(e20, e5);
  EXPECT_LT(e20, 0.1);  // rate depends on the 2nd singular value; be lenient
}

TEST(SinkhornKnopp, ConvergesOnTotalSupportMatrix) {
  // Cycle matrices have total support; SK must converge to error ~ 0.
  const BipartiteGraph g = make_cycle(100);
  ScalingOptions o;
  o.max_iterations = 200;
  o.tolerance = 1e-10;
  const ScalingResult r = scale_sinkhorn_knopp(g, o);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.error, 1e-10);
  // The unique scaling of the 2-regular cycle is s_ij = 1/2 everywhere.
  for (vid_t i = 0; i < 100; ++i)
    for (const vid_t j : g.row_neighbors(i)) EXPECT_NEAR(r.entry(i, j), 0.5, 1e-6);
}

TEST(SinkhornKnopp, ToleranceStopsEarly) {
  const BipartiteGraph g = make_cycle(50);
  ScalingOptions o;
  o.max_iterations = 1000;
  o.tolerance = 1e-6;
  const ScalingResult r = scale_sinkhorn_knopp(g, o);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 1000);
}

TEST(SinkhornKnopp, EmptyRowsAndColumnsAreTolerated) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{0}, {}, {0, 2}});
  const ScalingResult r = scale_sinkhorn_knopp(g, iters(10));
  EXPECT_TRUE(std::isfinite(r.error));
  for (const double d : r.dr) EXPECT_TRUE(std::isfinite(d));
  for (const double d : r.dc) EXPECT_TRUE(std::isfinite(d));
}

TEST(SinkhornKnopp, EdgelessGraphConvergesImmediately) {
  // An edgeless matrix is vacuously doubly stochastic; the kernel used to
  // burn max_iterations of no-op sweeps and report converged = false.
  const BipartiteGraph g = graph_from_rows(3, 4, {{}, {}, {}});
  const ScalingResult r = scale_sinkhorn_knopp(g, iters(50));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_EQ(r.error, 0.0);
  ASSERT_EQ(r.dr.size(), 3u);
  ASSERT_EQ(r.dc.size(), 4u);
  for (const double d : r.dr) EXPECT_EQ(d, 1.0);
  for (const double d : r.dc) EXPECT_EQ(d, 1.0);
}

TEST(Ruiz, EdgelessGraphConvergesImmediately) {
  const BipartiteGraph g = graph_from_rows(2, 2, {{}, {}});
  const ScalingResult r = scale_ruiz(g, iters(50));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_EQ(r.error, 0.0);
  for (const double d : r.dr) EXPECT_EQ(d, 1.0);
  for (const double d : r.dc) EXPECT_EQ(d, 1.0);
}

TEST(ScalingError, EdgelessGraphIsZero) {
  const BipartiteGraph g = graph_from_rows(3, 3, {{}, {}, {}});
  EXPECT_EQ(scaling_error(g, identity_scaling(g)), 0.0);
}

TEST(ScalingError, ZeroDegreeRowsAreExcluded) {
  // A zero-degree row keeps multiplier 1 and must not contribute a spurious
  // |0 - 1| = 1 term to the error of an otherwise perfectly scaled matrix.
  const BipartiteGraph g = graph_from_rows(3, 2, {{0}, {}, {1}});
  ScalingOptions o;
  o.max_iterations = 20;
  o.tolerance = 1e-12;
  for (const ScalingResult& r : {scale_sinkhorn_knopp(g, o), scale_ruiz(g, o)}) {
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.error, 1e-12);
    EXPECT_EQ(r.dr[1], 1.0);  // untouched empty row
  }
}

TEST(SinkhornKnopp, SuppressesEntriesOutsideMaximumMatchings) {
  // §3.3: on a DM-structured matrix the "*" coupling entries tend to zero.
  const BipartiteGraph g = make_dm_structured(20, 30, 40, 35, 25, 3, 7);
  const DmDecomposition dm = dulmage_mendelsohn(g);
  const ScalingResult r = scale_sinkhorn_knopp(g, iters(200));

  // The paper's claim is about the coupling ("*") entries: they tend to
  // zero. We check it two ways: absolutely, and relative to each row's
  // total probability mass (what the sampling step actually sees). Note
  // that *within* a non-square block, individual matchable entries may
  // legitimately become small too (degree-1 rows absorb their columns'
  // mass), so no lower bound is asserted on those.
  double max_star = 0.0, max_coupling_fraction = 0.0;
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    double coupling_mass = 0.0, total_mass = 0.0;
    for (const vid_t j : g.row_neighbors(i)) {
      const double e = r.entry(i, j);
      total_mass += e;
      if (dm.row_part[static_cast<std::size_t>(i)] !=
          dm.col_part[static_cast<std::size_t>(j)]) {
        coupling_mass += e;
        max_star = std::max(max_star, e);
      }
    }
    if (total_mass > 0.0)
      max_coupling_fraction = std::max(max_coupling_fraction, coupling_mass / total_mass);
  }
  EXPECT_LT(max_star, 0.05);
  EXPECT_LT(max_coupling_fraction, 0.1);
}

TEST(Ruiz, ConvergesOnTotalSupportMatrix) {
  const BipartiteGraph g = make_cycle(60);
  ScalingOptions o;
  o.max_iterations = 500;
  o.tolerance = 1e-8;
  const ScalingResult r = scale_ruiz(g, o);
  EXPECT_TRUE(r.converged);
}

TEST(Ruiz, FullMatrixConvergesImmediately) {
  const BipartiteGraph g = make_full(6);
  const ScalingResult r = scale_ruiz(g, iters(2));
  for (vid_t i = 0; i < 6; ++i)
    for (vid_t j = 0; j < 6; ++j) EXPECT_NEAR(r.entry(i, j), 1.0 / 6.0, 1e-9);
}

TEST(Ruiz, SlowerThanSinkhornKnoppOnUnsymmetricMatrix) {
  // The paper (§2.2, citing Knight-Ruiz-Uçar) reports SK converges faster
  // on unsymmetric matrices; verify the error ordering after equal sweeps.
  const BipartiteGraph g = make_planted_perfect(400, 6, 3);
  const double sk = scale_sinkhorn_knopp(g, iters(5)).error;
  const double rz = scale_ruiz(g, iters(5)).error;
  EXPECT_LT(sk, rz);
}

class ScalingIterationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScalingIterationSweep, ErrorWithinTheoryBoundForErdosRenyi) {
  const int it = GetParam();
  const BipartiteGraph g = make_planted_perfect(1000, 3, 13);
  const ScalingResult r = scale_sinkhorn_knopp(g, iters(it));
  EXPECT_EQ(r.iterations, it);
  EXPECT_GE(r.error, 0.0);
  EXPECT_TRUE(std::isfinite(r.error));
}

INSTANTIATE_TEST_SUITE_P(Iterations, ScalingIterationSweep, ::testing::Values(1, 2, 5, 10, 20));

} // namespace
} // namespace bmh
