/// \file test_serialize.cpp
/// \brief Tests for the binary graph file format (graph/serialize.hpp): exact
/// round trips through the zero-copy mmap loader across the graph zoo, the
/// pluggable-storage semantics of mapped graphs (read-only views, conversion
/// back to owned storage on mutation), and — most importantly — hostile
/// inputs: truncation, bad magic, CRC corruption, header/payload
/// disagreements. The loader must reject each with the offending path named,
/// never crash, and never serve a corrupt graph.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "test_helpers.hpp"

namespace bmh {
namespace {

namespace fs = std::filesystem;

class SerializeTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bmh_serialize_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string file(const char* name) const {
    return (dir_ / name).string();
  }

  static std::vector<char> read_all(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  static void write_all(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Re-stamps the header CRC so deliberate payload edits stay "valid" —
  /// the way to reach the semantic checks behind the checksum.
  static void restamp_crc(std::vector<char>& bytes) {
    GraphFileHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    header.payload_crc32 = crc32_ieee(bytes.data() + sizeof(header),
                                      bytes.size() - sizeof(header));
    std::memcpy(bytes.data(), &header, sizeof(header));
  }

  fs::path dir_;
};

template <typename T>
std::vector<T> to_vector(std::span<const T> s) {
  return {s.begin(), s.end()};
}

// -------------------------------------------------------------- round trip ---

TEST_F(SerializeTest, RoundTripIsExactAcrossTheZoo) {
  int idx = 0;
  for (const BipartiteGraph& g : testing::small_graph_zoo()) {
    const std::string path = file(("zoo" + std::to_string(idx++)).c_str());
    save_graph(g, path, "zoo-key");
    std::string key;
    const BipartiteGraph loaded = load_graph_mapped(path, &key);
    EXPECT_EQ(key, "zoo-key");
    EXPECT_FALSE(loaded.owns_storage());
    EXPECT_TRUE(g.owns_storage());
    ASSERT_EQ(loaded.num_rows(), g.num_rows());
    ASSERT_EQ(loaded.num_cols(), g.num_cols());
    ASSERT_EQ(loaded.num_edges(), g.num_edges());
    // Not just structural equality: the mapped arrays are byte-exact copies
    // of the originals, CSC included (no reconstruction on load).
    EXPECT_EQ(to_vector(loaded.row_ptr()), to_vector(g.row_ptr()));
    EXPECT_EQ(to_vector(loaded.col_idx()), to_vector(g.col_idx()));
    EXPECT_EQ(to_vector(loaded.col_ptr()), to_vector(g.col_ptr()));
    EXPECT_EQ(to_vector(loaded.row_idx()), to_vector(g.row_idx()));
    EXPECT_TRUE(loaded.structurally_equal(g));
    // memory_bytes accounts the mapped file, and the recorded size matches.
    EXPECT_EQ(loaded.memory_bytes(), fs::file_size(path));
    EXPECT_EQ(serialized_graph_bytes(g, "zoo-key"), fs::file_size(path));
  }
}

TEST_F(SerializeTest, RoundTripBiggerGeneratedGraph) {
  const BipartiteGraph g = build_graph(parse_graph_spec("gen:er:n=1024,deg=8"), 42);
  const std::string path = file("er.bmg");
  save_graph(g, path);  // keyless files are fine
  std::string key;
  const BipartiteGraph loaded = load_graph_mapped(path, &key);
  EXPECT_TRUE(key.empty());
  EXPECT_TRUE(loaded.structurally_equal(g));
  EXPECT_EQ(to_vector(loaded.col_ptr()), to_vector(g.col_ptr()));
  EXPECT_EQ(to_vector(loaded.row_idx()), to_vector(g.row_idx()));
}

TEST_F(SerializeTest, EmptyAndEdgelessGraphsRoundTrip) {
  const BipartiteGraph empty;
  const std::string path = file("empty.bmg");
  save_graph(empty, path, "k");
  const BipartiteGraph loaded = load_graph_mapped(path);
  EXPECT_EQ(loaded.num_rows(), 0);
  EXPECT_EQ(loaded.num_cols(), 0);
  EXPECT_EQ(loaded.num_edges(), 0);

  // Nonzero dimensions, zero edges.
  const BipartiteGraph edgeless(3, 5, {0, 0, 0, 0}, {});
  const std::string path2 = file("edgeless.bmg");
  save_graph(edgeless, path2);
  EXPECT_TRUE(load_graph_mapped(path2).structurally_equal(edgeless));
}

// ------------------------------------------- mapped graphs behave normally ---

TEST_F(SerializeTest, MappedGraphSupportsTheFullReadApi) {
  const BipartiteGraph g = build_graph(parse_graph_spec("gen:mesh:nx=8"), 1);
  const std::string path = file("mesh.bmg");
  save_graph(g, path);
  const BipartiteGraph m = load_graph_mapped(path);
  for (vid_t i = 0; i < g.num_rows(); ++i) {
    EXPECT_EQ(to_vector(m.row_neighbors(i)), to_vector(g.row_neighbors(i)));
    EXPECT_EQ(m.row_degree(i), g.row_degree(i));
  }
  for (vid_t j = 0; j < g.num_cols(); ++j)
    EXPECT_EQ(to_vector(m.col_neighbors(j)), to_vector(g.col_neighbors(j)));
  EXPECT_TRUE(m.transposed().structurally_equal(g.transposed()));
  EXPECT_EQ(m.has_edge(0, 0), g.has_edge(0, 0));

  // Copies of a mapped graph share the mapping (cheap) and stay external;
  // the matching pipeline runs on them like on any owned graph.
  const BipartiteGraph copy = m;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_FALSE(copy.owns_storage());
  EXPECT_EQ(copy.row_ptr().data(), m.row_ptr().data());
  const Matching matched = match_random_vertices(copy, 1);
  testing::expect_valid(copy, matched, "greedy on mapped graph");
}

TEST_F(SerializeTest, AssignCsrConvertsMappedGraphToOwnedStorage) {
  const BipartiteGraph g = build_graph(parse_graph_spec("gen:cycle:n=32"), 1);
  const std::string path = file("cycle.bmg");
  save_graph(g, path);
  BipartiteGraph m = load_graph_mapped(path);
  ASSERT_FALSE(m.owns_storage());
  // Mutation must never write the mapped (read-only) bytes: assign_csr
  // switches the graph to fresh owned vectors.
  const std::vector<eid_t> row_ptr = {0, 1, 2};
  const std::vector<vid_t> col_idx = {1, 0};
  m.assign_csr(2, 2, row_ptr, col_idx);
  EXPECT_TRUE(m.owns_storage());
  EXPECT_EQ(m.num_rows(), 2);
  EXPECT_TRUE(m.has_edge(0, 1));
  // The original file still loads intact.
  EXPECT_TRUE(load_graph_mapped(path).structurally_equal(g));

  // The self-conversion idiom: feeding a mapped graph its own spans must
  // copy them out before the mapping is torn down (ASan guards the
  // use-after-munmap this would otherwise be).
  BipartiteGraph self = load_graph_mapped(path);
  ASSERT_FALSE(self.owns_storage());
  self.assign_csr(self.num_rows(), self.num_cols(), self.row_ptr(), self.col_idx());
  EXPECT_TRUE(self.owns_storage());
  EXPECT_TRUE(self.structurally_equal(g));
}

// ---------------------------------------------------------- hostile inputs ---

TEST_F(SerializeTest, RejectsMissingFileNamingPath) {
  const std::string path = file("nope.bmg");
  EXPECT_THROW(
      {
        try {
          (void)load_graph_mapped(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
          // An I/O failure is NOT a content rejection: GraphStore must not
          // treat it as a deletable bad file.
          EXPECT_EQ(dynamic_cast<const GraphFileError*>(&e), nullptr);
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(SerializeTest, RejectsTruncatedFileNamingPath) {
  const BipartiteGraph g = build_graph(parse_graph_spec("gen:er:n=64,deg=4"), 7);
  const std::string path = file("trunc.bmg");
  save_graph(g, path, "key");
  std::vector<char> bytes = read_all(path);
  // Every prefix must be rejected: mid-header, mid-key, mid-array.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, sizeof(GraphFileHeader) - 1,
        sizeof(GraphFileHeader) + 2, bytes.size() - 1}) {
    write_all(path, {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep)});
    EXPECT_THROW(
        {
          try {
            (void)load_graph_mapped(path);
          } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
                << "keep=" << keep << ": " << e.what();
            throw;
          }
        },
        std::runtime_error)
        << "keep=" << keep;
  }
}

TEST_F(SerializeTest, RejectsBadMagicNamingPath) {
  const std::string path = file("magic.bmg");
  save_graph(BipartiteGraph(2, 2, {0, 1, 2}, {0, 1}), path);
  std::vector<char> bytes = read_all(path);
  bytes[0] ^= 0x5A;
  write_all(path, bytes);
  EXPECT_THROW(
      {
        try {
          (void)load_graph_mapped(path);
        } catch (const std::runtime_error& e) {
          const std::string what = e.what();
          EXPECT_NE(what.find(path), std::string::npos) << what;
          EXPECT_NE(what.find("magic"), std::string::npos) << what;
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(SerializeTest, RejectsUnsupportedVersion) {
  const std::string path = file("version.bmg");
  save_graph(BipartiteGraph(2, 2, {0, 1, 2}, {0, 1}), path);
  std::vector<char> bytes = read_all(path);
  GraphFileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.version = 999;
  std::memcpy(bytes.data(), &header, sizeof(header));
  write_all(path, bytes);
  EXPECT_THROW((void)load_graph_mapped(path), std::runtime_error);
}

TEST_F(SerializeTest, RejectsCrcMismatchNamingPath) {
  const BipartiteGraph g = build_graph(parse_graph_spec("gen:er:n=128,deg=4"), 3);
  const std::string path = file("crc.bmg");
  save_graph(g, path, "key");
  std::vector<char> bytes = read_all(path);
  // Flip one payload byte deep inside the edge arrays.
  bytes[bytes.size() / 2] ^= 0x01;
  write_all(path, bytes);
  EXPECT_THROW(
      {
        try {
          (void)load_graph_mapped(path);
        } catch (const GraphFileError& e) {  // the self-heal-eligible class
          const std::string what = e.what();
          EXPECT_NE(what.find(path), std::string::npos) << what;
          EXPECT_NE(what.find("CRC"), std::string::npos) << what;
          throw;
        }
      },
      GraphFileError);
}

TEST_F(SerializeTest, RejectsHeaderCountDisagreeingWithFileSize) {
  const std::string path = file("counts.bmg");
  save_graph(build_graph(parse_graph_spec("gen:cycle:n=16"), 1), path);
  std::vector<char> bytes = read_all(path);
  GraphFileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.num_edges += 4;  // claims more edges than the file holds
  std::memcpy(bytes.data(), &header, sizeof(header));
  write_all(path, bytes);
  EXPECT_THROW(
      {
        try {
          (void)load_graph_mapped(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(SerializeTest, RejectsCrcValidButSemanticallyCorruptArrays) {
  // The deep check: forge a file whose sizes and CRC are all consistent but
  // whose arrays disagree (row_ptr bounds vs the declared edge count). The
  // loader's structural validation must still reject it — CRC alone is not
  // trusted to certify semantics.
  const BipartiteGraph g(3, 3, {0, 1, 2, 3}, {0, 1, 2});
  const std::string path = file("forged.bmg");
  save_graph(g, path, "k");
  std::vector<char> bytes = read_all(path);
  GraphFileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  // row_ptr starts after the key padded to 8; its last entry (offset 3*8)
  // says where the edge list ends. Inflate it beyond num_edges.
  const std::size_t row_ptr_off = (sizeof(GraphFileHeader) + header.key_bytes + 7) / 8 * 8;
  eid_t bad = 99;
  std::memcpy(bytes.data() + row_ptr_off + 3 * sizeof(eid_t), &bad, sizeof(bad));
  restamp_crc(bytes);
  write_all(path, bytes);
  EXPECT_THROW(
      {
        try {
          (void)load_graph_mapped(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
          throw;
        }
      },
      std::runtime_error);

  // Likewise a column id pointing outside [0, num_cols).
  save_graph(g, path, "k");
  std::vector<char> fresh = read_all(path);
  const std::size_t col_idx_off = row_ptr_off + 4 * sizeof(eid_t);
  vid_t bad_col = 7;  // num_cols is 3
  std::memcpy(fresh.data() + col_idx_off, &bad_col, sizeof(bad_col));
  restamp_crc(fresh);
  write_all(path, fresh);
  EXPECT_THROW((void)load_graph_mapped(path), std::runtime_error);
}

TEST_F(SerializeTest, RejectsCscDisagreeingWithCsr) {
  // CSC arrays that are internally valid but describe different edges than
  // the CSR half: the per-column degree cross-check must reject the file.
  const BipartiteGraph g(2, 2, {0, 1, 2}, {0, 1});  // diagonal: (0,0), (1,1)
  const std::string path = file("csclie.bmg");
  save_graph(g, path);
  std::vector<char> bytes = read_all(path);
  GraphFileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  const std::size_t row_ptr_off = (sizeof(GraphFileHeader) + header.key_bytes + 7) / 8 * 8;
  // Layout: row_ptr[3], col_idx[2] (+pad), col_ptr[3], row_idx[2].
  const std::size_t col_idx_off = row_ptr_off + 3 * sizeof(eid_t);
  const std::size_t col_ptr_off = (col_idx_off + 2 * sizeof(vid_t) + 7) / 8 * 8;
  // Claim both edges land in column 0: col_ptr = {0, 2, 2}, row_idx = {0, 1}.
  const eid_t lying_col_ptr[3] = {0, 2, 2};
  std::memcpy(bytes.data() + col_ptr_off, lying_col_ptr, sizeof(lying_col_ptr));
  restamp_crc(bytes);
  write_all(path, bytes);
  EXPECT_THROW(
      {
        try {
          (void)load_graph_mapped(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(SerializeTest, RejectsDegreePreservingCscForgery) {
  // Degree-preserving tampering: swap the two row_idx entries of the
  // diagonal 2x2 graph so every per-column degree still matches while the
  // CSC describes the anti-diagonal. The transpose cross-check must reject
  // it — a served copy would hand algorithms two different edge sets.
  const BipartiteGraph g(2, 2, {0, 1, 2}, {0, 1});  // edges (0,0), (1,1)
  const std::string path = file("swapped.bmg");
  save_graph(g, path);
  std::vector<char> bytes = read_all(path);
  // Layout (keyless): header, row_ptr[3], col_idx[2] + pad, col_ptr[3],
  // row_idx[2].
  const std::size_t row_ptr_off = sizeof(GraphFileHeader);
  const std::size_t col_ptr_off =
      (row_ptr_off + 3 * sizeof(eid_t) + 2 * sizeof(vid_t) + 7) / 8 * 8;
  const std::size_t row_idx_off = col_ptr_off + 3 * sizeof(eid_t);
  const vid_t swapped[2] = {1, 0};
  std::memcpy(bytes.data() + row_idx_off, swapped, sizeof(swapped));
  restamp_crc(bytes);
  write_all(path, bytes);
  EXPECT_THROW(
      {
        try {
          (void)load_graph_mapped(path);
        } catch (const std::runtime_error& e) {
          const std::string what = e.what();
          EXPECT_NE(what.find(path), std::string::npos) << what;
          EXPECT_NE(what.find("transpose"), std::string::npos) << what;
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(SerializeTest, RejectsAstronomicalEdgeCountWithoutCrashing) {
  // num_edges = 2^62 makes num_edges * sizeof(vid_t) wrap size_t; the
  // loader must bounds-check the counts against the mapped size up front
  // instead of trusting the wrapped layout (which could agree with a tiny
  // file) and then reading 2^62 "edges" off the end of the mapping.
  const BipartiteGraph g(1, 1, {0, 1}, {0});
  const std::string path = file("huge.bmg");
  save_graph(g, path);
  std::vector<char> bytes = read_all(path);
  GraphFileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.num_edges = std::int64_t{1} << 62;
  // Make the forgery as self-consistent as the wrapped arithmetic allows:
  // with col_idx/row_idx bytes wrapping to 0 the layout collapses to
  // header + row_ptr[2] + col_ptr[2] = 96 bytes.
  const std::size_t forged_size = 96;
  header.file_bytes = forged_size;
  bytes.resize(forged_size);
  // row_ptr.back() must claim 2^62 edges too, or the size checks win first.
  const eid_t big = eid_t{1} << 62;
  std::memcpy(bytes.data() + sizeof(header) + sizeof(eid_t), &big, sizeof(big));
  std::memcpy(bytes.data(), &header, sizeof(header));
  restamp_crc(bytes);
  write_all(path, bytes);
  EXPECT_THROW(
      {
        try {
          (void)load_graph_mapped(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(SerializeTest, Crc32MatchesKnownVector) {
  // The classic check vector: CRC-32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32_ieee("123456789", 9), 0xCBF43926u);
  // Chaining equals one-shot.
  EXPECT_EQ(crc32_ieee("6789", 4, crc32_ieee("12345", 5)), 0xCBF43926u);
}

} // namespace
} // namespace bmh
