/// Unit tests for Matrix Market I/O: banner parsing, all supported fields
/// and symmetries, error reporting, and write/read round-trips.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/mmio.hpp"
#include "graph/transform.hpp"
#include "matching/hopcroft_karp.hpp"

namespace bmh {
namespace {

TEST(Mmio, ReadsPatternGeneral) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1\n"
      "2 3\n"
      "3 4\n");
  const BipartiteGraph g = read_matrix_market(in);
  EXPECT_EQ(g.num_rows(), 3);
  EXPECT_EQ(g.num_cols(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(Mmio, DiscardsRealValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 3.5\n"
      "2 2 -1e-3\n");
  const BipartiteGraph g = read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Mmio, DiscardsComplexValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "2 2 1\n"
      "1 2 3.5 -2.0\n");
  const BipartiteGraph g = read_matrix_market(in);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Mmio, MirrorsSymmetricEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const BipartiteGraph g = read_matrix_market(in);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(0, 1));   // mirrored
  EXPECT_TRUE(g.has_edge(2, 2));   // diagonal not duplicated
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(Mmio, RejectsMissingBanner) {
  std::istringstream in("3 3 0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsNonCoordinate) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsOutOfRangeEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "3 1\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsTruncatedFile) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, ErrorMentionsLineNumber) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "oops\n");
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(Mmio, WriteReadRoundTripPreservesStructure) {
  const BipartiteGraph g = make_erdos_renyi(40, 60, 300, 5);
  std::stringstream buffer;
  write_matrix_market(buffer, g);
  const BipartiteGraph back = read_matrix_market(buffer);
  EXPECT_TRUE(g.structurally_equal(back));
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW((void)read_matrix_market_file("/nonexistent/foo.mtx"), std::runtime_error);
}

TEST(Mmio, RejectsUnknownField) {
  // A typo'd field used to be silently treated as a one-value-token field.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate floatingpoint general\n"
      "2 2 1\n"
      "1 1 3.5\n");
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("floatingpoint"), std::string::npos) << what;
  }
}

TEST(Mmio, AcceptsIntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "1 2 4\n"
      "2 1 -1\n");
  EXPECT_EQ(read_matrix_market(in).num_edges(), 2);
}

TEST(Mmio, RejectsTrailingGarbageOnPatternEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2 0.5\n");  // pattern entries carry no value token
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("trailing"), std::string::npos) << what;
  }
}

TEST(Mmio, RejectsTrailingGarbageOnRealEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 3.5 junk\n");
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("junk"), std::string::npos) << what;
  }
}

TEST(Mmio, SymmetricWithDiagonalRoundTrip) {
  // Strictly-lower entries mirror, diagonal entries do not duplicate; the
  // general-form rewrite must reproduce the same structure.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 4\n"
      "1 1 1.0\n"
      "2 1 2.0\n"
      "3 2 3.0\n"
      "3 3 4.0\n");
  const BipartiteGraph g = read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 6);  // 2 diagonal + 2 mirrored pairs
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 2));

  std::stringstream buffer;
  write_matrix_market(buffer, g);
  const BipartiteGraph back = read_matrix_market(buffer);
  EXPECT_TRUE(g.structurally_equal(back));
}

TEST(Mmio, RejectsContentAfterDeclaredEntries) {
  // A size line undercounting its entries means the file is corrupt or
  // truncated mid-edit; serving the first nnz entries would silently serve
  // a different matrix.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 1\n"
      "2 2\n");
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("after the declared 1"), std::string::npos) << what;
  }
}

TEST(Mmio, AcceptsTrailingBlanksAndComments) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 1\n"
      "\n"
      "   \n"
      "% closing remark\n");
  EXPECT_EQ(read_matrix_market(in).num_edges(), 1);
}

TEST(Mmio, ReadsRectGeneralFixture) {
  const BipartiteGraph g =
      read_matrix_market_file(std::string(BMH_TEST_DATA_DIR) + "/rect_general.mtx");
  EXPECT_EQ(g.num_rows(), 4);
  EXPECT_EQ(g.num_cols(), 6);
  EXPECT_EQ(g.num_edges(), 7);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(3, 5));
  EXPECT_EQ(sprank(g), 4);
}

TEST(Mmio, ReadsCycleSymmetricFixture) {
  const BipartiteGraph g = read_matrix_market_file(std::string(BMH_TEST_DATA_DIR) +
                                                   "/cycle5_symmetric.mtx");
  EXPECT_EQ(g.num_rows(), 5);
  EXPECT_EQ(g.num_cols(), 5);
  EXPECT_EQ(g.num_edges(), 11);  // 5 mirrored pairs + 1 diagonal
  EXPECT_TRUE(is_pattern_symmetric(g));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 2));
  EXPECT_EQ(sprank(g), 5);
}

TEST(Mmio, SymmetricWriterRoundTripsAndHalvesTheFile) {
  const BipartiteGraph g = read_matrix_market_file(std::string(BMH_TEST_DATA_DIR) +
                                                   "/cycle5_symmetric.mtx");
  std::stringstream buffer;
  write_matrix_market_symmetric(buffer, g);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("pattern symmetric"), std::string::npos);
  EXPECT_NE(text.find("5 5 6"), std::string::npos);  // lower triangle only
  const BipartiteGraph back = read_matrix_market(buffer);
  EXPECT_TRUE(g.structurally_equal(back));
}

TEST(Mmio, SymmetricWriterRejectsAsymmetricGraphs) {
  std::stringstream buffer;
  EXPECT_THROW(write_matrix_market_symmetric(buffer, make_erdos_renyi(4, 6, 10, 1)),
               std::invalid_argument);
  EXPECT_THROW(write_matrix_market_symmetric(
                   buffer, graph_from_rows(2, 2, {{0, 1}, {1}})),
               std::invalid_argument);
}

} // namespace
} // namespace bmh
