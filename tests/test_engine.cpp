/// \file test_engine.cpp
/// \brief Tests for the matching engine: registry, pipelines, job specs,
/// batch runner determinism, and the JSON sink.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "test_helpers.hpp"

namespace bmh {
namespace {

using ::bmh::testing::brute_force_max_matching;
using ::bmh::testing::expect_valid;
using ::bmh::testing::small_graph_zoo;

// ------------------------------------------------------------- registry ---

TEST(Registry, KnownNamesAreRegistered) {
  for (const char* name : {"one_sided", "two_sided", "k_out", "karp_sipser", "greedy",
                           "greedy_edge", "min_degree", "hopcroft_karp", "mc21",
                           "push_relabel"}) {
    EXPECT_TRUE(AlgorithmRegistry::instance().contains(name)) << name;
  }
}

TEST(Registry, UnknownNameFailsCleanly) {
  EXPECT_FALSE(AlgorithmRegistry::instance().contains("does_not_exist"));
  try {
    (void)make_algorithm("does_not_exist");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must name the offender and list the alternatives.
    const std::string what = e.what();
    EXPECT_NE(what.find("does_not_exist"), std::string::npos);
    EXPECT_NE(what.find("two_sided"), std::string::npos);
  }
}

TEST(Registry, DuplicateRegistrationRejected) {
  EXPECT_THROW(AlgorithmRegistry::instance().register_algorithm(
                   "two_sided", [](const AlgorithmOptions&) {
                     return std::unique_ptr<MatchingAlgorithm>();
                   }),
               std::invalid_argument);
}

TEST(Registry, CustomAlgorithmPlugsIn) {
  class Empty final : public MatchingAlgorithm {
  public:
    [[nodiscard]] const std::string& name() const noexcept override {
      static const std::string n = "test_empty";
      return n;
    }
    [[nodiscard]] Matching run(const BipartiteGraph& g,
                               const ScalingResult&) const override {
      return Matching(g.num_rows(), g.num_cols());
    }
  };
  if (!AlgorithmRegistry::instance().contains("test_empty")) {
    AlgorithmRegistry::instance().register_algorithm(
        "test_empty",
        [](const AlgorithmOptions&) { return std::make_unique<Empty>(); });
  }
  const BipartiteGraph g = make_full(4);
  EXPECT_EQ(make_algorithm("test_empty")->run(g, identity_scaling(g)).cardinality(), 0);
}

TEST(Registry, EveryAlgorithmValidOnZoo) {
  for (const BipartiteGraph& g : small_graph_zoo()) {
    const ScalingResult s = scale_sinkhorn_knopp(g, {5, 0.0});
    const vid_t optimum = brute_force_max_matching(g);
    for (const std::string& name : registered_algorithm_names()) {
      if (name == "test_empty") continue;  // registered by the test above
      AlgorithmOptions options;
      options.seed = 7;
      const auto algorithm = make_algorithm(name, options);
      const Matching m = algorithm->run(g, s);
      expect_valid(g, m, name.c_str());
      EXPECT_LE(m.cardinality(), optimum) << name;
      if (algorithm->is_exact()) EXPECT_EQ(m.cardinality(), optimum) << name;
    }
  }
}

TEST(Registry, EveryAlgorithmValidOnSuiteGraphs) {
  // A slice of the generator suite (kept small: every registered algorithm
  // runs on every instance, including the exact backends).
  for (const auto& instance : make_suite(0.02, /*seed=*/3)) {
    const BipartiteGraph& g = instance.graph;
    const ScalingResult s = scale_sinkhorn_knopp(g, {5, 0.0});
    const vid_t optimum = sprank(g);
    for (const std::string& name : registered_algorithm_names()) {
      if (name == "test_empty") continue;
      AlgorithmOptions options;
      options.seed = 11;
      const auto algorithm = make_algorithm(name, options);
      const Matching m = algorithm->run(g, s);
      expect_valid(g, m, (instance.name + "/" + name).c_str());
      if (algorithm->is_exact())
        EXPECT_EQ(m.cardinality(), optimum) << instance.name << "/" << name;
      else
        EXPECT_LE(m.cardinality(), optimum) << instance.name << "/" << name;
    }
  }
}

// ------------------------------------------------------------- pipeline ---

TEST(Pipeline, ScalingMethodRoundTrip) {
  EXPECT_EQ(parse_scaling_method("none"), ScalingMethod::kNone);
  EXPECT_EQ(parse_scaling_method("sinkhorn_knopp"), ScalingMethod::kSinkhornKnopp);
  EXPECT_EQ(parse_scaling_method("sk"), ScalingMethod::kSinkhornKnopp);
  EXPECT_EQ(parse_scaling_method("ruiz"), ScalingMethod::kRuiz);
  EXPECT_THROW(parse_scaling_method("bogus"), std::invalid_argument);
  EXPECT_STREQ(to_string(ScalingMethod::kRuiz), "ruiz");
}

TEST(Pipeline, UnknownAlgorithmThrowsBeforeWork) {
  PipelineConfig config;
  config.algorithm = "bogus";
  EXPECT_THROW((void)run_pipeline(make_full(4), config), std::invalid_argument);
}

TEST(Pipeline, StagesAreTimedAndQualityComputed) {
  const BipartiteGraph g = make_planted_perfect(512, 3, 5);
  PipelineConfig config;
  config.algorithm = "two_sided";
  config.options.seed = 9;
  const PipelineResult r = run_pipeline(g, config);
  EXPECT_TRUE(r.valid);
  ASSERT_EQ(r.stages.size(), 3u);
  EXPECT_EQ(r.stages[0].stage, "scale");
  EXPECT_EQ(r.stages[1].stage, "match");
  EXPECT_EQ(r.stages[2].stage, "analyze");
  EXPECT_EQ(r.sprank, 512);
  EXPECT_GT(r.quality, kTwoSidedGuarantee * 0.95);
  EXPECT_EQ(r.scaling_iterations, 5);
  EXPECT_GE(r.total_seconds, 0.0);
}

TEST(Pipeline, AugmentationReachesTheOptimum) {
  const BipartiteGraph g = make_erdos_renyi(1024, 1024, 4096, 2);
  const vid_t optimum = sprank(g);
  PipelineConfig config;
  config.algorithm = "one_sided";
  config.options.seed = 3;
  config.augment = true;
  const PipelineResult r = run_pipeline(g, config);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.cardinality, optimum);
  EXPECT_LE(r.heuristic_cardinality, r.cardinality);
  ASSERT_EQ(r.stages.size(), 4u);
  EXPECT_EQ(r.stages[2].stage, "augment");
  // The exact pipeline knows its optimum without a second sprank solve.
  EXPECT_EQ(r.sprank, optimum);
  EXPECT_EQ(r.quality, 1.0);
}

TEST(Pipeline, ExactBackendSkipsScaling) {
  const PipelineResult r = run_pipeline(make_full(64), {.algorithm = "hopcroft_karp"});
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.cardinality, 64);
  EXPECT_EQ(r.scaling_iterations, 0);  // scale stage ran as identity
}

// ------------------------------------------------------------ job specs ---

TEST(JobSpec, ParsesGraphSpecs) {
  const GraphSpec mtx = parse_graph_spec("mtx:/tmp/some file.mtx");
  EXPECT_EQ(mtx.scheme, "mtx");
  EXPECT_EQ(mtx.name, "/tmp/some file.mtx");

  const GraphSpec gen = parse_graph_spec("gen:er:n=128,deg=3");
  EXPECT_EQ(gen.scheme, "gen");
  EXPECT_EQ(gen.name, "er");
  EXPECT_EQ(gen.params.at("n"), 128);

  const GraphSpec suite = parse_graph_spec("suite:cage15_like:scale=0.05");
  EXPECT_EQ(suite.scheme, "suite");
  EXPECT_EQ(suite.name, "cage15_like");

  EXPECT_THROW((void)parse_graph_spec("no_colon"), std::invalid_argument);
  EXPECT_THROW((void)parse_graph_spec("what:er:n=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_graph_spec("gen:er:n"), std::invalid_argument);
  EXPECT_THROW((void)parse_graph_spec("gen:er:n=abc"), std::invalid_argument);
  EXPECT_THROW((void)build_graph(parse_graph_spec("gen:nope:n=4"), 1),
               std::invalid_argument);
}

TEST(JobSpec, GeneratorSpecsAreDeterministicInSeed) {
  const GraphSpec spec = parse_graph_spec("gen:er:n=256,deg=4");
  EXPECT_TRUE(build_graph(spec, 5).structurally_equal(build_graph(spec, 5)));
  EXPECT_FALSE(build_graph(spec, 5).structurally_equal(build_graph(spec, 6)));
  // A pinned seed param wins over the job seed.
  const GraphSpec pinned = parse_graph_spec("gen:er:n=256,deg=4,seed=5");
  EXPECT_TRUE(build_graph(pinned, 99).structurally_equal(build_graph(spec, 5)));
}

TEST(JobSpec, ParsesJobLines) {
  const JobSpec job = parse_job_spec_line(
      "name=j input=gen:mesh:nx=16 algo=one_sided scaling=ruiz iters=7 augment=1 "
      "quality=0 threads=2 k=3 seed=42");
  EXPECT_EQ(job.name, "j");
  EXPECT_EQ(job.pipeline.algorithm, "one_sided");
  EXPECT_EQ(job.pipeline.scaling, ScalingMethod::kRuiz);
  EXPECT_EQ(job.pipeline.scaling_iterations, 7);
  EXPECT_TRUE(job.pipeline.augment);
  EXPECT_FALSE(job.pipeline.compute_quality);
  EXPECT_EQ(job.pipeline.options.threads, 2);
  EXPECT_EQ(job.pipeline.options.k, 3);
  ASSERT_TRUE(job.seed.has_value());
  EXPECT_EQ(*job.seed, 42u);

  EXPECT_THROW((void)parse_job_spec_line("algo=two_sided"), std::invalid_argument);
  EXPECT_THROW((void)parse_job_spec_line("input=gen:er bogus_key=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_job_spec_line("input=gen:er iters=xyz"),
               std::invalid_argument);
}

TEST(JobSpec, DuplicateKeysAreRejectedNotLastWins) {
  // Job-line keys: the error must name the offender.
  try {
    (void)parse_job_spec_line("input=gen:er:n=64 seed=1 seed=2");
    FAIL() << "expected duplicate-key error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key 'seed'"), std::string::npos)
        << e.what();
  }
  // `algo` and `algorithm` are one field.
  EXPECT_THROW((void)parse_job_spec_line("input=gen:er algo=greedy algorithm=mc21"),
               std::invalid_argument);
  // Graph-spec parameters too.
  try {
    (void)parse_graph_spec("gen:er:n=64,deg=3,n=128");
    FAIL() << "expected duplicate-key error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key 'n'"), std::string::npos)
        << e.what();
  }
  // Singly-specified keys still parse.
  EXPECT_EQ(parse_job_spec_line("input=gen:er:n=64,deg=3 seed=1").input.params.at("n"),
            64);
}

TEST(JobSpecHostile, MalformedLinesThrowCleanlyNeverCrash) {
  // The serve loop feeds stdin straight into this parser, so hostile input
  // is a matter of when, not if. Every line here must produce a clean
  // std::invalid_argument — the CLI turns that into one ok=false record
  // (error_kind=parse) per line.
  const std::string huge_value(2u << 20, 'x');  // 2 MiB of one token
  const std::string hostile[] = {
      "input=gen:er:n=64 " + std::string(1u << 20, 'k') + "=1",  // giant unknown key
      "input=gen:er:n=64 seed=99999999999999999999999999",       // > int64
      "input=gen:er:n=64 iters=-99999999999999999999",           // < int64
      "input=gen:er:n=64 threads=12abc",                         // trailing junk
      "input=gen:er:n=64 seed=1 seed=2",                         // duplicate key
      "input=gen:er:n=64 timeout_ms=-1",                         // negative budget
      std::string("input=gen:er:n=64 na\0me=x", 25),             // embedded NUL key
      "===",                                                     // no key
      "=value",                                                  // empty key
      "input=" + huge_value,                                     // giant bad spec
  };
  for (const std::string& line : hostile)
    EXPECT_THROW((void)parse_job_spec_line(line), std::invalid_argument)
        << "line: " << line.substr(0, 80);
  // Size alone is not hostile: an oversized but well-formed value parses.
  const JobSpec big_name = parse_job_spec_line("input=gen:er:n=64 name=" + huge_value);
  EXPECT_EQ(big_name.name.size(), huge_value.size());
}

TEST(JobSpecHostile, HostileNumericsFailAsParseRecordsNotCrashes) {
  // Values that pass the line parser but denote impossible instances must
  // come back as classified parse failures from the engine — the
  // param_vid range check runs before any cast can overflow.
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  for (const char* input :
       {"input=gen:er:n=1e300", "input=gen:er:n=1e300000", "input=gen:er:n=nan",
        "input=gen:er:n=64,deg=1e18", "input=gen:er:n=64,deg=-1"}) {
    JobSpec job;
    try {
      job = parse_job_spec_line(input);
    } catch (const std::invalid_argument&) {
      continue;  // rejected even earlier: equally fine
    }
    const JobResult r = engine.submit(std::move(job)).get();
    EXPECT_FALSE(r.ok) << input;
    EXPECT_EQ(r.error_kind, ErrorKind::kParse) << input << ": " << r.error;
    EXPECT_FALSE(r.error.empty()) << input;
  }
}

TEST(JobSpec, ParseErrorResultIsAReadyMadeParseRecord) {
  const JobResult r = parse_error_result(7, "line9", "input=:::", "line 9: nope");
  EXPECT_EQ(r.index, 7u);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, ErrorKind::kParse);
  const std::string line = to_json_line(r, false);
  EXPECT_NE(line.find("\"error_kind\":\"parse\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"error\":\"line 9: nope\""), std::string::npos) << line;
}

TEST(JobSpec, StreamParsingSkipsCommentsAndNamesJobs) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "input=gen:cycle:n=64\n"
      "  # indented comment\n"
      "name=named input=gen:full:n=8\n");
  const std::vector<JobSpec> jobs = parse_job_specs(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "job0");
  EXPECT_EQ(jobs[1].name, "named");

  std::istringstream bad("input=gen:cycle:n=64\ninput=oops\n");
  try {
    (void)parse_job_specs(bad);
    FAIL() << "expected line-numbered error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

// --------------------------------------------------------- batch runner ---

/// A small fast batch mixing generators, algorithms and pipeline shapes.
std::vector<JobSpec> small_batch() {
  std::istringstream in(
      "input=gen:er:n=512,deg=4 algo=two_sided iters=5\n"
      "input=gen:er:n=512,deg=4 algo=one_sided iters=5\n"
      "input=gen:adversarial:n=256,k=8 algo=karp_sipser\n"
      "input=gen:mesh:nx=24 algo=one_sided augment=1\n"
      "input=gen:planted:n=512 algo=hopcroft_karp\n"
      "input=gen:road:n=1024 algo=greedy\n"
      "input=gen:powerlaw:n=512 algo=k_out k=2\n"
      "input=gen:kkt:m=512,p=128 algo=mc21\n");
  return parse_job_specs(in);
}

TEST(BatchRunner, ResultsIndependentOfWorkerCount) {
  const std::vector<JobSpec> jobs = small_batch();
  BatchOptions base;
  base.seed = 123;
  base.workers = 1;
  const std::vector<JobResult> sequential = run_batch(jobs, base);
  ASSERT_EQ(sequential.size(), jobs.size());
  for (const JobResult& r : sequential) EXPECT_TRUE(r.ok) << r.name << ": " << r.error;

  for (const int workers : {2, 4, 8}) {
    BatchOptions options = base;
    options.workers = workers;
    options.threads_per_job = workers % 3 + 1;  // vary the OpenMP budget too
    const std::vector<JobResult> parallel = run_batch(jobs, options);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      // Byte-identical modulo timings: compare the deterministic JSON form.
      EXPECT_EQ(to_json_line(parallel[i], false), to_json_line(sequential[i], false))
          << "workers=" << workers;
    }
  }
}

TEST(BatchRunner, SeedChangesResults) {
  const std::vector<JobSpec> jobs = small_batch();
  BatchOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const auto ra = run_batch(jobs, a);
  const auto rb = run_batch(jobs, b);
  bool any_difference = false;
  for (std::size_t i = 0; i < ra.size(); ++i)
    if (to_json_line(ra[i], false) != to_json_line(rb[i], false)) any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(BatchRunner, FailingJobDoesNotAbortTheBatch) {
  std::istringstream in(
      "input=gen:cycle:n=64 algo=greedy\n"
      "input=mtx:/nonexistent/file.mtx\n"
      "input=gen:cycle:n=64 algo=nope\n");
  const std::vector<JobResult> results = run_batch(parse_job_specs(in), {});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[1].error.empty());
  EXPECT_FALSE(results[2].ok);
  EXPECT_NE(results[2].error.find("nope"), std::string::npos);
}

TEST(BatchRunner, DemoBatchRunsClean) {
  const std::vector<JobSpec> jobs = demo_batch();
  EXPECT_GE(jobs.size(), 8u);
  BatchOptions options;
  options.workers = 4;
  const std::vector<JobResult> results = run_batch(jobs, options);
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_TRUE(r.result.valid) << r.name;
  }
}

// ----------------------------------------------------------------- json ---

TEST(Json, EscapesAndFormats) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, RecordShape) {
  std::istringstream in("name=j0 input=gen:cycle:n=32 algo=greedy\n");
  const auto results = run_batch(parse_job_specs(in), {});
  ASSERT_EQ(results.size(), 1u);
  const std::string with = to_json_line(results[0], true);
  const std::string without = to_json_line(results[0], false);
  EXPECT_NE(with.find("\"stages\":["), std::string::npos);
  EXPECT_NE(with.find("\"total_seconds\":"), std::string::npos);
  EXPECT_EQ(without.find("\"stages\""), std::string::npos);
  EXPECT_EQ(without.find("total_seconds"), std::string::npos);
  for (const char* field : {"\"job\":0", "\"name\":\"j0\"", "\"algorithm\":\"greedy\"",
                            "\"ok\":true", "\"cardinality\":", "\"quality\":"}) {
    EXPECT_NE(without.find(field), std::string::npos) << field << " in " << without;
  }
}

} // namespace
} // namespace bmh
