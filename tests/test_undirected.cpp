/// Tests for the undirected extension (paper §5 future work): symmetric
/// scaling, one-out Karp-Sipser with odd cycles, the heuristic pipeline,
/// and agreement with a brute-force oracle on small graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "undirected/graph.hpp"
#include "undirected/matching.hpp"
#include "util/threading.hpp"

namespace bmh {
namespace {

/// Exhaustive maximum matching on a small undirected graph.
vid_t brute_force(const UndirectedGraph& g) {
  std::vector<bool> used(static_cast<std::size_t>(g.num_vertices()), false);
  auto rec = [&](auto&& self, vid_t u) -> vid_t {
    if (u == g.num_vertices()) return 0;
    if (used[static_cast<std::size_t>(u)]) return self(self, u + 1);
    vid_t best = self(self, u + 1);  // leave u unmatched
    used[static_cast<std::size_t>(u)] = true;
    for (const vid_t v : g.neighbors(u)) {
      if (v < u || used[static_cast<std::size_t>(v)]) continue;
      used[static_cast<std::size_t>(v)] = true;
      best = std::max(best, static_cast<vid_t>(1 + self(self, u + 1)));
      used[static_cast<std::size_t>(v)] = false;
    }
    used[static_cast<std::size_t>(u)] = false;
    return best;
  };
  return rec(rec, 0);
}

TEST(UndirectedGraph, FromEdgesSymmetrizesAndDedups) {
  const UndirectedGraph g = UndirectedGraph::from_edges(4, {{0, 1}, {1, 0}, {2, 3}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(UndirectedGraph, RejectsSelfLoopsAndBadIds) {
  EXPECT_THROW((void)UndirectedGraph::from_edges(3, {{1, 1}}), std::invalid_argument);
  EXPECT_THROW((void)UndirectedGraph::from_edges(3, {{0, 3}}), std::out_of_range);
}

TEST(UndirectedGraph, AsBipartiteIsSymmetric) {
  const UndirectedGraph g = make_undirected_erdos_renyi(50, 120, 3);
  const BipartiteGraph b = g.as_bipartite();
  EXPECT_EQ(b.num_rows(), 50);
  for (vid_t u = 0; u < 50; ++u)
    for (const vid_t v : b.row_neighbors(u)) EXPECT_TRUE(b.has_edge(v, u));
}

TEST(UndirectedGenerators, ShapesAreCorrect) {
  EXPECT_EQ(make_undirected_cycle(7).num_edges(), 7);
  EXPECT_EQ(make_undirected_path(7).num_edges(), 6);
  EXPECT_EQ(make_undirected_complete(6).num_edges(), 15);
  for (vid_t u = 0; u < 7; ++u) EXPECT_EQ(make_undirected_cycle(7).degree(u), 2);
}

TEST(SymmetricScaling, CycleConvergesToHalf) {
  const UndirectedGraph g = make_undirected_cycle(40);
  const SymmetricScaling s = scale_symmetric(g, 50);
  EXPECT_LT(s.error, 1e-6);
  // 2-regular: the doubly stochastic limit has every scaled entry 1/2.
  for (vid_t u = 0; u < 40; ++u)
    for (const vid_t v : g.neighbors(u))
      EXPECT_NEAR(s.d[static_cast<std::size_t>(u)] * s.d[static_cast<std::size_t>(v)],
                  0.5, 1e-6);
}

TEST(SymmetricScaling, CompleteGraphUniform) {
  const UndirectedGraph g = make_undirected_complete(10);
  const SymmetricScaling s = scale_symmetric(g, 30);
  // K_10 has degree 9; limit entry 1/9.
  EXPECT_NEAR(s.d[0] * s.d[1], 1.0 / 9.0, 1e-6);
}

TEST(SymmetricScaling, ErrorDecreases) {
  const UndirectedGraph g = make_undirected_erdos_renyi(2000, 6000, 5);
  const double e1 = scale_symmetric(g, 1).error;
  const double e10 = scale_symmetric(g, 10).error;
  EXPECT_LT(e10, e1);
}

TEST(SampleChoices, PicksAreNeighbors) {
  const UndirectedGraph g = make_undirected_erdos_renyi(500, 1500, 7);
  const SymmetricScaling s = scale_symmetric(g, 5);
  const std::vector<vid_t> choice = sample_choices(g, s.d, 11);
  for (vid_t u = 0; u < 500; ++u) {
    if (g.degree(u) == 0) {
      EXPECT_EQ(choice[static_cast<std::size_t>(u)], kNil);
    } else {
      EXPECT_TRUE(g.has_edge(u, choice[static_cast<std::size_t>(u)]));
    }
  }
  EXPECT_EQ(choice, sample_choices(g, s.d, 11));  // deterministic
}

TEST(OneOutKarpSipser, OddCycleLeavesExactlyOneFree) {
  // choice forms a single directed 5-cycle: 0->1->2->3->4->0.
  std::vector<vid_t> choice = {1, 2, 3, 4, 0};
  const UndirectedMatching m = one_out_karp_sipser(5, choice);
  EXPECT_EQ(m.cardinality(), 2);  // floor(5/2)
}

TEST(OneOutKarpSipser, EvenCycleFullyMatched) {
  std::vector<vid_t> choice = {1, 2, 3, 0};
  const UndirectedMatching m = one_out_karp_sipser(4, choice);
  EXPECT_EQ(m.cardinality(), 2);
}

TEST(OneOutKarpSipser, ChainWithReciprocalEnd) {
  // 0->1, 1<->2: a path; maximum matching = 1 pair + ... edges {0,1},{1,2};
  // max matching on path of 3 vertices is 1.
  std::vector<vid_t> choice = {1, 2, 1};
  const UndirectedMatching m = one_out_karp_sipser(3, choice);
  EXPECT_EQ(m.cardinality(), 1);
}

TEST(OneOutKarpSipser, IsolatedVerticesHandled) {
  std::vector<vid_t> choice = {kNil, kNil, 3, 2};
  const UndirectedMatching m = one_out_karp_sipser(4, choice);
  EXPECT_EQ(m.cardinality(), 1);
}

class UndirectedOneOutExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UndirectedOneOutExactness, MatchesBruteForceOnChoiceSubgraph) {
  // one_out_karp_sipser must deliver a MAXIMUM matching of the functional
  // subgraph {{u, choice[u]}}; compare with brute force on small graphs.
  const std::uint64_t seed = GetParam();
  const vid_t n = 14;
  const UndirectedGraph g = make_undirected_erdos_renyi(n, 3 * n, seed);
  const SymmetricScaling s = scale_symmetric(g, 3);
  const std::vector<vid_t> choice = sample_choices(g, s.d, seed + 7);

  std::vector<std::pair<vid_t, vid_t>> sub_edges;
  for (vid_t u = 0; u < n; ++u)
    if (choice[static_cast<std::size_t>(u)] != kNil)
      sub_edges.emplace_back(u, choice[static_cast<std::size_t>(u)]);
  const UndirectedGraph sub = UndirectedGraph::from_edges(n, sub_edges);

  const UndirectedMatching m = one_out_karp_sipser(n, choice);
  EXPECT_TRUE(is_valid_matching(sub, m)) << describe_violation(sub, m);
  EXPECT_EQ(m.cardinality(), brute_force(sub)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndirectedOneOutExactness,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(UndirectedOneOutMatch, ValidAndNearConjectureOnRandomGraphs) {
  const UndirectedGraph g = make_undirected_erdos_renyi(20000, 100000, 3);
  const UndirectedMatching m = undirected_one_out_match(g, 5, 7);
  EXPECT_TRUE(is_valid_matching(g, m)) << describe_violation(g, m);
  // Yardstick: a matching with no length-3 augmenting path is >= 2/3 of
  // optimal, so opt <= 1.5 * |two_thirds|. The one-out heuristic should
  // reach ~0.86 of optimal on such dense-enough random graphs.
  const UndirectedMatching yard = undirected_two_thirds(g, 7);
  const double upper = 1.5 * static_cast<double>(yard.cardinality());
  EXPECT_GE(static_cast<double>(m.cardinality()), 0.80 * static_cast<double>(yard.cardinality()));
  EXPECT_LE(static_cast<double>(m.cardinality()), upper);
}

TEST(UndirectedOneOutMatch, CardinalityThreadCountInvariant) {
  const UndirectedGraph g = make_undirected_erdos_renyi(10000, 40000, 9);
  const SymmetricScaling s = scale_symmetric(g, 3);
  const std::vector<vid_t> choice = sample_choices(g, s.d, 5);
  vid_t reference = -1;
  for (const int t : {1, 2, 4, 8}) {
    ThreadCountGuard guard(t);
    const vid_t card = one_out_karp_sipser(g.num_vertices(), choice).cardinality();
    if (reference < 0) reference = card;
    EXPECT_EQ(card, reference) << "threads " << t;
  }
}

TEST(UndirectedGreedy, ValidAndMaximalish) {
  const UndirectedGraph g = make_undirected_erdos_renyi(2000, 8000, 1);
  const UndirectedMatching m = undirected_greedy(g, 3);
  EXPECT_TRUE(is_valid_matching(g, m));
  // No edge with two free endpoints may remain.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (m.matched(u)) continue;
    for (const vid_t v : g.neighbors(u)) EXPECT_TRUE(m.matched(v));
  }
}

TEST(UndirectedTwoThirds, AgreesWithBruteForceWithinFactor) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const UndirectedGraph g = make_undirected_erdos_renyi(12, 24, seed);
    const UndirectedMatching m = undirected_two_thirds(g, seed);
    EXPECT_TRUE(is_valid_matching(g, m));
    const vid_t opt = brute_force(g);
    EXPECT_GE(3 * m.cardinality(), 2 * opt) << "seed " << seed;
  }
}

TEST(UndirectedMatching, PathAndCycleOptima) {
  // P_6: optimum 3 edges... wait P_6 has 6 vertices and 5 edges -> max 3.
  const UndirectedGraph p6 = make_undirected_path(6);
  EXPECT_EQ(brute_force(p6), 3);
  const UndirectedMatching mp = undirected_one_out_match(p6, 3, 1);
  EXPECT_TRUE(is_valid_matching(p6, mp));
  // C_7 (odd cycle): optimum 3.
  const UndirectedGraph c7 = make_undirected_cycle(7);
  EXPECT_EQ(brute_force(c7), 3);
  const UndirectedMatching mc = undirected_one_out_match(c7, 10, 1);
  EXPECT_TRUE(is_valid_matching(c7, mc));
  EXPECT_LE(mc.cardinality(), 3);
  EXPECT_GE(mc.cardinality(), 2);
}

} // namespace
} // namespace bmh
