/// Tests for the undirected extension (paper §5 future work): symmetric
/// scaling, one-out Karp-Sipser with odd cycles, the heuristic pipeline,
/// and agreement with a brute-force oracle on small graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/workspace.hpp"
#include "engine/registry.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/transform.hpp"
#include "matching/hopcroft_karp.hpp"
#include "undirected/graph.hpp"
#include "undirected/matching.hpp"
#include "util/threading.hpp"

namespace bmh {
namespace {

/// Exhaustive maximum matching on a small undirected graph.
vid_t brute_force(const UndirectedGraph& g) {
  std::vector<bool> used(static_cast<std::size_t>(g.num_vertices()), false);
  auto rec = [&](auto&& self, vid_t u) -> vid_t {
    if (u == g.num_vertices()) return 0;
    if (used[static_cast<std::size_t>(u)]) return self(self, u + 1);
    vid_t best = self(self, u + 1);  // leave u unmatched
    used[static_cast<std::size_t>(u)] = true;
    for (const vid_t v : g.neighbors(u)) {
      if (v < u || used[static_cast<std::size_t>(v)]) continue;
      used[static_cast<std::size_t>(v)] = true;
      best = std::max(best, static_cast<vid_t>(1 + self(self, u + 1)));
      used[static_cast<std::size_t>(v)] = false;
    }
    used[static_cast<std::size_t>(u)] = false;
    return best;
  };
  return rec(rec, 0);
}

TEST(UndirectedGraph, FromEdgesSymmetrizesAndDedups) {
  const UndirectedGraph g = UndirectedGraph::from_edges(4, {{0, 1}, {1, 0}, {2, 3}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(UndirectedGraph, RejectsSelfLoopsAndBadIds) {
  EXPECT_THROW((void)UndirectedGraph::from_edges(3, {{1, 1}}), std::invalid_argument);
  EXPECT_THROW((void)UndirectedGraph::from_edges(3, {{0, 3}}), std::out_of_range);
}

TEST(UndirectedGraph, AsBipartiteIsSymmetric) {
  const UndirectedGraph g = make_undirected_erdos_renyi(50, 120, 3);
  const BipartiteGraph b = g.as_bipartite();
  EXPECT_EQ(b.num_rows(), 50);
  for (vid_t u = 0; u < 50; ++u)
    for (const vid_t v : b.row_neighbors(u)) EXPECT_TRUE(b.has_edge(v, u));
}

TEST(UndirectedGenerators, ShapesAreCorrect) {
  EXPECT_EQ(make_undirected_cycle(7).num_edges(), 7);
  EXPECT_EQ(make_undirected_path(7).num_edges(), 6);
  EXPECT_EQ(make_undirected_complete(6).num_edges(), 15);
  for (vid_t u = 0; u < 7; ++u) EXPECT_EQ(make_undirected_cycle(7).degree(u), 2);
}

TEST(SymmetricScaling, CycleConvergesToHalf) {
  const UndirectedGraph g = make_undirected_cycle(40);
  const SymmetricScaling s = scale_symmetric(g, 50);
  EXPECT_LT(s.error, 1e-6);
  // 2-regular: the doubly stochastic limit has every scaled entry 1/2.
  for (vid_t u = 0; u < 40; ++u)
    for (const vid_t v : g.neighbors(u))
      EXPECT_NEAR(s.d[static_cast<std::size_t>(u)] * s.d[static_cast<std::size_t>(v)],
                  0.5, 1e-6);
}

TEST(SymmetricScaling, CompleteGraphUniform) {
  const UndirectedGraph g = make_undirected_complete(10);
  const SymmetricScaling s = scale_symmetric(g, 30);
  // K_10 has degree 9; limit entry 1/9.
  EXPECT_NEAR(s.d[0] * s.d[1], 1.0 / 9.0, 1e-6);
}

TEST(SymmetricScaling, ErrorDecreases) {
  const UndirectedGraph g = make_undirected_erdos_renyi(2000, 6000, 5);
  const double e1 = scale_symmetric(g, 1).error;
  const double e10 = scale_symmetric(g, 10).error;
  EXPECT_LT(e10, e1);
}

TEST(SampleChoices, PicksAreNeighbors) {
  const UndirectedGraph g = make_undirected_erdos_renyi(500, 1500, 7);
  const SymmetricScaling s = scale_symmetric(g, 5);
  const std::vector<vid_t> choice = sample_choices(g, s.d, 11);
  for (vid_t u = 0; u < 500; ++u) {
    if (g.degree(u) == 0) {
      EXPECT_EQ(choice[static_cast<std::size_t>(u)], kNil);
    } else {
      EXPECT_TRUE(g.has_edge(u, choice[static_cast<std::size_t>(u)]));
    }
  }
  EXPECT_EQ(choice, sample_choices(g, s.d, 11));  // deterministic
}

TEST(OneOutKarpSipser, OddCycleLeavesExactlyOneFree) {
  // choice forms a single directed 5-cycle: 0->1->2->3->4->0.
  std::vector<vid_t> choice = {1, 2, 3, 4, 0};
  const UndirectedMatching m = one_out_karp_sipser(5, choice);
  EXPECT_EQ(m.cardinality(), 2);  // floor(5/2)
}

TEST(OneOutKarpSipser, EvenCycleFullyMatched) {
  std::vector<vid_t> choice = {1, 2, 3, 0};
  const UndirectedMatching m = one_out_karp_sipser(4, choice);
  EXPECT_EQ(m.cardinality(), 2);
}

TEST(OneOutKarpSipser, ChainWithReciprocalEnd) {
  // 0->1, 1<->2: a path; maximum matching = 1 pair + ... edges {0,1},{1,2};
  // max matching on path of 3 vertices is 1.
  std::vector<vid_t> choice = {1, 2, 1};
  const UndirectedMatching m = one_out_karp_sipser(3, choice);
  EXPECT_EQ(m.cardinality(), 1);
}

TEST(OneOutKarpSipser, IsolatedVerticesHandled) {
  std::vector<vid_t> choice = {kNil, kNil, 3, 2};
  const UndirectedMatching m = one_out_karp_sipser(4, choice);
  EXPECT_EQ(m.cardinality(), 1);
}

class UndirectedOneOutExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UndirectedOneOutExactness, MatchesBruteForceOnChoiceSubgraph) {
  // one_out_karp_sipser must deliver a MAXIMUM matching of the functional
  // subgraph {{u, choice[u]}}; compare with brute force on small graphs.
  const std::uint64_t seed = GetParam();
  const vid_t n = 14;
  const UndirectedGraph g = make_undirected_erdos_renyi(n, 3 * n, seed);
  const SymmetricScaling s = scale_symmetric(g, 3);
  const std::vector<vid_t> choice = sample_choices(g, s.d, seed + 7);

  std::vector<std::pair<vid_t, vid_t>> sub_edges;
  for (vid_t u = 0; u < n; ++u)
    if (choice[static_cast<std::size_t>(u)] != kNil)
      sub_edges.emplace_back(u, choice[static_cast<std::size_t>(u)]);
  const UndirectedGraph sub = UndirectedGraph::from_edges(n, sub_edges);

  const UndirectedMatching m = one_out_karp_sipser(n, choice);
  EXPECT_TRUE(is_valid_matching(sub, m)) << describe_violation(sub, m);
  EXPECT_EQ(m.cardinality(), brute_force(sub)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndirectedOneOutExactness,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(UndirectedOneOutMatch, ValidAndNearConjectureOnRandomGraphs) {
  const UndirectedGraph g = make_undirected_erdos_renyi(20000, 100000, 3);
  const UndirectedMatching m = undirected_one_out_match(g, 5, 7);
  EXPECT_TRUE(is_valid_matching(g, m)) << describe_violation(g, m);
  // Yardstick: a matching with no length-3 augmenting path is >= 2/3 of
  // optimal, so opt <= 1.5 * |two_thirds|. The one-out heuristic should
  // reach ~0.86 of optimal on such dense-enough random graphs.
  const UndirectedMatching yard = undirected_two_thirds(g, 7);
  const double upper = 1.5 * static_cast<double>(yard.cardinality());
  EXPECT_GE(static_cast<double>(m.cardinality()), 0.80 * static_cast<double>(yard.cardinality()));
  EXPECT_LE(static_cast<double>(m.cardinality()), upper);
}

TEST(UndirectedOneOutMatch, CardinalityThreadCountInvariant) {
  const UndirectedGraph g = make_undirected_erdos_renyi(10000, 40000, 9);
  const SymmetricScaling s = scale_symmetric(g, 3);
  const std::vector<vid_t> choice = sample_choices(g, s.d, 5);
  vid_t reference = -1;
  for (const int t : {1, 2, 4, 8}) {
    ThreadCountGuard guard(t);
    const vid_t card = one_out_karp_sipser(g.num_vertices(), choice).cardinality();
    if (reference < 0) reference = card;
    EXPECT_EQ(card, reference) << "threads " << t;
  }
}

TEST(UndirectedGreedy, ValidAndMaximalish) {
  const UndirectedGraph g = make_undirected_erdos_renyi(2000, 8000, 1);
  const UndirectedMatching m = undirected_greedy(g, 3);
  EXPECT_TRUE(is_valid_matching(g, m));
  // No edge with two free endpoints may remain.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (m.matched(u)) continue;
    for (const vid_t v : g.neighbors(u)) EXPECT_TRUE(m.matched(v));
  }
}

TEST(UndirectedTwoThirds, AgreesWithBruteForceWithinFactor) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const UndirectedGraph g = make_undirected_erdos_renyi(12, 24, seed);
    const UndirectedMatching m = undirected_two_thirds(g, seed);
    EXPECT_TRUE(is_valid_matching(g, m));
    const vid_t opt = brute_force(g);
    EXPECT_GE(3 * m.cardinality(), 2 * opt) << "seed " << seed;
  }
}

TEST(UndirectedMatching, PathAndCycleOptima) {
  // P_6: optimum 3 edges... wait P_6 has 6 vertices and 5 edges -> max 3.
  const UndirectedGraph p6 = make_undirected_path(6);
  EXPECT_EQ(brute_force(p6), 3);
  const UndirectedMatching mp = undirected_one_out_match(p6, 3, 1);
  EXPECT_TRUE(is_valid_matching(p6, mp));
  // C_7 (odd cycle): optimum 3.
  const UndirectedGraph c7 = make_undirected_cycle(7);
  EXPECT_EQ(brute_force(c7), 3);
  const UndirectedMatching mc = undirected_one_out_match(c7, 10, 1);
  EXPECT_TRUE(is_valid_matching(c7, mc));
  EXPECT_LE(mc.cardinality(), 3);
  EXPECT_GE(mc.cardinality(), 2);
}

TEST(UndirectedConversion, SymmetricViewOfAdjacencyRoundTrips) {
  // as_bipartite() of an undirected graph is square pattern-symmetric with
  // no diagonal; its symmetric view must reproduce the original graph.
  const UndirectedGraph g = make_undirected_erdos_renyi(60, 150, 4);
  const BipartiteGraph b = g.as_bipartite();
  ASSERT_TRUE(is_pattern_symmetric(b));
  UndirectedGraph view;
  view.assign_symmetric_view(b);
  ASSERT_EQ(view.num_vertices(), g.num_vertices());
  EXPECT_EQ(view.num_edges(), g.num_edges());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const auto nb = view.neighbors(u);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));  // has_edge contract
    for (const vid_t v : g.neighbors(u)) EXPECT_TRUE(view.has_edge(u, v));
  }
}

TEST(UndirectedConversion, SymmetricViewDropsDiagonal) {
  // Square pattern-symmetric with diagonal entries: 2x2 full.
  const BipartiteGraph b = graph_from_rows(2, 2, {{0, 1}, {0, 1}});
  ASSERT_TRUE(is_pattern_symmetric(b));
  UndirectedGraph view;
  view.assign_symmetric_view(b);
  EXPECT_EQ(view.num_edges(), 1);  // only the off-diagonal pair survives
  EXPECT_TRUE(view.has_edge(0, 1));
  EXPECT_FALSE(view.has_edge(0, 0));
}

TEST(UndirectedConversion, SymmetricViewHandlesUnsortedRows) {
  // CSR row lists need not be sorted (the raw constructor's documented
  // contract) — the conversion must read the always-sorted CSC side and
  // still emit sorted adjacency. C8 adjacency with each row listed in
  // descending order.
  const vid_t n = 8;
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vid_t> col_idx;
  for (vid_t i = 0; i < n; ++i) {
    const vid_t next = (i + 1) % n, prev = (i + n - 1) % n;
    col_idx.push_back(std::max(next, prev));  // descending: unsorted row
    col_idx.push_back(std::min(next, prev));
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<eid_t>(col_idx.size());
  }
  const BipartiteGraph b(n, n, std::move(row_ptr), std::move(col_idx));
  ASSERT_TRUE(is_pattern_symmetric(b));
  UndirectedGraph view;
  view.assign_symmetric_view(b);
  EXPECT_EQ(view.num_edges(), 8);
  for (vid_t u = 0; u < view.num_vertices(); ++u) {
    const auto nb = view.neighbors(u);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    ASSERT_EQ(nb.size(), 2u);
    for (const vid_t v : nb) EXPECT_TRUE(b.has_edge(u, v));
  }
}

TEST(UndirectedConversion, BipartiteUnionPreservesMatchingNumber) {
  const BipartiteGraph b = make_erdos_renyi(14, 10, 40, 6);
  UndirectedGraph u;
  u.assign_bipartite_union(b);
  ASSERT_EQ(u.num_vertices(), 24);
  EXPECT_EQ(u.num_edges(), static_cast<eid_t>(b.num_edges()));
  // Every union edge crosses sides and mirrors a bipartite edge.
  for (vid_t r = 0; r < 14; ++r) {
    const auto nb = u.neighbors(r);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    for (const vid_t v : nb) {
      ASSERT_GE(v, 14);
      EXPECT_TRUE(b.has_edge(r, v - 14));
    }
  }
  // The undirected matching number of the union IS the bipartite one.
  EXPECT_EQ(brute_force(u), sprank(b));
}

TEST(UndirectedWs, WorkspaceOverloadsMatchClassicResults) {
  const UndirectedGraph g = make_undirected_erdos_renyi(400, 1200, 17);
  Workspace ws;

  SymmetricScaling s_ws;
  scale_symmetric_ws(g, 8, ws, s_ws);
  const SymmetricScaling s = scale_symmetric(g, 8);
  EXPECT_EQ(s_ws.d, s.d);
  EXPECT_EQ(s_ws.iterations, s.iterations);
  EXPECT_EQ(s_ws.error, s.error);

  const std::vector<vid_t>& choice_ws = sample_choices_ws(g, s_ws.d, 23, ws);
  EXPECT_EQ(choice_ws, sample_choices(g, s.d, 23));

  UndirectedMatching m_ws;
  one_out_karp_sipser_ws(g.num_vertices(), choice_ws, ws, m_ws);
  EXPECT_EQ(m_ws.mate, one_out_karp_sipser(g.num_vertices(), choice_ws).mate);

  UndirectedMatching one_ws;
  undirected_one_out_match_ws(g, 5, 23, ws, one_ws);
  EXPECT_EQ(one_ws.mate, undirected_one_out_match(g, 5, 23).mate);

  UndirectedMatching greedy_ws;
  undirected_greedy_ws(g, 23, ws, greedy_ws);
  EXPECT_EQ(greedy_ws.mate, undirected_greedy(g, 23).mate);

  UndirectedMatching thirds_ws;
  undirected_two_thirds_ws(g, 23, ws, thirds_ws);
  EXPECT_EQ(thirds_ws.mate, undirected_two_thirds(g, 23).mate);
}

TEST(UndirectedRegistry, NamesAndDispatch) {
  const std::vector<std::string> names = registered_undirected_algorithm_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "greedy");
  EXPECT_EQ(names[1], "one_out");
  EXPECT_EQ(names[2], "two_thirds");

  const UndirectedAlgorithmRegistry& reg = UndirectedAlgorithmRegistry::instance();
  EXPECT_TRUE(reg.contains("one_out"));
  EXPECT_FALSE(reg.contains("two_sided"));  // bipartite names don't leak in
  EXPECT_THROW((void)reg.at("nope"), std::invalid_argument);

  // Dispatch through the registry reproduces the direct _ws call.
  const UndirectedGraph g = make_undirected_erdos_renyi(300, 900, 2);
  Workspace ws;
  AlgorithmOptions options;
  options.seed = 11;
  UndirectedMatching via_registry;
  UndirectedRunInfo info;
  (*reg.at("two_thirds"))(g, 0, options, ws, via_registry, info);
  UndirectedMatching direct;
  undirected_two_thirds_ws(g, 11, ws, direct);
  EXPECT_EQ(via_registry.mate, direct.mate);
}

// Regression for the lock-discipline fix in UndirectedAlgorithmRegistry:
// at() used to return a reference into the mutex-guarded map (flagged by
// -Wthread-safety-reference), so a caller's handle was only valid while the
// never-erase invariant held. It now copies shared ownership out of the
// critical section — a resolved handle must keep working while other
// threads mutate the registry.
TEST(UndirectedRegistry, ResolvedHandleSurvivesConcurrentRegistration) {
  UndirectedAlgorithmRegistry& reg = UndirectedAlgorithmRegistry::instance();
  const std::shared_ptr<const UndirectedAlgorithmFn> handle = reg.at("greedy");
  ASSERT_NE(handle, nullptr);

  // Churn the registry from several threads while the handle is live and
  // in use. Each registration rebalances the map; the handle must stay
  // callable and keep producing correct matchings throughout.
  const UndirectedGraph g = make_undirected_erdos_renyi(200, 600, 7);
  UndirectedMatching reference;
  {
    Workspace ws;
    undirected_greedy_ws(g, 5, ws, reference);
  }

  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, t] {
      for (int i = 0; i < 8; ++i) {
        reg.register_algorithm(
            "churn_" + std::to_string(t) + "_" + std::to_string(i),
            [](const UndirectedGraph&, int, const AlgorithmOptions&,
               Workspace&, UndirectedMatching&, UndirectedRunInfo&) {});
      }
    });
  }
  for (int round = 0; round < 16; ++round) {
    Workspace ws;
    AlgorithmOptions options;
    options.seed = 5;
    UndirectedMatching out;
    UndirectedRunInfo info;
    (*handle)(g, 0, options, ws, out, info);
    EXPECT_EQ(out.mate, reference.mate);
  }
  for (std::thread& w : writers) w.join();

  // The churn entries registered fine and resolve through the public API.
  EXPECT_TRUE(reg.contains("churn_0_0"));
  EXPECT_NE(reg.at("churn_3_7"), nullptr);
}

} // namespace
} // namespace bmh
