/// \file test_job_kinds.cpp
/// \brief Tests for the JobKind axis: spec parsing and per-kind default
/// algorithms, the undirected-match and analyze pipelines end to end
/// through the Engine, byte-determinism of mixed-kind batches across
/// worker counts, per-kind jobs_run counters, and the JSON contract (no
/// "kind" field on match records, kind-specific bodies otherwise).

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "test_helpers.hpp"

namespace bmh {
namespace {

std::string fixture(const char* name) {
  return std::string(BMH_TEST_DATA_DIR) + "/" + name;
}

std::string jsonl(const std::vector<JobResult>& results) {
  std::string out;
  for (const JobResult& r : results) out += to_json_line(r, /*include_timings=*/false) + "\n";
  return out;
}

TEST(JobKind, ParseAndNames) {
  EXPECT_EQ(parse_job_kind("match"), JobKind::kMatch);
  EXPECT_EQ(parse_job_kind("undirected-match"), JobKind::kUndirectedMatch);
  EXPECT_EQ(parse_job_kind("analyze"), JobKind::kAnalyze);
  EXPECT_THROW((void)parse_job_kind("Match"), std::invalid_argument);
  EXPECT_THROW((void)parse_job_kind(""), std::invalid_argument);

  EXPECT_STREQ(to_string(JobKind::kMatch), "match");
  EXPECT_STREQ(to_string(JobKind::kUndirectedMatch), "undirected-match");
  EXPECT_STREQ(to_string(JobKind::kAnalyze), "analyze");

  const std::vector<std::string> names = job_kind_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "analyze");
  EXPECT_EQ(names[1], "match");
  EXPECT_EQ(names[2], "undirected-match");
}

TEST(JobKind, SpecLineDefaultsPerKind) {
  // Legacy lines parse unchanged: kind defaults to match, algo to two_sided.
  const JobSpec legacy = parse_job_spec_line("input=gen:er:n=64");
  EXPECT_EQ(legacy.kind, JobKind::kMatch);
  EXPECT_EQ(legacy.pipeline.algorithm, "two_sided");

  // Each non-match kind has its own default algorithm...
  const JobSpec und = parse_job_spec_line("input=gen:er:n=64 kind=undirected-match");
  EXPECT_EQ(und.kind, JobKind::kUndirectedMatch);
  EXPECT_EQ(und.pipeline.algorithm, "one_out");
  const JobSpec ana = parse_job_spec_line("input=gen:er:n=64 kind=analyze");
  EXPECT_EQ(ana.kind, JobKind::kAnalyze);
  EXPECT_EQ(ana.pipeline.algorithm, "dm");

  // ...which an explicit algo= overrides regardless of key order.
  EXPECT_EQ(parse_job_spec_line("input=gen:er:n=64 algo=greedy kind=undirected-match")
                .pipeline.algorithm,
            "greedy");
  EXPECT_EQ(parse_job_spec_line("input=gen:er:n=64 kind=analyze algo=sprank")
                .pipeline.algorithm,
            "sprank");

  EXPECT_THROW((void)parse_job_spec_line("input=gen:er:n=64 kind=match kind=match"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_job_spec_line("input=gen:er:n=64 kind=bogus"),
               std::invalid_argument);
}

TEST(JobKind, UndirectedMatchSymmetricViewOnCycleFixture) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  std::vector<JobSpec> jobs;
  jobs.push_back(parse_job_spec_line(
      "name=c5 kind=undirected-match algo=two_thirds input=mm:path=" +
      fixture("cycle5_symmetric.mtx")));
  const std::vector<JobResult> results = engine.run_collect(jobs);
  ASSERT_EQ(results.size(), 1u);
  const JobResult& r = results[0];
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.kind, JobKind::kUndirectedMatch);
  EXPECT_TRUE(r.result.extras.symmetric_view);
  EXPECT_EQ(r.result.extras.vertices, 5);
  EXPECT_EQ(r.result.extras.undirected_edges, 5u);  // diagonal dropped
  // two_thirds guarantees >= (2/3)·2, and C5's maximum is 2 — so exactly 2.
  EXPECT_EQ(r.result.cardinality, 2);
  EXPECT_TRUE(r.result.valid);

  const std::string line = to_json_line(r, /*include_timings=*/false);
  EXPECT_NE(line.find("\"kind\":\"undirected-match\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"conversion\":\"symmetric\""), std::string::npos) << line;
}

TEST(JobKind, UndirectedMatchUnionOnRectangular) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  std::vector<JobSpec> jobs;
  jobs.push_back(parse_job_spec_line(
      "name=rect kind=undirected-match input=mm:path=" + fixture("rect_general.mtx")));
  const std::vector<JobResult> results = engine.run_collect(jobs);
  const JobResult& r = results[0];
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.result.extras.symmetric_view);
  EXPECT_EQ(r.result.extras.vertices, 4 + 6);
  EXPECT_EQ(r.result.extras.undirected_edges, 7u);  // one per nonzero
  // The union of a bipartite graph is the graph itself, so the undirected
  // maximum equals sprank = 4; any valid heuristic lands in [1, 4].
  EXPECT_TRUE(r.result.valid);
  EXPECT_GE(r.result.cardinality, 1);
  EXPECT_LE(r.result.cardinality, 4);
  const std::string line = to_json_line(r, /*include_timings=*/false);
  EXPECT_NE(line.find("\"conversion\":\"union\""), std::string::npos) << line;
}

TEST(JobKind, AnalyzeDmOnRectFixture) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  std::vector<JobSpec> jobs;
  jobs.push_back(parse_job_spec_line(
      "name=dm kind=analyze algo=dm input=mm:path=" + fixture("rect_general.mtx")));
  const JobResult r = engine.run_collect(jobs)[0];
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.kind, JobKind::kAnalyze);
  EXPECT_TRUE(r.result.exact);
  EXPECT_EQ(r.result.sprank, 4);
  const AnalysisExtras& x = r.result.extras;
  // Coarse blocks partition rows and columns.
  EXPECT_EQ(x.h_rows + x.s_size + x.v_rows, 4);
  EXPECT_EQ(x.h_cols + x.s_size + x.v_cols, 6);
  // 4 rows, 6 cols, perfect row matching: no vertical part at all.
  EXPECT_EQ(x.v_rows, 0);
  EXPECT_EQ(x.v_cols, 0);
  EXPECT_GE(x.fine_blocks, 1);
  const std::string line = to_json_line(r, /*include_timings=*/false);
  EXPECT_NE(line.find("\"kind\":\"analyze\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"sprank\":4"), std::string::npos) << line;
}

TEST(JobKind, AnalyzeSprankOnCycleFixture) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  std::vector<JobSpec> jobs;
  jobs.push_back(parse_job_spec_line(
      "name=sp kind=analyze algo=sprank input=mm:path=" +
      fixture("cycle5_symmetric.mtx")));
  const JobResult r = engine.run_collect(jobs)[0];
  ASSERT_TRUE(r.ok) << r.error;
  // The bipartite view of the C5 adjacency (plus its diagonal entry) has a
  // perfect matching: sprank 5 even though the undirected maximum is 2.
  EXPECT_EQ(r.result.sprank, 5);
  EXPECT_TRUE(r.result.exact);
}

TEST(JobKind, AnalyzeKoenigCertifiesMinimumCover) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  std::vector<JobSpec> jobs;
  jobs.push_back(parse_job_spec_line(
      "name=kg kind=analyze algo=koenig input=mm:path=" + fixture("rect_general.mtx")));
  const JobResult r = engine.run_collect(jobs)[0];
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.result.cardinality, 4);
  EXPECT_TRUE(r.result.valid);
  const AnalysisExtras& x = r.result.extras;
  EXPECT_EQ(x.cover_size, 4);
  EXPECT_TRUE(x.cover_valid);
  EXPECT_TRUE(x.maximum);  // König equality held
  const std::string line = to_json_line(r, /*include_timings=*/false);
  EXPECT_NE(line.find("\"cover_valid\":true"), std::string::npos) << line;
}

TEST(JobKind, MatchRecordsKeepTheLegacyShape) {
  // One engine per line: the submission index is part of the record, so the
  // comparison needs both jobs to run as index 0.
  const auto run_one = [](const char* line) {
    EngineConfig config;
    config.threads = 1;
    Engine engine(config);
    const std::vector<JobResult> results =
        engine.run_collect({parse_job_spec_line(line)});
    EXPECT_TRUE(results[0].ok) << results[0].error;
    return to_json_line(results[0], /*include_timings=*/false);
  };
  const std::string implicit = run_one("name=m input=gen:er:n=256 seed=5");
  const std::string explicit_kind =
      run_one("name=m kind=match input=gen:er:n=256 seed=5");
  // A match record never carries a "kind" field — explicit kind=match and a
  // legacy line serialize to the same bytes (modulo the derived-vs-equal
  // seed, pinned here).
  EXPECT_EQ(implicit.find("\"kind\""), std::string::npos) << implicit;
  EXPECT_EQ(implicit, explicit_kind);
}

TEST(JobKind, UnknownAlgorithmFailsTheJobNotTheBatch) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  std::vector<JobSpec> jobs;
  jobs.push_back(parse_job_spec_line(
      "name=bad1 kind=undirected-match algo=nope input=gen:er:n=64"));
  jobs.push_back(parse_job_spec_line("name=bad2 kind=analyze algo=bogus input=gen:er:n=64"));
  jobs.push_back(parse_job_spec_line("name=good input=gen:er:n=64"));
  const std::vector<JobResult> results = engine.run_collect(jobs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("nope"), std::string::npos) << results[0].error;
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("bogus"), std::string::npos) << results[1].error;
  EXPECT_TRUE(results[2].ok) << results[2].error;
  // Error records of non-match kinds still carry the kind field.
  EXPECT_NE(to_json_line(results[0], false).find("\"kind\":\"undirected-match\""),
            std::string::npos);
}

std::vector<JobSpec> mixed_kind_batch() {
  std::ostringstream spec;
  spec << "name=m0 input=gen:er:n=512,deg=4 algo=two_sided\n"
       << "name=m1 input=gen:planted:n=256 algo=karp_sipser augment=1\n"
       << "name=u0 kind=undirected-match input=gen:mesh:nx=12\n"
       << "name=u1 kind=undirected-match algo=greedy input=gen:er:n=300,deg=3\n"
       << "name=u2 kind=undirected-match algo=two_thirds input=mm:path="
       << fixture("cycle5_symmetric.mtx") << "\n"
       << "name=a0 kind=analyze algo=dm input=mm:path=" << fixture("rect_general.mtx")
       << "\n"
       << "name=a1 kind=analyze algo=sprank input=gen:er:n=512,deg=4\n"
       << "name=a2 kind=analyze algo=koenig input=gen:planted:n=256\n";
  std::istringstream in(spec.str());
  return parse_job_specs(in);
}

TEST(JobKind, MixedBatchIsByteIdenticalAcrossWorkerCounts) {
  const std::vector<JobSpec> jobs = mixed_kind_batch();
  std::string lines[2];
  const int threads[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    EngineConfig config;
    config.threads = threads[t];
    config.seed = 42;
    Engine engine(config);
    lines[t] = jsonl(engine.run_collect(jobs));
  }
  EXPECT_EQ(lines[0], lines[1]);
  EXPECT_EQ(static_cast<int>(std::count(lines[0].begin(), lines[0].end(), '\n')), 8);
}

TEST(JobKind, PerKindCountersLandInWorkerMetrics) {
  const std::vector<JobSpec> jobs = mixed_kind_batch();
  EngineConfig config;
  config.threads = 3;
  Engine engine(config);
  const std::vector<JobResult> results = engine.run_collect(jobs);
  for (const JobResult& r : results) EXPECT_TRUE(r.ok) << r.name << ": " << r.error;

  const obs::Snapshot snap = engine.metrics();
  EXPECT_EQ(snap.counter_total("worker", "jobs_run"), 8u);
  EXPECT_EQ(snap.counter_total("worker", "jobs_run_match"), 2u);
  EXPECT_EQ(snap.counter_total("worker", "jobs_run_undirected_match"), 3u);
  EXPECT_EQ(snap.counter_total("worker", "jobs_run_analyze"), 3u);
  EXPECT_EQ(engine.stats().jobs_run, 8u);
}

} // namespace
} // namespace bmh
