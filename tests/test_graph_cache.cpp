/// \file test_graph_cache.cpp
/// \brief Tests for the sharded content-addressed graph cache and the
/// canonical spec keys behind it: key equivalence under default resolution
/// and parameter order, the seed precedence rules, hit/miss/LRU accounting,
/// concurrent lookup/insert (the sanitizer CI job runs this suite under
/// ASan+UBSan, exercising the sharded locks), and batch-output parity with
/// the cache on vs off.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "test_helpers.hpp"

namespace bmh {
namespace {

std::uint64_t key_hash(const std::string& spec, std::uint64_t seed, std::string& text) {
  return canonical_graph_key(parse_graph_spec(spec), seed, text);
}

// ------------------------------------------------------- canonical keys ---

TEST(CanonicalKey, ResolvesDefaultsAndSortsParams) {
  // Textually different, semantically identical: one canonical form.
  const std::string canonical = canonical_graph_key(parse_graph_spec("gen:er:n=4096"), 7);
  EXPECT_EQ(canonical, "gen:er:cols=4096,deg=4,n=4096#seed=7");
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("gen:er:deg=4,n=4096"), 7), canonical);
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("gen:er:cols=4096,n=4096"), 7),
            canonical);
  // The mesh `n` shorthand resolves away: nx = sqrt(n), ny = nx.
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("gen:mesh:n=4096"), 1),
            canonical_graph_key(parse_graph_spec("gen:mesh:nx=64,ny=64"), 2));
  // Clamps apply before keying (er floors n at 2).
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("gen:er:n=1"), 3),
            canonical_graph_key(parse_graph_spec("gen:er:n=2"), 3));
  // Unknown generators fail like build_graph.
  EXPECT_THROW((void)canonical_graph_key(parse_graph_spec("gen:nope:n=4"), 1),
               std::invalid_argument);
}

TEST(CanonicalKey, SeedPrecedenceMatchesBuildGraph) {
  std::string a, b;
  // Seeded generator: the job seed differentiates instances...
  EXPECT_NE(key_hash("gen:er:n=256", 5, a), key_hash("gen:er:n=256", 6, b));
  EXPECT_NE(a, b);
  // ...unless the spec pins one, which wins over any job seed.
  EXPECT_EQ(canonical_graph_key(parse_graph_spec("gen:er:n=256,seed=5"), 99),
            canonical_graph_key(parse_graph_spec("gen:er:n=256"), 5));
  // Deterministic sources ignore the seed entirely.
  for (const char* spec : {"gen:mesh:nx=8", "gen:cycle:n=64", "gen:full:n=8",
                           "gen:adversarial:n=16,k=2", "mtx:/some/path.mtx"}) {
    EXPECT_EQ(canonical_graph_key(parse_graph_spec(spec), 1),
              canonical_graph_key(parse_graph_spec(spec), 2))
        << spec;
  }
  // Suite instances are seeded.
  EXPECT_NE(canonical_graph_key(parse_graph_spec("suite:cage15_like:scale=0.02"), 1),
            canonical_graph_key(parse_graph_spec("suite:cage15_like:scale=0.02"), 2));
}

TEST(CanonicalKey, EqualKeysDenoteEqualGraphs) {
  const std::pair<const char*, const char*> equivalent[] = {
      {"gen:er:n=256", "gen:er:deg=4,cols=256,n=256"},
      {"gen:mesh:n=256", "gen:mesh:nx=16"},
      {"gen:planted:n=128", "gen:planted:extra=3,n=128"},
  };
  for (const auto& [lhs, rhs] : equivalent) {
    const GraphSpec sl = parse_graph_spec(lhs);
    const GraphSpec sr = parse_graph_spec(rhs);
    ASSERT_EQ(canonical_graph_key(sl, 11), canonical_graph_key(sr, 11)) << lhs;
    EXPECT_TRUE(build_graph(sl, 11).structurally_equal(build_graph(sr, 11))) << lhs;
  }
}

// ----------------------------------------------------------- the cache ---

TEST(GraphCache, SharesEntriesAndCountsHits) {
  GraphCache cache;
  const GraphSpec spec = parse_graph_spec("gen:er:n=256,deg=4");
  const auto a = cache.get_or_build(spec, 5);
  const auto b = cache.get_or_build(spec, 5);
  EXPECT_EQ(a.get(), b.get());  // one shared instance, not a rebuild
  // A semantically identical spelling hits the same entry.
  const auto c = cache.get_or_build(parse_graph_spec("gen:er:deg=4,n=256"), 5);
  EXPECT_EQ(a.get(), c.get());
  // A different effective seed is a different instance.
  const auto d = cache.get_or_build(spec, 6);
  EXPECT_NE(a.get(), d.get());

  const GraphCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(GraphCache, PerJobSeedDerivationSharesOnlyPinnedInstances) {
  GraphCache cache;
  // Unpinned seeded spec under derived per-job seeds: every job is its own
  // instance (the determinism contract), so no sharing...
  const GraphSpec unpinned = parse_graph_spec("gen:er:n=128,deg=4");
  const auto a = cache.get_or_build(unpinned, derive_job_seed(1, 0));
  const auto b = cache.get_or_build(unpinned, derive_job_seed(1, 1));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 0u);
  // ...while a pinned spec shares one instance across all derived seeds.
  const GraphSpec pinned = parse_graph_spec("gen:er:n=128,deg=4,seed=9");
  const auto c = cache.get_or_build(pinned, derive_job_seed(1, 0));
  const auto d = cache.get_or_build(pinned, derive_job_seed(1, 1));
  EXPECT_EQ(c.get(), d.get());
  EXPECT_TRUE(c->structurally_equal(build_graph(pinned, 12345)));
}

TEST(GraphCache, SeedDependenceClassifierMatchesKeying) {
  // graph_spec_depends_on_job_seed is the predicate the batch runner uses to
  // skip its per-batch cache; it must agree with the canonical key's seed
  // sensitivity.
  for (const char* spec : {"gen:er:n=64", "gen:planted:n=64", "suite:cage15_like"})
    EXPECT_TRUE(graph_spec_depends_on_job_seed(parse_graph_spec(spec))) << spec;
  for (const char* spec : {"gen:er:n=64,seed=3", "gen:mesh:nx=8", "gen:cycle:n=16",
                           "mtx:/some/path.mtx"})
    EXPECT_FALSE(graph_spec_depends_on_job_seed(parse_graph_spec(spec))) << spec;
  EXPECT_THROW((void)graph_spec_depends_on_job_seed(parse_graph_spec("gen:nope:n=4")),
               std::invalid_argument);
}

TEST(GraphCache, ExternalCacheServesIdenticalBatchReruns) {
  // Against a caller-owned cache, unpinned jobs ARE retained: re-running the
  // same batch with the same batch seed re-derives the same per-index seeds,
  // so the second run is all hits (pinned, unpinned and seed-blind alike).
  std::istringstream in(
      "input=gen:er:n=256,deg=4 algo=greedy quality=0\n"
      "input=gen:er:n=256,deg=4 algo=greedy quality=0\n"
      "input=gen:er:n=256,deg=4,seed=7 algo=greedy quality=0\n"
      "input=gen:mesh:nx=12 algo=greedy quality=0\n");
  const std::vector<JobSpec> jobs = parse_job_specs(in);
  GraphCache cache;
  BatchOptions options;
  options.seed = 5;
  options.graph_cache = &cache;
  const std::vector<JobResult> first = run_batch(jobs, options);
  const std::uint64_t misses_after_first = cache.stats().misses;
  // Four distinct keys cold: jobs 0/1 derive different per-index seeds,
  // job 2 is pinned, job 3 is seed-blind.
  EXPECT_EQ(misses_after_first, 4u);
  const std::vector<JobResult> second = run_batch(jobs, options);
  const GraphCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, misses_after_first);  // rerun is 100% hits
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(jobs.size()));
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(to_json_line(second[i], false), to_json_line(first[i], false));
}

TEST(GraphCache, LruEvictsUnderTinyByteBudget) {
  const GraphSpec spec = parse_graph_spec("gen:er:n=512,deg=4,seed=1");
  const std::size_t one_graph = build_graph(spec, 1).memory_bytes();

  GraphCache::Options options;
  options.shards = 1;  // one shard: eviction order is the global LRU order
  options.max_bytes = 3 * one_graph + one_graph / 2;  // room for ~3 er graphs
  GraphCache cache(options);

  // Touch 5 distinct instances; the budget retains only the last ~3.
  for (std::uint64_t s = 0; s < 5; ++s)
    (void)cache.get_or_build(parse_graph_spec("gen:er:n=512,deg=4"), s);
  GraphCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_LE(stats.bytes, options.max_bytes);
  EXPECT_EQ(stats.entries + stats.evictions, 5u);

  // The most recently used instance survived; the oldest was evicted.
  (void)cache.get_or_build(parse_graph_spec("gen:er:n=512,deg=4"), 4);
  EXPECT_EQ(cache.stats().hits, stats.hits + 1);
  (void)cache.get_or_build(parse_graph_spec("gen:er:n=512,deg=4"), 0);
  EXPECT_EQ(cache.stats().misses, stats.misses + 1);

  cache.clear();
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(GraphCache, OversizedGraphIsServedButNotCached) {
  GraphCache::Options options;
  options.shards = 1;
  options.max_bytes = 64;  // smaller than any real graph
  GraphCache cache(options);
  const GraphSpec spec = parse_graph_spec("gen:cycle:n=64");
  const auto g = cache.get_or_build(spec, 1);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->num_rows(), 64);
  const GraphCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.uncacheable, 1u);
  // Still correct (rebuilt) on the next request.
  EXPECT_TRUE(cache.get_or_build(spec, 2)->structurally_equal(*g));
}

TEST(GraphCache, BuildFailuresPropagateAndAreNotCached) {
  GraphCache cache;
  const GraphSpec missing = parse_graph_spec("mtx:/nonexistent/file.mtx");
  EXPECT_THROW((void)cache.get_or_build(missing, 1), std::exception);
  EXPECT_THROW((void)cache.get_or_build(missing, 1), std::exception);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// The sanitizer CI job runs this under ASan+UBSan: 8+ threads hammering a
// deliberately tiny cache so lookups, inserts, races on the same cold key
// and LRU evictions all interleave across the sharded locks.
TEST(GraphCacheStress, ConcurrentLookupInsertEvict) {
  GraphCache::Options options;
  options.shards = 4;
  options.max_bytes = 512 * 1024;  // tiny: forces steady eviction churn
  GraphCache cache(options);

  constexpr int kThreads = 8;
  constexpr int kIterations = 300;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        // 16 distinct instances, visited in thread-skewed order so several
        // threads race on the same key while others hit other shards.
        const std::uint64_t instance = static_cast<std::uint64_t>((i + t) % 16);
        const GraphSpec spec =
            parse_graph_spec("gen:er:n=" + std::to_string(128 + 32 * (instance % 4)) +
                             ",deg=4");
        const auto g = cache.get_or_build(spec, instance);
        if (g == nullptr || g->num_rows() != 128 + 32 * static_cast<int>(instance % 4))
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const GraphCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_LE(stats.bytes, options.max_bytes);
}

// ------------------------------------------------- batch-runner parity ---

std::vector<JobSpec> parity_batch() {
  std::istringstream in(
      // Pinned repeats: cache hits under any worker count.
      "input=gen:er:n=512,deg=4,seed=7 algo=two_sided iters=5\n"
      "input=gen:er:n=512,deg=4,seed=7 algo=one_sided iters=5\n"
      "input=gen:er:n=512,deg=4,seed=7 algo=karp_sipser\n"
      // Unpinned: per-index derived seeds, no sharing.
      "input=gen:er:n=512,deg=4 algo=two_sided iters=5\n"
      "input=gen:er:n=512,deg=4 algo=two_sided iters=5\n"
      // Seed-blind generator: shared across derived seeds.
      "input=gen:mesh:nx=24 algo=one_sided augment=1\n"
      "input=gen:mesh:nx=24 algo=hopcroft_karp\n"
      // Failure records must be identical too.
      "input=gen:er:n=512 algo=nope\n");
  return parse_job_specs(in);
}

std::string batch_lines(const std::vector<JobSpec>& jobs, const BatchOptions& options) {
  std::string out;
  for (const JobResult& r : run_batch(jobs, options)) {
    out += to_json_line(r, /*include_timings=*/false);
    out += '\n';
  }
  return out;
}

TEST(GraphCacheParity, BatchOutputByteIdenticalOnVsOff) {
  const std::vector<JobSpec> jobs = parity_batch();
  BatchOptions off;
  off.seed = 42;
  off.graph_cache_mb = 0;  // rebuild per job
  const std::string reference = batch_lines(jobs, off);

  for (const int workers : {1, 2, 8}) {
    BatchOptions on;
    on.seed = 42;
    on.workers = workers;
    EXPECT_EQ(batch_lines(jobs, on), reference) << "workers=" << workers;

    // External cache (stats visible), tiny budget (eviction mid-batch) —
    // still byte-identical.
    GraphCache::Options tiny;
    tiny.max_bytes = 1 << 20;
    tiny.shards = 2;
    GraphCache cache(tiny);
    BatchOptions external = on;
    external.graph_cache = &cache;
    EXPECT_EQ(batch_lines(jobs, external), reference) << "workers=" << workers;
    // The pinned and mesh repeats shared one build — either as plain hits,
    // or (when every duplicate probed before the first insert landed, which
    // sanitizer slowdowns make routine at workers > 1) as race discards,
    // where the losers adopt the resident copy. Both prove the sharing.
    const GraphCache::Stats stats = cache.stats();
    EXPECT_GT(stats.hits + stats.race_discards, 0u) << "workers=" << workers;
  }
}

// ------------------------------------------------------ streaming sink ---

TEST(BatchStream, EmitsIndexOrderedRecordsAndMatchesRunBatch) {
  const std::vector<JobSpec> jobs = parity_batch();
  BatchOptions options;
  options.seed = 9;
  const std::string reference = batch_lines(jobs, options);
  const std::size_t reference_failures = 1;  // the algo=nope job

  for (const int workers : {1, 2, 8}) {
    options.workers = workers;
    std::string streamed;
    std::size_t seen = 0;
    const std::size_t failed =
        run_batch_stream(jobs, options, [&](const JobResult& r) {
          EXPECT_EQ(r.index, seen) << "stream must emit in batch index order";
          ++seen;
          streamed += to_json_line(r, /*include_timings=*/false);
          streamed += '\n';
        });
    EXPECT_EQ(seen, jobs.size());
    EXPECT_EQ(failed, reference_failures);
    EXPECT_EQ(streamed, reference) << "workers=" << workers;
  }
}

TEST(BatchStream, NullSinkStillCountsFailures) {
  const std::vector<JobSpec> jobs = parity_batch();
  BatchOptions options;
  options.seed = 9;
  EXPECT_EQ(run_batch_stream(jobs, options, {}), 1u);
}

} // namespace
} // namespace bmh
