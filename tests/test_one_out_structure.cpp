/// Tests for the choice-subgraph structure analysis: Lemma 1 (at most one
/// cycle per component) across families, seeds and scaling levels.

#include <gtest/gtest.h>

#include "analysis/one_out_structure.hpp"
#include "core/two_sided.hpp"
#include "graph/generators.hpp"
#include "scaling/sinkhorn_knopp.hpp"

namespace bmh {
namespace {

TEST(ChoiceStructure, SingleReciprocalPairIsOneEdge) {
  // r0 <-> c0 reciprocal; a 2-vertex component with exactly 1 edge (tree).
  std::vector<vid_t> choice = {1, 0};
  const ChoiceGraphStructure s = analyze_choice_graph(1, 1, choice);
  EXPECT_EQ(s.num_components, 1);
  EXPECT_EQ(s.num_edges, 1);
  EXPECT_EQ(s.num_tree_components, 1);
  EXPECT_TRUE(s.lemma1_holds);
}

TEST(ChoiceStructure, PureCycleDetected) {
  // 4-cycle: r0->c0->r1->c1->r0.
  std::vector<vid_t> choice(4);
  choice[0] = 2;
  choice[2] = 1;
  choice[1] = 3;
  choice[3] = 0;
  const ChoiceGraphStructure s = analyze_choice_graph(2, 2, choice);
  EXPECT_EQ(s.num_components, 1);
  EXPECT_EQ(s.num_unicyclic, 1);
  EXPECT_EQ(s.num_edges, 4);
  EXPECT_TRUE(s.lemma1_holds);
}

TEST(ChoiceStructure, SingletonsCounted) {
  std::vector<vid_t> choice = {kNil, kNil, kNil, kNil};
  const ChoiceGraphStructure s = analyze_choice_graph(2, 2, choice);
  EXPECT_EQ(s.num_components, 4);
  EXPECT_EQ(s.num_singletons, 4);
  EXPECT_EQ(s.num_edges, 0);
  EXPECT_TRUE(s.lemma1_holds);
}

TEST(ChoiceStructure, SizeMismatchThrows) {
  std::vector<vid_t> choice = {kNil};
  EXPECT_THROW((void)analyze_choice_graph(2, 2, choice), std::invalid_argument);
}

class Lemma1Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Test, HoldsAcrossFamiliesAndSeeds) {
  const std::uint64_t seed = GetParam();
  std::vector<BipartiteGraph> graphs;
  graphs.push_back(make_erdos_renyi(2000, 2000, 8000, seed));
  graphs.push_back(make_erdos_renyi(1500, 1800, 5000, seed + 1));
  graphs.push_back(make_planted_perfect(2000, 4, seed + 2));
  graphs.push_back(make_full(300));
  graphs.push_back(make_ks_adversarial(256, 8));

  for (const auto& g : graphs) {
    const ScalingResult s = scale_sinkhorn_knopp(g, {3, 0.0});
    const TwoSidedChoices ch = sample_two_sided_choices(g, s, seed + 5);
    const std::vector<vid_t> choice =
        unify_choices(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
    const ChoiceGraphStructure st =
        analyze_choice_graph(g.num_rows(), g.num_cols(), choice);
    EXPECT_TRUE(st.lemma1_holds);
    EXPECT_EQ(st.num_vertices, g.num_rows() + g.num_cols());
    // Each side contributes at most one edge per vertex.
    EXPECT_LE(st.num_edges, static_cast<eid_t>(g.num_rows()) + g.num_cols());
    // Component taxonomy is exhaustive.
    EXPECT_EQ(st.num_components,
              st.num_singletons + st.num_tree_components + st.num_unicyclic);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Test, ::testing::Range<std::uint64_t>(0, 6));

TEST(MaterializeChoiceGraph, ContainsExactlyTheChosenEdges) {
  const BipartiteGraph g = make_erdos_renyi(300, 300, 1500, 3);
  const ScalingResult s = scale_sinkhorn_knopp(g);
  const TwoSidedChoices ch = sample_two_sided_choices(g, s, 7);
  const BipartiteGraph sub =
      materialize_choice_graph(g.num_rows(), g.num_cols(), ch.rchoice, ch.cchoice);
  EXPECT_EQ(sub.num_rows(), g.num_rows());
  EXPECT_EQ(sub.num_cols(), g.num_cols());
  // Every subgraph edge is either a row choice or a column choice.
  for (vid_t i = 0; i < sub.num_rows(); ++i)
    for (const vid_t j : sub.row_neighbors(i))
      EXPECT_TRUE(ch.rchoice[static_cast<std::size_t>(i)] == j ||
                  ch.cchoice[static_cast<std::size_t>(j)] == i);
  // And the subgraph is a subgraph of g.
  for (vid_t i = 0; i < sub.num_rows(); ++i)
    for (const vid_t j : sub.row_neighbors(i)) EXPECT_TRUE(g.has_edge(i, j));
}

TEST(MaterializeChoiceGraph, ReciprocalPicksCollapse) {
  std::vector<vid_t> rchoice = {0};
  std::vector<vid_t> cchoice = {0};
  const BipartiteGraph sub = materialize_choice_graph(1, 1, rchoice, cchoice);
  EXPECT_EQ(sub.num_edges(), 1);
}

TEST(OneOutGraph, StructureMatchesWalkupModel) {
  // A pure 1-out graph (rows only choose): components are trees or
  // unicyclic, never more.
  const BipartiteGraph g = make_one_out(20000, 13);
  std::vector<vid_t> rchoice(20000), cchoice(20000, kNil);
  for (vid_t i = 0; i < 20000; ++i) rchoice[static_cast<std::size_t>(i)] = g.row_neighbors(i)[0];
  const std::vector<vid_t> choice = unify_choices(20000, 20000, rchoice, cchoice);
  const ChoiceGraphStructure s = analyze_choice_graph(20000, 20000, choice);
  EXPECT_TRUE(s.lemma1_holds);
  EXPECT_EQ(s.num_edges, 20000);
}

} // namespace
} // namespace bmh
